"""Tests for repro.core.demagnetise."""

import numpy as np
import pytest

from repro.core import TimelessJAModel, demagnetisation_schedule, demagnetise, run_sweep
from repro.errors import ParameterError
from repro.ja.parameters import PAPER_PARAMETERS
from repro.waveforms.sweeps import major_loop_waypoints


class TestSchedule:
    def test_alternates_and_decays(self):
        schedule = demagnetisation_schedule(1000.0, steps=5, decay=0.5)
        # 0, +1000, -1000, +500, -500, ..., final 0.
        assert schedule[0] == 0.0
        assert schedule[1] == 1000.0
        assert schedule[2] == -1000.0
        assert schedule[3] == 500.0
        assert schedule[-1] == 0.0

    def test_geometric_envelope(self):
        schedule = demagnetisation_schedule(1000.0, steps=10, decay=0.8)
        peaks = schedule[1:-1:2]
        ratios = [b / a for a, b in zip(peaks[:-1], peaks[1:])]
        assert np.allclose(ratios, 0.8)

    def test_validation(self):
        with pytest.raises(ParameterError):
            demagnetisation_schedule(-1.0)
        with pytest.raises(ParameterError):
            demagnetisation_schedule(1000.0, decay=1.5)
        with pytest.raises(ParameterError):
            demagnetisation_schedule(1000.0, steps=1)


class TestDeperm:
    def test_remanence_removed(self):
        model = TimelessJAModel(PAPER_PARAMETERS, dhmax=25.0)
        run_sweep(model, major_loop_waypoints(10e3, cycles=1))
        b_remanent = model.b
        assert b_remanent > 1.0  # magnetised
        demagnetise(model, 10e3, steps=40, decay=0.85)
        # Residual flux at least an order of magnitude below remanence.
        assert abs(model.b) < 0.1 * b_remanent

    def test_slower_decay_demagnetises_better(self):
        def residual(decay, steps):
            model = TimelessJAModel(PAPER_PARAMETERS, dhmax=25.0)
            run_sweep(model, major_loop_waypoints(10e3, cycles=1))
            demagnetise(model, 10e3, steps=steps, decay=decay)
            return abs(model.b)

        coarse = residual(0.6, 20)
        fine = residual(0.9, 60)
        assert fine < coarse

    def test_state_not_reset_first(self):
        """Deperm starts from the magnetised state, not a fresh one."""
        model = TimelessJAModel(PAPER_PARAMETERS, dhmax=25.0)
        run_sweep(model, major_loop_waypoints(10e3, cycles=1))
        result = demagnetise(model, 10e3, steps=10, decay=0.7)
        assert result.h[0] == pytest.approx(10e3)

    def test_sweep_result_returned(self):
        model = TimelessJAModel(PAPER_PARAMETERS, dhmax=50.0)
        result = demagnetise(model, 5e3, steps=10, decay=0.7)
        assert len(result) > 0
        assert result.finite
