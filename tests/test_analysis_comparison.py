"""Tests for repro.analysis.comparison."""

import numpy as np
import pytest

from repro.analysis.comparison import compare_bh_curves
from repro.errors import AnalysisError


def _triangle_trace(n_per_branch, f):
    """H: 0 -> 10 -> -10, B = f(H) per branch (no hysteresis)."""
    up = np.linspace(0.0, 10.0, n_per_branch)
    down = np.linspace(10.0, -10.0, 2 * n_per_branch)[1:]
    h = np.concatenate([up, down])
    return h, f(h)


class TestIdenticalCurves:
    def test_zero_distance(self):
        h, b = _triangle_trace(50, np.sin)
        distance = compare_bh_curves(h, b, h, b)
        assert distance.max_abs == 0.0
        assert distance.rms == 0.0

    def test_different_grids_same_function(self):
        h1, b1 = _triangle_trace(50, np.sin)
        h2, b2 = _triangle_trace(173, np.sin)
        distance = compare_bh_curves(h1, b1, h2, b2)
        # Linear interpolation error only.
        assert distance.max_abs < 0.02


class TestKnownOffsets:
    def test_constant_offset_measured_exactly(self):
        h1, b1 = _triangle_trace(60, np.sin)
        h2, b2 = _triangle_trace(60, lambda h: np.sin(h) + 0.25)
        distance = compare_bh_curves(h1, b1, h2, b2)
        assert distance.max_abs == pytest.approx(0.25, rel=1e-6)
        assert distance.rms == pytest.approx(0.25, rel=1e-6)

    def test_branch_count_recorded(self):
        h1, b1 = _triangle_trace(60, np.sin)
        distance = compare_bh_curves(h1, b1, h1, b1)
        assert distance.branches_compared == 2

    def test_grid_points_counted(self):
        h1, b1 = _triangle_trace(60, np.sin)
        distance = compare_bh_curves(h1, b1, h1, b1, grid_points_per_branch=77)
        assert distance.grid_points == 2 * 77


class TestValidation:
    def test_branch_count_mismatch_raises(self):
        h1, b1 = _triangle_trace(60, np.sin)
        h2 = np.linspace(0.0, 10.0, 50)  # single branch
        with pytest.raises(AnalysisError, match="branch"):
            compare_bh_curves(h1, b1, h2, np.sin(h2))

    def test_bad_grid_points(self):
        h, b = _triangle_trace(60, np.sin)
        with pytest.raises(AnalysisError):
            compare_bh_curves(h, b, h, b, grid_points_per_branch=1)

    def test_as_dict(self):
        h, b = _triangle_trace(60, np.sin)
        data = compare_bh_curves(h, b, h, b).as_dict()
        assert set(data) == {"max_abs", "rms", "branches_compared", "grid_points"}
