"""Tests for repro.hdl.kernel.simtime."""

import pytest

from repro.errors import SchedulingError
from repro.hdl.kernel.simtime import SimTime


class TestConstruction:
    def test_zero_constant(self):
        assert SimTime.ZERO.femtoseconds == 0

    def test_unit_constructors(self):
        assert SimTime.fs(1).femtoseconds == 1
        assert SimTime.ps(1).femtoseconds == 10**3
        assert SimTime.ns(1).femtoseconds == 10**6
        assert SimTime.us(1).femtoseconds == 10**9
        assert SimTime.ms(1).femtoseconds == 10**12
        assert SimTime.seconds(1).femtoseconds == 10**15

    def test_fractional_values_round(self):
        assert SimTime.ns(1.5).femtoseconds == 1_500_000

    def test_negative_rejected(self):
        with pytest.raises(SchedulingError):
            SimTime(-1)

    def test_float_count_rejected(self):
        with pytest.raises(SchedulingError):
            SimTime(1.5)  # type: ignore[arg-type]

    def test_unknown_unit_rejected(self):
        with pytest.raises(SchedulingError):
            SimTime.from_value(1.0, "fortnights")

    def test_negative_value_rejected(self):
        with pytest.raises(SchedulingError):
            SimTime.ns(-2.0)


class TestArithmetic:
    def test_addition(self):
        assert SimTime.ns(1) + SimTime.ns(2) == SimTime.ns(3)

    def test_subtraction(self):
        assert SimTime.ns(3) - SimTime.ns(1) == SimTime.ns(2)

    def test_subtraction_below_zero_rejected(self):
        with pytest.raises(SchedulingError):
            SimTime.ns(1) - SimTime.ns(2)

    def test_int_scaling(self):
        assert 3 * SimTime.ns(2) == SimTime.ns(6)
        assert SimTime.ns(2) * 3 == SimTime.ns(6)

    def test_float_scaling_rejected(self):
        with pytest.raises(SchedulingError):
            SimTime.ns(2) * 1.5  # type: ignore[operator]

    def test_ordering(self):
        assert SimTime.ps(999) < SimTime.ns(1)
        assert SimTime.ns(1) <= SimTime.ns(1)
        assert SimTime.us(1) > SimTime.ns(999)

    def test_bool(self):
        assert not SimTime.ZERO
        assert SimTime.fs(1)

    def test_to_seconds(self):
        assert SimTime.ms(2).to_seconds() == pytest.approx(2e-3)


class TestRepr:
    def test_picks_largest_exact_unit(self):
        assert "1 ns" in repr(SimTime.ns(1))
        assert "2 us" in repr(SimTime.us(2))

    def test_sub_picosecond_shows_fs(self):
        assert "fs" in repr(SimTime.fs(123))

    def test_hashable(self):
        assert len({SimTime.ns(1), SimTime.ns(1), SimTime.ns(2)}) == 2
