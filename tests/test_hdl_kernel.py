"""Tests for the event kernel: signals, events, processes, scheduler."""

import pytest

from repro.errors import KernelError, SignalError
from repro.hdl.kernel import Module, Scheduler, SimTime
from repro.hdl.kernel.tracing import Tracer


@pytest.fixture()
def scheduler():
    return Scheduler()


class TestSignalSemantics:
    def test_write_not_visible_until_update(self, scheduler):
        sig = scheduler.signal("s", 0)
        observed = []

        def writer():
            sig.write(42)
            observed.append(sig.read())  # still old value mid-evaluate

        scheduler.process("writer", writer, initialise=True)
        scheduler.run()
        assert observed == [0]
        assert sig.read() == 42

    def test_same_value_write_fires_no_event(self, scheduler):
        sig = scheduler.signal("s", 7)
        wakeups = []

        def writer():
            sig.write(7)

        def watcher():
            wakeups.append(sig.read())

        scheduler.process("writer", writer, initialise=True)
        scheduler.process("watcher", watcher, sensitive_to=[sig])
        scheduler.run()
        assert wakeups == []
        assert sig.change_count == 0

    def test_last_write_wins(self, scheduler):
        sig = scheduler.signal("s", 0)

        def writer():
            sig.write(1)
            sig.write(2)

        scheduler.process("writer", writer, initialise=True)
        scheduler.run()
        assert sig.read() == 2
        assert sig.change_count == 1

    def test_change_propagates_next_delta(self, scheduler):
        sig = scheduler.signal("s", 0)
        seen = []

        def writer():
            sig.write(5)

        def watcher():
            seen.append(sig.read())

        scheduler.process("writer", writer, initialise=True)
        scheduler.process("watcher", watcher, sensitive_to=[sig])
        scheduler.run()
        assert seen == [5]

    def test_force_outside_run(self, scheduler):
        sig = scheduler.signal("s", 0)
        sig.force(9)
        assert sig.read() == 9

    def test_force_during_run_rejected(self, scheduler):
        sig = scheduler.signal("s", 0)
        errors = []

        def body():
            try:
                sig.force(1)
            except SignalError as exc:
                errors.append(exc)

        scheduler.process("p", body, initialise=True)
        scheduler.run()
        assert len(errors) == 1


class TestEventNotification:
    def test_delta_notification_wakes_process(self, scheduler):
        event = scheduler.event("e")
        runs = []

        def trigger():
            event.notify_delta()

        scheduler.process("trigger", trigger, initialise=True)
        scheduler.process("target", lambda: runs.append(1), sensitive_to=[event])
        scheduler.run()
        assert runs == [1]

    def test_timed_notification_advances_time(self, scheduler):
        event = scheduler.event("e")
        times = []

        def trigger():
            event.notify_after(SimTime.ns(5))

        def target():
            times.append(scheduler.now)

        scheduler.process("trigger", trigger, initialise=True)
        scheduler.process("target", target, sensitive_to=[event])
        scheduler.run()
        assert times == [SimTime.ns(5)]

    def test_earlier_notification_overrides_later(self, scheduler):
        event = scheduler.event("e")
        times = []

        def trigger():
            event.notify_after(SimTime.ns(10))
            event.notify_after(SimTime.ns(3))

        scheduler.process("trigger", trigger, initialise=True)
        scheduler.process(
            "target", lambda: times.append(scheduler.now), sensitive_to=[event]
        )
        scheduler.run()
        assert times == [SimTime.ns(3)]

    def test_later_notification_discarded(self, scheduler):
        event = scheduler.event("e")
        times = []

        def trigger():
            event.notify_after(SimTime.ns(3))
            event.notify_after(SimTime.ns(10))

        scheduler.process("trigger", trigger, initialise=True)
        scheduler.process(
            "target", lambda: times.append(scheduler.now), sensitive_to=[event]
        )
        scheduler.run()
        assert times == [SimTime.ns(3)]

    def test_self_renotifying_process_ticks(self, scheduler):
        event = scheduler.event("tick")
        count = [0]

        def ticker():
            count[0] += 1
            if count[0] < 5:
                event.notify_after(SimTime.ns(1))

        scheduler.process("ticker", ticker, sensitive_to=[event], initialise=True)
        scheduler.run()
        assert count[0] == 5
        assert scheduler.now == SimTime.ns(4)


class TestSchedulerControl:
    def test_run_until_limit(self, scheduler):
        event = scheduler.event("tick")
        count = [0]

        def ticker():
            count[0] += 1
            event.notify_after(SimTime.ns(1))

        scheduler.process("ticker", ticker, sensitive_to=[event], initialise=True)
        scheduler.run(until=SimTime.ns(3))
        # Fires at 0, 1, 2, 3 ns.
        assert count[0] == 4
        assert scheduler.pending_activity()

    def test_run_can_continue(self, scheduler):
        event = scheduler.event("tick")
        count = [0]

        def ticker():
            count[0] += 1
            if count[0] < 10:
                event.notify_after(SimTime.ns(1))

        scheduler.process("ticker", ticker, sensitive_to=[event], initialise=True)
        scheduler.run(until=SimTime.ns(2))
        first = count[0]
        scheduler.run()
        assert count[0] == 10
        assert first < 10

    def test_zero_delay_loop_detected(self, scheduler):
        small = Scheduler(max_deltas=50)
        sig_a = small.signal("a", 0)
        sig_b = small.signal("b", 0)

        def ping():
            sig_b.write(sig_a.read() + 1)

        def pong():
            sig_a.write(sig_b.read() + 1)

        small.process("ping", ping, sensitive_to=[sig_a], initialise=True)
        small.process("pong", pong, sensitive_to=[sig_b])
        with pytest.raises(KernelError, match="delta"):
            small.run()

    def test_statistics_accumulate(self, scheduler):
        sig = scheduler.signal("s", 0)

        def writer():
            sig.write(1)

        scheduler.process("w", writer, initialise=True)
        scheduler.run()
        assert scheduler.process_runs >= 1
        assert scheduler.delta_count >= 1


class TestModule:
    def test_module_names_are_hierarchical(self, scheduler):
        module = Module(scheduler, "top")
        sig = module.make_signal("x", 0)
        proc = module.make_process("p", lambda: None)
        event = module.make_event("e")
        assert sig.name == "top.x"
        assert proc.name == "top.p"
        assert event.name == "top.e"

    def test_module_tracks_children(self, scheduler):
        module = Module(scheduler, "top")
        module.make_signal("x", 0)
        module.make_signal("y", 0)
        module.make_process("p", lambda: None)
        assert len(module.signals) == 2
        assert len(module.processes) == 1


class TestTracer:
    def test_trace_records_changes(self, scheduler):
        sig = scheduler.signal("s", 0.0)
        tracer = Tracer(scheduler)
        trace = tracer.watch(sig)
        event = scheduler.event("tick")
        count = [0]

        def ticker():
            count[0] += 1
            sig.write(float(count[0]))
            if count[0] < 3:
                event.notify_after(SimTime.ns(1))

        scheduler.process("ticker", ticker, sensitive_to=[event], initialise=True)
        scheduler.run()
        times, values = trace.as_arrays()
        # Initial value + 3 changes.
        assert list(values) == [0.0, 1.0, 2.0, 3.0]
        assert times[1] == pytest.approx(0.0)
        assert times[-1] == pytest.approx(2e-9)

    def test_watch_twice_returns_same_trace(self, scheduler):
        sig = scheduler.signal("s", 0)
        tracer = Tracer(scheduler)
        assert tracer.watch(sig) is tracer.watch(sig)

    def test_final_value(self, scheduler):
        sig = scheduler.signal("s", 1.5)
        tracer = Tracer(scheduler)
        trace = tracer.watch(sig)
        assert trace.final_value() == 1.5
