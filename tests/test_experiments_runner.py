"""Tests for the repro-experiments CLI runner."""

import numpy as np
import pytest

from repro.experiments.registry import ExperimentResult, register
from repro.experiments.runner import main
from repro.io.table import TextTable


@pytest.fixture(scope="module", autouse=True)
def tiny_experiment():
    """Register a fast synthetic experiment for CLI tests."""

    @register("EXP-CLI-TEST", "tiny experiment for CLI tests")
    def _run() -> ExperimentResult:
        result = ExperimentResult(
            experiment_id="EXP-CLI-TEST",
            title="tiny experiment for CLI tests",
        )
        table = TextTable(["k", "v"], title="tiny table")
        table.add_row("answer", 42)
        result.tables = [table]
        result.notes = ["cli-note"]
        result.data = {
            "h": np.array([0.0, 1.0, 2.0]),
            "b": np.array([0.0, 0.5, 0.8]),
        }
        result.artifacts = {"extra": "artifact-body"}
        return result

    yield


class TestCli:
    def test_list_prints_experiments(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "EXP-F1" in output
        assert "EXP-CLI-TEST" in output

    def test_no_arguments_errors(self, capsys):
        assert main([]) == 2
        assert "error" in capsys.readouterr().err

    def test_run_writes_report_and_artifacts(self, tmp_path, capsys):
        code = main(["EXP-CLI-TEST", "--output", str(tmp_path)])
        assert code == 0
        report = tmp_path / "EXP-CLI-TEST.txt"
        assert report.exists()
        text = report.read_text()
        assert "cli-note" in text
        assert "tiny table" in text
        assert (tmp_path / "EXP-CLI-TEST_extra.txt").read_text().startswith(
            "artifact-body"
        )
        # B-H data present in result.data -> CSV written too.
        csv_path = tmp_path / "EXP-CLI-TEST_bh.csv"
        assert csv_path.exists()
        from repro.io.csvio import read_bh_csv

        h, b, _, meta = read_bh_csv(csv_path)
        assert list(h) == [0.0, 1.0, 2.0]
        assert meta["experiment"] == "EXP-CLI-TEST"

    def test_stdout_shows_rendered_report(self, tmp_path, capsys):
        main(["EXP-CLI-TEST", "--output", str(tmp_path)])
        output = capsys.readouterr().out
        assert "EXP-CLI-TEST" in output
        assert "answer" in output

    def test_unknown_id_raises(self, tmp_path):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            main(["EXP-DOES-NOT-EXIST", "--output", str(tmp_path)])


class TestBenchJson:
    def test_writes_stamped_payload(self, tmp_path):
        import json

        from repro.experiments.runner import write_bench_json

        path = write_bench_json(
            tmp_path / "BENCH-x.json",
            "EXP-X",
            [{"op": "run", "n": 4, "seconds": 0.5}],
            backend="numpy",
            workers=2,
        )
        payload = json.loads(path.read_text())
        assert payload["experiment"] == "EXP-X"
        assert payload["backend"] == "numpy" and payload["workers"] == 2
        assert payload["records"][0]["n"] == 4

    def test_incomplete_record_raises_experiment_error(self, tmp_path):
        from repro.errors import ExperimentError
        from repro.experiments.runner import write_bench_json

        with pytest.raises(ExperimentError, match="missing"):
            write_bench_json(
                tmp_path / "BENCH-y.json", "EXP-Y", [{"op": "run"}]
            )
        assert not (tmp_path / "BENCH-y.json").exists()
