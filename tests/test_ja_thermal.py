"""Tests for repro.ja.thermal (temperature-scaled parameters)."""

import pytest

from repro.analysis.loops import extract_loops
from repro.analysis.metrics import loop_metrics
from repro.core.model import TimelessJAModel
from repro.core.sweep import run_sweep
from repro.errors import ParameterError
from repro.ja.parameters import PAPER_PARAMETERS
from repro.ja.thermal import ThermalJAParameters
from repro.waveforms.sweeps import major_loop_waypoints


@pytest.fixture(scope="module")
def thermal():
    return ThermalJAParameters(reference=PAPER_PARAMETERS)


class TestScaling:
    def test_reference_temperature_is_identity(self, thermal):
        params = thermal.at(thermal.t_reference)
        assert params.m_sat == pytest.approx(PAPER_PARAMETERS.m_sat)
        assert params.k == pytest.approx(PAPER_PARAMETERS.k)
        assert params.a == pytest.approx(PAPER_PARAMETERS.a)

    def test_heating_shrinks_everything(self, thermal):
        hot = thermal.at(800.0)
        assert hot.m_sat < PAPER_PARAMETERS.m_sat
        assert hot.k < PAPER_PARAMETERS.k
        assert hot.a < PAPER_PARAMETERS.a
        assert hot.a2 < PAPER_PARAMETERS.a2

    def test_cooling_strengthens(self, thermal):
        cold = thermal.at(100.0)
        assert cold.m_sat > PAPER_PARAMETERS.m_sat

    def test_k_collapses_faster_than_m_sat(self, thermal):
        hot = thermal.at(900.0)
        k_fraction = hot.k / PAPER_PARAMETERS.k
        ms_fraction = hot.m_sat / PAPER_PARAMETERS.m_sat
        assert k_fraction < ms_fraction

    def test_saturation_fraction_monotone(self, thermal):
        fractions = [thermal.saturation_fraction(t) for t in (300, 500, 700, 900)]
        assert all(a > b for a, b in zip(fractions[:-1], fractions[1:]))

    def test_scaled_set_passes_validation(self, thermal):
        # with_updates re-validates; a hot set must still be legal.
        params = thermal.at(1000.0)
        assert params.m_sat > 0.0

    def test_name_carries_temperature(self, thermal):
        assert "600" in thermal.at(600.0).name


class TestDomainChecks:
    def test_curie_point_rejected(self, thermal):
        with pytest.raises(ParameterError, match="Curie"):
            thermal.at(thermal.t_curie)

    def test_above_curie_rejected(self, thermal):
        with pytest.raises(ParameterError):
            thermal.at(2000.0)

    def test_non_positive_temperature_rejected(self, thermal):
        with pytest.raises(ParameterError):
            thermal.at(0.0)

    def test_bad_construction(self):
        with pytest.raises(ParameterError):
            ThermalJAParameters(
                reference=PAPER_PARAMETERS, t_reference=1200.0
            )
        with pytest.raises(ParameterError):
            ThermalJAParameters(reference=PAPER_PARAMETERS, beta_k=-1.0)


class TestLoopBehaviour:
    def _metrics_at(self, thermal, temperature):
        model = TimelessJAModel(thermal.at(temperature), dhmax=100.0)
        sweep = run_sweep(model, major_loop_waypoints(10e3, cycles=1))
        major = extract_loops(sweep.h, sweep.b)[0]
        return loop_metrics(major.h, major.b)

    def test_loop_shrinks_on_heating(self, thermal):
        cold = self._metrics_at(thermal, 293.15)
        hot = self._metrics_at(thermal, 800.0)
        assert hot.b_max < cold.b_max
        assert hot.coercivity < cold.coercivity
        assert hot.area < cold.area

    def test_near_curie_loop_nearly_vanishes(self, thermal):
        hot = self._metrics_at(thermal, 1030.0)
        cold = self._metrics_at(thermal, 293.15)
        assert hot.area < 0.05 * cold.area
