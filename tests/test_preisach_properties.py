"""Property-based tests of the Preisach model's defining invariants.

The Preisach model has two exact structural properties — return-point
memory and wiping-out — that must hold for *any* weight set and *any*
input sequence.  Hypothesis drives random schedules against them.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.preisach.model import PreisachModel

H_SAT = 1000.0
N_CELLS = 12


def _uniform_model() -> PreisachModel:
    nodes = np.linspace(-H_SAT, H_SAT, N_CELLS + 1)
    weights = np.zeros((N_CELLS, N_CELLS))
    for i in range(N_CELLS):
        for j in range(i + 1):
            weights[i, j] = 1.0 + 0.1 * i + 0.05 * j  # asymmetric on purpose
    return PreisachModel(weights, nodes[1:], nodes[:-1], m_sat=1e6)


fields = st.floats(min_value=-1500.0, max_value=1500.0, allow_nan=False)


class TestStructuralProperties:
    @settings(max_examples=60, deadline=None)
    @given(history=st.lists(fields, min_size=0, max_size=12), probe=fields)
    def test_rate_independence(self, history, probe):
        """Applying a monotone excursion in one jump or many sub-steps
        gives the identical state (relays are threshold devices)."""
        model_a = _uniform_model()
        model_b = _uniform_model()
        for h in history:
            model_a.apply_field(h)
            model_b.apply_field(h)
        model_a.apply_field(probe)
        start = model_b.h
        for frac in (0.25, 0.5, 0.75):
            model_b.apply_field(start + frac * (probe - start))
        model_b.apply_field(probe)  # exact endpoint, no float absorption
        assert model_a.m_normalised == model_b.m_normalised

    @settings(max_examples=60, deadline=None)
    @given(
        history=st.lists(fields, min_size=0, max_size=10),
        reversal=fields,
        excursion=st.floats(min_value=0.0, max_value=400.0, allow_nan=False),
    )
    def test_return_point_memory(self, history, reversal, excursion):
        """Close a sub-loop: the state returns exactly to the branch
        point.  The branch point must be a genuine downward reversal
        (approached from above) and the re-ascent must stay at or below
        the previous maximum — otherwise it wipes the history instead
        of closing a loop (that case is test_wiping_out)."""
        model = _uniform_model()
        for h in history:
            model.apply_field(h)
        model.apply_field(reversal + excursion + 1.0)  # upper history
        model.apply_field(reversal)  # branch point, approached falling
        m_at_reversal = model.m_normalised
        model.apply_field(reversal + excursion)  # partial re-ascent
        model.apply_field(reversal)  # close the minor loop
        assert model.m_normalised == pytest.approx(m_at_reversal, abs=1e-12)

    @settings(max_examples=60, deadline=None)
    @given(history=st.lists(fields, min_size=1, max_size=15))
    def test_wiping_out(self, history):
        """A new global extremum erases all smaller history: the state
        after [history..., H_big] equals the state after [H_big]."""
        h_big = 1200.0  # beyond every sampled |field|... except possibly
        history = [h for h in history if abs(h) < 1100.0]
        if not history:
            return
        model_a = _uniform_model()
        for h in history:
            model_a.apply_field(h)
        model_a.apply_field(h_big)
        model_b = _uniform_model()
        model_b.apply_field(h_big)
        assert model_a.m_normalised == model_b.m_normalised

    @settings(max_examples=60, deadline=None)
    @given(history=st.lists(fields, min_size=1, max_size=15))
    def test_magnetisation_bounded(self, history):
        model = _uniform_model()
        bound = float(np.sum(model.weights))
        for h in history:
            model.apply_field(h)
            assert abs(model.m_normalised) <= bound + 1e-12

    @settings(max_examples=40, deadline=None)
    @given(
        history=st.lists(fields, min_size=0, max_size=10),
        h_up=st.floats(min_value=-900.0, max_value=900.0, allow_nan=False),
        dh=st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
    )
    def test_monotone_response(self, history, h_up, dh):
        """Rising field never decreases the relay sum."""
        model = _uniform_model()
        for h in history:
            model.apply_field(h)
        model.apply_field(h_up)
        m_before = model.m_normalised
        model.apply_field(h_up + dh)
        assert model.m_normalised >= m_before - 1e-12
