"""Tests for repro.core.sweep."""

import numpy as np
import pytest

from repro.core.model import TimelessJAModel
from repro.core.sweep import (
    concatenate_sweeps,
    run_sweep,
    run_sweep_dense,
    waypoint_samples,
)
from repro.errors import ParameterError
from repro.ja.parameters import PAPER_PARAMETERS


class TestWaypointSamples:
    def test_endpoints_hit_exactly(self):
        samples = waypoint_samples([0.0, 1000.0, -500.0], 37.0)
        assert samples[0] == 0.0
        assert 1000.0 in samples
        assert samples[-1] == -500.0

    def test_spacing_bounded_by_driver_step(self):
        samples = waypoint_samples([0.0, 1000.0], 30.0)
        assert np.max(np.abs(np.diff(samples))) <= 30.0 + 1e-9

    def test_zero_span_segment_skipped(self):
        samples = waypoint_samples([0.0, 100.0, 100.0, 200.0], 50.0)
        assert np.all(np.diff(samples) != 0.0)

    def test_needs_two_waypoints(self):
        with pytest.raises(ParameterError):
            waypoint_samples([0.0], 10.0)

    def test_bad_driver_step(self):
        with pytest.raises(ParameterError):
            waypoint_samples([0.0, 100.0], 0.0)


class TestRunSweep:
    def test_result_arrays_aligned(self, fresh_model):
        result = run_sweep(fresh_model, [0.0, 5000.0, -5000.0])
        n = len(result)
        assert result.h.shape == (n,)
        assert result.m.shape == (n,)
        assert result.b.shape == (n,)
        assert result.m_an.shape == (n,)
        assert result.updated.shape == (n,)

    def test_euler_steps_match_updated_mask(self, fresh_model):
        result = run_sweep(fresh_model, [0.0, 5000.0])
        assert result.euler_steps == int(np.sum(result.updated))

    def test_default_driver_step_is_quarter_dhmax(self, fresh_model):
        result = run_sweep(fresh_model, [0.0, 1000.0])
        spacing = np.max(np.abs(np.diff(result.h)))
        assert spacing == pytest.approx(fresh_model.dhmax / 4.0)

    def test_reset_true_starts_fresh(self, fresh_model):
        run_sweep(fresh_model, [0.0, 10e3])
        result = run_sweep(fresh_model, [0.0, 10e3])
        # Identical because the second run reset the state.
        assert result.b[-1] == pytest.approx(
            run_sweep(fresh_model, [0.0, 10e3]).b[-1]
        )

    def test_reset_false_continues_state(self, fresh_model):
        run_sweep(fresh_model, [0.0, 10e3])
        m_before = fresh_model.m
        result = run_sweep(
            fresh_model, [10e3, 8000.0], reset=False
        )
        assert result.h[0] == 10e3
        # State carried over: magnetisation started from the peak value.
        assert result.m[0] == pytest.approx(m_before, rel=0.05)

    def test_finite_flag(self, fresh_model):
        result = run_sweep(fresh_model, [0.0, 10e3, -10e3, 10e3])
        assert result.finite


class TestRunSweepDense:
    def test_requires_accept_equal(self, fresh_model):
        with pytest.raises(ParameterError):
            run_sweep_dense(fresh_model, [0.0, 1000.0])

    def test_every_sample_is_an_event(self):
        model = TimelessJAModel(PAPER_PARAMETERS, dhmax=50.0, accept_equal=True)
        result = run_sweep_dense(model, [0.0, 1000.0])
        # All samples after the first must fire an Euler step.
        assert np.all(result.updated[1:])

    def test_step_size_is_exactly_dhmax(self):
        model = TimelessJAModel(PAPER_PARAMETERS, dhmax=50.0, accept_equal=True)
        result = run_sweep_dense(model, [0.0, 1000.0])
        assert np.allclose(np.abs(np.diff(result.h)), 50.0)


class TestConcatenate:
    def test_concatenation_preserves_totals(self, fresh_model):
        part1 = run_sweep(fresh_model, [0.0, 5000.0])
        part2 = run_sweep(fresh_model, [5000.0, -5000.0], reset=False)
        combined = concatenate_sweeps([part1, part2])
        assert len(combined) == len(part1) + len(part2)
        assert combined.euler_steps == part1.euler_steps + part2.euler_steps
        assert combined.clamped_slopes == (
            part1.clamped_slopes + part2.clamped_slopes
        )

    def test_empty_list_rejected(self):
        with pytest.raises(ParameterError):
            concatenate_sweeps([])
