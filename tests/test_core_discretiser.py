"""Tests for repro.core.discretiser (the monitorH logic)."""

import math

import pytest

from repro.core.discretiser import FieldDiscretiser
from repro.errors import ParameterError


class TestConstruction:
    def test_valid(self):
        disc = FieldDiscretiser(50.0)
        assert disc.dhmax == 50.0
        assert not disc.accept_equal

    def test_zero_dhmax_rejected(self):
        with pytest.raises(ParameterError):
            FieldDiscretiser(0.0)

    def test_negative_dhmax_rejected(self):
        with pytest.raises(ParameterError):
            FieldDiscretiser(-10.0)

    def test_nan_dhmax_rejected(self):
        with pytest.raises(ParameterError):
            FieldDiscretiser(math.nan)

    def test_repr_shows_operator(self):
        assert ">" in repr(FieldDiscretiser(50.0))
        assert ">=" in repr(FieldDiscretiser(50.0, accept_equal=True))


class TestStrictThreshold:
    """The published comparison is strictly |dh| > dhmax."""

    def setup_method(self):
        self.disc = FieldDiscretiser(50.0)

    def test_below_threshold_rejected(self):
        decision = self.disc.observe(30.0, 0.0)
        assert not decision.accepted
        assert decision.dh == 30.0

    def test_exactly_at_threshold_rejected(self):
        assert not self.disc.observe(50.0, 0.0).accepted

    def test_above_threshold_accepted(self):
        decision = self.disc.observe(50.1, 0.0)
        assert decision.accepted
        assert decision.dh == pytest.approx(50.1)

    def test_negative_increment_accepted_by_magnitude(self):
        decision = self.disc.observe(-75.0, 0.0)
        assert decision.accepted
        assert decision.dh == -75.0

    def test_accumulation_semantics(self):
        """Small driver increments accumulate until the threshold."""
        accepted = 0
        h_accepted = 0.0
        for i in range(1, 11):
            h = i * 12.5  # four samples per dhmax
            decision = self.disc.observe(h, h_accepted)
            if decision.accepted:
                accepted += 1
                h_accepted = h
        # Crossings at 62.5, 125.0 -> rejected at 112.5? No: after
        # accepting at 62.5, next crossing needs h > 112.5 -> 125.0, then
        # h > 175 -> 187.5... in 10 samples (to 125.0): accepts at 62.5
        # and 125.0.
        assert accepted == 2


class TestAcceptEqual:
    def test_exact_threshold_accepted(self):
        disc = FieldDiscretiser(50.0, accept_equal=True)
        assert disc.observe(50.0, 0.0).accepted

    def test_below_still_rejected(self):
        disc = FieldDiscretiser(50.0, accept_equal=True)
        assert not disc.observe(49.999, 0.0).accepted


class TestCounters:
    def test_counts_observations_and_acceptances(self):
        disc = FieldDiscretiser(50.0)
        disc.observe(10.0, 0.0)
        disc.observe(60.0, 0.0)
        disc.observe(70.0, 60.0)
        assert disc.observations == 3
        assert disc.acceptances == 1

    def test_reset_counters(self):
        disc = FieldDiscretiser(50.0)
        disc.observe(60.0, 0.0)
        disc.reset_counters()
        assert disc.observations == 0
        assert disc.acceptances == 0
