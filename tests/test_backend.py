"""Tests for the array-backend layer: registry, selection surfaces,
fused-sweep dispatch, and the extras-dtype contract of the executor."""

import numpy as np
import pytest

from repro.backend import (
    BACKEND_ENV,
    NUMPY_BACKEND,
    ArrayBackend,
    as_backend,
    get_backend,
    list_backends,
    resolve_backend,
)
from repro.batch.engine import BatchTimelessModel
from repro.batch.sweep import run_batch_series
from repro.batch.time_domain import BatchTimeDomainModel
from repro.core.sweep import waypoint_samples
from repro.errors import ParameterError, ScenarioError
from repro.models.registry import get_family, perturbed_parameters
from repro.parallel import run_sharded
from repro.parallel.executor import prepare_job
from repro.parallel.spec import DriveSpec, EnsembleSpec
from repro.scenarios import run_scenario


def drive(n_steps_scale: float = 1.0) -> np.ndarray:
    h = 10e3 * n_steps_scale
    return waypoint_samples([0.0, h, -h, h], h / 40.0)


class TestRegistry:
    def test_numpy_backend_is_registered_and_exact(self):
        backend = get_backend("numpy")
        assert backend is NUMPY_BACKEND
        assert backend.exact and backend.rtol == 0.0
        # The reference namespace IS the numpy module: threading it
        # through the kernels cannot change a bit.
        assert backend.xp is np

    def test_unknown_backend_errors(self):
        with pytest.raises(ParameterError, match="unknown array backend"):
            get_backend("tpu")

    def test_as_backend_default_is_numpy_not_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "definitely-not-registered")
        assert as_backend(None).name == "numpy"  # ctor default ignores env
        with pytest.raises(ParameterError):
            resolve_backend(None)  # the selection surfaces do not

    def test_resolve_precedence(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend(None).name == "numpy"
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        assert resolve_backend(None).name == "numpy"
        assert resolve_backend("numpy") is NUMPY_BACKEND
        assert resolve_backend(NUMPY_BACKEND) is NUMPY_BACKEND

    def test_list_backends_sorted(self):
        names = [backend.name for backend in list_backends()]
        assert names == sorted(names)
        assert "numpy" in names


class TestEngineBackendPlumbing:
    def test_engines_default_to_numpy(self):
        params = perturbed_parameters(3)
        assert BatchTimelessModel(params).backend.name == "numpy"
        assert BatchTimeDomainModel(params).backend.name == "numpy"

    def test_use_backend_returns_self(self):
        batch = BatchTimelessModel(perturbed_parameters(2))
        assert batch.use_backend("numpy") is batch
        assert batch.backend is NUMPY_BACKEND

    def test_shard_payload_carries_backend_for_every_family(self):
        for family in ("timeless", "preisach", "time-domain"):
            batch = get_family(family).make_batch(3, backend="numpy")
            payload = batch.shard_payload(0, 2)
            assert payload["backend"] == "numpy", family
            rebuilt = type(batch).from_shard_payload(payload)
            assert rebuilt.backend.name == "numpy", family

    def test_make_batch_resolves_environment(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        batch = get_family("timeless").make_batch(2)
        assert batch.backend.name == "numpy"
        monkeypatch.setenv(BACKEND_ENV, "not-a-backend")
        with pytest.raises(ParameterError):
            get_family("timeless").make_batch(2)

    def test_step_series_validates_like_the_executor(self):
        batch = BatchTimelessModel(perturbed_parameters(2))
        with pytest.raises(ParameterError, match="at least one"):
            batch.step_series(np.empty(0))
        with pytest.raises(ParameterError, match="columns"):
            batch.step_series(np.zeros((5, 3)))

    def test_fused_true_requires_step_series(self):
        """A model without the fused hook rejects fused=True loudly and
        falls back silently under the default fused=None."""
        with pytest.raises(ParameterError, match="step_series"):
            run_batch_series(
                FixedDtypeExtrasBatch(n=2), np.array([1.0, 2.0]), fused=True
            )
        fallback = run_batch_series(
            FixedDtypeExtrasBatch(n=2), np.array([1.0, 2.0]), fused=None
        )
        assert len(fallback) == 2


class TestFusedSweepEquality:
    """Quick direct pins complementing the generic conformance suite."""

    def test_timeless_fused_is_bitwise(self):
        params = perturbed_parameters(8, seed=4)
        a = BatchTimelessModel(params)
        b = BatchTimelessModel(params)
        h = drive()
        fused = run_batch_series(a, h)
        loop = run_batch_series(b, h, fused=False)
        assert np.array_equal(fused.m, loop.m)
        assert np.array_equal(fused.b, loop.b)
        assert np.array_equal(fused.updated, loop.updated)
        assert np.array_equal(fused.extras["m_an"], loop.extras["m_an"])
        for key in loop.counters:
            assert np.array_equal(fused.counters[key], loop.counters[key])
        # post-run state advanced identically (snapshot equality)
        sa, ca = a.snapshot()
        sb, cb = b.snapshot()
        for name in sa.__dataclass_fields__:
            assert np.array_equal(getattr(sa, name), getattr(sb, name)), name
        for name in ca.__dataclass_fields__:
            assert np.array_equal(getattr(ca, name), getattr(cb, name)), name

    def test_preisach_fused_rejects_non_finite_upfront(self):
        batch = get_family("preisach").make_batch(2, backend="numpy")
        h = np.array([0.0, 1e3, np.nan])
        with pytest.raises(ParameterError, match="finite"):
            batch.step_series(h)


class FixedDtypeExtrasBatch:
    """Minimal conforming batch whose extras channels are not float64:
    the executor must allocate recording buffers from each channel's
    probed dtype instead of hard-coding float (regression pin)."""

    family = "dtype-test"

    def __init__(self, n: int = 2) -> None:
        self._n = n
        self._h = np.zeros(n)
        self._count = np.zeros(n, dtype=np.int32)

    @property
    def n_cores(self) -> int:
        return self._n

    @property
    def h(self) -> np.ndarray:
        return self._h.copy()

    @property
    def m(self) -> np.ndarray:
        return self._h * 0.5

    @property
    def m_normalised(self) -> np.ndarray:
        return self.m

    @property
    def b(self) -> np.ndarray:
        return self._h * 2.0

    def begin_series(self, h_initial) -> None:
        self._h = np.broadcast_to(
            np.asarray(h_initial, dtype=float), (self._n,)
        ).copy()
        self._count[:] = 0

    def step(self, h_new) -> np.ndarray:
        self._h = np.broadcast_to(
            np.asarray(h_new, dtype=float), (self._n,)
        ).copy()
        self._count += 1
        return np.ones(self._n, dtype=bool)

    def counter_totals(self) -> dict:
        return {"steps": self._count.astype(np.int64)}

    def probe_extras(self) -> dict:
        return {
            "event_count": self._count.copy(),
            "armed": self._count % 2 == 1,
        }

    def driver_step_hint(self) -> float:
        return 1.0

    def snapshot(self):
        return (self._h.copy(), self._count.copy())

    def restore(self, snap) -> None:
        self._h, self._count = snap[0].copy(), snap[1].copy()


def test_executor_preserves_extras_dtypes():
    """The extras preallocation satellite: integer and boolean channels
    survive the round trip instead of being coerced to float64."""
    result = run_batch_series(
        FixedDtypeExtrasBatch(n=2), np.array([1.0, 2.0, 3.0])
    )
    assert result.extras["event_count"].dtype == np.int32
    assert np.array_equal(
        result.extras["event_count"],
        np.array([[1, 1], [2, 2], [3, 3]], dtype=np.int32),
    )
    assert result.extras["armed"].dtype == np.bool_
    assert np.array_equal(
        result.extras["armed"],
        np.array([[True, True], [False, False], [True, True]]),
    )


class TestNumbaDriverSemantics:
    """The numba driver's loop body is a plain importable function that
    numba compiles lazily — so its semantics are validated here by
    interpreting it, on hosts with or without numba installed."""

    def _interpreted(self, monkeypatch):
        from repro.backend import numba_backend

        monkeypatch.setitem(
            numba_backend._KERNEL_CACHE,
            "timeless",
            numba_backend.timeless_series_loop,
        )
        return numba_backend

    def test_loop_matches_reference_within_jit_tier(self, monkeypatch):
        numba_backend = self._interpreted(monkeypatch)
        params = perturbed_parameters(3, seed=7)
        fused_batch = BatchTimelessModel(
            params, dhmax=np.array([40.0, 60.0, 90.0])
        )
        loop_batch = BatchTimelessModel(
            params, dhmax=np.array([40.0, 60.0, 90.0])
        )
        h = drive()
        fused_batch.begin_series(h[0])
        out = numba_backend._timeless_fused_series(fused_batch, h)
        assert out is not None
        m, b, updated, extras = out
        reference = run_batch_series(loop_batch, h, fused=False)
        # Discretiser decisions involve only exactly-representable
        # operands: they match the reference bitwise even off-backend.
        assert np.array_equal(updated, reference.updated)
        assert np.array_equal(
            fused_batch.counters.euler_steps,
            reference.counters["euler_steps"],
        )
        # Trajectories hold the JIT tier (libm vs NumPy: 1 ulp/call).
        rtol = 1e-9
        for actual, expected in ((m, reference.m), (b, reference.b),
                                 (extras["m_an"], reference.extras["m_an"])):
            scale = float(np.max(np.abs(expected)))
            assert np.allclose(actual, expected, rtol=rtol, atol=rtol * scale)

    def test_driver_declines_non_modified_langevin(self):
        from repro.backend import numba_backend
        from repro.ja.anhysteretic import LangevinAnhysteretic

        batch = BatchTimelessModel(
            perturbed_parameters(2, seed=1),
            anhysteretic=LangevinAnhysteretic(np.array([900.0, 1100.0])),
        )
        assert numba_backend._timeless_fused_series(batch, drive()) is None
        # and the engine's fused entry falls back to the exact path
        reference = BatchTimelessModel(
            perturbed_parameters(2, seed=1),
            anhysteretic=LangevinAnhysteretic(np.array([900.0, 1100.0])),
        )
        h = drive()
        fused = run_batch_series(batch, h)
        loop = run_batch_series(reference, h, fused=False)
        assert np.array_equal(fused.b, loop.b)


def test_runner_records_backend_header(tmp_path):
    """The CLI stamps the active backend into every report header, so
    regenerated EXP tables are attributable to a backend."""
    from repro.experiments.registry import ExperimentResult
    from repro.experiments.runner import _write_result

    result = ExperimentResult(experiment_id="EXP-HDR-TEST", title="header")
    result.artifacts = {"extra": "artifact-body"}
    _write_result(result, tmp_path, "numpy")
    report = (tmp_path / "EXP-HDR-TEST.txt").read_text()
    assert report.startswith("# backend: numpy\n")
    assert "EXP-HDR-TEST" in report
    # artefact payloads stay verbatim (downstream parsers read them raw)
    assert (tmp_path / "EXP-HDR-TEST_extra.txt").read_text().startswith(
        "artifact-body"
    )


class TestSelectionSurfaces:
    def test_run_scenario_backend_argument(self):
        batch = get_family("timeless").make_batch(2, backend="numpy")
        result = run_scenario(batch, "major-loop", h_max=5e3, backend="numpy")
        assert batch.backend.name == "numpy"
        assert result.n_cores == 2

    def test_run_scenario_backend_rejected_for_foreign_batch_models(self):
        """A protocol-conforming batch model without the use_backend
        hook gets a clear error, not an AttributeError."""
        with pytest.raises(ScenarioError, match="use_backend"):
            run_scenario(
                FixedDtypeExtrasBatch(n=2),
                "major-loop",
                h_max=10.0,
                backend="numpy",
            )

    def test_run_scenario_backend_rejected_for_scalars(self):
        scalar = get_family("timeless").make_scalar()
        with pytest.raises(ScenarioError, match="no array backend"):
            run_scenario(
                scalar,
                "major-loop",
                h_max=5e3,
                driver_step=100.0,
                backend="numpy",
            )

    def test_ensemble_spec_validates_and_applies_backend(self):
        with pytest.raises(ParameterError, match="unknown array backend"):
            EnsembleSpec(family="timeless", n_cores=2, backend="gpu")
        spec = EnsembleSpec(family="timeless", n_cores=2, backend="numpy")
        assert spec.build_batch().backend.name == "numpy"

    def test_prepare_job_pins_unresolved_spec_backend(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        spec = EnsembleSpec(family="timeless", n_cores=4)
        job = prepare_job(
            spec, DriveSpec(samples=drive()), n_workers=2, min_shard=1
        )
        backends = {shard.ensemble.backend for shard in job.specs}
        assert backends == {"numpy"}

    def test_sharded_run_matches_fused_single_process(self):
        batch = get_family("timeless").make_batch(5, backend="numpy")
        h = drive()
        single = run_batch_series(batch, h)
        sharded = run_sharded(batch, h, n_workers=1, min_shard=1)
        assert np.array_equal(single.m, sharded.m)
        assert np.array_equal(single.b, sharded.b)
        for key in single.counters:
            assert np.array_equal(single.counters[key], sharded.counters[key])
