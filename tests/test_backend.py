"""Tests for the array-backend layer: registry, selection surfaces,
fused-sweep dispatch, and the extras-dtype contract of the executor."""

import numpy as np
import pytest

from repro.backend import (
    BACKEND_ENV,
    NUMPY_BACKEND,
    ArrayBackend,
    as_backend,
    get_backend,
    list_backends,
    resolve_backend,
)
from repro.batch.engine import BatchTimelessModel
from repro.batch.sweep import run_batch_series
from repro.batch.time_domain import BatchTimeDomainModel
from repro.core.sweep import waypoint_samples
from repro.errors import ParameterError, ScenarioError
from repro.models.registry import get_family, perturbed_parameters
from repro.parallel import run_sharded
from repro.parallel.executor import prepare_job
from repro.parallel.spec import DriveSpec, EnsembleSpec
from repro.scenarios import run_scenario


def drive(n_steps_scale: float = 1.0) -> np.ndarray:
    h = 10e3 * n_steps_scale
    return waypoint_samples([0.0, h, -h, h], h / 40.0)


class TestRegistry:
    def test_numpy_backend_is_registered_and_exact(self):
        backend = get_backend("numpy")
        assert backend is NUMPY_BACKEND
        assert backend.exact and backend.rtol == 0.0
        # The reference namespace IS the numpy module: threading it
        # through the kernels cannot change a bit.
        assert backend.xp is np

    def test_unknown_backend_errors(self):
        with pytest.raises(ParameterError, match="unknown array backend"):
            get_backend("tpu")

    def test_as_backend_default_is_numpy_not_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "definitely-not-registered")
        assert as_backend(None).name == "numpy"  # ctor default ignores env
        with pytest.raises(ParameterError):
            resolve_backend(None)  # the selection surfaces do not

    def test_resolve_precedence(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend(None).name == "numpy"
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        assert resolve_backend(None).name == "numpy"
        assert resolve_backend("numpy") is NUMPY_BACKEND
        assert resolve_backend(NUMPY_BACKEND) is NUMPY_BACKEND

    def test_list_backends_sorted(self):
        names = [backend.name for backend in list_backends()]
        assert names == sorted(names)
        assert "numpy" in names


class TestEngineBackendPlumbing:
    def test_engines_default_to_numpy(self):
        params = perturbed_parameters(3)
        assert BatchTimelessModel(params).backend.name == "numpy"
        assert BatchTimeDomainModel(params).backend.name == "numpy"

    def test_use_backend_returns_self(self):
        batch = BatchTimelessModel(perturbed_parameters(2))
        assert batch.use_backend("numpy") is batch
        assert batch.backend is NUMPY_BACKEND

    def test_shard_payload_carries_backend_for_every_family(self):
        for family in ("timeless", "preisach", "time-domain"):
            batch = get_family(family).make_batch(3, backend="numpy")
            payload = batch.shard_payload(0, 2)
            assert payload["backend"] == "numpy", family
            rebuilt = type(batch).from_shard_payload(payload)
            assert rebuilt.backend.name == "numpy", family

    def test_make_batch_resolves_environment(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        batch = get_family("timeless").make_batch(2)
        assert batch.backend.name == "numpy"
        monkeypatch.setenv(BACKEND_ENV, "not-a-backend")
        with pytest.raises(ParameterError):
            get_family("timeless").make_batch(2)

    def test_step_series_validates_like_the_executor(self):
        batch = BatchTimelessModel(perturbed_parameters(2))
        with pytest.raises(ParameterError, match="at least one"):
            batch.step_series(np.empty(0))
        with pytest.raises(ParameterError, match="columns"):
            batch.step_series(np.zeros((5, 3)))

    def test_fused_true_requires_step_series(self):
        """A model without the fused hook rejects fused=True loudly and
        falls back silently under the default fused=None."""
        with pytest.raises(ParameterError, match="step_series"):
            run_batch_series(
                FixedDtypeExtrasBatch(n=2), np.array([1.0, 2.0]), fused=True
            )
        fallback = run_batch_series(
            FixedDtypeExtrasBatch(n=2), np.array([1.0, 2.0]), fused=None
        )
        assert len(fallback) == 2


class TestFusedSweepEquality:
    """Quick direct pins complementing the generic conformance suite."""

    def test_timeless_fused_is_bitwise(self):
        params = perturbed_parameters(8, seed=4)
        a = BatchTimelessModel(params)
        b = BatchTimelessModel(params)
        h = drive()
        fused = run_batch_series(a, h)
        loop = run_batch_series(b, h, fused=False)
        assert np.array_equal(fused.m, loop.m)
        assert np.array_equal(fused.b, loop.b)
        assert np.array_equal(fused.updated, loop.updated)
        assert np.array_equal(fused.extras["m_an"], loop.extras["m_an"])
        for key in loop.counters:
            assert np.array_equal(fused.counters[key], loop.counters[key])
        # post-run state advanced identically (snapshot equality)
        sa, ca = a.snapshot()
        sb, cb = b.snapshot()
        for name in sa.__dataclass_fields__:
            assert np.array_equal(getattr(sa, name), getattr(sb, name)), name
        for name in ca.__dataclass_fields__:
            assert np.array_equal(getattr(ca, name), getattr(cb, name)), name

    def test_preisach_fused_rejects_non_finite_upfront(self):
        batch = get_family("preisach").make_batch(2, backend="numpy")
        h = np.array([0.0, 1e3, np.nan])
        with pytest.raises(ParameterError, match="finite"):
            batch.step_series(h)


class FixedDtypeExtrasBatch:
    """Minimal conforming batch whose extras channels are not float64:
    the executor must allocate recording buffers from each channel's
    probed dtype instead of hard-coding float (regression pin)."""

    family = "dtype-test"

    def __init__(self, n: int = 2) -> None:
        self._n = n
        self._h = np.zeros(n)
        self._count = np.zeros(n, dtype=np.int32)

    @property
    def n_cores(self) -> int:
        return self._n

    @property
    def h(self) -> np.ndarray:
        return self._h.copy()

    @property
    def m(self) -> np.ndarray:
        return self._h * 0.5

    @property
    def m_normalised(self) -> np.ndarray:
        return self.m

    @property
    def b(self) -> np.ndarray:
        return self._h * 2.0

    def begin_series(self, h_initial) -> None:
        self._h = np.broadcast_to(
            np.asarray(h_initial, dtype=float), (self._n,)
        ).copy()
        self._count[:] = 0

    def step(self, h_new) -> np.ndarray:
        self._h = np.broadcast_to(
            np.asarray(h_new, dtype=float), (self._n,)
        ).copy()
        self._count += 1
        return np.ones(self._n, dtype=bool)

    def counter_totals(self) -> dict:
        return {"steps": self._count.astype(np.int64)}

    def probe_extras(self) -> dict:
        return {
            "event_count": self._count.copy(),
            "armed": self._count % 2 == 1,
        }

    def driver_step_hint(self) -> float:
        return 1.0

    def snapshot(self):
        return (self._h.copy(), self._count.copy())

    def restore(self, snap) -> None:
        self._h, self._count = snap[0].copy(), snap[1].copy()


def test_family_extras_schema_resolves_dtypes():
    """Registry extras entries: bare names mean float64, (name, dtype)
    pairs declare the integer/boolean channels the sharded executor
    must allocate shared buffers for."""
    from repro.models.registry import ModelFamily

    family = ModelFamily(
        name="schema-test",
        description="schema resolution test",
        make_models=lambda n, seed: [],
        stack=lambda models: None,
        extras_channels=("plain", ("event_count", "<i4"), ("armed", "|b1")),
    )
    schema = family.extras_schema()
    assert schema == {
        "plain": np.dtype(np.float64),
        "event_count": np.dtype(np.int32),
        "armed": np.dtype(np.bool_),
    }
    assert get_family("timeless").extras_schema() == {
        "m_an": np.dtype(np.float64)
    }


def test_executor_preserves_extras_dtypes():
    """The extras preallocation satellite: integer and boolean channels
    survive the round trip instead of being coerced to float64."""
    result = run_batch_series(
        FixedDtypeExtrasBatch(n=2), np.array([1.0, 2.0, 3.0])
    )
    assert result.extras["event_count"].dtype == np.int32
    assert np.array_equal(
        result.extras["event_count"],
        np.array([[1, 1], [2, 2], [3, 3]], dtype=np.int32),
    )
    assert result.extras["armed"].dtype == np.bool_
    assert np.array_equal(
        result.extras["armed"],
        np.array([[True, True], [False, False], [True, True]]),
    )


class TestNumbaDriverSemantics:
    """Every numba driver's loop body is a plain importable function
    that numba compiles lazily — so the semantics are validated here by
    interpreting them, on hosts with or without numba installed."""

    def _interpreted(self, monkeypatch):
        from repro.backend import numba_backend

        monkeypatch.setitem(
            numba_backend._KERNEL_CACHE,
            "timeless",
            numba_backend.timeless_series_loop,
        )
        monkeypatch.setitem(
            numba_backend._KERNEL_CACHE,
            "preisach",
            numba_backend.preisach_series_loop,
        )
        monkeypatch.setitem(
            numba_backend._KERNEL_CACHE,
            "time-domain",
            numba_backend.time_domain_series_loop,
        )
        return numba_backend

    def test_loop_matches_reference_within_jit_tier(self, monkeypatch):
        numba_backend = self._interpreted(monkeypatch)
        params = perturbed_parameters(3, seed=7)
        fused_batch = BatchTimelessModel(
            params, dhmax=np.array([40.0, 60.0, 90.0])
        )
        loop_batch = BatchTimelessModel(
            params, dhmax=np.array([40.0, 60.0, 90.0])
        )
        h = drive()
        fused_batch.begin_series(h[0])
        out = numba_backend._timeless_fused_series(fused_batch, h)
        assert out is not None
        m, b, updated, extras = out
        reference = run_batch_series(loop_batch, h, fused=False)
        # Discretiser decisions involve only exactly-representable
        # operands: they match the reference bitwise even off-backend.
        assert np.array_equal(updated, reference.updated)
        assert np.array_equal(
            fused_batch.counters.euler_steps,
            reference.counters["euler_steps"],
        )
        # Trajectories hold the JIT tier (libm vs NumPy: 1 ulp/call).
        rtol = 1e-9
        for actual, expected in ((m, reference.m), (b, reference.b),
                                 (extras["m_an"], reference.extras["m_an"])):
            scale = float(np.max(np.abs(expected)))
            assert np.allclose(actual, expected, rtol=rtol, atol=rtol * scale)

    def test_driver_declines_non_modified_langevin(self):
        from repro.backend import numba_backend
        from repro.ja.anhysteretic import LangevinAnhysteretic

        batch = BatchTimelessModel(
            perturbed_parameters(2, seed=1),
            anhysteretic=LangevinAnhysteretic(np.array([900.0, 1100.0])),
        )
        assert numba_backend._timeless_fused_series(batch, drive()) is None
        # and the engine's fused entry falls back to the exact path
        reference = BatchTimelessModel(
            perturbed_parameters(2, seed=1),
            anhysteretic=LangevinAnhysteretic(np.array([900.0, 1100.0])),
        )
        h = drive()
        fused = run_batch_series(batch, h)
        loop = run_batch_series(reference, h, fused=False)
        assert np.array_equal(fused.b, loop.b)

    def test_preisach_loop_matches_reference(self, monkeypatch):
        """Relay switching, the ``updated`` mask and ``switch_events``
        are exact across backends (threshold comparisons on
        exactly-representable operands); trajectories differ only by
        the sequential-vs-pairwise relay sum, far inside the JIT tier."""
        numba_backend = self._interpreted(monkeypatch)
        family = get_family("preisach")
        fused_batch = family.make_batch(3, seed=5)
        loop_batch = family.make_batch(3, seed=5)
        h = drive(2.0)  # 20 kA/m: the preisach drive amplitude
        fused_batch.begin_series(h[0])
        out = numba_backend._preisach_fused_series(fused_batch, h)
        assert out is not None
        m, b, updated, extras = out
        assert extras == {}
        reference = run_batch_series(loop_batch, h, fused=False)
        assert np.array_equal(updated, reference.updated)
        assert np.array_equal(
            fused_batch.counter_totals()["switch_events"],
            reference.counters["switch_events"],
        )
        rtol = 1e-9
        for actual, expected in ((m, reference.m), (b, reference.b)):
            scale = float(np.max(np.abs(expected)))
            assert np.allclose(actual, expected, rtol=rtol, atol=rtol * scale)
        # the applied-field state advanced exactly (driver commit)
        assert np.array_equal(fused_batch.h, loop_batch.h)

    def test_preisach_driver_rejects_non_finite(self, monkeypatch):
        numba_backend = self._interpreted(monkeypatch)
        batch = get_family("preisach").make_batch(2)
        batch.begin_series(0.0)
        with pytest.raises(ParameterError, match="finite"):
            numba_backend._preisach_fused_series(
                batch, np.array([0.0, np.inf])
            )

    def test_time_domain_loop_matches_reference(self, monkeypatch):
        """The dM/dH chain: the ``dh != 0`` activity mask and ``steps``
        are exact, pathology counters agree, trajectories hold the JIT
        tier (here: bitwise up to libm-vs-NumPy transcendentals)."""
        numba_backend = self._interpreted(monkeypatch)
        family = get_family("time-domain")
        fused_batch = family.make_batch(3, seed=5)
        loop_batch = family.make_batch(3, seed=5)
        h = drive()
        fused_batch.begin_series(h[0])
        out = numba_backend._time_domain_fused_series(fused_batch, h)
        assert out is not None
        m, b, updated, extras = out
        assert extras == {}
        reference = run_batch_series(loop_batch, h, fused=False)
        assert np.array_equal(updated, reference.updated)
        totals = fused_batch.counter_totals()
        for key in ("steps", "slope_evaluations"):
            assert np.array_equal(totals[key], reference.counters[key]), key
        assert np.array_equal(
            totals["negative_slope_evaluations"],
            reference.counters["negative_slope_evaluations"],
        )
        rtol = 1e-9
        for actual, expected in ((m, reference.m), (b, reference.b)):
            scale = float(np.max(np.abs(expected)))
            assert np.allclose(actual, expected, rtol=rtol, atol=rtol * scale)

    def test_time_domain_loop_freezes_diverged_lanes(self, monkeypatch):
        """Runaway lanes freeze stickily at their per-lane limit — the
        compiled chain reproduces the reference's pathology accounting,
        not just its healthy trajectories."""
        from repro.core.slope import SlopeGuards

        numba_backend = self._interpreted(monkeypatch)
        params = perturbed_parameters(4, seed=3)
        limits = np.array([0.4, 0.5, 100.0, 0.6])
        fused_batch = BatchTimeDomainModel(
            params, guards=SlopeGuards.none(), divergence_limit=limits
        )
        loop_batch = BatchTimeDomainModel(
            params, guards=SlopeGuards.none(), divergence_limit=limits
        )
        h = waypoint_samples([0.0, 20e3, -20e3, 20e3], 500.0)
        fused_batch.begin_series(h[0])
        m, b, updated, _ = numba_backend._time_domain_fused_series(
            fused_batch, h
        )
        reference = run_batch_series(loop_batch, h, fused=False)
        assert fused_batch.diverged.any()  # the scenario actually bites
        assert np.array_equal(fused_batch.diverged, loop_batch.diverged)
        assert np.array_equal(updated, reference.updated)
        assert np.array_equal(
            fused_batch.counter_totals()["steps"], reference.counters["steps"]
        )

    def test_time_domain_driver_declines_non_modified_langevin(
        self, monkeypatch
    ):
        from repro.ja.anhysteretic import LangevinAnhysteretic

        numba_backend = self._interpreted(monkeypatch)
        batch = BatchTimeDomainModel(
            perturbed_parameters(2, seed=1),
            anhysteretic=LangevinAnhysteretic(np.array([900.0, 1100.0])),
        )
        batch.begin_series(0.0)
        assert numba_backend._time_domain_fused_series(batch, drive()) is None

    def test_backend_registers_drivers_for_all_families(self):
        """The numba backend (when importable) compiles a driver for
        every built-in family; the lookup API resolves them by name."""
        from repro.backend import numba_backend

        backend = numba_backend.build_numba_backend()
        if backend is None:
            backend = ArrayBackend(
                name="stub",
                xp=np,
                exact=False,
                rtol=1e-9,
                fused_series={
                    "timeless": numba_backend._timeless_fused_series,
                    "preisach": numba_backend._preisach_fused_series,
                    "time-domain": numba_backend._time_domain_fused_series,
                },
            )
        assert backend.fused_families == ("preisach", "time-domain", "timeless")
        for name in ("timeless", "preisach", "time-domain"):
            assert callable(backend.fused_driver(name)), name
        assert backend.fused_driver("no-such-family") is None
        # the exact reference backend compiles no drivers at all
        assert NUMPY_BACKEND.fused_families == ()


def test_runner_records_backend_header(tmp_path):
    """The CLI stamps the active backend into every report header, so
    regenerated EXP tables are attributable to a backend."""
    from repro.experiments.registry import ExperimentResult
    from repro.experiments.runner import _write_result

    result = ExperimentResult(experiment_id="EXP-HDR-TEST", title="header")
    result.artifacts = {"extra": "artifact-body"}
    _write_result(result, tmp_path, "numpy")
    report = (tmp_path / "EXP-HDR-TEST.txt").read_text()
    assert report.startswith("# backend: numpy\n")
    assert "EXP-HDR-TEST" in report
    # artefact payloads stay verbatim (downstream parsers read them raw)
    assert (tmp_path / "EXP-HDR-TEST_extra.txt").read_text().startswith(
        "artifact-body"
    )


class TestSelectionSurfaces:
    def test_run_scenario_backend_argument(self):
        batch = get_family("timeless").make_batch(2, backend="numpy")
        result = run_scenario(batch, "major-loop", h_max=5e3, backend="numpy")
        assert batch.backend.name == "numpy"
        assert result.n_cores == 2

    def test_run_scenario_backend_rejected_for_foreign_batch_models(self):
        """A protocol-conforming batch model without the use_backend
        hook gets a clear error, not an AttributeError."""
        with pytest.raises(ScenarioError, match="use_backend"):
            run_scenario(
                FixedDtypeExtrasBatch(n=2),
                "major-loop",
                h_max=10.0,
                backend="numpy",
            )

    def test_run_scenario_backend_rejected_for_scalars(self):
        scalar = get_family("timeless").make_scalar()
        with pytest.raises(ScenarioError, match="no array backend"):
            run_scenario(
                scalar,
                "major-loop",
                h_max=5e3,
                driver_step=100.0,
                backend="numpy",
            )

    def test_ensemble_spec_validates_and_applies_backend(self):
        with pytest.raises(ParameterError, match="unknown array backend"):
            EnsembleSpec(family="timeless", n_cores=2, backend="gpu")
        spec = EnsembleSpec(family="timeless", n_cores=2, backend="numpy")
        assert spec.build_batch().backend.name == "numpy"

    def test_prepare_job_pins_unresolved_spec_backend(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        spec = EnsembleSpec(family="timeless", n_cores=4)
        job = prepare_job(
            spec, DriveSpec(samples=drive()), n_workers=2, min_shard=1
        )
        backends = {shard.ensemble.backend for shard in job.specs}
        assert backends == {"numpy"}

    def test_sharded_run_matches_fused_single_process(self):
        batch = get_family("timeless").make_batch(5, backend="numpy")
        h = drive()
        single = run_batch_series(batch, h)
        sharded = run_sharded(batch, h, n_workers=1, min_shard=1)
        assert np.array_equal(single.m, sharded.m)
        assert np.array_equal(single.b, sharded.b)
        for key in single.counters:
            assert np.array_equal(single.counters[key], sharded.counters[key])
