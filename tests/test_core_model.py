"""Tests for repro.core.model (the TimelessJAModel facade)."""

import numpy as np
import pytest

from repro.constants import MU0
from repro.core.model import TimelessJAModel
from repro.errors import ParameterError
from repro.ja.parameters import PAPER_PARAMETERS


class TestConstruction:
    def test_from_preset(self):
        model = TimelessJAModel.from_preset("date2006-paper", dhmax=25.0)
        assert model.params is PAPER_PARAMETERS
        assert model.dhmax == 25.0

    def test_from_unknown_preset_raises(self):
        with pytest.raises(ParameterError):
            TimelessJAModel.from_preset("unobtainium")

    def test_initial_state_demagnetised(self, fresh_model):
        assert fresh_model.h == 0.0
        assert fresh_model.m == 0.0
        assert fresh_model.b == 0.0

    def test_repr_mentions_preset(self, fresh_model):
        assert "date2006-paper" in repr(fresh_model)


class TestPhysicalUnits:
    def test_m_is_normalised_times_msat(self, fresh_model):
        fresh_model.apply_field(5000.0)
        assert fresh_model.m == pytest.approx(
            fresh_model.m_normalised * PAPER_PARAMETERS.m_sat
        )

    def test_b_definition(self, fresh_model):
        b = fresh_model.apply_field(5000.0)
        expected = MU0 * (fresh_model.h + fresh_model.m)
        assert b == pytest.approx(expected)

    def test_apply_field_returns_b(self, fresh_model):
        returned = fresh_model.apply_field(2000.0)
        assert returned == fresh_model.b

    def test_mu_r_at_zero_field_is_inf(self, fresh_model):
        assert fresh_model.mu_r == float("inf")

    def test_mu_r_large_in_steep_region(self, fresh_model):
        for h in np.arange(100.0, 5000.0, 100.0):
            fresh_model.apply_field(float(h))
        assert fresh_model.mu_r > 10.0


class TestSeriesHelpers:
    def test_apply_field_series_shape(self, fresh_model):
        h = np.linspace(0.0, 5000.0, 100)
        b = fresh_model.apply_field_series(h)
        assert b.shape == (100,)
        assert np.all(np.isfinite(b))

    def test_trace_returns_aligned_arrays(self, fresh_model):
        h_in = np.linspace(0.0, 5000.0, 50)
        h, m, b = fresh_model.trace(h_in)
        assert h.shape == m.shape == b.shape == (50,)
        assert np.allclose(b, MU0 * (h + m))

    def test_series_is_stateful(self, fresh_model):
        up = fresh_model.apply_field_series(np.linspace(0, 10e3, 200))
        down = fresh_model.apply_field_series(np.linspace(10e3, 0, 200))
        # Remanence: B at the end of the descent stays well above zero.
        assert down[-1] > 0.5 * up[-1] - 1.0


class TestReset:
    def test_reset_restores_origin(self, fresh_model):
        fresh_model.apply_field_series(np.linspace(0, 10e3, 100))
        fresh_model.reset()
        assert fresh_model.h == 0.0
        assert fresh_model.m == 0.0
        assert fresh_model.counters.euler_steps == 0

    def test_runs_reproducible_after_reset(self, fresh_model):
        h = np.linspace(0.0, 8000.0, 150)
        first = fresh_model.apply_field_series(h)
        fresh_model.reset()
        second = fresh_model.apply_field_series(h)
        assert np.array_equal(first, second)
