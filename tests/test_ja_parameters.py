"""Tests for repro.ja.parameters."""

import math

import pytest

from repro.errors import ParameterError
from repro.ja.parameters import (
    HARD_STEEL,
    JILES_ATHERTON_1984,
    PAPER_PARAMETERS,
    PRESETS,
    SOFT_FERRITE,
    JAParameters,
    get_preset,
)


class TestPaperValues:
    """The preset must carry the exact numbers printed in the paper."""

    def test_k(self):
        assert PAPER_PARAMETERS.k == 4000.0

    def test_c(self):
        assert PAPER_PARAMETERS.c == 0.1

    def test_m_sat(self):
        assert PAPER_PARAMETERS.m_sat == 1.6e6

    def test_alpha(self):
        assert PAPER_PARAMETERS.alpha == 0.003

    def test_a(self):
        assert PAPER_PARAMETERS.a == 2000.0

    def test_a2(self):
        assert PAPER_PARAMETERS.a2 == 3500.0

    def test_modified_shape_prefers_a2(self):
        assert PAPER_PARAMETERS.modified_shape == 3500.0

    def test_1984_preset_has_no_a2(self):
        assert JILES_ATHERTON_1984.a2 is None
        assert JILES_ATHERTON_1984.modified_shape == 2000.0


class TestValidation:
    def test_negative_m_sat_rejected(self):
        with pytest.raises(ParameterError):
            JAParameters(m_sat=-1.0, a=2000.0, k=4000.0, c=0.1, alpha=0.003)

    def test_zero_k_rejected(self):
        with pytest.raises(ParameterError):
            JAParameters(m_sat=1e6, a=2000.0, k=0.0, c=0.1, alpha=0.003)

    def test_zero_a_rejected(self):
        with pytest.raises(ParameterError):
            JAParameters(m_sat=1e6, a=0.0, k=4000.0, c=0.1, alpha=0.003)

    def test_nan_alpha_rejected(self):
        with pytest.raises(ParameterError):
            JAParameters(
                m_sat=1e6, a=2000.0, k=4000.0, c=0.1, alpha=math.nan
            )

    def test_c_of_one_rejected(self):
        with pytest.raises(ParameterError):
            JAParameters(m_sat=1e6, a=2000.0, k=4000.0, c=1.0, alpha=0.003)

    def test_c_zero_allowed(self):
        params = JAParameters(m_sat=1e6, a=2000.0, k=4000.0, c=0.0, alpha=0.003)
        assert params.c == 0.0

    def test_alpha_zero_allowed(self):
        params = JAParameters(m_sat=1e6, a=2000.0, k=4000.0, c=0.1, alpha=0.0)
        assert params.alpha == 0.0

    def test_negative_a2_rejected(self):
        with pytest.raises(ParameterError):
            JAParameters(
                m_sat=1e6, a=2000.0, k=4000.0, c=0.1, alpha=0.003, a2=-5.0
            )

    def test_infinite_m_sat_rejected(self):
        with pytest.raises(ParameterError):
            JAParameters(
                m_sat=math.inf, a=2000.0, k=4000.0, c=0.1, alpha=0.003
            )


class TestUpdatesAndRoundTrip:
    def test_with_updates_changes_field(self):
        updated = PAPER_PARAMETERS.with_updates(k=5000.0)
        assert updated.k == 5000.0
        assert updated.m_sat == PAPER_PARAMETERS.m_sat

    def test_with_updates_revalidates(self):
        with pytest.raises(ParameterError):
            PAPER_PARAMETERS.with_updates(k=-1.0)

    def test_original_unchanged_by_update(self):
        PAPER_PARAMETERS.with_updates(c=0.5)
        assert PAPER_PARAMETERS.c == 0.1

    def test_dict_round_trip(self):
        rebuilt = JAParameters.from_dict(PAPER_PARAMETERS.as_dict())
        assert rebuilt == PAPER_PARAMETERS

    def test_dict_round_trip_without_a2(self):
        rebuilt = JAParameters.from_dict(JILES_ATHERTON_1984.as_dict())
        assert rebuilt == JILES_ATHERTON_1984

    def test_from_dict_missing_key_raises(self):
        data = PAPER_PARAMETERS.as_dict()
        del data["k"]
        with pytest.raises(ParameterError):
            JAParameters.from_dict(data)

    def test_iter_yields_all_fields(self):
        keys = {key for key, _ in PAPER_PARAMETERS}
        assert keys == {"name", "m_sat", "a", "a2", "k", "c", "alpha"}


class TestPresets:
    def test_registry_contains_all(self):
        assert set(PRESETS) == {
            "date2006-paper",
            "jiles-atherton-1984",
            "soft-ferrite",
            "hard-steel",
        }

    def test_get_preset_by_name(self):
        assert get_preset("date2006-paper") is PAPER_PARAMETERS

    def test_get_unknown_preset_raises_with_known_list(self):
        with pytest.raises(ParameterError, match="date2006-paper"):
            get_preset("nonexistent")

    def test_soft_ferrite_is_softer(self):
        assert SOFT_FERRITE.k < PAPER_PARAMETERS.k

    def test_hard_steel_is_harder(self):
        assert HARD_STEEL.k > PAPER_PARAMETERS.k

    def test_presets_are_frozen(self):
        with pytest.raises(AttributeError):
            PAPER_PARAMETERS.k = 1.0  # type: ignore[misc]
