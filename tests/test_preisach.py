"""Tests for repro.preisach (model + identification)."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.ja.parameters import PAPER_PARAMETERS
from repro.preisach import (
    PreisachModel,
    everett_from_ja,
    identify_from_ja,
    weights_from_everett,
)


def _tiny_model(n=6, h_sat=1000.0):
    """Uniform-weight model for structural tests."""
    nodes = np.linspace(-h_sat, h_sat, n + 1)
    alpha_thr = nodes[1:]
    beta_thr = nodes[:-1]
    weights = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1):
            weights[i, j] = 1.0
    weights /= weights.sum()
    return PreisachModel(weights, alpha_thr, beta_thr, m_sat=1.0e6)


class TestModelStructure:
    def test_relay_count(self):
        model = _tiny_model(n=6)
        # alpha_thr[i] >= beta_thr[j] iff nodes[i+1] >= nodes[j]: j <= i+1.
        assert model.relay_count == sum(min(i + 2, 6) for i in range(6))

    def test_saturation_values(self):
        model = _tiny_model()
        model.saturate(True)
        assert model.m_normalised == pytest.approx(1.0)
        model.saturate(False)
        assert model.m_normalised == pytest.approx(-1.0)

    def test_demagnetised_state_near_zero(self):
        model = _tiny_model(n=10)
        assert abs(model.m_normalised) < 0.2

    def test_negative_weight_rejected(self):
        n = 4
        nodes = np.linspace(-1.0, 1.0, n + 1)
        weights = np.zeros((n, n))
        weights[2, 1] = -1.0
        with pytest.raises(ParameterError):
            PreisachModel(weights, nodes[1:], nodes[:-1], m_sat=1.0)

    def test_invalid_half_plane_weight_rejected(self):
        n = 4
        nodes = np.linspace(-1.0, 1.0, n + 1)
        weights = np.zeros((n, n))
        weights[0, 3] = 1.0  # alpha_thr[0]=nodes[1] < beta_thr[3]=nodes[3]
        with pytest.raises(ParameterError):
            PreisachModel(weights, nodes[1:], nodes[:-1], m_sat=1.0)

    def test_non_monotone_grid_rejected(self):
        n = 4
        nodes = np.linspace(-1.0, 1.0, n + 1)
        bad = nodes[1:].copy()
        bad[2] = bad[1]
        weights = np.eye(n) * 0.25
        with pytest.raises(ParameterError):
            PreisachModel(weights, bad, nodes[:-1], m_sat=1.0)


class TestModelBehaviour:
    def test_saturating_sweep_reaches_saturation(self):
        model = _tiny_model()
        model.apply_field(2000.0)
        assert model.m_normalised == pytest.approx(1.0)

    def test_hysteresis_remanence(self):
        model = _tiny_model()
        model.apply_field(2000.0)
        model.apply_field(0.0)
        assert model.m_normalised > 0.2

    def test_wiping_out_property(self):
        """A monotone excursion in one call equals many sub-steps."""
        model_a = _tiny_model(n=20)
        model_b = _tiny_model(n=20)
        model_a.apply_field(700.0)
        for h in np.linspace(0.0, 700.0, 50):
            model_b.apply_field(float(h))
        assert model_a.m_normalised == model_b.m_normalised

    def test_return_point_memory(self):
        """Closing a minor loop returns exactly to the branch point —
        the Preisach return-point-memory property."""
        model = _tiny_model(n=30)
        model.apply_field(2000.0)
        model.apply_field(-300.0)
        m_branch = model.m_normalised
        model.apply_field(200.0)   # minor excursion up
        model.apply_field(-300.0)  # back to the branch point
        assert model.m_normalised == pytest.approx(m_branch)

    def test_deadband_between_thresholds(self):
        model = _tiny_model(n=4)
        model.apply_field(100.0)
        m_before = model.m_normalised
        model.apply_field(120.0)  # crosses no threshold
        assert model.m_normalised == m_before

    def test_non_finite_field_rejected(self):
        model = _tiny_model()
        with pytest.raises(ParameterError):
            model.apply_field(float("inf"))

    def test_trace_shapes(self):
        model = _tiny_model()
        h, m, b = model.trace(np.linspace(0.0, 500.0, 20))
        assert h.shape == m.shape == b.shape == (20,)


@pytest.fixture(scope="module")
def identified():
    """A cheap identified model shared by the identification tests."""
    return identify_from_ja(
        PAPER_PARAMETERS, n_cells=40, h_sat=20e3, dhmax=100.0
    )


class TestIdentification:
    def test_clipped_mass_small(self, identified):
        _, clipped = identified
        assert clipped < 0.05

    def test_saturation_magnitude(self, identified):
        model, _ = identified
        model.saturate(True)
        # ~0.88 for the paper's parameters at 20 kA/m.
        assert 0.8 < model.m_normalised < 1.0

    def test_everett_map_properties(self):
        everett = everett_from_ja(
            PAPER_PARAMETERS, n_cells=20, h_sat=20e3, dhmax=200.0
        )
        e = everett.values
        n = everett.n_nodes
        # Non-negative, zero on the diagonal, increasing in alpha,
        # decreasing in beta.
        for i in range(n):
            assert e[i, i] == pytest.approx(0.0, abs=5e-3)
            for j in range(i):
                assert e[i, j] >= -1e-6
        assert e[n - 1, 0] > 0.5  # full triangle ~ saturation magnitude

    def test_weights_match_everett_total(self):
        everett = everett_from_ja(
            PAPER_PARAMETERS, n_cells=20, h_sat=20e3, dhmax=200.0
        )
        weights, _, _, clipped = weights_from_everett(everett)
        total = float(np.sum(weights))
        expected = float(everett.values[-1, 0])
        # Total weight telescopes to E(h_sat, -h_sat) up to clipping.
        assert total == pytest.approx(expected, rel=0.1)

    def test_descending_branch_reproduced(self, identified):
        """FORC-family branches (what identification saw) match JA."""
        from repro.analysis.comparison import compare_bh_curves
        from repro.core import TimelessJAModel, run_sweep
        from repro.core.sweep import waypoint_samples

        model, _ = identified
        ja = TimelessJAModel(PAPER_PARAMETERS, dhmax=100.0)
        run_sweep(ja, [0.0, 20e3])
        ja_sweep = run_sweep(ja, [20e3, -20e3], reset=False)
        model.saturate(True)
        model.apply_field(20e3)
        samples = waypoint_samples([20e3, -20e3], 100.0)
        h_p, _, b_p = model.trace(samples)
        distance = compare_bh_curves(ja_sweep.h, ja_sweep.b, h_p, b_p)
        swing = float(ja_sweep.b.max() - ja_sweep.b.min())
        # Cheap grid (n=40; staircase error ~ one cell of switching):
        # within ~15% on the fitted family.  The full-resolution bench
        # (n=160) asserts < 4%.
        assert distance.max_abs / swing < 0.15

    def test_validation(self):
        with pytest.raises(ParameterError):
            everett_from_ja(PAPER_PARAMETERS, n_cells=2)
        with pytest.raises(ParameterError):
            everett_from_ja(PAPER_PARAMETERS, n_cells=10, h_sat=-1.0)
        with pytest.raises(ParameterError):
            everett_from_ja(
                PAPER_PARAMETERS,
                n_cells=10,
                nodes=np.linspace(0, 1, 5),
            )
