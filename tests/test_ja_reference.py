"""Tests for repro.ja.reference (high-accuracy H-domain solution)."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.ja.anhysteretic import make_anhysteretic
from repro.ja.parameters import PAPER_PARAMETERS
from repro.ja.reference import (
    interpolate_on_segment,
    solve_segment,
    solve_waypoints,
)


@pytest.fixture(scope="module")
def anhysteretic():
    return make_anhysteretic(PAPER_PARAMETERS)


class TestSolveSegment:
    def test_endpoints_included(self, anhysteretic):
        h, m = solve_segment(
            PAPER_PARAMETERS, anhysteretic, 0.0, 5000.0, 0.0, samples=50
        )
        assert h[0] == 0.0
        assert h[-1] == 5000.0
        assert len(h) == len(m) == 50

    def test_initial_condition_respected(self, anhysteretic):
        h, m = solve_segment(
            PAPER_PARAMETERS, anhysteretic, 0.0, 1000.0, 0.25, samples=20
        )
        assert m[0] == 0.25

    def test_rising_from_demagnetised_is_monotone(self, anhysteretic):
        _, m = solve_segment(
            PAPER_PARAMETERS, anhysteretic, 0.0, 10e3, 0.0, samples=100
        )
        assert np.all(np.diff(m) >= -1e-12)

    def test_descending_segment(self, anhysteretic):
        h, m = solve_segment(
            PAPER_PARAMETERS, anhysteretic, 10e3, -10e3, 0.8, samples=100
        )
        assert h[0] == 10e3 and h[-1] == -10e3
        assert m[-1] < 0.0  # must reach negative saturation side

    def test_magnetisation_bounded(self, anhysteretic):
        _, m = solve_segment(
            PAPER_PARAMETERS, anhysteretic, 0.0, 50e3, 0.0, samples=100
        )
        assert np.all(np.abs(m) <= 1.0)

    def test_zero_length_segment(self, anhysteretic):
        h, m = solve_segment(
            PAPER_PARAMETERS, anhysteretic, 100.0, 100.0, 0.3
        )
        assert list(h) == [100.0, 100.0]
        assert list(m) == [0.3, 0.3]

    def test_too_few_samples_rejected(self, anhysteretic):
        with pytest.raises(ParameterError):
            solve_segment(
                PAPER_PARAMETERS, anhysteretic, 0.0, 100.0, 0.0, samples=1
            )


class TestSolveWaypoints:
    def test_needs_two_waypoints(self):
        with pytest.raises(ParameterError):
            solve_waypoints(PAPER_PARAMETERS, [0.0])

    def test_segment_bookkeeping(self):
        solution = solve_waypoints(
            PAPER_PARAMETERS, [0.0, 10e3, -10e3, 10e3], samples_per_segment=50
        )
        assert len(solution.segment_starts) == 3
        assert solution.segment_starts[0] == 0

    def test_state_carries_across_turning_points(self):
        solution = solve_waypoints(
            PAPER_PARAMETERS, [0.0, 10e3, -10e3], samples_per_segment=80
        )
        # No jump in m at the junction between segments.
        junction = solution.segment_starts[1]
        delta = abs(solution.m[junction] - solution.m[junction - 1])
        assert delta < 5e-3

    def test_hysteresis_present(self):
        # After a full loop, m at H=0 differs between the descending and
        # ascending branches (remanence).
        solution = solve_waypoints(
            PAPER_PARAMETERS, [0.0, 10e3, -10e3, 10e3], samples_per_segment=200
        )
        starts = list(solution.segment_starts) + [len(solution.h)]
        descending = slice(starts[1], starts[2])
        ascending = slice(starts[2], starts[3])
        m_desc = np.interp(
            0.0, solution.h[descending][::-1], solution.m[descending][::-1]
        )
        m_asc = np.interp(0.0, solution.h[ascending], solution.m[ascending])
        assert m_desc > 0.2
        assert m_asc < -0.2

    def test_b_is_consistent_with_m(self):
        from repro.constants import MU0

        solution = solve_waypoints(
            PAPER_PARAMETERS, [0.0, 5e3], samples_per_segment=30
        )
        reconstructed = MU0 * (
            solution.h + PAPER_PARAMETERS.m_sat * solution.m
        )
        assert np.allclose(solution.b, reconstructed)

    def test_final_state_accessor(self):
        solution = solve_waypoints(
            PAPER_PARAMETERS, [0.0, 5e3], samples_per_segment=30
        )
        h_final, m_final = solution.final_state()
        assert h_final == 5e3
        assert m_final == solution.m[-1]

    def test_unclamped_solution_differs_after_reversal(self):
        clamped = solve_waypoints(
            PAPER_PARAMETERS,
            [0.0, 10e3, 5e3],
            samples_per_segment=100,
            clamp_negative_slope=True,
        )
        raw = solve_waypoints(
            PAPER_PARAMETERS,
            [0.0, 10e3, 5e3],
            samples_per_segment=100,
            clamp_negative_slope=False,
        )
        # The raw model lets m keep *rising* on the falling branch
        # (negative dm/dH), so the trajectories must separate.
        assert not np.allclose(clamped.m, raw.m)


class TestInterpolation:
    def test_interpolate_on_segment(self):
        solution = solve_waypoints(
            PAPER_PARAMETERS, [0.0, 10e3, -10e3], samples_per_segment=100
        )
        h_query = np.array([2500.0, 5000.0])
        values = interpolate_on_segment(solution, 0, h_query)
        assert values.shape == (2,)
        assert 0.0 < values[0] < values[1]

    def test_bad_segment_index_raises(self):
        solution = solve_waypoints(
            PAPER_PARAMETERS, [0.0, 1e3], samples_per_segment=20
        )
        with pytest.raises(ParameterError):
            interpolate_on_segment(solution, 5, np.array([0.0]))
