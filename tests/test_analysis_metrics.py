"""Tests for repro.analysis.metrics."""

import numpy as np
import pytest

from repro.analysis.loops import extract_loops
from repro.analysis.metrics import (
    coercivity,
    loop_area,
    loop_metrics,
    remanence,
)
from repro.errors import AnalysisError


def _rectangle_loop(hc=2.0, br=1.0, n=50):
    """Synthetic rectangular loop: B = +/-br switching at -/+hc.

    Descending branch: B stays +br until H = -hc then drops to -br;
    ascending branch mirrors it.  Gives exact Hc, Br and area 4*hc*br.
    """
    h_desc = np.linspace(3.0, -3.0, n)
    b_desc = np.where(h_desc >= -hc, br, -br)
    h_asc = np.linspace(-3.0, 3.0, n)
    b_asc = np.where(h_asc <= hc, -br, br)
    return np.concatenate([h_desc, h_asc]), np.concatenate([b_desc, b_asc])


class TestCoercivity:
    def test_rectangle_loop_exact(self):
        h, b = _rectangle_loop(hc=2.0)
        assert coercivity(h, b) == pytest.approx(2.0, abs=0.15)

    def test_real_major_loop_in_plausible_range(self, major_loop_sweep):
        loops = extract_loops(major_loop_sweep.h, major_loop_sweep.b)
        hc = coercivity(loops[0].h, loops[0].b)
        # For the paper's parameters Hc sits in the low-kA/m range.
        assert 2000.0 < hc < 5000.0

    def test_no_crossing_raises(self):
        h = np.linspace(0.0, 1.0, 10)
        b = np.ones(10)
        with pytest.raises(AnalysisError):
            coercivity(h, b)


class TestRemanence:
    def test_rectangle_loop_exact(self):
        h, b = _rectangle_loop(br=1.25)
        assert remanence(h, b) == pytest.approx(1.25)

    def test_real_major_loop_positive(self, major_loop_sweep):
        loops = extract_loops(major_loop_sweep.h, major_loop_sweep.b)
        br = remanence(loops[0].h, loops[0].b)
        assert 0.5 < br < 2.0

    def test_branch_never_crossing_zero_raises(self):
        h = np.linspace(1.0, 2.0, 10)
        b = np.linspace(0.5, 1.0, 10)
        with pytest.raises(AnalysisError):
            remanence(h, b)


class TestLoopArea:
    def test_rectangle_area(self):
        h, b = _rectangle_loop(hc=2.0, br=1.0, n=500)
        assert loop_area(h, b) == pytest.approx(8.0, rel=0.02)

    def test_unit_square(self):
        h = np.array([0.0, 1.0, 1.0, 0.0])
        b = np.array([0.0, 0.0, 1.0, 1.0])
        assert loop_area(h, b) == pytest.approx(1.0)

    def test_traversal_direction_irrelevant(self):
        h = np.array([0.0, 1.0, 1.0, 0.0])
        b = np.array([0.0, 0.0, 1.0, 1.0])
        assert loop_area(h[::-1], b[::-1]) == pytest.approx(1.0)

    def test_degenerate_line_zero_area(self):
        h = np.linspace(0.0, 1.0, 10)
        assert loop_area(h, 2.0 * h) == pytest.approx(0.0, abs=1e-12)

    def test_too_few_samples_rejected(self):
        with pytest.raises(AnalysisError):
            loop_area(np.array([0.0, 1.0, 2.0]), np.array([0.0, 1.0, 0.0]))

    def test_hysteresis_loss_positive(self, major_loop_sweep):
        loops = extract_loops(major_loop_sweep.h, major_loop_sweep.b)
        assert loop_area(loops[0].h, loops[0].b) > 1e3


class TestLoopMetricsBundle:
    def test_bundle_consistency(self, major_loop_sweep):
        loops = extract_loops(major_loop_sweep.h, major_loop_sweep.b)
        metrics = loop_metrics(loops[0].h, loops[0].b)
        assert metrics.coercivity == pytest.approx(
            coercivity(loops[0].h, loops[0].b)
        )
        assert metrics.remanence == pytest.approx(
            remanence(loops[0].h, loops[0].b)
        )
        assert metrics.h_max == pytest.approx(10e3)
        assert metrics.b_max > metrics.remanence

    def test_as_dict_keys(self, major_loop_sweep):
        loops = extract_loops(major_loop_sweep.h, major_loop_sweep.b)
        data = loop_metrics(loops[0].h, loops[0].b).as_dict()
        assert set(data) == {"coercivity", "remanence", "b_max", "h_max", "area"}
