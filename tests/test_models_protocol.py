"""Generic protocol conformance: every registered model family passes.

The suite never names a model class: it pulls families from the
registry and asserts the protocol contract — step/peek semantics,
snapshot/restore exactness, saturation symmetry, batch/scalar lane
equivalence — generically.  A new family that registers itself is
covered with zero new test code.

The batch-lane and fused-sweep equivalence checks run per registered
array backend and are **tiered**: exact backends (numpy) are held to
the bitwise contract, JIT backends (numba, present only when
importable) to their declared ``rtol``.  The same tiering applies to
whatever backend the environment selects (``REPRO_BACKEND``), so the
suite passes unchanged on the numba CI leg.
"""

import numpy as np
import pytest

from repro.backend import get_backend, list_backends
from repro.batch.sweep import run_batch_series
from repro.core.sweep import waypoint_samples
from repro.models import (
    BatchHysteresisModel,
    HysteresisModel,
    get_family,
    list_families,
    updated_mask,
)

FAMILY_NAMES = [family.name for family in list_families()]
BACKEND_NAMES = [backend.name for backend in list_backends()]


def assert_tiered_equal(actual, reference, backend, label: str) -> None:
    """Bitwise on exact backends, ``rtol``-tiered on JIT backends."""
    if backend is None or backend.exact:
        assert np.array_equal(actual, reference, equal_nan=True), label
        return
    scale = float(np.nanmax(np.abs(reference))) if np.size(reference) else 0.0
    assert np.allclose(
        actual,
        reference,
        rtol=backend.rtol,
        atol=backend.rtol * max(scale, 1.0),
        equal_nan=True,
    ), label


def drive_samples(family, cycles: int = 1) -> np.ndarray:
    """A major-loop walk scaled to the family's drive amplitude."""
    h = family.h_scale
    waypoints = [0.0, h]
    for _ in range(cycles):
        waypoints.extend([-h, h])
    return waypoint_samples(waypoints, h / 40.0)


def test_registry_covers_all_three_families():
    assert {"timeless", "preisach", "time-domain"} <= set(FAMILY_NAMES)


@pytest.mark.parametrize("name", FAMILY_NAMES)
class TestScalarConformance:
    def test_structural_protocol(self, name):
        model = get_family(name).make_scalar()
        assert isinstance(model, HysteresisModel)

    def test_step_and_peek_semantics(self, name):
        """apply_field returns B and moves h; reading properties does
        not perturb the trajectory."""
        family = get_family(name)
        stepped = family.make_scalar()
        untouched = family.make_scalar()
        samples = drive_samples(family)
        for h in samples:
            b = stepped.apply_field(float(h))
            assert b == stepped.b  # peek is stable
            assert stepped.h == float(h)
            # peek repeatedly; must not change anything
            _ = (stepped.m, stepped.m_normalised, stepped.b, stepped.h)
        b_untouched = untouched.apply_field_series(list(samples))
        assert b_untouched[-1] == stepped.b

    def test_series_matches_scalar_stepping(self, name):
        family = get_family(name)
        a = family.make_scalar()
        b = family.make_scalar()
        samples = drive_samples(family)
        series = a.apply_field_series(list(samples))
        looped = np.array([b.apply_field(float(h)) for h in samples])
        assert np.array_equal(series, looped, equal_nan=True)

    def test_trace_shapes_and_consistency(self, name):
        family = get_family(name)
        model = family.make_scalar()
        samples = drive_samples(family)
        h, m, b = model.trace(samples)
        assert h.shape == m.shape == b.shape == samples.shape
        assert b[-1] == model.b
        assert m[-1] == model.m

    def test_snapshot_restore_is_exact(self, name):
        """A restored model retraces the excursion bitwise."""
        family = get_family(name)
        model = family.make_scalar()
        samples = drive_samples(family)
        split = len(samples) // 2
        model.apply_field_series(list(samples[:split]))
        snap = model.snapshot()
        first = model.apply_field_series(list(samples[split:]))
        model.restore(snap)
        second = model.apply_field_series(list(samples[split:]))
        assert np.array_equal(first, second, equal_nan=True)

    def test_reset_returns_to_initial_state(self, name):
        family = get_family(name)
        model = family.make_scalar()
        fresh = family.make_scalar()
        model.apply_field_series(list(drive_samples(family)))
        model.reset()
        samples = drive_samples(family, cycles=2)
        assert np.array_equal(
            model.apply_field_series(list(samples)),
            fresh.apply_field_series(list(samples)),
            equal_nan=True,
        )

    def test_saturation_symmetry(self, name):
        """Driving to +/-Hsat yields (near-)opposite magnetisations."""
        family = get_family(name)
        h = family.h_scale
        positive = family.make_scalar()
        negative = family.make_scalar()
        positive.apply_field_series(list(waypoint_samples([0.0, h], h / 40.0)))
        negative.apply_field_series(list(waypoint_samples([0.0, -h], h / 40.0)))
        m_up = positive.m_normalised
        m_down = negative.m_normalised
        assert m_up > 0.0 and m_down < 0.0
        assert m_up + m_down == pytest.approx(0.0, abs=0.05 * abs(m_up))


@pytest.mark.parametrize("name", FAMILY_NAMES)
class TestBatchConformance:
    def test_structural_protocol(self, name):
        batch = get_family(name).make_batch(3)
        assert isinstance(batch, BatchHysteresisModel)
        assert batch.family == name
        assert batch.n_cores == 3
        assert batch.driver_step_hint() > 0.0

    def test_lanes_equal_scalar_models(self, name):
        """The defining batch property, asserted per family — bitwise
        on exact backends, rtol-tiered when the environment selects a
        JIT backend (``make_pair`` resolves ``REPRO_BACKEND``)."""
        family = get_family(name)
        batch, scalars = family.make_pair(4)
        backend = getattr(batch, "backend", None)
        samples = drive_samples(family)
        result = run_batch_series(batch, samples, reset=True)
        for i, scalar in enumerate(scalars):
            scalar.reset()
            b_ref = scalar.apply_field_series(list(samples))
            assert_tiered_equal(
                result.b[:, i],
                b_ref,
                backend,
                f"{name} lane {i} diverged from its scalar model",
            )

    def test_counters_and_extras_shapes(self, name):
        family = get_family(name)
        batch = family.make_batch(3)
        samples = drive_samples(family)
        result = run_batch_series(batch, samples, reset=True)
        assert result.family == name
        assert result.updated.shape == result.m.shape
        for key, value in result.counters.items():
            assert value.shape == (3,), key
        for key, value in result.extras.items():
            assert value.shape == result.m.shape, key
        lane = result.lane(1)
        assert set(lane.counters) == set(result.counters)
        assert len(lane) == len(samples)

    def test_batch_snapshot_restore_is_exact(self, name):
        family = get_family(name)
        batch = family.make_batch(3)
        samples = drive_samples(family)
        split = len(samples) // 2
        run_batch_series(batch, samples[:split], reset=True)
        snap = batch.snapshot()
        first = run_batch_series(batch, samples[split:], reset=False)
        batch.restore(snap)
        second = run_batch_series(batch, samples[split:], reset=False)
        assert np.array_equal(first.b, second.b, equal_nan=True)
        for key in first.counters:
            assert np.array_equal(first.counters[key], second.counters[key])

    def test_step_returns_updated_mask(self, name):
        family = get_family(name)
        batch = family.make_batch(2)
        batch.begin_series(0.0)
        out = batch.step(family.h_scale / 2.0)
        mask = updated_mask(out, batch.n_cores)
        assert mask.shape == (2,) and mask.dtype == np.bool_


@pytest.mark.parametrize("backend_name", BACKEND_NAMES)
@pytest.mark.parametrize("name", FAMILY_NAMES)
class TestBackendSweepConformance:
    """The fused-sweep and lane contracts, per family x registered
    backend: bitwise for exact backends, rtol-tiered for JIT backends.
    A newly registered backend is covered with zero new test code."""

    def test_fused_matches_per_sample_sweep(self, name, backend_name):
        """run_batch_series via step_series == the per-sample loop."""
        family = get_family(name)
        backend = get_backend(backend_name)
        fused_batch = family.make_batch(4, backend=backend_name)
        loop_batch = family.make_batch(4, backend=backend_name)
        samples = drive_samples(family)
        fused = run_batch_series(fused_batch, samples)
        # The per-sample loop always steps through the exact numpy
        # kernel path, so it doubles as the cross-backend reference.
        loop = run_batch_series(loop_batch, samples, fused=False)
        for channel in ("m", "b"):
            assert_tiered_equal(
                getattr(fused, channel),
                getattr(loop, channel),
                backend,
                f"{name}/{backend_name} fused {channel} diverged",
            )
        assert np.array_equal(fused.updated, loop.updated)
        assert sorted(fused.extras) == sorted(loop.extras)
        for key in loop.extras:
            assert_tiered_equal(
                fused.extras[key],
                loop.extras[key],
                backend,
                f"{name}/{backend_name} fused extras {key!r} diverged",
            )
        assert sorted(fused.counters) == sorted(loop.counters)
        if backend.exact:
            for key in loop.counters:
                assert np.array_equal(fused.counters[key], loop.counters[key])
        else:
            # Threshold decisions on exactly-representable operands
            # (discretiser/switching activity) stay exact even on JIT
            # backends; guard counters may flip at a slope's zero
            # crossing, so they are only checked for presence above.
            for key in ("euler_steps", "switch_events", "steps"):
                if key in loop.counters:
                    assert np.array_equal(
                        fused.counters[key], loop.counters[key]
                    ), key

    def test_fused_lanes_match_scalar_models(self, name, backend_name):
        """Each fused lane reproduces its scalar model (tiered)."""
        family = get_family(name)
        backend = get_backend(backend_name)
        batch, scalars = family.make_pair(3, backend=backend_name)
        samples = drive_samples(family)
        result = run_batch_series(batch, samples, reset=True)
        for i, scalar in enumerate(scalars):
            scalar.reset()
            b_ref = scalar.apply_field_series(list(samples))
            assert_tiered_equal(
                result.b[:, i],
                b_ref,
                backend,
                f"{name}/{backend_name} lane {i} diverged from scalar",
            )

    def test_fused_continuation_matches_loop(self, name, backend_name):
        """A reset=False continuation advances fused state exactly as
        per-sample stepping advances it (same backend both sides)."""
        family = get_family(name)
        backend = get_backend(backend_name)
        fused_batch = family.make_batch(3, backend=backend_name)
        loop_batch = family.make_batch(3, backend=backend_name)
        samples = drive_samples(family)
        split = len(samples) // 2
        run_batch_series(fused_batch, samples[:split])
        run_batch_series(loop_batch, samples[:split], fused=False)
        second_fused = run_batch_series(
            fused_batch, samples[split:], reset=False
        )
        second_loop = run_batch_series(
            loop_batch, samples[split:], reset=False, fused=False
        )
        assert_tiered_equal(
            second_fused.b,
            second_loop.b,
            backend,
            f"{name}/{backend_name} continuation diverged",
        )
        if backend.exact:
            for key in second_loop.counters:
                assert np.array_equal(
                    second_fused.counters[key], second_loop.counters[key]
                ), key


class LazyCounterBatch:
    """Minimal conforming batch model whose counter set changes across a
    run: ``late`` appears only after the first step and ``prepared``
    disappears — the shapes the executor's counter differencing must
    survive (regression for the KeyError on lazily registered keys)."""

    family = "lazy-test"

    def __init__(self, n: int = 3) -> None:
        self._n = n
        self._h = np.zeros(n)
        self._steps = np.zeros(n, dtype=np.int64)
        self._stepped = False

    @property
    def n_cores(self) -> int:
        return self._n

    @property
    def h(self) -> np.ndarray:
        return self._h.copy()

    @property
    def m(self) -> np.ndarray:
        return self._h * 0.5

    @property
    def m_normalised(self) -> np.ndarray:
        return self.m

    @property
    def b(self) -> np.ndarray:
        return self._h * 2.0

    def begin_series(self, h_initial) -> None:
        self._h = np.broadcast_to(
            np.asarray(h_initial, dtype=float), (self._n,)
        ).copy()

    def step(self, h_new) -> np.ndarray:
        self._h = np.broadcast_to(
            np.asarray(h_new, dtype=float), (self._n,)
        ).copy()
        self._steps += 1
        self._stepped = True
        return np.ones(self._n, dtype=bool)

    def counter_totals(self) -> dict:
        totals = {"steps": self._steps.copy()}
        if self._stepped:
            totals["late"] = self._steps.copy()
        else:
            totals["prepared"] = np.ones(self._n, dtype=np.int64)
        return totals

    def probe_extras(self) -> dict:
        return {}

    def driver_step_hint(self) -> float:
        return 1.0

    def snapshot(self):
        return (self._h.copy(), self._steps.copy(), self._stepped)

    def restore(self, snap) -> None:
        self._h, self._steps, self._stepped = (
            snap[0].copy(),
            snap[1].copy(),
            snap[2],
        )


def test_counter_deltas_survive_lazy_registration():
    """run_batch_series differences counters over the union of keys:
    lazily registered counters appear (full total), keys present only
    before the run surface as negative deltas instead of KeyErrors or
    silent drops."""
    batch = LazyCounterBatch(n=3)
    result = run_batch_series(batch, np.array([1.0, 2.0, 3.0]))
    assert set(result.counters) == {"steps", "late", "prepared"}
    assert np.array_equal(result.counters["steps"], np.full(3, 3))
    assert np.array_equal(result.counters["late"], np.full(3, 3))
    assert np.array_equal(result.counters["prepared"], np.full(3, -1))
