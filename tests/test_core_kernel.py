"""Tests for repro.core.kernel (the pure step-kernel layer)."""

import numpy as np
import pytest

from repro.core.kernel import (
    StepInputs,
    discretiser_accepts,
    refresh_algebraic,
    step_kernel,
)
from repro.core.slope import SlopeGuards
from repro.ja.anhysteretic import make_anhysteretic
from repro.ja.parameters import PAPER_PARAMETERS


@pytest.fixture(scope="module")
def anhysteretic():
    return make_anhysteretic(PAPER_PARAMETERS)


class TestDiscretiserAccepts:
    def test_strict_comparison_is_published_default(self):
        assert not discretiser_accepts(50.0, 50.0)
        assert discretiser_accepts(50.0 + 1e-9, 50.0)
        assert discretiser_accepts(-75.0, 50.0)

    def test_accept_equal_variant(self):
        assert discretiser_accepts(50.0, 50.0, accept_equal=True)

    def test_per_lane_accept_equal(self):
        dh = np.array([50.0, 50.0])
        flags = np.array([False, True])
        accepted = discretiser_accepts(dh, 50.0, accept_equal=flags)
        assert accepted.tolist() == [False, True]


class TestPurity:
    def test_inputs_never_mutated(self, anhysteretic):
        arr = np.array([10.0, 20.0])
        inputs = StepInputs(
            h_new=np.array([100.0, 200.0]),
            h_accepted=np.zeros(2),
            m_irr=arr,
            m_total=arr.copy(),
            delta=np.zeros(2),
        )
        step_kernel(inputs, PAPER_PARAMETERS, anhysteretic, 50.0)
        assert inputs.m_irr.tolist() == [10.0, 20.0]
        assert inputs.h_accepted.tolist() == [0.0, 0.0]

    def test_deterministic(self, anhysteretic):
        inputs = StepInputs(
            h_new=75.0, h_accepted=0.0, m_irr=0.0, m_total=0.0, delta=0.0
        )
        a = step_kernel(inputs, PAPER_PARAMETERS, anhysteretic, 50.0)
        b = step_kernel(inputs, PAPER_PARAMETERS, anhysteretic, 50.0)
        assert a == b


class TestScalarSemantics:
    def test_below_threshold_keeps_irreversible_state(self, anhysteretic):
        out = step_kernel(
            StepInputs(h_new=25.0, h_accepted=0.0, m_irr=0.0, m_total=0.0),
            PAPER_PARAMETERS,
            anhysteretic,
            50.0,
        )
        assert not out.accepted
        assert out.m_irr == 0.0
        assert out.m_rev > 0.0  # algebraic refresh always responds
        assert out.h_accepted == 0.0

    def test_above_threshold_fires_euler_step(self, anhysteretic):
        out = step_kernel(
            StepInputs(h_new=75.0, h_accepted=0.0, m_irr=0.0, m_total=0.0),
            PAPER_PARAMETERS,
            anhysteretic,
            50.0,
        )
        assert out.accepted
        assert out.m_irr > 0.0
        assert out.h_accepted == 75.0
        assert out.delta == 1.0
        assert out.m_total == out.m_rev + out.m_irr

    def test_unaccepted_event_carries_delta_through(self, anhysteretic):
        out = step_kernel(
            StepInputs(
                h_new=10.0, h_accepted=0.0, m_irr=0.1, m_total=0.1, delta=-1.0
            ),
            PAPER_PARAMETERS,
            anhysteretic,
            50.0,
        )
        assert out.delta == -1.0


class TestScalarArrayParity:
    def test_array_lanes_match_scalar_calls_bitwise(self, anhysteretic):
        rng = np.random.default_rng(11)
        n = 16
        h_new = rng.uniform(-9000.0, 9000.0, n)
        h_accepted = h_new - rng.uniform(-150.0, 150.0, n)
        m_irr = rng.uniform(-0.5, 0.5, n)
        m_total = m_irr + rng.uniform(-0.2, 0.2, n)
        delta = rng.choice([-1.0, 0.0, 1.0], n)
        batch = step_kernel(
            StepInputs(
                h_new=h_new,
                h_accepted=h_accepted,
                m_irr=m_irr,
                m_total=m_total,
                delta=delta,
            ),
            PAPER_PARAMETERS,
            anhysteretic,
            50.0,
        )
        for i in range(n):
            scalar = step_kernel(
                StepInputs(
                    h_new=float(h_new[i]),
                    h_accepted=float(h_accepted[i]),
                    m_irr=float(m_irr[i]),
                    m_total=float(m_total[i]),
                    delta=float(delta[i]),
                ),
                PAPER_PARAMETERS,
                anhysteretic,
                50.0,
            )
            assert batch.accepted[i] == scalar.accepted
            assert batch.m_irr[i] == scalar.m_irr
            assert batch.m_rev[i] == scalar.m_rev
            assert batch.m_an[i] == scalar.m_an
            assert batch.m_total[i] == scalar.m_total
            assert batch.h_accepted[i] == scalar.h_accepted
            assert batch.delta[i] == scalar.delta

    def test_refresh_algebraic_parity(self, anhysteretic):
        h = np.linspace(-8000.0, 8000.0, 33)
        m = np.linspace(-0.9, 0.9, 33)
        m_an_arr, m_rev_arr = refresh_algebraic(
            PAPER_PARAMETERS, anhysteretic, h, m
        )
        for i in range(len(h)):
            m_an, m_rev = refresh_algebraic(
                PAPER_PARAMETERS, anhysteretic, float(h[i]), float(m[i])
            )
            assert m_an_arr[i] == m_an
            assert m_rev_arr[i] == m_rev


class TestGuardBookkeeping:
    def test_masked_lanes_report_no_guard_activity(self, anhysteretic):
        # Lane 0 below threshold, lane 1 above: only lane 1 may count.
        out = step_kernel(
            StepInputs(
                h_new=np.array([10.0, 500.0]),
                h_accepted=np.zeros(2),
                m_irr=np.zeros(2),
                m_total=np.zeros(2),
                delta=np.zeros(2),
            ),
            PAPER_PARAMETERS,
            anhysteretic,
            50.0,
            guards=SlopeGuards(),
        )
        assert out.accepted.tolist() == [False, True]
        assert not out.clamped[0]
        assert not out.dropped[0]
        assert out.dm[0] == 0.0
