"""Tests for repro.core.inverse (flux-driven model)."""

import numpy as np
import pytest

from repro.core.inverse import FluxDrivenJAModel
from repro.core.model import TimelessJAModel
from repro.errors import ParameterError
from repro.ja.parameters import PAPER_PARAMETERS


@pytest.fixture()
def inverse():
    return FluxDrivenJAModel(PAPER_PARAMETERS, dbmax=0.01, dhmax=25.0)


class TestConstruction:
    def test_invalid_dbmax(self):
        with pytest.raises(ParameterError):
            FluxDrivenJAModel(PAPER_PARAMETERS, dbmax=0.0)

    def test_invalid_tolerance(self):
        with pytest.raises(ParameterError):
            FluxDrivenJAModel(PAPER_PARAMETERS, tolerance=2.0)

    def test_initial_state(self, inverse):
        assert inverse.h == 0.0
        assert inverse.b == 0.0


class TestSingleTargets:
    def test_positive_target_needs_positive_field(self, inverse):
        h = inverse.apply_flux_density(0.5)
        assert h > 0.0
        assert inverse.b == pytest.approx(0.5, abs=inverse.dbmax)

    def test_negative_target(self, inverse):
        h = inverse.apply_flux_density(-0.5)
        assert h < 0.0
        assert inverse.b == pytest.approx(-0.5, abs=inverse.dbmax)

    def test_below_dbmax_is_reversible_only(self, inverse):
        h = inverse.apply_flux_density(0.5 * inverse.dbmax)
        assert h == 0.0  # no event, no commit
        assert inverse.solves == 0

    def test_non_finite_target_rejected(self, inverse):
        with pytest.raises(ParameterError):
            inverse.apply_flux_density(float("nan"))

    def test_magnetisation_stays_physical(self, inverse):
        for b in np.linspace(0.0, 1.5, 100):
            inverse.apply_flux_density(float(b))
            assert abs(inverse.m) <= PAPER_PARAMETERS.m_sat * 1.01

    def test_reset(self, inverse):
        inverse.apply_flux_density(1.0)
        inverse.reset()
        assert inverse.h == 0.0
        assert inverse.solves == 0


class TestTrajectories:
    def test_round_trip_with_forward_model(self, inverse):
        b_targets = 1.2 * np.sin(np.linspace(0.0, 4.0 * np.pi, 500))
        h_out = inverse.apply_flux_series(b_targets)
        forward = TimelessJAModel(
            PAPER_PARAMETERS, dhmax=25.0, accept_equal=True
        )
        b_round = forward.apply_field_series(h_out)
        # Round trip within a few flux quanta of the imposed waveform.
        assert np.max(np.abs(b_round - b_targets)) < 4.0 * inverse.dbmax

    def test_hysteresis_in_recovered_field(self, inverse):
        """H at the B=0 crossings alternates around +/-Hc."""
        b_targets = 1.2 * np.sin(np.linspace(0.0, 4.0 * np.pi, 500))
        h_out = inverse.apply_flux_series(b_targets)
        crossing_indices = np.where(np.diff(np.sign(b_targets)))[0][1:]
        crossings = h_out[crossing_indices]
        assert np.all(np.abs(np.abs(crossings) - 3200.0) < 800.0)
        assert np.any(crossings > 0) and np.any(crossings < 0)

    def test_field_range_physical(self, inverse):
        b_targets = 1.2 * np.sin(np.linspace(0.0, 4.0 * np.pi, 500))
        h_out = inverse.apply_flux_series(b_targets)
        # Sustaining +/-1.2 T in this material needs single-digit kA/m —
        # the non-physical-root failure mode would show megaamps/m.
        assert np.max(np.abs(h_out)) < 20e3

    def test_saturation_demands_diverging_field(self, inverse):
        h_near = inverse.apply_flux_density(1.4)
        h_deep = inverse.apply_flux_density(1.9)
        # Past the knee each extra tesla costs disproportionately more
        # field (the anhysteretic saturates): 0.5 T more flux needs
        # over 3x the field here.
        assert h_deep > 3.0 * h_near

    def test_solver_statistics_accumulate(self, inverse):
        inverse.apply_flux_series(np.linspace(0.0, 1.0, 50))
        assert inverse.solves > 0
        assert inverse.solve_iterations >= inverse.solves
