"""Integration tests: the paper's claims, end to end.

One test per claim, at moderate resolution so the suite stays fast but
the shape conclusions (who wins, by what rough factor) are the same as
the full benchmark runs recorded in EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.analysis.comparison import compare_bh_curves
from repro.analysis.loops import extract_loops
from repro.analysis.metrics import loop_metrics
from repro.analysis.stability import audit_trajectory
from repro.core.model import TimelessJAModel
from repro.core.sweep import run_sweep, run_sweep_dense, waypoint_samples
from repro.hdl.systemc import run_systemc_sweep
from repro.hdl.vhdlams import (
    IntegJAArchitecture,
    SolverOptions,
    TimelessJAArchitecture,
    TransientSolver,
)
from repro.ja.parameters import PAPER_PARAMETERS
from repro.ja.reference import solve_waypoints
from repro.waveforms import TriangularWave
from repro.waveforms.sweeps import fig1_waypoints, major_loop_waypoints


class TestFigureOne:
    """Figure 1: B-H curve with non-biased minor loops."""

    @pytest.fixture(scope="class")
    def trace(self):
        waypoints = fig1_waypoints(minor_loop_count=4)
        samples = waypoint_samples(waypoints, 25.0)
        return run_systemc_sweep(PAPER_PARAMETERS, samples, dhmax=100.0)

    def test_axes_match_figure(self, trace):
        assert trace.h.max() == pytest.approx(10e3)
        assert trace.h.min() == pytest.approx(-10e3)
        assert np.abs(trace.b).max() < 2.0  # figure's B axis bound

    def test_loop_structure(self, trace):
        loops = extract_loops(trace.h, trace.b)
        assert len(loops) >= 5  # one major + four minor

    def test_minor_loops_nest(self, trace):
        from repro.analysis.loops import loop_contains

        loops = extract_loops(trace.h, trace.b)
        major = loops[0]
        assert loop_contains(major, loops[-1], tolerance=2e-2)

    def test_no_numerical_failures(self, trace):
        audit = audit_trajectory(trace.h, trace.b)
        assert audit.finite
        assert audit.acceptable()


class TestEquivalenceClaim:
    """'Both implementations produce virtually identical results.'"""

    def test_three_way_agreement(self):
        dhmax = 100.0
        waypoints = major_loop_waypoints(10e3, cycles=1)
        samples = waypoint_samples(waypoints, 25.0)
        systemc = run_systemc_sweep(PAPER_PARAMETERS, samples, dhmax=dhmax)

        model = TimelessJAModel(PAPER_PARAMETERS, dhmax=dhmax)
        functional = run_sweep(model, waypoints, driver_step=25.0)

        wave = TriangularWave(10e3, 10e-3)
        arch = TimelessJAArchitecture(PAPER_PARAMETERS, wave, dhmax=dhmax)
        transient = TransientSolver(
            arch.system, SolverOptions(dt_initial=1e-6, dt_max=6.25e-6)
        ).run(t_stop=12.5e-3)
        h_ams = transient.of(arch.q_h)
        b_ams = transient.of(arch.q_b)

        swing = float(systemc.b.max() - systemc.b.min())
        for h2, b2 in [(functional.h, functional.b), (h_ams, b_ams)]:
            distance = compare_bh_curves(systemc.h, systemc.b, h2, b2)
            assert distance.max_abs / swing < 0.02


class TestStabilityClaim:
    """Timeless completes where the 'INTEG formulation breaks down."""

    def test_contrast(self):
        wave = TriangularWave(10e3, 10e-3)

        timeless = TimelessJAArchitecture(PAPER_PARAMETERS, wave, dhmax=100.0)
        result_t = TransientSolver(
            timeless.system, SolverOptions(dt_initial=1e-6, dt_max=5e-5)
        ).run(t_stop=12.5e-3)
        assert not result_t.report.gave_up
        assert result_t.report.newton_failures == 0

        integ = IntegJAArchitecture(PAPER_PARAMETERS, wave)
        result_i = TransientSolver(
            integ.system, SolverOptions(dt_initial=1e-6, dt_max=5e-5)
        ).run(t_stop=12.5e-3)
        assert result_i.report.newton_failures > 0
        assert integ.negative_slope_evaluations > 0


class TestMinorLoopClaim:
    """'Minor loops ... various sizes and in different positions.'"""

    @pytest.mark.parametrize(
        "bias,amplitude",
        [(0.0, 1000.0), (0.0, 6000.0), (3000.0, 1000.0), (6000.0, 2000.0)],
    )
    def test_grid_point_is_stable(self, bias, amplitude):
        from repro.waveforms.sweeps import biased_minor_loop_waypoints

        model = TimelessJAModel(PAPER_PARAMETERS, dhmax=100.0)
        sweep = run_sweep(
            model, biased_minor_loop_waypoints(bias, amplitude, cycles=5)
        )
        audit = audit_trajectory(sweep.h, sweep.b)
        assert audit.finite
        assert audit.acceptable()


class TestAccuracyClaim:
    """Forward Euler in H: error shrinks ~linearly with dhmax."""

    def test_first_order_convergence(self):
        waypoints = major_loop_waypoints(10e3, cycles=1)
        reference = solve_waypoints(
            PAPER_PARAMETERS, waypoints, samples_per_segment=120
        )
        errors = []
        steps = (400.0, 100.0, 25.0)
        for dhmax in steps:
            model = TimelessJAModel(
                PAPER_PARAMETERS, dhmax=dhmax, accept_equal=True
            )
            sweep = run_sweep_dense(model, waypoints)
            distance = compare_bh_curves(
                sweep.h, sweep.b, reference.h, reference.b
            )
            errors.append(distance.max_abs)
        order = np.polyfit(np.log(steps), np.log(errors), 1)[0]
        assert 0.7 < order < 1.4

    def test_moderate_dhmax_within_one_percent(self):
        waypoints = major_loop_waypoints(10e3, cycles=1)
        reference = solve_waypoints(
            PAPER_PARAMETERS, waypoints, samples_per_segment=120
        )
        model = TimelessJAModel(PAPER_PARAMETERS, dhmax=25.0, accept_equal=True)
        sweep = run_sweep_dense(model, waypoints)
        distance = compare_bh_curves(
            sweep.h, sweep.b, reference.h, reference.b
        )
        swing = float(reference.b.max() - reference.b.min())
        assert distance.max_abs / swing < 0.01


class TestFigureMetricsStable:
    """Regression pin: the measured Figure 1 metrics (also recorded in
    EXPERIMENTS.md) stay where they were measured."""

    def test_metrics_regression(self):
        model = TimelessJAModel(PAPER_PARAMETERS, dhmax=50.0)
        sweep = run_sweep(model, major_loop_waypoints(10e3, cycles=1))
        major = extract_loops(sweep.h, sweep.b)[0]
        metrics = loop_metrics(major.h, major.b)
        assert metrics.coercivity == pytest.approx(3305.0, rel=0.05)
        assert metrics.remanence == pytest.approx(1.23, rel=0.05)
        assert metrics.b_max == pytest.approx(1.48, rel=0.05)
