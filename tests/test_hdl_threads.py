"""Tests for repro.hdl.kernel.threads (SC_THREAD style processes)."""

import pytest

from repro.errors import SchedulingError
from repro.hdl.kernel import ClockGenerator, Scheduler, SimTime, ThreadProcess


@pytest.fixture()
def scheduler():
    return Scheduler()


class TestThreadProcess:
    def test_runs_to_first_yield_at_time_zero(self, scheduler):
        log = []

        def body():
            log.append("start")
            yield SimTime.ns(1)
            log.append("after-wait")

        ThreadProcess(scheduler, "t", body)
        scheduler.run()
        assert log == ["start", "after-wait"]

    def test_timed_waits_advance_time(self, scheduler):
        stamps = []

        def body():
            yield SimTime.ns(3)
            stamps.append(scheduler.now)
            yield SimTime.ns(4)
            stamps.append(scheduler.now)

        ThreadProcess(scheduler, "t", body)
        scheduler.run()
        assert stamps == [SimTime.ns(3), SimTime.ns(7)]

    def test_wait_on_signal_change(self, scheduler):
        sig = scheduler.signal("s", 0)
        observed = []

        def waiter():
            yield sig
            observed.append(sig.read())

        def driver():
            yield SimTime.ns(5)
            sig.write(42)

        ThreadProcess(scheduler, "waiter", waiter)
        ThreadProcess(scheduler, "driver", driver)
        scheduler.run()
        assert observed == [42]

    def test_wait_on_event(self, scheduler):
        event = scheduler.event("go")
        hits = []

        def waiter():
            yield event
            hits.append(scheduler.now)

        def notifier():
            yield SimTime.ns(2)
            event.notify_delta()

        ThreadProcess(scheduler, "waiter", waiter)
        ThreadProcess(scheduler, "notifier", notifier)
        scheduler.run()
        assert hits == [SimTime.ns(2)]

    def test_one_shot_sensitivity(self, scheduler):
        """A thread waiting once on a signal is not re-woken by later
        changes."""
        sig = scheduler.signal("s", 0)
        wakes = [0]

        def waiter():
            yield sig
            wakes[0] += 1

        def driver():
            for value in (1, 2, 3):
                sig.write(value)
                yield SimTime.ns(1)

        ThreadProcess(scheduler, "waiter", waiter)
        ThreadProcess(scheduler, "driver", driver)
        scheduler.run()
        assert wakes[0] == 1

    def test_done_flag(self, scheduler):
        def body():
            yield SimTime.ns(1)

        thread = ThreadProcess(scheduler, "t", body)
        scheduler.run()
        assert thread.done
        assert thread.resume_count == 2  # initial + after wait

    def test_bad_yield_type_raises(self, scheduler):
        def body():
            yield 42  # not a valid wait target

        ThreadProcess(scheduler, "t", body)
        with pytest.raises(SchedulingError):
            scheduler.run()

    def test_sequencing_two_threads(self, scheduler):
        """Producer/consumer hand-off through a signal."""
        data = scheduler.signal("data", 0)
        ack = scheduler.signal("ack", 0)
        received = []

        def producer():
            for value in (10, 20, 30):
                data.write(value)
                yield ack

        def consumer():
            for _ in range(3):
                yield data
                received.append(data.read())
                ack.write(ack.read() + 1)

        ThreadProcess(scheduler, "producer", producer)
        ThreadProcess(scheduler, "consumer", consumer)
        scheduler.run()
        assert received == [10, 20, 30]


class TestClockGenerator:
    def test_edge_count(self, scheduler):
        clock = ClockGenerator(scheduler, "clk", SimTime.ns(10), cycles=5)
        scheduler.run()
        # Two edges per cycle.
        assert clock.signal.change_count == 10

    def test_period_timing(self, scheduler):
        ClockGenerator(scheduler, "clk", SimTime.ns(10), cycles=3)
        scheduler.run()
        # Last edge at 3 * 10ns - low_time... total span = cycles*period.
        assert scheduler.now == SimTime.ns(30)

    def test_duty_cycle(self, scheduler):
        clock = ClockGenerator(
            scheduler, "clk", SimTime.ns(10), duty=0.3, cycles=2
        )
        assert clock.high_time == SimTime.ns(3)
        assert clock.low_time == SimTime.ns(7)

    def test_validation(self, scheduler):
        with pytest.raises(SchedulingError):
            ClockGenerator(scheduler, "c", SimTime.ZERO)
        with pytest.raises(SchedulingError):
            ClockGenerator(scheduler, "c", SimTime.ns(10), duty=1.5)
        with pytest.raises(SchedulingError):
            ClockGenerator(scheduler, "c", SimTime.ns(10), cycles=0)

    def test_drives_method_process(self, scheduler):
        """A method process clocked by the generator counts edges."""
        clock = ClockGenerator(scheduler, "clk", SimTime.ns(10), cycles=4)
        rising = [0]

        def on_edge():
            if clock.signal.read():
                rising[0] += 1

        scheduler.process("counter", on_edge, sensitive_to=[clock.signal])
        scheduler.run()
        assert rising[0] == 4
