"""Tests for repro.analysis.stability."""

import numpy as np
import pytest

from repro.analysis.stability import DEPTH_TOLERANCE, audit_trajectory
from repro.errors import AnalysisError


class TestCleanTrajectories:
    def test_monotone_rise_is_clean(self):
        h = np.linspace(0.0, 10.0, 100)
        b = np.tanh(h / 3.0)
        audit = audit_trajectory(h, b)
        assert audit.clean
        assert audit.acceptable()
        assert audit.negative_slope_samples == 0
        assert audit.monotonicity_depth == 0.0

    def test_plateau_is_clean(self):
        h = np.linspace(0.0, 10.0, 50)
        b = np.minimum(h, 5.0)  # slope 0 after saturation
        audit = audit_trajectory(h, b)
        assert audit.clean

    def test_triangle_loop_clean(self, major_loop_sweep):
        audit = audit_trajectory(major_loop_sweep.h, major_loop_sweep.b)
        assert audit.finite
        assert audit.acceptable()
        # Guarded model: depth far below the repo-wide floor.
        assert audit.monotonicity_depth < DEPTH_TOLERANCE


class TestPathologies:
    def test_negative_slope_counted(self):
        h = np.array([0.0, 1.0, 2.0, 3.0, 4.0])
        b = np.array([0.0, 1.0, 0.5, 1.5, 2.5])  # dip at index 2
        audit = audit_trajectory(h, b)
        assert audit.negative_slope_samples == 1
        assert audit.worst_negative_slope == pytest.approx(-0.5)
        assert audit.monotonicity_depth == pytest.approx(0.5)
        assert not audit.clean

    def test_depth_accumulates_along_branch(self):
        h = np.array([0.0, 1.0, 2.0, 3.0, 4.0])
        b = np.array([0.0, 2.0, 1.5, 1.0, 0.5])  # sustained retrace
        audit = audit_trajectory(h, b)
        assert audit.monotonicity_depth == pytest.approx(1.5)

    def test_falling_branch_retrace_detected(self):
        h = np.array([4.0, 3.0, 2.0, 1.0])
        b = np.array([2.0, 1.0, 1.5, 0.5])  # B rises while H falls
        audit = audit_trajectory(h, b)
        assert audit.negative_slope_samples == 1
        assert audit.monotonicity_depth == pytest.approx(0.5)

    def test_nan_detected(self):
        h = np.array([0.0, 1.0, 2.0])
        b = np.array([0.0, np.nan, 1.0])
        audit = audit_trajectory(h, b)
        assert audit.non_finite_samples == 1
        assert not audit.finite
        assert not audit.acceptable()

    def test_runaway_detected(self):
        h = np.array([0.0, 1.0, 2.0])
        b = np.array([0.0, 1e9, 2e9])
        audit = audit_trajectory(h, b, runaway_limit=1e6)
        assert audit.runaway_samples == 2
        assert not audit.finite

    def test_slope_tolerance_absorbs_noise(self):
        h = np.array([0.0, 1.0, 2.0])
        b = np.array([0.0, 1.0, 1.0 - 1e-15])
        audit = audit_trajectory(h, b, slope_tolerance=1e-12)
        assert audit.negative_slope_samples == 0


class TestAcceptable:
    def test_explicit_tolerance(self):
        h = np.array([0.0, 1.0, 2.0, 3.0])
        b = np.array([0.0, 1.0, 0.9, 1.5])
        audit = audit_trajectory(h, b)
        assert audit.acceptable(depth_tolerance=0.2)
        assert not audit.acceptable(depth_tolerance=0.05)

    def test_default_scales_with_output_resolution(self):
        # Large per-sample steps: a retrace of comparable size is lag,
        # not instability.
        h = np.array([0.0, 1.0, 2.0, 3.0])
        b = np.array([0.0, 1.0, 0.5, 2.0])  # steps of ~1, retrace 0.5
        audit = audit_trajectory(h, b)
        assert audit.max_step_change == pytest.approx(1.5)
        assert audit.acceptable()

    def test_as_dict_round_trip(self):
        h = np.linspace(0.0, 1.0, 10)
        audit = audit_trajectory(h, h)
        data = audit.as_dict()
        assert data["clean"] is True
        assert data["samples"] == 10


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(AnalysisError):
            audit_trajectory(np.zeros(3), np.zeros(4))

    def test_too_short(self):
        with pytest.raises(AnalysisError):
            audit_trajectory(np.array([1.0]), np.array([1.0]))
