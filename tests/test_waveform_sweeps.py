"""Tests for repro.waveforms.sweeps (timeless waypoint schedules)."""

import pytest

from repro.errors import WaveformError
from repro.waveforms.sweeps import (
    biased_minor_loop_waypoints,
    decaying_triangle_waypoints,
    fig1_waypoints,
    initial_magnetisation_waypoints,
    major_loop_waypoints,
    minor_loop_grid,
)


class TestInitialMagnetisation:
    def test_two_points(self):
        assert initial_magnetisation_waypoints(5e3) == [0.0, 5e3]

    def test_invalid_peak(self):
        with pytest.raises(WaveformError):
            initial_magnetisation_waypoints(-1.0)


class TestMajorLoop:
    def test_single_cycle(self):
        assert major_loop_waypoints(10.0, cycles=1) == [0.0, 10.0, -10.0, 10.0]

    def test_multiple_cycles(self):
        waypoints = major_loop_waypoints(10.0, cycles=3)
        assert waypoints == [0.0, 10.0, -10.0, 10.0, -10.0, 10.0, -10.0, 10.0]

    def test_without_initial_rise(self):
        assert major_loop_waypoints(10.0, include_initial_rise=False) == [
            10.0,
            -10.0,
            10.0,
        ]

    def test_zero_cycles_rejected(self):
        with pytest.raises(WaveformError):
            major_loop_waypoints(10.0, cycles=0)


class TestDecayingTriangle:
    def test_alternating_signs(self):
        waypoints = decaying_triangle_waypoints([10.0, 8.0, 6.0])
        assert waypoints == [0.0, 10.0, -10.0, 8.0, -8.0, 6.0, -6.0]

    def test_increasing_amplitudes_rejected(self):
        with pytest.raises(WaveformError):
            decaying_triangle_waypoints([5.0, 10.0])

    def test_equal_amplitudes_allowed(self):
        waypoints = decaying_triangle_waypoints([10.0, 10.0])
        assert waypoints == [0.0, 10.0, -10.0, 10.0, -10.0]

    def test_empty_rejected(self):
        with pytest.raises(WaveformError):
            decaying_triangle_waypoints([])


class TestFig1:
    def test_starts_demagnetised(self):
        assert fig1_waypoints()[0] == 0.0

    def test_contains_major_loop(self):
        waypoints = fig1_waypoints(h_max=10e3)
        assert 10e3 in waypoints
        assert -10e3 in waypoints

    def test_minor_loop_count_controls_length(self):
        base = len(fig1_waypoints(minor_loop_count=0))
        more = len(fig1_waypoints(minor_loop_count=4))
        assert more == base + 8  # two vertices per minor loop

    def test_envelope_decays_to_final_fraction(self):
        waypoints = fig1_waypoints(
            h_max=10e3, minor_loop_count=4, final_fraction=0.2
        )
        assert waypoints[-1] == pytest.approx(-2000.0)

    def test_invalid_final_fraction(self):
        with pytest.raises(WaveformError):
            fig1_waypoints(final_fraction=0.0)
        with pytest.raises(WaveformError):
            fig1_waypoints(final_fraction=1.5)

    def test_negative_minor_count_rejected(self):
        with pytest.raises(WaveformError):
            fig1_waypoints(minor_loop_count=-1)


class TestBiasedMinorLoop:
    def test_vertices(self):
        waypoints = biased_minor_loop_waypoints(2000.0, 500.0, cycles=2)
        assert waypoints == [0.0, 2500.0, 1500.0, 2500.0, 1500.0, 2500.0]

    def test_non_biased_case(self):
        waypoints = biased_minor_loop_waypoints(0.0, 100.0, cycles=1)
        assert waypoints == [0.0, 100.0, -100.0, 100.0]

    def test_custom_approach(self):
        waypoints = biased_minor_loop_waypoints(
            0.0, 100.0, cycles=1, approach_from=1e4
        )
        assert waypoints[0] == 1e4

    def test_invalid_cycles(self):
        with pytest.raises(WaveformError):
            biased_minor_loop_waypoints(0.0, 100.0, cycles=0)

    def test_invalid_amplitude(self):
        with pytest.raises(WaveformError):
            biased_minor_loop_waypoints(0.0, 0.0)


class TestGrid:
    def test_grid_size(self):
        grid = list(minor_loop_grid([100.0, 200.0], [0.0, 1000.0, 2000.0]))
        assert len(grid) == 6

    def test_grid_entries_carry_parameters(self):
        grid = list(minor_loop_grid([100.0], [500.0], cycles=4))
        bias, amplitude, waypoints = grid[0]
        assert bias == 500.0
        assert amplitude == 100.0
        assert waypoints[1] == 600.0
        assert len(waypoints) == 2 + 2 * 4
