"""Tests for repro.solver: Newton, integrators, step control, IVP driver."""

import math

import numpy as np
import pytest

from repro.errors import ConvergenceError, SolverError
from repro.solver.adaptive import AdaptiveStepController
from repro.solver.integrators import (
    IntegrationMethod,
    backward_euler_residual,
    explicit_stepper,
    forward_euler_step,
    heun_step,
    rk4_step,
    trapezoidal_residual,
)
from repro.solver.ivp import integrate_fixed_step
from repro.solver.newton import NewtonOptions, newton_solve


class TestNewton:
    def test_scalar_quadratic(self):
        result = newton_solve(lambda x: np.array([x[0] ** 2 - 4.0]), np.array([3.0]))
        assert result.converged
        assert result.x[0] == pytest.approx(2.0)

    def test_two_dimensional_system(self):
        def residual(x):
            return np.array([x[0] + x[1] - 3.0, x[0] - x[1] - 1.0])

        result = newton_solve(residual, np.array([0.0, 0.0]))
        assert result.converged
        assert result.x == pytest.approx([2.0, 1.0])

    def test_analytic_jacobian_used(self):
        calls = []

        def jacobian(x):
            calls.append(1)
            return np.array([[2.0 * x[0]]])

        result = newton_solve(
            lambda x: np.array([x[0] ** 2 - 9.0]),
            np.array([2.0]),
            jacobian=jacobian,
        )
        assert result.converged
        assert result.x[0] == pytest.approx(3.0)
        assert calls  # the supplied Jacobian was exercised

    def test_singular_jacobian_reported(self):
        result = newton_solve(
            lambda x: np.array([0.0 * x[0] + 1.0]), np.array([1.0])
        )
        assert not result.converged
        assert result.singular

    def test_nan_residual_reported(self):
        result = newton_solve(
            lambda x: np.array([math.nan]), np.array([1.0])
        )
        assert not result.converged
        assert result.iterations == 0

    def test_max_iterations_exhausted(self):
        # Newton on |x|^(1/3)-style root converges slowly / oscillates.
        options = NewtonOptions(max_iterations=3)
        result = newton_solve(
            lambda x: np.array([math.copysign(abs(x[0]) ** (1.0 / 3.0), x[0])]),
            np.array([1.0]),
            options=options,
        )
        assert not result.converged
        assert result.iterations == 3

    def test_require_converged_raises(self):
        result = newton_solve(
            lambda x: np.array([math.nan]), np.array([1.0])
        )
        with pytest.raises(ConvergenceError):
            result.require_converged()

    def test_stiff_linear_equation_converges(self):
        """Big-coefficient equations must pass the scaled residual test."""
        big = 1e9

        def residual(x):
            return np.array([big * (x[0] - 1e-3)])

        result = newton_solve(residual, np.array([1.0]))
        assert result.converged
        assert result.x[0] == pytest.approx(1e-3)

    def test_damping_halves_steps(self):
        options = NewtonOptions(damping=0.5, max_iterations=200)
        result = newton_solve(
            lambda x: np.array([x[0] - 10.0]), np.array([0.0]), options=options
        )
        assert result.converged
        assert result.x[0] == pytest.approx(10.0)


class TestExplicitSteppers:
    def test_forward_euler_linear_exact(self):
        # dx/dt = 2 with dt = 0.5 -> exact for constant rhs.
        step = forward_euler_step(lambda t, x: np.array([2.0]), 0.0, np.array([1.0]), 0.5)
        assert step[0] == pytest.approx(2.0)

    def test_heun_second_order_on_linear_time(self):
        # dx/dt = t: exact integral 0.5*t^2; Heun is exact for linear-in-t.
        x = np.array([0.0])
        dt = 0.1
        for i in range(10):
            x = heun_step(lambda t, s: np.array([t]), i * dt, x, dt)
        assert x[0] == pytest.approx(0.5, rel=1e-12)

    def test_rk4_on_exponential(self):
        x = np.array([1.0])
        dt = 0.1
        for i in range(10):
            x = rk4_step(lambda t, s: -s, i * dt, x, dt)
        assert x[0] == pytest.approx(math.exp(-1.0), rel=1e-6)

    def test_convergence_order_euler(self):
        """Halving dt must roughly halve the Euler error."""

        def run(dt):
            x = np.array([1.0])
            steps = int(round(1.0 / dt))
            for i in range(steps):
                x = forward_euler_step(lambda t, s: -s, i * dt, x, dt)
            return abs(x[0] - math.exp(-1.0))

        ratio = run(0.01) / run(0.005)
        assert 1.7 < ratio < 2.3

    def test_stepper_lookup_by_name(self):
        assert explicit_stepper("rk4") is rk4_step
        assert explicit_stepper(IntegrationMethod.HEUN) is heun_step

    def test_unknown_stepper_rejected(self):
        with pytest.raises(ValueError):
            explicit_stepper("leapfrog")


class TestImplicitResiduals:
    def test_backward_euler_dot(self):
        dots = backward_euler_residual(np.array([2.0]), np.array([1.0]), 0.5)
        assert dots[0] == pytest.approx(2.0)

    def test_trapezoidal_dot(self):
        dots = trapezoidal_residual(
            np.array([2.0]), np.array([1.0]), np.array([1.0]), 0.5
        )
        # 2*(2-1)/0.5 - 1 = 3
        assert dots[0] == pytest.approx(3.0)


class TestAdaptiveController:
    def test_growth_on_small_error(self):
        ctrl = AdaptiveStepController(1e-6, 1e-9, 1e-3)
        decision = ctrl.after_error_estimate(0.1)
        assert decision.accept
        assert decision.next_dt == pytest.approx(1.5e-6)

    def test_no_growth_on_marginal_error(self):
        ctrl = AdaptiveStepController(1e-6, 1e-9, 1e-3)
        decision = ctrl.after_error_estimate(0.9)
        assert decision.accept
        assert decision.next_dt == pytest.approx(1e-6)

    def test_rejection_shrinks(self):
        ctrl = AdaptiveStepController(1e-6, 1e-9, 1e-3)
        decision = ctrl.after_error_estimate(10.0)
        assert not decision.accept
        assert decision.next_dt < 1e-6
        assert ctrl.rejections == 1

    def test_floor_accept_under_protest(self):
        ctrl = AdaptiveStepController(1e-9, 1e-9, 1e-3)
        decision = ctrl.after_error_estimate(100.0)
        assert decision.accept
        assert decision.at_floor
        assert ctrl.floor_hits == 1

    def test_newton_failure_shrinks_hard(self):
        ctrl = AdaptiveStepController(1e-6, 1e-12, 1e-3)
        decision = ctrl.after_newton_failure()
        assert not decision.accept
        assert decision.next_dt == pytest.approx(0.25e-6)

    def test_nan_error_treated_as_failure(self):
        ctrl = AdaptiveStepController(1e-6, 1e-9, 1e-3)
        decision = ctrl.after_error_estimate(math.nan)
        assert not decision.accept

    def test_dt_clamped_to_max(self):
        ctrl = AdaptiveStepController(1e-4, 1e-9, 1.5e-4)
        ctrl.after_error_estimate(0.0)
        ctrl.after_error_estimate(0.0)
        assert ctrl.dt == pytest.approx(1.5e-4)

    def test_force_break_resets_step(self):
        ctrl = AdaptiveStepController(1e-4, 1e-9, 1e-3)
        ctrl.force_break()
        assert ctrl.dt == pytest.approx(1e-9)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(SolverError):
            AdaptiveStepController(1e-6, 1e-3, 1e-9)


class TestFixedStepIVP:
    def test_completes_smooth_problem(self):
        result = integrate_fixed_step(
            lambda t, x: -x, 0.0, np.array([1.0]), 0.01, 100
        )
        assert result.completed
        assert result.x[-1, 0] == pytest.approx(math.exp(-1.0), rel=0.01)

    def test_detects_divergence(self):
        result = integrate_fixed_step(
            lambda t, x: x**2, 0.0, np.array([10.0]), 1.0, 50,
            divergence_limit=1e6,
        )
        assert result.diverged
        assert result.first_bad_index is not None
        assert len(result.t) < 51

    def test_detects_nan(self):
        def rhs(t, x):
            return np.array([math.nan])

        result = integrate_fixed_step(rhs, 0.0, np.array([1.0]), 0.1, 10)
        assert result.diverged
        assert result.first_bad_index == 1

    def test_invalid_dt_rejected(self):
        with pytest.raises(SolverError):
            integrate_fixed_step(
                lambda t, x: x, 0.0, np.array([1.0]), 0.0, 10
            )

    def test_method_selection(self):
        result = integrate_fixed_step(
            lambda t, x: -x, 0.0, np.array([1.0]), 0.1, 10, method="rk4"
        )
        assert result.x[-1, 0] == pytest.approx(math.exp(-1.0), rel=1e-5)
