"""Tests for repro.core.state."""

import math

from repro.core.state import JAState


class TestSnapshot:
    def test_snapshot_is_independent(self):
        state = JAState(h_applied=5.0, m_irr=0.3)
        snap = state.snapshot()
        state.m_irr = 0.9
        assert snap.m_irr == 0.3

    def test_snapshot_copies_all_fields(self):
        state = JAState(
            h_applied=1.0,
            h_accepted=2.0,
            m_irr=0.1,
            m_rev=0.2,
            m_an=0.3,
            m_total=0.4,
            delta=-1.0,
            updates=7,
        )
        snap = state.snapshot()
        assert snap == state
        assert snap is not state


class TestFiniteness:
    def test_default_state_is_finite(self):
        assert JAState().is_finite()

    def test_nan_member_detected(self):
        state = JAState(m_irr=math.nan)
        assert not state.is_finite()

    def test_inf_member_detected(self):
        state = JAState(m_total=math.inf)
        assert not state.is_finite()


class TestReset:
    def test_reset_restores_demagnetised(self):
        state = JAState(h_applied=9.0, m_irr=0.8, m_total=0.9, updates=4)
        state.reset()
        assert state.h_applied == 0.0
        assert state.m_irr == 0.0
        assert state.m_total == 0.0
        assert state.updates == 0
        assert state.delta == 0.0

    def test_reset_to_custom_initial(self):
        state = JAState()
        state.reset(h_initial=500.0, m_irr_initial=0.25)
        assert state.h_applied == 500.0
        assert state.h_accepted == 500.0
        assert state.m_irr == 0.25
        assert state.m_total == 0.25
