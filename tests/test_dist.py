"""Multi-host dispatch: wire protocol, streamed lane blocks, bitwise
reassembly, robustness.

The load-bearing suites mirror the executor's equivalence contract one
transport out: a campaign dispatched over localhost worker agents —
uneven splits, chunked streaming, a worker killed mid-campaign — must
reproduce the single-process :func:`repro.batch.sweep.run_batch_series`
result bit for bit.  Dispatch is a transport optimisation, never a
numerics change.
"""

import dataclasses
import logging
import threading

import numpy as np
import pytest

from repro.batch.sweep import run_batch_series
from repro.dist import (
    DEFAULT_AUTHKEY,
    PROTOCOL_VERSION,
    Dispatcher,
    WorkerAgent,
    probe_hosts,
    probe_link_overhead,
    run_distributed,
    shard_digest,
)
from repro.dist.protocol import (
    format_address,
    parse_address,
    recv_message,
    send_message,
)
from repro.errors import DistError, DistTimeoutError, ParameterError
from repro.parallel import (
    BlockBudget,
    EnsembleSpec,
    iter_shard_blocks,
    plan_lane_blocks,
    run_scenario_grid,
    run_sharded,
)
from repro.parallel.blocks import assemble_blocks, run_spec
from repro.parallel.executor import prepare_job
from repro.sched import CostModel, ExecutionPlan, enumerate_candidates
from repro.scenarios import scenario_samples

from test_parallel import assert_results_bitwise_equal
from test_sched import synthetic_calibration

#: The deliberately awkward geometry: 7 lanes, 3 shards, 2 hosts.
N_CORES = 7
H_MAX = 1000.0
STEP = 120.0


def reference_result(n_cores=N_CORES, seed=0):
    spec = EnsembleSpec(family="timeless", n_cores=n_cores, seed=seed)
    h = scenario_samples("major-loop", H_MAX, STEP, n_cores=n_cores)
    return run_batch_series(spec.build_batch(), h)


@pytest.fixture
def fleet():
    """Two in-process localhost worker agents."""
    with WorkerAgent() as a, WorkerAgent() as b:
        a.start()
        b.start()
        yield [a.address, b.address]


class TestProtocol:
    def test_parse_format_roundtrip(self):
        assert parse_address("127.0.0.1:7501") == ("127.0.0.1", 7501)
        assert format_address(("127.0.0.1", 7501)) == "127.0.0.1:7501"

    def test_parse_rejects_malformed(self):
        for bad in ("no-port", ":123", "host:notaport"):
            with pytest.raises(DistError):
                parse_address(bad)

    def test_recv_deadline_expires(self):
        from multiprocessing import Pipe

        parent, child = Pipe()
        try:
            with pytest.raises(DistTimeoutError):
                recv_message(parent, 0.05)
            send_message(child, ("ping",))
            assert recv_message(parent, 1.0) == ("ping",)
        finally:
            parent.close()
            child.close()


class TestLaneBlocks:
    def test_plan_tiles_range_in_order(self):
        assert plan_lane_blocks(3, 10, 3) == [(3, 6), (6, 9), (9, 10)]
        assert plan_lane_blocks(0, 4, None) == [(0, 4)]
        assert plan_lane_blocks(0, 4, 99) == [(0, 4)]

    def test_plan_rejects_bad_ranges(self):
        with pytest.raises(ParameterError):
            plan_lane_blocks(4, 4, 2)
        with pytest.raises(ParameterError):
            plan_lane_blocks(0, 4, 0)

    @pytest.mark.parametrize("chunk_lanes", [1, 2, 5, None])
    def test_chunked_shard_is_bitwise_identical(self, chunk_lanes):
        ensemble = EnsembleSpec(family="timeless", n_cores=N_CORES)
        job = prepare_job(
            ensemble,
            _drive(),
            1,
            1,
            chunk_lanes=chunk_lanes,
        )
        (spec,) = job.specs
        reassembled = assemble_blocks(spec, iter_shard_blocks(spec))
        assert_results_bitwise_equal(reference_result(), reassembled)
        assert_results_bitwise_equal(reference_result(), run_spec(spec))

    def test_budget_tracks_peak_and_rejects_oversize(self):
        budget = BlockBudget(100)
        budget.acquire(60)
        budget.acquire(40)
        budget.release(60)
        budget.release(40)
        assert budget.peak == 100
        assert budget.in_flight == 0
        with pytest.raises(ParameterError, match="ceiling"):
            budget.acquire(101)
        with pytest.raises(ParameterError):
            BlockBudget(0)

    def test_unlimited_budget_never_blocks(self):
        budget = BlockBudget(None)
        budget.acquire(10**12)
        budget.release(10**12)
        assert budget.peak == 10**12

    def test_stray_notify_cannot_over_release_the_budget(self):
        """``acquire`` re-checks its predicate after every wake
        (``wait_for``), so a stray ``notify_all`` — over-notification,
        a spurious wakeup — never admits bytes past the ceiling."""
        budget = BlockBudget(100)
        budget.acquire(90)
        admitted = threading.Event()

        def contender():
            budget.acquire(20)
            admitted.set()
            budget.release(20)

        thread = threading.Thread(target=contender, daemon=True)
        thread.start()
        for _ in range(5):
            with budget._cond:
                budget._cond.notify_all()
        # The waiter must still be parked: 90 + 20 > 100.
        assert not admitted.wait(0.2)
        assert budget.in_flight == 90
        budget.release(90)
        assert admitted.wait(5.0), "waiter never admitted after release"
        thread.join(5.0)
        assert budget.in_flight == 0
        assert budget.peak <= 100


def _drive():
    from repro.parallel.spec import DriveSpec

    return DriveSpec(
        scenario="major-loop", h_max=H_MAX, driver_step=STEP
    )


class TestShardDigest:
    def test_execution_shape_never_changes_the_digest(self):
        ensemble = EnsembleSpec(family="timeless", n_cores=N_CORES)
        job = prepare_job(ensemble, _drive(), 1, 1)
        (spec,) = job.specs
        base = shard_digest(spec)
        assert base is not None
        reshaped = dataclasses.replace(spec, threads=4, chunk_lanes=2)
        assert shard_digest(reshaped) == base

    def test_lane_range_changes_the_digest(self):
        ensemble = EnsembleSpec(family="timeless", n_cores=N_CORES)
        job = prepare_job(ensemble, _drive(), 3, 1)
        digests = [shard_digest(spec) for spec in job.specs]
        assert len(set(digests)) == len(digests)


class TestRunDistributed:
    @pytest.mark.parametrize("n_workers,chunk_lanes", [
        (None, None),   # one shard per host, unchunked
        (3, None),      # uneven: 3 shards over 2 hosts
        (3, 2),         # uneven + streamed lane blocks
    ])
    def test_bitwise_identical_to_single_process(
        self, fleet, n_workers, chunk_lanes
    ):
        result = run_distributed(
            EnsembleSpec(family="timeless", n_cores=N_CORES),
            scenario="major-loop",
            h_max=H_MAX,
            driver_step=STEP,
            hosts=fleet,
            n_workers=n_workers,
            chunk_lanes=chunk_lanes,
        )
        assert_results_bitwise_equal(reference_result(), result)

    def test_zero_reachable_hosts_degrades_to_local(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.dist.dispatch"):
            result = run_distributed(
                EnsembleSpec(family="timeless", n_cores=N_CORES),
                scenario="major-loop",
                h_max=H_MAX,
                driver_step=STEP,
                hosts=["127.0.0.1:9"],  # discard port: refused, fast
                connect_timeout_s=1.0,
            )
        assert_results_bitwise_equal(reference_result(), result)
        assert any(
            "degrading to the local executor" in record.message
            for record in caplog.records
        )

    def test_empty_hosts_rejected(self):
        with pytest.raises(ParameterError, match="at least one"):
            run_distributed(
                EnsembleSpec(family="timeless", n_cores=N_CORES),
                scenario="major-loop",
                h_max=H_MAX,
                hosts=[],
            )

    def test_killed_worker_requeues_onto_survivor(self, caplog):
        agent_a = WorkerAgent().start()
        agent_b = WorkerAgent().start()
        try:
            ensemble = EnsembleSpec(family="timeless", n_cores=N_CORES)
            job = prepare_job(ensemble, _drive(), 3, 1, chunk_lanes=2)
            with caplog.at_level(
                logging.WARNING, logger="repro.dist.dispatch"
            ):
                with Dispatcher(
                    [agent_a.address, agent_b.address], deadline_s=30.0
                ) as dispatcher:
                    assert dispatcher.n_live == 2
                    # Kill one agent after the handshake: its serving
                    # thread loses the connection mid-job and the shard
                    # must requeue onto the survivor.
                    agent_a.stop()
                    (result,) = dispatcher.run_jobs([job])
            assert_results_bitwise_equal(reference_result(), result)
            assert any(
                "requeueing shard" in record.message
                for record in caplog.records
            )
        finally:
            agent_a.stop()
            agent_b.stop()

    def test_streamed_blocks_respect_buffer_ceiling(self, fleet):
        ensemble = EnsembleSpec(family="timeless", n_cores=N_CORES)
        job = prepare_job(ensemble, _drive(), 2, 1, chunk_lanes=1)
        sample_count = len(job.h_full)
        # Generous enough for one single-lane block, far below the
        # full (samples, 7) result buffer.
        ceiling = 64 * sample_count
        with Dispatcher(fleet, max_buffer_bytes=ceiling) as dispatcher:
            (result,) = dispatcher.run_jobs([job])
        assert_results_bitwise_equal(reference_result(), result)
        assert 0 < dispatcher.budget.peak <= ceiling

    def test_identical_shard_requests_coalesce(self, fleet, caplog):
        ensemble = EnsembleSpec(family="timeless", n_cores=N_CORES)
        jobs = [prepare_job(ensemble, _drive(), 2, 1) for _ in range(2)]
        with caplog.at_level(logging.INFO, logger="repro.dist.dispatch"):
            with Dispatcher(fleet) as dispatcher:
                results = dispatcher.run_jobs(jobs)
        for result in results:
            assert_results_bitwise_equal(reference_result(), result)
        assert any(
            "coalesced 2 duplicate shard request(s)" in record.message
            for record in caplog.records
        )

    def test_worker_side_error_raises_dist_error(self, fleet):
        ensemble = EnsembleSpec(family="timeless", n_cores=N_CORES)
        job = prepare_job(ensemble, _drive(), 1, 1)
        # Corrupt the rebuild route: deterministic worker-side failure,
        # which must surface as DistError — never a retry.
        job.specs[0] = dataclasses.replace(
            job.specs[0], ensemble=None, payload={"bogus": True}
        )
        with Dispatcher(fleet) as dispatcher:
            with pytest.raises(DistError, match="failed\\s+worker-side"):
                dispatcher.run_jobs([job])

    def test_retries_exhausted_drains_locally(self, caplog):
        agent = WorkerAgent().start()
        try:
            ensemble = EnsembleSpec(family="timeless", n_cores=N_CORES)
            job = prepare_job(ensemble, _drive(), 1, 1)
            with caplog.at_level(
                logging.WARNING, logger="repro.dist.dispatch"
            ):
                with Dispatcher(
                    [agent.address], retries=0, deadline_s=30.0
                ) as dispatcher:
                    agent.stop()  # the whole fleet dies pre-dispatch
                    (result,) = dispatcher.run_jobs([job])
            assert_results_bitwise_equal(reference_result(), result)
            assert any(
                "draining them through the local executor" in record.message
                for record in caplog.records
            )
        finally:
            agent.stop()


class TestProbe:
    def test_link_overhead_is_positive_seconds(self, fleet):
        overhead = probe_link_overhead(fleet[0], repeats=3)
        assert 0.0 < overhead < 5.0

    def test_probe_hosts_omits_unreachable(self, fleet):
        overheads = probe_hosts(
            [fleet[0], "127.0.0.1:9"], repeats=2, timeout_s=1.0
        )
        assert set(overheads) == {fleet[0]}
        assert overheads[fleet[0]] > 0.0

    def test_probe_validates_parameters(self, fleet):
        with pytest.raises(ParameterError):
            probe_link_overhead(fleet[0], repeats=0)
        with pytest.raises(ParameterError):
            probe_link_overhead(fleet[0], payload_bytes=0)

    def test_unreachable_probe_raises(self):
        with pytest.raises(DistError, match="unreachable"):
            probe_link_overhead("127.0.0.1:9", timeout_s=1.0)


class TestExecutorRouting:
    def test_run_sharded_hosts_matches_single_process(self, fleet):
        result = run_sharded(
            EnsembleSpec(family="timeless", n_cores=N_CORES),
            scenario="major-loop",
            h_max=H_MAX,
            driver_step=STEP,
            hosts=fleet,
            n_workers=3,
            chunk_lanes=3,
        )
        assert_results_bitwise_equal(reference_result(), result)

    def test_hosts_excludes_local_pool_arguments(self, fleet):
        with pytest.raises(ParameterError, match="remote shards"):
            run_sharded(
                EnsembleSpec(family="timeless", n_cores=N_CORES),
                scenario="major-loop",
                h_max=H_MAX,
                hosts=fleet,
                mp_context="spawn",
            )

    def test_chunked_serial_run_is_bitwise_identical(self):
        result = run_sharded(
            EnsembleSpec(family="timeless", n_cores=N_CORES),
            scenario="major-loop",
            h_max=H_MAX,
            driver_step=STEP,
            n_workers=1,
            chunk_lanes=2,
        )
        assert_results_bitwise_equal(reference_result(), result)

    def test_hosted_plan_routes_through_dispatch(self, fleet):
        plan = ExecutionPlan(
            backend="numpy", n_workers=3, hosts=tuple(fleet)
        )
        result = run_sharded(
            EnsembleSpec(family="timeless", n_cores=N_CORES),
            scenario="major-loop",
            h_max=H_MAX,
            driver_step=STEP,
            plan=plan,
        )
        assert_results_bitwise_equal(reference_result(), result)


class TestGridRouting:
    def test_grid_over_hosts_matches_local_grid(self, fleet):
        kwargs = dict(
            families=["timeless"],
            scenarios=["major-loop"],
            h_max_values=[H_MAX, 2 * H_MAX],
            n_cores=5,
            driver_step=STEP,
        )
        local = run_scenario_grid(**kwargs, n_workers=1)
        hosted = run_scenario_grid(**kwargs, hosts=fleet)
        assert len(local) == len(hosted)
        for ours, theirs in zip(local, hosted):
            assert ours.key == theirs.key
            assert_results_bitwise_equal(ours.result, theirs.result)

    def test_grid_hosts_excludes_plan_and_service(self, fleet):
        kwargs = dict(
            families=["timeless"],
            scenarios=["major-loop"],
            h_max_values=[H_MAX],
            n_cores=4,
        )
        with pytest.raises(ParameterError, match="run_sharded"):
            run_scenario_grid(**kwargs, hosts=fleet, plan="auto")
        with pytest.raises(ParameterError):
            run_scenario_grid(**kwargs, hosts=fleet, mp_context="spawn")


class TestPlannerPlacement:
    def test_plan_validates_host_thread_exclusivity(self):
        with pytest.raises(ParameterError, match="single-threaded"):
            ExecutionPlan(
                backend="numpy",
                n_workers=2,
                threads_per_worker=2,
                hosts=("a:1", "b:2"),
            )

    def test_describe_names_the_placement(self):
        plan = ExecutionPlan(backend="numpy", n_workers=2, hosts=("a:1", "b:2"))
        assert plan.describe().endswith("@2h")

    def test_candidates_include_priced_distributed_plan(self):
        model = CostModel.from_calibration(synthetic_calibration())
        hosts = ("10.0.0.5:7501", "10.0.0.6:7501")
        candidates = enumerate_candidates(
            model, "timeless", lanes=64, samples=256, hosts=hosts
        )
        dist_plans = [c for c in candidates if c.source == "auto-dist"]
        assert len(dist_plans) >= 1
        plan = dist_plans[0]
        assert plan.hosts == hosts
        assert plan.n_workers == len(hosts)
        assert plan.threads_per_worker == 1
        assert plan.predicted_seconds is not None

    def test_link_overhead_raises_the_distributed_price(self):
        model = CostModel.from_calibration(synthetic_calibration())
        hosts = ("10.0.0.5:7501", "10.0.0.6:7501")

        def dist_price(link_overhead_s):
            candidates = enumerate_candidates(
                model, "timeless", lanes=64, samples=256,
                hosts=hosts, link_overhead_s=link_overhead_s,
            )
            (plan,) = [c for c in candidates if c.source == "auto-dist"]
            return plan.predicted_seconds

        assert dist_price(10.0) > dist_price(0.0)
        # A slow enough link makes local plans win outright.
        slow = enumerate_candidates(
            model, "timeless", lanes=64, samples=256,
            hosts=hosts, link_overhead_s=1e6,
        )
        assert slow[0].source != "auto-dist"

    def test_per_host_models_price_heterogeneous_fleets(self):
        local = CostModel.from_calibration(synthetic_calibration())
        slow = CostModel.from_calibration(
            synthetic_calibration(coeffs={("numpy", 1): (1e-3, 1e-4)})
        )
        hosts = ("fast:1", "slow:2")

        def makespan(host_models):
            candidates = enumerate_candidates(
                local, "timeless", lanes=64, samples=256,
                hosts=hosts, host_models=host_models,
            )
            (plan,) = [c for c in candidates if c.source == "auto-dist"]
            return plan.predicted_seconds

        assert makespan({"slow:2": slow}) > makespan(None)

    def test_unpriceable_placement_is_skipped_not_guessed(self):
        # The model only knows numpy: a fleet is priced per backend, so
        # every candidate that does appear must carry a real price.
        model = CostModel.from_calibration(synthetic_calibration())
        candidates = enumerate_candidates(
            model, "timeless", lanes=64, samples=256,
            hosts=("a:1",), host_models={"a:1": model},
        )
        assert all(c.predicted_seconds is not None for c in candidates)


class TestWorkerAgent:
    def test_ping_echo_and_version(self, fleet):
        from multiprocessing.connection import Client

        conn = Client(
            parse_address(fleet[0]), family="AF_INET", authkey=DEFAULT_AUTHKEY
        )
        try:
            send_message(conn, ("ping",))
            assert recv_message(conn, 5.0) == ("pong", PROTOCOL_VERSION)
            send_message(conn, ("echo", b"abc"))
            assert recv_message(conn, 5.0) == ("echo", b"abc")
            send_message(conn, ("frobnicate",))
            reply = recv_message(conn, 5.0)
            assert reply[0] == "error"
            assert "frobnicate" in reply[2]
        finally:
            conn.close()

    def test_dispatcher_shutdown_stops_the_fleet(self):
        with WorkerAgent() as a, WorkerAgent() as b:
            dispatcher = Dispatcher([a.address, b.address])
            assert dispatcher.n_live == 2
            assert dispatcher.shutdown_workers() == 2
            assert dispatcher.n_live == 0
            # Both serve loops observed MSG_SHUTDOWN and closed up.
            assert a._closed.wait(5.0) and b._closed.wait(5.0)

    def test_wrong_authkey_never_kills_the_agent(self, fleet):
        from multiprocessing import AuthenticationError
        from multiprocessing.connection import Client

        with pytest.raises((AuthenticationError, OSError, EOFError)):
            conn = Client(
                parse_address(fleet[0]), family="AF_INET", authkey=b"wrong"
            )
            conn.close()
        # The agent survives the failed handshake and keeps serving.
        assert probe_link_overhead(fleet[0], repeats=1) > 0.0

    def test_cli_worker_serves_a_campaign(self, tmp_path):
        import subprocess
        import sys

        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.dist.worker", "--bind",
             "127.0.0.1:0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        try:
            banner = proc.stdout.readline().strip()
            prefix = "repro-dist worker listening on "
            assert banner.startswith(prefix)
            address = banner[len(prefix):]
            result = run_distributed(
                EnsembleSpec(family="timeless", n_cores=N_CORES),
                scenario="major-loop",
                h_max=H_MAX,
                driver_step=STEP,
                hosts=[address],
                chunk_lanes=3,
            )
            assert_results_bitwise_equal(reference_result(), result)
        finally:
            proc.kill()
            proc.wait(timeout=10)
