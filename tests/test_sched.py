"""The calibrated autoscheduler: calibration, cost model, planner.

Three layers, tested bottom-up:

* **calibration** — probe records persist as schema-versioned,
  host-stamped, content-addressed JSON; a tiny *real* calibration runs
  the actual fused paths on this host;
* **cost model** — the per-group ``seconds ~= samples * (c + a*lanes)``
  fit recovers synthetic coefficients exactly, and the sharded
  prediction prices the real ``plan_shards`` decomposition plus the
  measured pool overhead;
* **planner** — candidate enumeration respects the two hard rules
  (never oversubscribe, never fork around a thread pool) and picks the
  cheapest plan; synthetic calibrations steer it to each of the three
  plan shapes (single, pooled, threaded) deterministically.

Timing-sensitive acceptance bars (auto within 1.2x of the best hand
plan, >= 2x spread somewhere) live in ``benchmarks/test_bench_planner``
on multi-core hosts; everything here is structural and runs anywhere.
"""

import json

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.experiments import run_experiment
from repro.experiments.runner import results_header
from repro.models.registry import list_families
from repro.parallel.plan import plan_shards
from repro.parallel.spec import EnsembleSpec
from repro.sched import (
    CALIBRATION_ENV,
    SCHEMA_VERSION,
    Calibration,
    CostModel,
    ExecutionPlan,
    Probe,
    default_calibration_path,
    describe_workload,
    enumerate_candidates,
    get_calibration,
    plan_for,
    plan_grid,
    resolve_plan,
    run_calibration,
)
from repro.sched import calibration as calibration_module
from repro.sched.calibrate import main as calibrate_main
from repro.sched.calibration import probe_drive

FAMILY_NAMES = tuple(family.name for family in list_families())

#: Probe ladder the synthetic calibrations use.
LANES_LADDER = (4, 16, 64)
SAMPLES_LADDER = (64, 256)


def synthetic_calibration(
    coeffs=None,
    pool_base: float = 0.05,
    pool_per_worker: float = 0.01,
    families=FAMILY_NAMES,
) -> Calibration:
    """A calibration whose probes follow exact synthetic cost lines.

    ``coeffs`` maps ``(backend, threads)`` to the ``(c, a)`` of
    ``seconds = samples * (c + a * lanes)`` — noiseless, so the fit
    must recover the line and the planner's choice is deterministic.
    """
    if coeffs is None:
        coeffs = {("numpy", 1): (1e-6, 1e-7)}
    probes = []
    for family in families:
        for (backend, threads), (c, a) in coeffs.items():
            for lanes in LANES_LADDER:
                for samples in SAMPLES_LADDER:
                    probes.append(
                        Probe(
                            family=family,
                            backend=backend,
                            threads=threads,
                            lanes=lanes,
                            samples=samples,
                            seconds=samples * (c + a * lanes),
                        )
                    )
    return Calibration(
        host={"hostname": "synthetic", "cpus": 8, "max_threads": 4},
        probes=tuple(probes),
        pool={
            "base_seconds": pool_base,
            "per_worker_seconds": pool_per_worker,
            "start_method": "fork",
        },
        created="2026-08-08T00:00:00",
    )


@pytest.fixture
def wide_host(monkeypatch):
    """Pretend this is an unconstrained 8-CPU / 4-thread host, so the
    planner's candidate space opens up regardless of the test runner."""
    import repro.backend as backend_pkg
    import repro.parallel.executor as executor

    monkeypatch.setattr(executor, "available_cpus", lambda: 8)
    monkeypatch.setattr(backend_pkg, "max_threads", lambda: 4)
    monkeypatch.delenv("REPRO_PARALLEL_MAX_WORKERS", raising=False)


class TestCalibrationPersistence:
    def test_roundtrip_preserves_probes_and_id(self, tmp_path):
        calibration = synthetic_calibration()
        target = calibration.save(tmp_path / "cal.json")
        loaded = Calibration.load(target)
        assert loaded.probes == calibration.probes
        assert loaded.pool == calibration.pool
        assert loaded.calibration_id == calibration.calibration_id
        assert len(loaded.calibration_id) == 12

    def test_id_is_content_addressed(self):
        a = synthetic_calibration()
        b = synthetic_calibration(pool_base=0.06)
        assert a.calibration_id != b.calibration_id
        assert a.calibration_id == synthetic_calibration().calibration_id

    def test_wrong_schema_version_rejected(self, tmp_path):
        payload = json.loads(synthetic_calibration().to_json())
        payload["schema_version"] = SCHEMA_VERSION + 1
        target = tmp_path / "cal.json"
        target.write_text(json.dumps(payload))
        with pytest.raises(ParameterError, match="schema"):
            Calibration.load(target)

    def test_non_json_rejected(self, tmp_path):
        target = tmp_path / "cal.json"
        target.write_text("not json {")
        with pytest.raises(ParameterError, match="not JSON"):
            Calibration.load(target)

    def test_missing_file_names_the_cli(self, tmp_path):
        with pytest.raises(ParameterError, match="repro.sched.calibrate"):
            Calibration.load(tmp_path / "absent.json")

    def test_env_overrides_default_path(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CALIBRATION_ENV, str(tmp_path / "here.json"))
        assert default_calibration_path() == tmp_path / "here.json"
        monkeypatch.delenv(CALIBRATION_ENV)
        assert str(default_calibration_path()).endswith("calibration.json")

    def test_accessors(self):
        calibration = synthetic_calibration(
            coeffs={("numpy", 1): (1e-6, 1e-7), ("numba", 2): (1e-7, 1e-8)}
        )
        assert calibration.backends == ("numba", "numpy")
        assert calibration.families == tuple(sorted(FAMILY_NAMES))
        assert calibration.thread_counts(FAMILY_NAMES[0], "numba") == (2,)
        assert calibration.thread_counts(FAMILY_NAMES[0], "numpy") == (1,)


class TestGetCalibration:
    def test_creates_once_then_loads(self, tmp_path, monkeypatch):
        calls = []

        def fake_run_calibration(**kwargs):
            calls.append(kwargs)
            return synthetic_calibration()

        monkeypatch.setattr(
            calibration_module, "run_calibration", fake_run_calibration
        )
        target = tmp_path / "cal.json"
        first = get_calibration(target)
        assert target.exists()
        second = get_calibration(target)
        assert len(calls) == 1  # second call loaded the persisted file
        assert first.calibration_id == second.calibration_id

    def test_create_false_requires_existing_file(self, tmp_path):
        with pytest.raises(ParameterError, match="no calibration file"):
            get_calibration(tmp_path / "absent.json", create=False)


class TestRunCalibration:
    def test_probe_budget_validated(self):
        with pytest.raises(ParameterError, match="lanes"):
            run_calibration(lanes=(0, 4), samples=(8,))
        with pytest.raises(ParameterError, match="samples"):
            run_calibration(lanes=(4,), samples=(1,))

    def test_probe_drive_shape(self):
        h = probe_drive(10e3, 32)
        assert len(h) == 32
        peak = float(np.max(np.abs(h)))
        assert 0.95 * 10e3 <= peak <= 10e3  # sine ladder spans the scale
        with pytest.raises(ParameterError, match=">= 2 samples"):
            probe_drive(10e3, 1)

    def test_tiny_real_calibration(self):
        """A real (not synthetic) calibration on this host: the probes
        run the actual fused paths and come back positive and complete,
        whatever backends the host has."""
        calibration = run_calibration(
            families=["timeless"], lanes=(2, 4), samples=(8, 16), repeats=1
        )
        assert calibration.families == ("timeless",)
        assert "numpy" in calibration.backends
        numpy_probes = [
            p
            for p in calibration.probes
            if p.backend == "numpy" and p.threads == 1
        ]
        assert {(p.lanes, p.samples) for p in numpy_probes} == {
            (2, 8), (2, 16), (4, 8), (4, 16),
        }
        assert all(p.seconds > 0.0 for p in calibration.probes)
        for key in ("hostname", "cpus", "max_threads", "numpy", "python"):
            assert key in calibration.host
        assert calibration.pool["base_seconds"] >= 0.0
        assert calibration.pool["per_worker_seconds"] >= 0.0
        # and the result is model- and persistence-ready
        CostModel.from_calibration(calibration)
        Calibration.from_json(calibration.to_json())


class TestCalibrateCli:
    def test_writes_file_and_reports(self, tmp_path, capsys):
        target = tmp_path / "cal.json"
        code = calibrate_main(
            [
                "--output", str(target),
                "--lanes", "2", "4",
                "--samples", "8", "16",
                "--repeats", "1",
            ]
        )
        assert code == 0
        calibration = Calibration.load(target)
        assert set(calibration.families) == set(FAMILY_NAMES)
        out = capsys.readouterr().out
        assert f"wrote {target}" in out
        assert calibration.calibration_id in out


class TestCostModel:
    def test_fit_recovers_synthetic_line(self):
        c, a = 2e-6, 3e-7
        model = CostModel.from_calibration(
            synthetic_calibration(coeffs={("numpy", 1): (c, a)})
        )
        fit = model.fit_for(FAMILY_NAMES[0], "numpy")
        assert fit.c == pytest.approx(c, rel=1e-6)
        assert fit.a == pytest.approx(a, rel=1e-6)
        assert model.predict_single(
            FAMILY_NAMES[0], "numpy", lanes=32, samples=1000
        ) == pytest.approx(1000 * (c + a * 32), rel=1e-6)

    def test_single_lanes_ladder_attributes_all_cost_to_lanes(self):
        probes = tuple(
            Probe(
                family="timeless",
                backend="numpy",
                threads=1,
                lanes=8,
                samples=samples,
                seconds=samples * 4e-6,
            )
            for samples in (64, 256)
        )
        calibration = synthetic_calibration()
        model = CostModel.from_calibration(
            Calibration(
                host=calibration.host, probes=probes, pool=calibration.pool
            )
        )
        fit = model.fit_for("timeless", "numpy")
        assert fit.c == 0.0
        assert fit.a == pytest.approx(4e-6 / 8, rel=1e-6)

    def test_noise_never_fits_negative_coefficients(self):
        # Decreasing seconds with lanes would fit a < 0: clamp to zero.
        probes = tuple(
            Probe(
                family="timeless",
                backend="numpy",
                threads=1,
                lanes=lanes,
                samples=64,
                seconds=64 * (1e-5 - 1e-7 * lanes),
            )
            for lanes in LANES_LADDER
        )
        calibration = synthetic_calibration()
        model = CostModel.from_calibration(
            Calibration(
                host=calibration.host, probes=probes, pool=calibration.pool
            )
        )
        fit = model.fit_for("timeless", "numpy")
        assert fit.a == 0.0
        assert fit.c >= 0.0

    def test_sharded_prediction_prices_real_decomposition(self):
        c, a = 1e-6, 1e-7
        base, per_worker = 0.05, 0.01
        model = CostModel.from_calibration(
            synthetic_calibration(
                coeffs={("numpy", 1): (c, a)},
                pool_base=base,
                pool_per_worker=per_worker,
            )
        )
        lanes, samples, workers = 10, 500, 3
        shards = plan_shards(lanes, workers)
        widest = max(stop - start for start, stop in shards)
        assert widest == 4  # 10 lanes over 3 workers: 4 + 3 + 3
        expected = (
            base + per_worker * len(shards) + samples * (c + a * widest)
        )
        assert model.predict_sharded(
            FAMILY_NAMES[0], "numpy", lanes, samples, workers
        ) == pytest.approx(expected, rel=1e-6)

    def test_unknown_groups_price_as_none(self):
        model = CostModel.from_calibration(synthetic_calibration())
        assert model.fit_for("timeless", "no-such-backend") is None
        assert model.fit_for("timeless", "numpy", threads=2) is None
        assert model.predict_single("timeless", "numpy", 4, 64, threads=2) \
            is None
        assert model.predict_sharded("no-such", "numpy", 4, 64, 2) is None

    def test_empty_calibration_rejected(self):
        calibration = synthetic_calibration()
        with pytest.raises(ParameterError, match="no probes"):
            CostModel.from_calibration(
                Calibration(
                    host=calibration.host, probes=(), pool=calibration.pool
                )
            )


class TestExecutionPlan:
    @pytest.mark.parametrize("workers", [0, -1])
    def test_sub_one_workers_rejected(self, workers):
        with pytest.raises(ParameterError, match="n_workers"):
            ExecutionPlan(backend="numpy", n_workers=workers)

    @pytest.mark.parametrize("threads", [0, -3])
    def test_sub_one_threads_rejected(self, threads):
        with pytest.raises(ParameterError, match="threads_per_worker"):
            ExecutionPlan(backend="numpy", threads_per_worker=threads)

    def test_pool_and_threads_never_compose(self):
        """The fork-safety rule is structural: such a plan cannot even
        be constructed, so no code path needs to defend against it."""
        with pytest.raises(ParameterError, match="fork"):
            ExecutionPlan(backend="numba", n_workers=2, threads_per_worker=2)

    def test_describe(self):
        assert (
            ExecutionPlan(backend="numpy", n_workers=4).describe()
            == "numpy x4w/1t"
        )
        described = ExecutionPlan(
            backend="numba",
            threads_per_worker=2,
            predicted_seconds=0.125,
        ).describe()
        assert described.startswith("numba x1w/2t")
        assert "0.125" in described


class TestDescribeWorkload:
    def test_spec_with_sample_count(self):
        spec = EnsembleSpec(family="timeless", n_cores=12, seed=1)
        assert describe_workload(spec, samples=300) == ("timeless", 12, 300)

    def test_spec_with_sample_array(self):
        spec = EnsembleSpec(family="preisach", n_cores=3, seed=1)
        assert describe_workload(spec, np.zeros(41)) == ("preisach", 3, 41)

    def test_live_batch(self):
        family = list_families()[0]
        batch = family.make_batch(5, seed=0)
        assert describe_workload(batch, samples=10) == (family.name, 5, 10)

    def test_unplannable_source_rejected(self):
        with pytest.raises(ParameterError, match="cannot plan"):
            describe_workload({"not": "a source"}, samples=10)

    def test_drive_length_required(self):
        spec = EnsembleSpec(family="timeless", n_cores=2, seed=0)
        with pytest.raises(ParameterError, match="drive length"):
            describe_workload(spec)
        with pytest.raises(ParameterError, match="0-sample"):
            describe_workload(spec, samples=0)


class TestEnumerateCandidates:
    def test_candidates_obey_hard_rules_and_ordering(self, wide_host):
        model = CostModel.from_calibration(
            synthetic_calibration(
                coeffs={("numpy", 1): (1e-6, 1e-4), ("numpy", 4): (1e-6, 3e-5)}
            )
        )
        candidates = enumerate_candidates(
            model, FAMILY_NAMES[0], lanes=64, samples=256
        )
        assert len(candidates) >= 3  # single, threaded, pooled widths
        seconds = [plan.predicted_seconds for plan in candidates]
        assert seconds == sorted(seconds)  # cheapest first
        for plan in candidates:
            # never oversubscribed, never forked around a thread pool
            assert plan.n_workers * plan.threads_per_worker <= 8
            assert not (plan.n_workers > 1 and plan.threads_per_worker > 1)
            assert plan.source == "auto"
            assert plan.calibration_id == model.calibration_id

    def test_pool_never_wider_than_lanes(self, wide_host):
        model = CostModel.from_calibration(synthetic_calibration())
        candidates = enumerate_candidates(
            model, FAMILY_NAMES[0], lanes=3, samples=256
        )
        assert max(plan.n_workers for plan in candidates) <= 3

    def test_thread_counts_above_host_cap_skipped(self, wide_host, monkeypatch):
        import repro.backend as backend_pkg

        monkeypatch.setattr(backend_pkg, "max_threads", lambda: 2)
        model = CostModel.from_calibration(
            synthetic_calibration(
                coeffs={("numpy", 1): (1e-6, 1e-4), ("numpy", 4): (0.0, 0.0)}
            )
        )
        candidates = enumerate_candidates(
            model, FAMILY_NAMES[0], lanes=64, samples=256
        )
        # threads=4 would be free, but this host cannot pin 4 threads
        assert all(plan.threads_per_worker <= 2 for plan in candidates)

    def test_uncalibrated_family_rejected(self, wide_host):
        model = CostModel.from_calibration(
            synthetic_calibration(families=("timeless",))
        )
        with pytest.raises(ParameterError, match="no probes for family"):
            enumerate_candidates(model, "preisach", lanes=4, samples=64)


class TestPlanFor:
    """Synthetic cost lines steer plan_for to each plan shape."""

    SPEC = EnsembleSpec(family="timeless", n_cores=64, seed=0)

    def test_picks_pooled_when_overhead_is_cheap(self, wide_host):
        plan = plan_for(
            self.SPEC,
            samples=4096,
            calibration=synthetic_calibration(
                coeffs={("numpy", 1): (1e-7, 1e-4)},
                pool_base=1e-3,
                pool_per_worker=1e-4,
            ),
        )
        assert plan.n_workers == 8  # widest pool wins: makespan / 8
        assert plan.threads_per_worker == 1
        assert plan.backend == "numpy"

    def test_picks_single_when_overhead_dominates(self, wide_host):
        plan = plan_for(
            self.SPEC,
            samples=64,
            calibration=synthetic_calibration(
                coeffs={("numpy", 1): (1e-9, 1e-9)},
                pool_base=5.0,
                pool_per_worker=1.0,
            ),
        )
        assert plan.n_workers == 1
        assert plan.threads_per_worker == 1

    def test_picks_threads_when_threaded_fit_is_cheapest(self, wide_host):
        plan = plan_for(
            self.SPEC,
            samples=4096,
            calibration=synthetic_calibration(
                coeffs={
                    ("numba", 1): (1e-7, 1e-4),
                    ("numba", 4): (1e-7, 1e-5),
                },
                pool_base=5.0,  # pooling priced out by fork cost
                pool_per_worker=1.0,
            ),
        )
        assert plan.backend == "numba"
        assert plan.n_workers == 1
        assert plan.threads_per_worker == 4
        assert plan.source == "auto"

    def test_respects_max_workers_cap(self, wide_host):
        plan = plan_for(
            self.SPEC,
            samples=4096,
            calibration=synthetic_calibration(
                coeffs={("numpy", 1): (1e-7, 1e-4)},
                pool_base=1e-3,
                pool_per_worker=1e-4,
            ),
            max_workers=2,
        )
        assert plan.n_workers <= 2


class TestPlanGrid:
    def test_minimises_summed_cost_over_cells(self, wide_host):
        calibration = synthetic_calibration(
            coeffs={("numpy", 1): (1e-7, 1e-4)},
            pool_base=1e-3,
            pool_per_worker=1e-4,
        )
        plan = plan_grid(
            [("timeless", 64, 4096), ("preisach", 64, 4096)],
            calibration=calibration,
        )
        assert plan.source == "auto-grid"
        assert plan.n_workers == 8
        model = CostModel.from_calibration(calibration)
        expected = sum(
            model.predict_sharded(family, "numpy", 64, 4096, 8)
            for family in ("timeless", "preisach")
        )
        assert plan.predicted_seconds == pytest.approx(expected, rel=1e-6)

    def test_shape_must_be_calibrated_for_every_family(self, wide_host):
        # "fast" is free but only calibrated for timeless: the grid
        # invariant (one backend for the whole campaign) excludes it.
        calibration = synthetic_calibration(
            coeffs={("numpy", 1): (1e-6, 1e-5)}
        )
        fast = tuple(
            Probe(
                family="timeless",
                backend="fast",
                threads=1,
                lanes=lanes,
                samples=samples,
                seconds=1e-9,
            )
            for lanes in LANES_LADDER
            for samples in SAMPLES_LADDER
        )
        calibration = Calibration(
            host=calibration.host,
            probes=calibration.probes + fast,
            pool=calibration.pool,
        )
        plan = plan_grid(
            [("timeless", 16, 256), ("preisach", 16, 256)],
            calibration=calibration,
        )
        assert plan.backend == "numpy"

    def test_empty_grid_rejected(self):
        with pytest.raises(ParameterError, match="at least one workload"):
            plan_grid([], calibration=synthetic_calibration())


class TestResolvePlan:
    def test_execution_plan_passes_through(self):
        plan = ExecutionPlan(backend="numpy", n_workers=2)
        spec = EnsembleSpec(family="timeless", n_cores=4, seed=0)
        assert resolve_plan(plan, spec, samples=10) is plan

    def test_auto_uses_persisted_calibration(
        self, tmp_path, monkeypatch, wide_host
    ):
        target = tmp_path / "cal.json"
        synthetic_calibration(
            coeffs={("numpy", 1): (1e-7, 1e-4)},
            pool_base=1e-3,
            pool_per_worker=1e-4,
        ).save(target)
        monkeypatch.setenv(CALIBRATION_ENV, str(target))
        spec = EnsembleSpec(family="timeless", n_cores=64, seed=0)
        plan = resolve_plan("auto", spec, samples=4096)
        assert plan.source == "auto"
        assert plan.n_workers == 8

    @pytest.mark.parametrize("bad", ["fast", 3, True])
    def test_other_values_rejected(self, bad):
        spec = EnsembleSpec(family="timeless", n_cores=4, seed=0)
        with pytest.raises(ParameterError, match="plan must be"):
            resolve_plan(bad, spec, samples=10)


class TestResultsHeader:
    def test_field_order_and_omission(self):
        assert results_header(backend="numpy") == "# backend: numpy\n"
        assert results_header(backend="numpy", workers=4) == (
            "# backend: numpy\n# workers: 4\n"
        )
        assert results_header(
            backend="numba", workers=1, threads=2, calibration="abc123def456"
        ) == (
            "# backend: numba\n"
            "# workers: 1\n"
            "# threads: 2\n"
            "# calibration: abc123def456\n"
        )
        assert results_header() == ""


class TestPlannerExperimentSmoke:
    def test_exp_b6_structure_and_correctness(self):
        """EXP-B6 at smoke scale: on any host (including 1 CPU) every
        measured plan must be correct and the auto plan must land; the
        timing bars are asserted only at benchmark scale."""
        result = run_experiment(
            "EXP-B6",
            sizes=(4,),
            repeats=1,
            probe_lanes=(2, 4),
            probe_samples=(8, 16),
            probe_repeats=1,
        )
        data = result.data
        assert data["sizes"] == [4]
        assert "numpy single" in data["plans"]
        assert len(data["calibration_id"]) == 12
        for row in data["rows"]:
            assert row["equivalence_ok"], row
        auto_rows = [row for row in data["rows"] if row["auto"]]
        assert len(auto_rows) == len(FAMILY_NAMES)
        for family in FAMILY_NAMES:
            cell = data[f"cells"][f"{family}@4"]
            assert cell["auto_vs_best"] > 0.0
            assert cell["spread"] >= 1.0
        assert "hand plans vs plan='auto'" in result.render()


class TestAtomicCalibrationSave:
    def test_save_replaces_in_one_rename(self, tmp_path, monkeypatch):
        """save() stages the JSON in a temp file in the target's own
        directory and os.replace()s it — same-filesystem rename, so a
        racing reader sees either the old complete file or the new."""
        import os

        target = tmp_path / "cal.json"
        synthetic_calibration().save(target)
        new = synthetic_calibration(pool_base=0.07)

        seen = {}
        real_replace = os.replace

        def tracking_replace(src, dst):
            seen["src"], seen["dst"] = str(src), str(dst)
            return real_replace(src, dst)

        monkeypatch.setattr(calibration_module.os, "replace", tracking_replace)
        new.save(target)
        assert seen["dst"] == str(target)
        from pathlib import Path

        assert Path(seen["src"]).parent == target.parent
        assert Calibration.load(target).calibration_id == new.calibration_id

    def test_failed_save_keeps_old_file_and_no_temp_litter(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "cal.json"
        old = synthetic_calibration()
        old.save(target)

        def exploding_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(
            calibration_module.os, "replace", exploding_replace
        )
        with pytest.raises(OSError, match="disk full"):
            synthetic_calibration(pool_base=0.07).save(target)
        assert Calibration.load(target).calibration_id == old.calibration_id
        assert list(tmp_path.iterdir()) == [target]


class TestWarmPoolPricing:
    def test_predict_sharded_drops_spin_up_when_warm(self):
        model = CostModel.from_calibration(synthetic_calibration())
        cold = model.predict_sharded("timeless", "numpy", 64, 256, 4)
        warm = model.predict_sharded(
            "timeless", "numpy", 64, 256, 4, warm_pool=True
        )
        shards = plan_shards(64, 4)
        overhead = 0.05 + 0.01 * len(shards)
        assert cold == pytest.approx(warm + overhead)
        widest = max(stop - start for start, stop in shards)
        assert warm == pytest.approx(256 * (1e-6 + 1e-7 * widest))

    def test_warm_pool_flips_serial_to_pooled(self, wide_host):
        """With spin-up dominating, the cold planner stays serial; the
        same workload priced against a live pool shards out."""
        calibration = synthetic_calibration(
            coeffs={("numpy", 1): (0.0, 1e-5)},
            pool_base=10.0,
            pool_per_worker=1.0,
        )
        spec = EnsembleSpec(family="timeless", n_cores=64, seed=0)
        cold = plan_for(spec, samples=1000, calibration=calibration)
        warm = plan_for(
            spec, samples=1000, calibration=calibration, warm_pool=True
        )
        assert cold.n_workers == 1
        assert warm.n_workers == 8
        assert warm.predicted_seconds < cold.predicted_seconds

    def test_warm_pool_never_changes_semantics(self, wide_host):
        """warm_pool only reprices spin-up: the candidate *set* (and so
        the executable shapes) is identical cold and warm."""
        calibration = synthetic_calibration()
        model = CostModel.from_calibration(calibration)
        cold = enumerate_candidates(model, "timeless", 64, 256)
        warm = enumerate_candidates(
            model, "timeless", 64, 256, warm_pool=True
        )
        shapes = lambda plans: sorted(
            (p.backend, p.n_workers, p.threads_per_worker) for p in plans
        )
        assert shapes(cold) == shapes(warm)


class TestBackendPinnedPlanning:
    def test_plan_for_backend_pin(self, wide_host):
        calibration = synthetic_calibration(
            coeffs={
                ("numpy", 1): (1e-6, 1e-7),
                ("numba", 1): (1e-8, 1e-9),
            }
        )
        spec = EnsembleSpec(family="timeless", n_cores=16, seed=0)
        free = plan_for(spec, samples=256, calibration=calibration)
        assert free.backend == "numba"  # the cheap synthetic line wins
        pinned = plan_for(
            spec, samples=256, calibration=calibration, backend="numpy"
        )
        assert pinned.backend == "numpy"

    def test_pin_to_uncalibrated_backend_rejected(self, wide_host):
        spec = EnsembleSpec(family="timeless", n_cores=16, seed=0)
        with pytest.raises(ParameterError, match="on backend"):
            plan_for(
                spec,
                samples=256,
                calibration=synthetic_calibration(),
                backend="cupy",
            )

    def test_plan_grid_backend_pin(self, wide_host):
        calibration = synthetic_calibration(
            coeffs={
                ("numpy", 1): (1e-6, 1e-7),
                ("numba", 1): (1e-8, 1e-9),
            }
        )
        workloads = [(name, 16, 256) for name in FAMILY_NAMES]
        free = plan_grid(workloads, calibration=calibration)
        assert free.backend == "numba"
        pinned = plan_grid(
            workloads, calibration=calibration, backend="numpy"
        )
        assert pinned.backend == "numpy"
        with pytest.raises(ParameterError, match="on backend"):
            plan_grid(workloads, calibration=calibration, backend="cupy")
