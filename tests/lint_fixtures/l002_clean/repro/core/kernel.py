"""Clean twin of the L002 fixture: np ufuncs plus exact math members
(constants and predicates are parity-safe).  Never imported."""

import math

import numpy as np


def step(x, values):
    if math.isnan(x):
        return math.inf
    return np.arctan(x) + np.sum(values)
