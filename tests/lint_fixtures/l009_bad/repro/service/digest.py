"""Seeded L009 violations in a module named like the digest module:
entropy and insertion-order iteration feeding canonical output."""

import time
import uuid


def canonical_payload(payload):
    stamp = time.time()  # entropy in a canonical payload
    token = uuid.uuid4()  # more entropy
    out = {}
    for key, item in payload.items():  # insertion order reaches output
        out[key] = item
    return {"stamp": stamp, "token": str(token), "payload": out}
