"""Dispatcher half of the clean L010 twin: every to-dispatcher tag
handled, the handshake tag constructed."""

from repro.dist.protocol import MSG_PING, MSG_PONG, recv_message, send_message


def handshake(conn):
    send_message(conn, (MSG_PING,))
    reply = recv_message(conn, 1.0)
    return reply[0] == MSG_PONG
