"""Worker half of the clean L010 twin: every to-worker tag handled."""

from repro.dist.protocol import MSG_PING, MSG_PONG, send_message


def handle(conn, message):
    kind = message[0]
    if kind == MSG_PING:
        send_message(conn, (MSG_PONG, 1))
