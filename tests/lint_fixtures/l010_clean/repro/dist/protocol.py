"""Clean twin of the L010 fixture: two tags, both constructed, both
handled, history row matching the current set."""

PROTOCOL_VERSION = 1

MSG_PING = "ping"
MSG_PONG = "pong"

TAG_HANDLERS = {
    MSG_PING: ("worker",),
    MSG_PONG: ("dispatch",),
}

TAG_HISTORY = {
    1: (MSG_PING, MSG_PONG),
}


def send_message(conn, message):
    conn.send(message)
