"""Clean twin of the L003 fixture: a module-level, closure-free,
nopython-safe loop body and its lane-major twin, registered by name."""

import math


def good_series_loop(h2d, out):
    n_samples, n_cores = h2d.shape
    for j in range(n_cores):
        acc = 0.0
        for i in range(n_samples):
            value = h2d[i, j]
            if math.isnan(value):
                value = 0.0
            acc = acc + value
            out[i, j] = acc


def good_lane_series_loop(h2d, out):
    n_samples, n_cores = h2d.shape
    for j in range(n_cores):  # prange in the real twins
        for i in range(n_samples):
            out[i, j] = h2d[i, j]


def _kernel():
    return _compiled("good", good_series_loop)  # noqa: F821  (parse-only)
