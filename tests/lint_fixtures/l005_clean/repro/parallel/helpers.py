"""Clean twin of the L005 fixture: borrowed pool left alive, attach
silences the resource tracker (the gh-82300 idiom), create-side call
tracked on purpose, immutable default.  Never imported."""

from multiprocessing import resource_tracker, shared_memory


def run_on(pool, jobs):
    return pool.map(len, jobs)


def attach(name):
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        shm = shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original
    return shm


def create(nbytes):
    return shared_memory.SharedMemory(create=True, size=nbytes)


def collect(values, into=None):
    into = [] if into is None else into
    into.extend(values)
    return into
