"""Clean twin of the dist recv fixture: the only ``recv`` call sits
inside the protocol's poll-with-deadline wrapper."""

from repro.errors import DistTimeoutError


def recv_message(conn, deadline_s):
    if not conn.poll(deadline_s):
        raise DistTimeoutError("peer went quiet past the deadline")
    return conn.recv()
