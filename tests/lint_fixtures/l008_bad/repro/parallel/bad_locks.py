"""Seeded L008 violations: an if-guarded Condition.wait and blocking
calls inside held-lock critical sections."""

import threading


class IfGuardedQueue:
    def __init__(self):
        self._cond = threading.Condition()
        self._items = []

    def get(self):
        with self._cond:
            if not self._items:
                self._cond.wait()  # predicate not re-checked after wake
            return self._items.pop()


def sends_while_locked(conn, message, send_message):
    lock = threading.Lock()
    with lock:
        send_message(conn, message)


class FansOutUnderItsLock:
    def __init__(self, ctx):
        self._lock = threading.Lock()
        self._pool = ctx.Pool(processes=2)

    def run(self, work):
        with self._lock:
            return self._pool.map(len, work)
