"""Seeded L004 violation: ``anisotropy`` is a semantic field the
digest fixture never reads.  Never imported — parsed only."""

from dataclasses import dataclass


@dataclass(frozen=True)
class EnsembleSpec:
    family: str
    n_cores: int
    seed: int = 0
    backend: "str | None" = None
    anisotropy: float = 0.0  # new semantic field, skipped by the digest
    n_workers: int = 1  # execution shape: excluded by design, no violation


@dataclass(frozen=True)
class DriveSpec:
    scenario: "str | None" = None
    h_max: "float | None" = None
