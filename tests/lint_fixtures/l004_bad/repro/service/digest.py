"""Digest half of the seeded L004 fixture: reads every field except
``anisotropy``.  Never imported — parsed only."""


def spec_digest(ensemble, drive, backend=None):
    return {
        "family": ensemble.family,
        "n_cores": ensemble.n_cores,
        "seed": ensemble.seed,
        "backend": backend or ensemble.backend,
        "drive": {"scenario": drive.scenario, "h_max": drive.h_max},
    }
