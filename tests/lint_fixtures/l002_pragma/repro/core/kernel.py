"""L002 fixture with an inline waiver: the violation on the pragma
line is suppressed, the one without a pragma still fires."""

import math


def scalar_only(x):
    return math.atan(x)  # repro-lint: disable=L002 -- deliberately scalar test path


def unwaived(x):
    return math.tanh(x)
