"""Seeded L005 violations: closing a borrowed pool, an unsilenced
SharedMemory attach, and a mutable default.  Never imported."""

from multiprocessing import shared_memory


def run_on(pool, jobs):
    results = pool.map(len, jobs)
    pool.close()  # borrowed pool: violation
    return results


def attach(name):
    # No resource-tracker silencing and no track=False: violation.
    shm = shared_memory.SharedMemory(name=name)
    return shm


def collect(values, into=[]):  # mutable default: violation
    into.extend(values)
    return into
