"""Seeded L005 violation: an un-deadlined blocking ``recv`` in dist
code — one wedged peer would hang the whole campaign.  Never
imported."""


def wait_for_reply(conn):
    return conn.recv()  # no deadline: violation
