"""Clean twin of the L008 fixture: while-predicate waits, wait_for,
and blocking work kept outside the critical section."""

import threading


class WhileGuardedQueue:
    def __init__(self):
        self._cond = threading.Condition()
        self._items = []

    def get(self):
        with self._cond:
            while not self._items:
                self._cond.wait()
            return self._items.pop()

    def get_with_wait_for(self):
        with self._cond:
            self._cond.wait_for(lambda: self._items)
            return self._items.pop()


def sends_outside_the_lock(conn, message, send_message):
    lock = threading.Lock()
    with lock:
        payload = tuple(message)
    send_message(conn, payload)


class FansOutUnlocked:
    def __init__(self, ctx):
        self._lock = threading.Lock()
        self._pool = ctx.Pool(processes=2)

    def run(self, work):
        with self._lock:
            batch = list(work)
        return self._pool.map(len, batch)
