"""Clean twin of the L009 fixture: sorted traversal, no entropy."""


def canonical_payload(payload):
    out = {}
    for key in sorted(payload, key=str):
        out[key] = payload[key]
    ordered_pairs = [(key, out[key]) for key in sorted(out)]
    return {"payload": out, "pairs": ordered_pairs}
