"""Clean twin of the L006 fixture: every lifecycle idiom the rule
must accept — try/finally, with-items, os.fdopen fd transfer, escape
to the caller, and the caller-owned pool exemption."""

import os
import tempfile
from multiprocessing.shared_memory import SharedMemory
from multiprocessing.connection import Client


def released_in_a_finally(name, flag):
    shm = SharedMemory(name=name, create=True, size=64)
    try:
        if flag:
            return shm.size
        return 0
    finally:
        shm.close()
        shm.unlink()


def held_by_a_with(address):
    with Client(address) as conn:
        return conn.recv()  # repro-lint: disable=L005 -- fixture: with-held connection, deadline out of scope here


def fd_ownership_moves_to_the_file_object():
    fd, path = tempfile.mkstemp(suffix=".json")
    with os.fdopen(fd, "w") as handle:
        handle.write("{}")
    os.unlink(path)
    return path


def escapes_to_the_caller(name):
    """Returned handles are the caller's to close."""
    shm = SharedMemory(name=name, create=True, size=64)
    return shm


def borrowed_pools_are_not_acquisitions(pool, jobs):
    """A caller-owned pool is never this function's to release."""
    return [pool_job for pool_job in jobs]
