"""Seeded L001 violations: ``parallel`` reaching up to ``service``.

Never imported — parsed by the linter only.
"""

from repro.service.cache import ResultCache  # eager upward: violation


def lazy_upward():
    # Lazy, but (parallel, service) is not on the allowlist: violation.
    from repro.service.pool import WorkerPool

    return WorkerPool, ResultCache
