"""Seeded L006 violations: handles with release-free paths to exit."""

import tempfile
from multiprocessing.shared_memory import SharedMemory
from multiprocessing.connection import Client


def leaks_on_the_else_branch(name, flag):
    """Released only when ``flag`` holds — the else path leaks."""
    shm = SharedMemory(name=name, create=True, size=64)
    if flag:
        shm.close()
        shm.unlink()


def leaks_past_an_early_return(address, probe):
    """The early return skips the close entirely."""
    conn = Client(address)
    if probe:
        return True
    conn.close()
    return False


def never_releases_at_all():
    """Acquired, used, forgotten."""
    fd, path = tempfile.mkstemp(suffix=".json")
    return path
