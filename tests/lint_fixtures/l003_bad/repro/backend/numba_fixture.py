"""Seeded L003 violations: kernel bodies that stop being plain
importable functions.  Never imported — parsed only (the bare
``_compiled`` names would not resolve at runtime)."""


def make_loop(scale):
    def hidden_series_loop(x):  # nested: a closure, not importable
        return x * scale

    return hidden_series_loop


def bad_series_loop(out, n):
    with open("x") as handle:  # context manager: not nopython-safe
        out[0] = n + len(handle.name)


def _kernel():
    return _compiled("bad", lambda x: x)  # noqa: F821  (parse-only fixture)
