"""Worker half of the seeded L010 fixture: the ping arm exists, but
the handler arm a fuller protocol would need has been deleted."""

from repro.dist.protocol import MSG_PING, MSG_PONG, send_message


def handle(conn, message):
    kind = message[0]
    if kind == MSG_PING:
        send_message(conn, (MSG_PONG, 1))
