"""Dispatcher half of the seeded L010 fixture: constructs the reset
request whose worker-side handler arm no longer exists."""

from repro.dist.protocol import (
    MSG_PING,
    MSG_PONG,
    MSG_RESET,
    recv_message,
    send_message,
)


def handshake(conn):
    send_message(conn, (MSG_PING,))
    reply = recv_message(conn, 1.0)
    return reply[0] == MSG_PONG


def reset(conn):
    send_message(conn, (MSG_RESET,))
