"""Seeded L010 violations, one per failure class:

* ``MSG_NUDGE`` — dead vocabulary: never constructed, and missing
  from ``TAG_HANDLERS`` entirely;
* ``MSG_RESET`` — declared and constructed, but its handler arm in
  ``worker.py`` has been deleted;
* ``TAG_HISTORY`` — still records the version-1 set from before the
  vocabulary grew, without a ``PROTOCOL_VERSION`` bump.
"""

PROTOCOL_VERSION = 1

MSG_PING = "ping"
MSG_PONG = "pong"
MSG_NUDGE = "nudge"
MSG_RESET = "reset"

TAG_HANDLERS = {
    MSG_PING: ("worker",),
    MSG_PONG: ("dispatch",),
    MSG_RESET: ("worker",),
    # MSG_NUDGE missing: no module declared to handle it.
}

TAG_HISTORY = {
    1: (MSG_PING, MSG_PONG),  # stale: "nudge" and "reset" joined since
}


def send_message(conn, message):
    conn.send(message)
