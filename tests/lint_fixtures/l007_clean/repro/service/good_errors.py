"""Clean twin of the L007 fixture: taxonomy raises, handled catches."""

import logging

from repro.errors import ParameterError, ReproError

_log = logging.getLogger(__name__)


class ServiceScopedError(ReproError):
    """Locally defined subclasses stay inside the taxonomy."""


def parses_inside_the_taxonomy(text):
    if not text:
        raise ParameterError("empty request")
    return text.strip()


def raises_a_local_subclass(flag):
    if flag:
        raise ServiceScopedError("locally rooted, still a ReproError")
    return flag


def logs_the_degradation(record):
    try:
        return int(record["n"])
    except Exception as exc:
        _log.warning("record %r unusable, counting it as zero: %s", record, exc)
    return 0


def returns_an_error_marker(record):
    try:
        return int(record["n"])
    except Exception:
        return None


def reraises_wrapped(record):
    try:
        return int(record["n"])
    except Exception as exc:
        raise ParameterError(f"record {record!r} is not countable") from exc
