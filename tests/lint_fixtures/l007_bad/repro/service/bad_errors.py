"""Seeded L007 violations: a builtin raise and a silent swallow."""


def parses_with_a_builtin_raise(text):
    if not text:
        raise ValueError("empty request")  # escapes the ReproError taxonomy
    return text.strip()


def swallows_in_silence(record):
    try:
        return int(record["n"])
    except Exception:
        pass
    return 0
