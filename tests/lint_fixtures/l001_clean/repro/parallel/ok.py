"""Clean twin of the L001 fixture: downward eager imports plus the
documented (parallel, sched) lazy cycle break.  Never imported."""

from repro.batch.sweep import run_batch_series  # downward: fine
from repro.errors import ParameterError  # foundation: fine


def plan_hook(plan):
    # The documented lazy cycle break — allowlisted in repro.lint.layers.
    from repro.sched.planner import resolve_plan

    if plan is None:
        raise ParameterError("no plan")
    return resolve_plan, run_batch_series
