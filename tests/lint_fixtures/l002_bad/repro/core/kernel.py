"""Seeded L002 violations in a kernel-parity module name.

Never imported — parsed by the linter only.
"""

import math


def step(x, values):
    angle = math.atan(x)  # libm transcendental: violation
    total = sum(values)  # left-to-right float accumulation: violation
    return angle + total
