"""Clean twin of the L004 fixture: every semantic field is read by
the digest, the execution-shape field is excluded by the documented
list.  Never imported — parsed only."""

from dataclasses import dataclass


@dataclass(frozen=True)
class EnsembleSpec:
    family: str
    n_cores: int
    seed: int = 0
    backend: "str | None" = None
    n_workers: int = 1  # execution shape: excluded by design


@dataclass(frozen=True)
class DriveSpec:
    scenario: "str | None" = None
    h_max: "float | None" = None
