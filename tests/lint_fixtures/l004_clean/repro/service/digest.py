"""Digest half of the clean L004 twin: reads every semantic field."""


def spec_digest(ensemble, drive, backend=None):
    return {
        "family": ensemble.family,
        "n_cores": ensemble.n_cores,
        "seed": ensemble.seed,
        "backend": backend or ensemble.backend,
        "drive": {"scenario": drive.scenario, "h_max": drive.h_max},
    }
