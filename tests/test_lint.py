"""repro.lint — the AST invariant checker.

Every rule must catch its seeded-violation fixture, pass its clean
twin, respect inline ``disable=`` pragmas, and the real source tree
must be clean (the CI gate in executable form).
"""

from __future__ import annotations

import ast
import json
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.errors import ParameterError
from repro.lint import (
    DEFAULT_ROOT,
    Rule,
    Violation,
    get_rule,
    lint_paths,
    list_rules,
    register_rule,
)
from repro.lint.base import _RULES, Module
from repro.lint.cfg import STMT, build_cfg
from repro.lint.layers import LAYER_ORDER, LAZY_ALLOWLIST, RANK, rank_of

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO_ROOT = Path(__file__).resolve().parents[1]

ALL_RULES = (
    "L001",
    "L002",
    "L003",
    "L004",
    "L005",
    "L006",
    "L007",
    "L008",
    "L009",
    "L010",
)


def rules_hit(paths, **kwargs):
    violations, _ = lint_paths(paths, **kwargs)
    return violations, {v.rule for v in violations}


# ---------------------------------------------------------------------------
# Fixtures: every rule catches its seeded violation and passes its twin
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("rule_id", ALL_RULES)
def test_rule_catches_seeded_fixture(rule_id):
    bad = FIXTURES / f"{rule_id.lower()}_bad"
    _, hit = rules_hit([bad])
    assert rule_id in hit, f"{rule_id} missed its seeded fixture"


@pytest.mark.parametrize("rule_id", ALL_RULES)
def test_rule_passes_clean_twin(rule_id):
    clean = FIXTURES / f"{rule_id.lower()}_clean"
    violations, hit = rules_hit([clean], select=[rule_id])
    assert not violations, (
        f"{rule_id} false-positives on its clean twin: "
        + "; ".join(v.render() for v in violations)
    )


def test_l001_flags_both_eager_and_unlisted_lazy():
    violations = rules_hit([FIXTURES / "l001_bad"], select=["L001"])[0]
    messages = "\n".join(v.message for v in violations)
    assert "module-level import" in messages
    assert "lazy import" in messages
    assert len(violations) == 2


def test_l002_reports_both_transcendental_and_sum():
    violations = rules_hit([FIXTURES / "l002_bad"], select=["L002"])[0]
    messages = "\n".join(v.message for v in violations)
    assert "math.atan" in messages and "np.arctan" in messages
    assert "sum()" in messages


def test_l003_reports_nested_body_with_block_and_lambda():
    violations = rules_hit([FIXTURES / "l003_bad"], select=["L003"])[0]
    messages = "\n".join(v.message for v in violations)
    assert "not module-level" in messages
    assert "context managers" in messages
    assert "_compiled()" in messages


def test_l004_names_the_skipped_field_and_excludes_execution_shape():
    violations = rules_hit([FIXTURES / "l004_bad"], select=["L004"])[0]
    assert len(violations) == 1
    assert "'anisotropy'" in violations[0].message
    # n_workers is execution shape — excluded, not a violation.
    assert "n_workers" not in violations[0].message


def test_l005_reports_all_four_hygiene_classes():
    violations = rules_hit([FIXTURES / "l005_bad"], select=["L005"])[0]
    messages = "\n".join(v.message for v in violations)
    assert "caller-owned pool" in messages
    assert "resource tracker" in messages
    assert "mutable default" in messages
    assert "recv_message" in messages
    assert len(violations) == 4


def test_l006_reports_path_leak_and_never_released():
    violations = rules_hit([FIXTURES / "l006_bad"], select=["L006"])[0]
    messages = "\n".join(v.message for v in violations)
    # Two flow shapes: a branch that skips the release, and a handle
    # that has no release at all.
    assert "skips every release" in messages
    assert "never released" in messages
    assert "SharedMemory handle 'shm'" in messages
    assert "fd handle 'fd'" in messages
    assert len(violations) == 3


def test_l007_reports_foreign_raise_and_silent_swallow():
    violations = rules_hit([FIXTURES / "l007_bad"], select=["L007"])[0]
    messages = "\n".join(v.message for v in violations)
    assert "escapes the ReproError taxonomy" in messages
    assert "swallows every failure in silence" in messages
    assert len(violations) == 2


def test_l008_reports_unlooped_wait_and_blocking_under_lock():
    violations = rules_hit([FIXTURES / "l008_bad"], select=["L008"])[0]
    messages = "\n".join(v.message for v in violations)
    assert "outside a while-predicate loop" in messages
    assert "send_message() while holding lock" in messages
    assert "self._pool.map() while holding self._lock" in messages
    assert len(violations) == 3


def test_l009_reports_entropy_and_unsorted_iteration():
    violations = rules_hit([FIXTURES / "l009_bad"], select=["L009"])[0]
    messages = "\n".join(v.message for v in violations)
    assert "time.time() injects entropy" in messages
    assert "uuid.uuid4() injects entropy" in messages
    assert "insertion/hash order" in messages
    assert len(violations) == 3


def test_l010_reports_all_four_protocol_drifts():
    violations = rules_hit([FIXTURES / "l010_bad"], select=["L010"])[0]
    messages = "\n".join(v.message for v in violations)
    assert "never constructed" in messages
    assert "missing from TAG_HANDLERS" in messages
    assert "must bump PROTOCOL_VERSION" in messages
    assert "the handler arm is missing" in messages
    assert len(violations) == 4
    # The missing-arm finding points at the handler module, not the
    # protocol module.
    arm = [v for v in violations if "handler arm" in v.message]
    assert arm[0].path.endswith("worker.py")


@pytest.mark.parametrize(
    "module_name, kept_handler",
    [
        # Delete the worker's MSG_PING arm; keep MSG_PONG constructed.
        (
            "worker.py",
            "from repro.dist.protocol import MSG_PONG, send_message\n"
            "\n\n"
            "def handle(conn, message):\n"
            "    send_message(conn, (MSG_PONG, 1))\n",
        ),
        # Delete the dispatcher's MSG_PONG arm; keep MSG_PING constructed.
        (
            "dispatch.py",
            "from repro.dist.protocol import MSG_PING, send_message\n"
            "\n\n"
            "def handshake(conn):\n"
            "    send_message(conn, (MSG_PING,))\n",
        ),
    ],
)
def test_l010_flags_any_deleted_handler_arm(tmp_path, module_name, kept_handler):
    """The full-tag-set round trip: start from the clean twin, delete
    one handler arm, and the rule must name that module."""
    target = tmp_path / "copy"
    shutil.copytree(FIXTURES / "l010_clean", target)
    (target / "repro" / "dist" / module_name).write_text(kept_handler)
    violations, hit = rules_hit([target], select=["L010"])
    assert hit == {"L010"}
    assert len(violations) == 1
    assert "the handler arm is missing" in violations[0].message
    assert violations[0].path.endswith(module_name)


# ---------------------------------------------------------------------------
# Pragmas
# ---------------------------------------------------------------------------


def test_pragma_suppresses_only_its_line():
    violations = rules_hit([FIXTURES / "l002_pragma"], select=["L002"])[0]
    assert len(violations) == 1
    assert "math.tanh" in violations[0].message


def test_pragma_parsing_multiple_rules_and_justification():
    source = "x = 1  # repro-lint: disable=L001, L002 -- reason here\n"
    module = Module(FIXTURES / "l002_bad" / "repro" / "core" / "kernel.py", source)
    assert module.pragmas == {1: frozenset({"L001", "L002"})}


# ---------------------------------------------------------------------------
# The real tree is clean (same property the CI gate enforces)
# ---------------------------------------------------------------------------


def test_real_tree_is_clean():
    violations, n_files = lint_paths([DEFAULT_ROOT])
    assert n_files > 100  # the whole src/repro tree, not a subset
    assert not violations, "\n".join(v.render() for v in violations)


def test_cli_exits_zero_on_real_tree_and_nonzero_on_fixture():
    env_path = str(REPO_ROOT / "src")
    ok = subprocess.run(
        [sys.executable, "-m", "repro.lint", "--format", "json"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
    )
    assert ok.returncode == 0, ok.stdout + ok.stderr
    report = json.loads(ok.stdout)
    assert report["count"] == 0 and report["files"] > 100
    assert report["rules"] == list(ALL_RULES)

    bad = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.lint",
            "--format",
            "json",
            str(FIXTURES / "l001_bad"),
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
    )
    assert bad.returncode == 1
    report = json.loads(bad.stdout)
    assert report["count"] == 2
    assert {v["rule"] for v in report["violations"]} == {"L001"}


def test_cli_github_format_emits_workflow_annotations():
    env_path = str(REPO_ROOT / "src")
    bad = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.lint",
            "--format",
            "github",
            str(FIXTURES / "l001_bad"),
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
    )
    assert bad.returncode == 1
    annotations = [
        line for line in bad.stdout.splitlines() if line.startswith("::error ")
    ]
    assert len(annotations) == 2
    first = annotations[0]
    # ::error file=...,line=...,col=...,title=L001 layer-order::message
    assert "file=tests/lint_fixtures/l001_bad" in first
    assert "title=L001 layer-order::" in first
    # columns are 1-based in workflow-command land
    assert ",col=0," not in first


# ---------------------------------------------------------------------------
# The CFG core: path enumeration and the all-paths release query
# ---------------------------------------------------------------------------


def _cfg_of(source: str):
    tree = ast.parse(textwrap.dedent(source).strip())
    return build_cfg(tree.body[0])


def _node_at(cfg, line: int) -> int:
    for node in cfg.nodes:
        if node.kind == STMT and node.line == line:
            return node.index
    raise AssertionError(f"no statement node at line {line}")


class TestCFG:
    def test_if_else_enumerates_both_arms(self):
        cfg = _cfg_of(
            """
            def f(flag):
                if flag:
                    a = 1
                else:
                    b = 2
                return flag
            """
        )
        lines = {tuple(p) for p in cfg.path_lines()}
        assert (2, 3, 6) in lines  # then arm
        assert (2, 5, 6) in lines  # else arm
        assert len(lines) == 2

    def test_bare_if_keeps_the_fallthrough_path(self):
        cfg = _cfg_of(
            """
            def f(flag):
                if flag:
                    a = 1
                return flag
            """
        )
        lines = {tuple(p) for p in cfg.path_lines()}
        assert (2, 3, 4) in lines and (2, 4) in lines

    def test_early_return_routes_through_finally(self):
        cfg = _cfg_of(
            """
            def f(res):
                try:
                    if res:
                        return 1
                    x = 2
                finally:
                    res.close()
                return 3
            """
        )
        close_line = 7
        for path in cfg.path_lines():
            if 4 in path:  # the early return...
                assert close_line in path  # ...still runs the finally
        # and the normal continuation exists too
        assert any(8 in path for path in cfg.path_lines())

    def test_loop_has_back_edge_and_zero_iteration_path(self):
        cfg = _cfg_of(
            """
            def f(xs):
                for x in xs:
                    x = x + 1
                return xs
            """
        )
        header, body = _node_at(cfg, 2), _node_at(cfg, 3)
        assert header in cfg.nodes[body].succ  # back edge
        # maybe-zero-iteration: the loop header falls through directly
        assert (2, 4) in {tuple(p) for p in cfg.path_lines()}

    def test_break_reaches_the_statement_after_the_loop(self):
        cfg = _cfg_of(
            """
            def f(xs):
                while xs:
                    if xs:
                        break
                    xs = None
                return xs
            """
        )
        assert cfg.reaches_exit_avoiding(_node_at(cfg, 4), avoid=set())
        # break jumps over the rest of the body: no path pairs 4 with 5
        for path in cfg.path_lines():
            assert not (4 in path and 5 in path)

    def test_with_body_is_sequential_flow(self):
        cfg = _cfg_of(
            """
            def f(conn):
                with conn:
                    x = 1
                return x
            """
        )
        assert {tuple(p) for p in cfg.path_lines()} == {(2, 3, 4)}

    def test_try_body_has_exception_edges_into_its_handler(self):
        cfg = _cfg_of(
            """
            def f(res):
                try:
                    risky(res)
                except ValueError:
                    res.close()
                return res
            """
        )
        body, handler = _node_at(cfg, 3), _node_at(cfg, 4)
        assert handler in cfg.nodes[body].succ_except

    def test_reaches_exit_avoiding_is_the_release_query(self):
        leaky = _cfg_of(
            """
            def f(make, flag):
                h = make()
                if flag:
                    h.close()
                return 1
            """
        )
        assert leaky.reaches_exit_avoiding(
            _node_at(leaky, 2), avoid={_node_at(leaky, 4)}
        )

        held = _cfg_of(
            """
            def f(make):
                h = make()
                try:
                    work(h)
                finally:
                    h.close()
            """
        )
        assert not held.reaches_exit_avoiding(
            _node_at(held, 2), avoid={_node_at(held, 6)}
        )

    def test_skip_initial_exception_edges_exempts_failed_acquisition(self):
        cfg = _cfg_of(
            """
            def f(make):
                try:
                    h = make()
                except OSError:
                    return None
                h.close()
            """
        )
        acq, close = _node_at(cfg, 3), _node_at(cfg, 6)
        # With the acquisition's own raise path included, the handler's
        # early return routes around close()...
        assert cfg.reaches_exit_avoiding(acq, avoid={close})
        # ...but a constructor that raised produced nothing to leak, so
        # L006-style queries drop that initial edge and find no escape.
        assert not cfg.reaches_exit_avoiding(
            acq, avoid={close}, skip_initial_exception_edges=True
        )


# ---------------------------------------------------------------------------
# Selection, registry, runner plumbing
# ---------------------------------------------------------------------------


def test_select_and_ignore():
    bad = FIXTURES / "l002_bad"
    assert rules_hit([bad], select=["L001"])[1] == set()
    assert rules_hit([bad], ignore=["L002"])[1] == set()
    assert rules_hit([bad], select=["L002"])[1] == {"L002"}
    with pytest.raises(ParameterError, match="unknown lint rule"):
        lint_paths([bad], select=["L999"])


def test_registry_lists_ten_rules_and_rejects_duplicates():
    ids = [cls.id for cls in list_rules()]
    assert ids == list(ALL_RULES)
    assert get_rule("L001").name == "layer-order"
    assert get_rule("L006").name == "resource-lifecycle"
    assert get_rule("L010").name == "protocol-exhaustiveness"
    with pytest.raises(ParameterError, match="duplicate lint rule"):

        @register_rule
        class Duplicate(Rule):
            id = "L001"

    # a new id registers and unregisters cleanly (the backend idiom)
    @register_rule
    class Custom(Rule):
        id = "L999"
        name = "custom"

        def check_module(self, module):
            return [Violation("L999", str(module.path), 1, 0, "hello")]

    try:
        hit = rules_hit([FIXTURES / "l002_clean"], select=["L999"])[1]
        assert hit == {"L999"}
    finally:
        del _RULES["L999"]


def test_syntax_error_becomes_e000(tmp_path):
    broken = tmp_path / "repro" / "core"
    broken.mkdir(parents=True)
    (broken / "oops.py").write_text("def broken(:\n")
    violations, _ = lint_paths([tmp_path])
    assert [v.rule for v in violations] == ["E000"]


def test_unknown_path_is_an_error(tmp_path):
    with pytest.raises(ParameterError, match="not a Python file"):
        lint_paths([tmp_path / "missing.py"])


# ---------------------------------------------------------------------------
# The layer table itself
# ---------------------------------------------------------------------------


def test_layer_table_covers_every_real_package():
    packages = {
        child.name
        for child in (DEFAULT_ROOT).iterdir()
        if child.is_dir() and (child / "__init__.py").exists()
    }
    packages |= {"repro", "constants", "errors"}
    assert packages <= set(RANK), sorted(packages - set(RANK))


def test_layer_invariants_parallel_service_sched():
    assert RANK["parallel"] < RANK["service"]  # parallel never imports service
    assert RANK["sched"] > RANK["parallel"]  # sched sits above parallel
    assert ("parallel", "sched") in LAZY_ALLOWLIST  # the documented break
    assert ("parallel", "service") not in LAZY_ALLOWLIST
    assert rank_of("nonexistent") is None
    assert len([p for layer in LAYER_ORDER for p in layer]) == len(RANK)
