"""repro.lint — the AST invariant checker.

Every rule must catch its seeded-violation fixture, pass its clean
twin, respect inline ``disable=`` pragmas, and the real source tree
must be clean (the CI gate in executable form).
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import ParameterError
from repro.lint import (
    DEFAULT_ROOT,
    Rule,
    Violation,
    get_rule,
    lint_paths,
    list_rules,
    register_rule,
)
from repro.lint.base import _RULES, Module
from repro.lint.layers import LAYER_ORDER, LAZY_ALLOWLIST, RANK, rank_of

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO_ROOT = Path(__file__).resolve().parents[1]

ALL_RULES = ("L001", "L002", "L003", "L004", "L005")


def rules_hit(paths, **kwargs):
    violations, _ = lint_paths(paths, **kwargs)
    return violations, {v.rule for v in violations}


# ---------------------------------------------------------------------------
# Fixtures: every rule catches its seeded violation and passes its twin
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("rule_id", ALL_RULES)
def test_rule_catches_seeded_fixture(rule_id):
    bad = FIXTURES / f"{rule_id.lower()}_bad"
    _, hit = rules_hit([bad])
    assert rule_id in hit, f"{rule_id} missed its seeded fixture"


@pytest.mark.parametrize("rule_id", ALL_RULES)
def test_rule_passes_clean_twin(rule_id):
    clean = FIXTURES / f"{rule_id.lower()}_clean"
    violations, hit = rules_hit([clean], select=[rule_id])
    assert not violations, (
        f"{rule_id} false-positives on its clean twin: "
        + "; ".join(v.render() for v in violations)
    )


def test_l001_flags_both_eager_and_unlisted_lazy():
    violations = rules_hit([FIXTURES / "l001_bad"], select=["L001"])[0]
    messages = "\n".join(v.message for v in violations)
    assert "module-level import" in messages
    assert "lazy import" in messages
    assert len(violations) == 2


def test_l002_reports_both_transcendental_and_sum():
    violations = rules_hit([FIXTURES / "l002_bad"], select=["L002"])[0]
    messages = "\n".join(v.message for v in violations)
    assert "math.atan" in messages and "np.arctan" in messages
    assert "sum()" in messages


def test_l003_reports_nested_body_with_block_and_lambda():
    violations = rules_hit([FIXTURES / "l003_bad"], select=["L003"])[0]
    messages = "\n".join(v.message for v in violations)
    assert "not module-level" in messages
    assert "context managers" in messages
    assert "_compiled()" in messages


def test_l004_names_the_skipped_field_and_excludes_execution_shape():
    violations = rules_hit([FIXTURES / "l004_bad"], select=["L004"])[0]
    assert len(violations) == 1
    assert "'anisotropy'" in violations[0].message
    # n_workers is execution shape — excluded, not a violation.
    assert "n_workers" not in violations[0].message


def test_l005_reports_all_four_hygiene_classes():
    violations = rules_hit([FIXTURES / "l005_bad"], select=["L005"])[0]
    messages = "\n".join(v.message for v in violations)
    assert "caller-owned pool" in messages
    assert "resource tracker" in messages
    assert "mutable default" in messages
    assert "recv_message" in messages
    assert len(violations) == 4


# ---------------------------------------------------------------------------
# Pragmas
# ---------------------------------------------------------------------------


def test_pragma_suppresses_only_its_line():
    violations = rules_hit([FIXTURES / "l002_pragma"], select=["L002"])[0]
    assert len(violations) == 1
    assert "math.tanh" in violations[0].message


def test_pragma_parsing_multiple_rules_and_justification():
    source = "x = 1  # repro-lint: disable=L001, L002 -- reason here\n"
    module = Module(FIXTURES / "l002_bad" / "repro" / "core" / "kernel.py", source)
    assert module.pragmas == {1: frozenset({"L001", "L002"})}


# ---------------------------------------------------------------------------
# The real tree is clean (same property the CI gate enforces)
# ---------------------------------------------------------------------------


def test_real_tree_is_clean():
    violations, n_files = lint_paths([DEFAULT_ROOT])
    assert n_files > 100  # the whole src/repro tree, not a subset
    assert not violations, "\n".join(v.render() for v in violations)


def test_cli_exits_zero_on_real_tree_and_nonzero_on_fixture():
    env_path = str(REPO_ROOT / "src")
    ok = subprocess.run(
        [sys.executable, "-m", "repro.lint", "--format", "json"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
    )
    assert ok.returncode == 0, ok.stdout + ok.stderr
    report = json.loads(ok.stdout)
    assert report["count"] == 0 and report["files"] > 100
    assert report["rules"] == list(ALL_RULES)

    bad = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.lint",
            "--format",
            "json",
            str(FIXTURES / "l001_bad"),
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
    )
    assert bad.returncode == 1
    report = json.loads(bad.stdout)
    assert report["count"] == 2
    assert {v["rule"] for v in report["violations"]} == {"L001"}


# ---------------------------------------------------------------------------
# Selection, registry, runner plumbing
# ---------------------------------------------------------------------------


def test_select_and_ignore():
    bad = FIXTURES / "l002_bad"
    assert rules_hit([bad], select=["L001"])[1] == set()
    assert rules_hit([bad], ignore=["L002"])[1] == set()
    assert rules_hit([bad], select=["L002"])[1] == {"L002"}
    with pytest.raises(ParameterError, match="unknown lint rule"):
        lint_paths([bad], select=["L999"])


def test_registry_lists_five_rules_and_rejects_duplicates():
    ids = [cls.id for cls in list_rules()]
    assert ids == list(ALL_RULES)
    assert get_rule("L001").name == "layer-order"
    with pytest.raises(ParameterError, match="duplicate lint rule"):

        @register_rule
        class Duplicate(Rule):
            id = "L001"

    # a new id registers and unregisters cleanly (the backend idiom)
    @register_rule
    class Custom(Rule):
        id = "L999"
        name = "custom"

        def check_module(self, module):
            return [Violation("L999", str(module.path), 1, 0, "hello")]

    try:
        hit = rules_hit([FIXTURES / "l002_clean"], select=["L999"])[1]
        assert hit == {"L999"}
    finally:
        del _RULES["L999"]


def test_syntax_error_becomes_e000(tmp_path):
    broken = tmp_path / "repro" / "core"
    broken.mkdir(parents=True)
    (broken / "oops.py").write_text("def broken(:\n")
    violations, _ = lint_paths([tmp_path])
    assert [v.rule for v in violations] == ["E000"]


def test_unknown_path_is_an_error(tmp_path):
    with pytest.raises(ParameterError, match="not a Python file"):
        lint_paths([tmp_path / "missing.py"])


# ---------------------------------------------------------------------------
# The layer table itself
# ---------------------------------------------------------------------------


def test_layer_table_covers_every_real_package():
    packages = {
        child.name
        for child in (DEFAULT_ROOT).iterdir()
        if child.is_dir() and (child / "__init__.py").exists()
    }
    packages |= {"repro", "constants", "errors"}
    assert packages <= set(RANK), sorted(packages - set(RANK))


def test_layer_invariants_parallel_service_sched():
    assert RANK["parallel"] < RANK["service"]  # parallel never imports service
    assert RANK["sched"] > RANK["parallel"]  # sched sits above parallel
    assert ("parallel", "sched") in LAZY_ALLOWLIST  # the documented break
    assert ("parallel", "service") not in LAZY_ALLOWLIST
    assert rank_of("nonexistent") is None
    assert len([p for layer in LAYER_ORDER for p in layer]) == len(RANK)
