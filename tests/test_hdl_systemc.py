"""Tests for the SystemC-style JA implementation."""

import numpy as np
import pytest

from repro.analysis.comparison import compare_bh_curves
from repro.analysis.stability import audit_trajectory
from repro.core.model import TimelessJAModel
from repro.core.sweep import run_sweep, waypoint_samples
from repro.hdl.kernel import Scheduler, SimTime
from repro.hdl.systemc import (
    FieldStimulus,
    JACoreModule,
    SystemCTestbench,
    run_systemc_sweep,
)
from repro.ja.parameters import PAPER_PARAMETERS
from repro.waveforms.sweeps import major_loop_waypoints


class TestFieldStimulus:
    def test_emits_all_samples(self):
        scheduler = Scheduler()
        sig = scheduler.signal("H", 0.0)
        samples = [1.0, 2.0, 3.0, 4.0]
        stim = FieldStimulus(scheduler, "stim", sig, samples, tick=SimTime.ns(1))
        scheduler.run()
        assert stim.done
        assert stim.index == 4
        assert sig.read() == 4.0

    def test_one_sample_per_tick(self):
        scheduler = Scheduler()
        sig = scheduler.signal("H", 0.0)
        FieldStimulus(scheduler, "stim", sig, [1.0, 2.0, 3.0], tick=SimTime.ns(2))
        scheduler.run()
        # Samples at 0, 2, 4 ns.
        assert scheduler.now == SimTime.ns(4)

    def test_empty_sample_list_rejected(self):
        scheduler = Scheduler()
        sig = scheduler.signal("H", 0.0)
        from repro.errors import WaveformError

        with pytest.raises(WaveformError):
            FieldStimulus(scheduler, "stim", sig, [])


class TestJACoreModule:
    def _build(self, samples, dhmax=50.0):
        scheduler = Scheduler()
        sig = scheduler.signal("H", float("nan"))
        module = JACoreModule(
            scheduler, "ja", PAPER_PARAMETERS, sig, dhmax=dhmax
        )
        FieldStimulus(scheduler, "stim", sig, samples)
        return scheduler, module

    def test_small_excursions_never_trigger_integral(self):
        scheduler, module = self._build([0.0, 10.0, 20.0, 30.0])
        scheduler.run()
        assert module.euler_steps == 0
        assert module.mirr == 0.0

    def test_large_excursion_triggers_integral_once(self):
        scheduler, module = self._build([0.0, 75.0])
        scheduler.run()
        assert module.euler_steps == 1
        assert module.lasth == 75.0

    def test_reversible_part_responds_without_events(self):
        scheduler, module = self._build([0.0, 30.0])
        scheduler.run()
        assert module.mrev > 0.0
        assert module.mtotal == pytest.approx(module.mrev)

    def test_b_signal_written(self):
        scheduler, module = self._build([0.0, 2000.0])
        scheduler.run()
        assert module.b_sig.read() != 0.0

    def test_area_scales_flux_output(self):
        samples = waypoint_samples([0.0, 5000.0], 25.0)
        unit = run_systemc_sweep(PAPER_PARAMETERS, samples, dhmax=50.0)
        doubled = run_systemc_sweep(
            PAPER_PARAMETERS, samples, dhmax=50.0, area=2.0
        )
        assert np.allclose(doubled.b, 2.0 * unit.b)

    def test_counters_mirror_functional_core(self):
        waypoints = major_loop_waypoints(10e3, cycles=1)
        samples = waypoint_samples(waypoints, 12.5)
        systemc = run_systemc_sweep(PAPER_PARAMETERS, samples, dhmax=50.0)
        model = TimelessJAModel(PAPER_PARAMETERS, dhmax=50.0)
        functional = run_sweep(model, waypoints, driver_step=12.5)
        assert systemc.euler_steps == functional.euler_steps
        assert systemc.clamped_slopes == functional.clamped_slopes


class TestEquivalenceWithFunctionalCore:
    """EXP-T1's inner assertion, kept as a fast regression test."""

    def test_b_curves_virtually_identical(self):
        waypoints = major_loop_waypoints(10e3, cycles=1)
        samples = waypoint_samples(waypoints, 25.0)
        systemc = run_systemc_sweep(PAPER_PARAMETERS, samples, dhmax=100.0)
        model = TimelessJAModel(PAPER_PARAMETERS, dhmax=100.0)
        functional = run_sweep(model, waypoints, driver_step=25.0)
        distance = compare_bh_curves(
            systemc.h, systemc.b, functional.h, functional.b
        )
        b_swing = float(systemc.b.max() - systemc.b.min())
        assert distance.max_abs / b_swing < 0.05

    def test_same_h_grid(self):
        waypoints = major_loop_waypoints(5e3, cycles=1)
        samples = waypoint_samples(waypoints, 25.0)
        systemc = run_systemc_sweep(PAPER_PARAMETERS, samples, dhmax=100.0)
        assert np.array_equal(systemc.h, samples)


class TestTestbench:
    def test_result_lengths_match_driver(self):
        samples = waypoint_samples([0.0, 2000.0], 20.0)
        bench = SystemCTestbench(PAPER_PARAMETERS, samples, dhmax=50.0)
        result = bench.run()
        assert len(result) == len(samples)

    def test_stability_audit_acceptable(self):
        waypoints = major_loop_waypoints(10e3, cycles=1)
        samples = waypoint_samples(waypoints, 25.0)
        result = run_systemc_sweep(PAPER_PARAMETERS, samples, dhmax=100.0)
        audit = audit_trajectory(result.h, result.b)
        assert audit.finite
        assert audit.acceptable()

    def test_delta_cycles_counted(self):
        samples = waypoint_samples([0.0, 1000.0], 20.0)
        result = run_systemc_sweep(PAPER_PARAMETERS, samples, dhmax=50.0)
        # At least one delta per driver sample.
        assert result.delta_cycles >= len(samples)
