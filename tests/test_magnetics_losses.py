"""Tests for repro.magnetics.losses (Steinmetz characterisation)."""

import pytest

from repro.errors import AnalysisError
from repro.ja.parameters import PAPER_PARAMETERS
from repro.magnetics.losses import (
    LossPoint,
    fit_steinmetz,
    loss_sweep,
    measure_loss_point,
)


class TestLossPoints:
    def test_loss_positive(self):
        point = measure_loss_point(PAPER_PARAMETERS, 8e3, dhmax=100.0)
        assert point.energy_per_cycle > 0.0
        assert point.b_peak > 0.0

    def test_loss_grows_with_amplitude(self):
        small = measure_loss_point(PAPER_PARAMETERS, 4e3, dhmax=100.0)
        large = measure_loss_point(PAPER_PARAMETERS, 10e3, dhmax=100.0)
        assert large.energy_per_cycle > small.energy_per_cycle
        assert large.b_peak > small.b_peak

    def test_invalid_amplitude(self):
        with pytest.raises(AnalysisError):
            measure_loss_point(PAPER_PARAMETERS, 0.0)

    def test_sweep_ordering_preserved(self):
        amplitudes = [2e3, 6e3, 10e3]
        points = loss_sweep(PAPER_PARAMETERS, amplitudes, dhmax=200.0)
        assert [p.h_amplitude for p in points] == amplitudes

    def test_empty_sweep_rejected(self):
        with pytest.raises(AnalysisError):
            loss_sweep(PAPER_PARAMETERS, [])


class TestSteinmetzFit:
    def test_exact_power_law_recovered(self):
        points = [
            LossPoint(h_amplitude=0.0, b_peak=b, energy_per_cycle=100.0 * b**1.7)
            for b in (0.2, 0.5, 1.0, 1.5)
        ]
        fit = fit_steinmetz(points)
        assert fit.k_h == pytest.approx(100.0, rel=1e-9)
        assert fit.beta == pytest.approx(1.7, rel=1e-9)
        assert fit.residual_log_rms < 1e-12

    def test_real_material_exponent_plausible(self):
        points = loss_sweep(
            PAPER_PARAMETERS, [2e3, 4e3, 6e3, 8e3, 10e3], dhmax=100.0
        )
        fit = fit_steinmetz(points)
        # Hysteresis-loss exponents for steels sit around 1.5-2.2.
        assert 1.2 < fit.beta < 2.5
        assert fit.k_h > 0.0

    def test_prediction_interpolates(self):
        points = loss_sweep(
            PAPER_PARAMETERS, [2e3, 6e3, 10e3], dhmax=100.0
        )
        fit = fit_steinmetz(points)
        measured = measure_loss_point(PAPER_PARAMETERS, 4e3, dhmax=100.0)
        predicted = fit.energy_per_cycle(measured.b_peak)
        assert predicted == pytest.approx(
            measured.energy_per_cycle, rel=0.35
        )

    def test_power_scales_with_volume_and_frequency(self):
        points = [
            LossPoint(0.0, 1.0, 100.0),
            LossPoint(0.0, 0.5, 30.0),
        ]
        fit = fit_steinmetz(points)
        base = fit.power(1.0, 50.0, 1e-4)
        assert fit.power(1.0, 100.0, 1e-4) == pytest.approx(2.0 * base)
        assert fit.power(1.0, 50.0, 2e-4) == pytest.approx(2.0 * base)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            fit_steinmetz([LossPoint(0.0, 1.0, 10.0)])
        with pytest.raises(AnalysisError):
            fit_steinmetz(
                [LossPoint(0.0, 1.0, 10.0), LossPoint(0.0, 1.0, 20.0)]
            )
        with pytest.raises(AnalysisError):
            fit_steinmetz(
                [LossPoint(0.0, 1.0, -10.0), LossPoint(0.0, 0.5, 5.0)]
            )
        fit = fit_steinmetz(
            [LossPoint(0.0, 1.0, 10.0), LossPoint(0.0, 0.5, 5.0)]
        )
        with pytest.raises(AnalysisError):
            fit.energy_per_cycle(0.0)
        with pytest.raises(AnalysisError):
            fit.power(1.0, 0.0, 1.0)
