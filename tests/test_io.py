"""Tests for repro.io: tables, CSV, ASCII plots, VCD."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.hdl.kernel.tracing import Trace
from repro.io import (
    AsciiPlot,
    TextTable,
    plot_bh,
    read_bh_csv,
    write_batch_vcd,
    write_bh_csv,
    write_vcd,
)


class TestTextTable:
    def test_render_aligns_columns(self):
        table = TextTable(["name", "value"])
        table.add_row("x", 1)
        table.add_row("longer-name", 2.5)
        lines = table.render().splitlines()
        assert len({len(line) for line in lines if line}) <= 2

    def test_title_rendered_first(self):
        table = TextTable(["a"], title="My Title")
        table.add_row(1)
        assert table.render().splitlines()[0] == "My Title"

    def test_bool_formatting(self):
        table = TextTable(["flag"])
        table.add_row(True)
        table.add_row(False)
        text = table.render()
        assert "yes" in text and "no" in text

    def test_float_formatting(self):
        table = TextTable(["v"])
        table.add_row(0.0)
        table.add_row(1234.5678)
        table.add_row(1.23e-9)
        text = table.render()
        assert "0" in text
        assert "1235" in text or "1234" in text
        assert "e-09" in text

    def test_row_width_mismatch_rejected(self):
        table = TextTable(["a", "b"])
        with pytest.raises(AnalysisError):
            table.add_row(1)

    def test_add_rows_bulk(self):
        table = TextTable(["a", "b"])
        table.add_rows([(1, 2), (3, 4)])
        assert len(table.rows) == 2

    def test_empty_columns_rejected(self):
        with pytest.raises(AnalysisError):
            TextTable([])


class TestCsvRoundTrip:
    def test_round_trip_without_m(self, tmp_path):
        h = np.linspace(-1.0, 1.0, 17)
        b = np.tanh(h)
        path = tmp_path / "loop.csv"
        write_bh_csv(path, h, b, metadata={"dhmax": 50.0})
        h2, b2, m2, meta = read_bh_csv(path)
        assert np.array_equal(h, h2)
        assert np.array_equal(b, b2)
        assert m2 is None
        assert meta["dhmax"] == "50.0"

    def test_round_trip_with_m(self, tmp_path):
        h = np.linspace(0.0, 1.0, 5)
        b = 2.0 * h
        m = 3.0 * h
        path = tmp_path / "loop.csv"
        write_bh_csv(path, h, b, m=m)
        h2, b2, m2, _ = read_bh_csv(path)
        assert m2 is not None
        assert np.array_equal(m, m2)

    def test_exact_float_preservation(self, tmp_path):
        h = np.array([0.1 + 0.2])  # classic non-representable sum
        b = np.array([1.0 / 3.0])
        path = tmp_path / "exact.csv"
        write_bh_csv(path, h, b)
        h2, b2, _, _ = read_bh_csv(path)
        assert h2[0] == h[0]
        assert b2[0] == b[0]

    def test_shape_mismatch_rejected(self, tmp_path):
        with pytest.raises(AnalysisError):
            write_bh_csv(tmp_path / "x.csv", np.zeros(3), np.zeros(4))

    def test_headerless_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(AnalysisError):
            read_bh_csv(path)


class TestAsciiPlot:
    def test_marker_lands_in_output(self):
        plot = AsciiPlot(width=20, height=10)
        plot.add_series([0.0, 1.0], [0.0, 1.0], marker="#")
        assert "#" in plot.render()

    def test_axes_drawn_through_zero(self):
        plot = AsciiPlot(width=21, height=11)
        plot.add_series([-1.0, 1.0], [-1.0, 1.0])
        text = plot.render()
        assert "|" in text
        assert "-" in text
        assert "+" in text  # origin

    def test_labels_in_output(self):
        text = plot_bh([0.0, 1.0, 2.0], [0.0, 0.5, 0.8], h_unit="kA/m")
        assert "B [T]" in text
        assert "H [kA/m]" in text

    def test_explicit_ranges_clip(self):
        plot = AsciiPlot(width=20, height=10, x_range=(0.0, 1.0))
        plot.add_series([0.5, 100.0], [0.5, 0.5], marker="@")
        # Only the in-range point is drawn.
        assert plot.render().count("@") == 1

    def test_nan_points_skipped(self):
        plot = AsciiPlot(width=20, height=10)
        plot.add_series([0.0, np.nan, 1.0], [0.0, 1.0, 1.0], marker="x")
        assert plot.render().count("x") >= 1

    def test_empty_plot_rejected(self):
        with pytest.raises(AnalysisError):
            AsciiPlot().render()

    def test_bad_marker_rejected(self):
        plot = AsciiPlot()
        with pytest.raises(AnalysisError):
            plot.add_series([0.0], [0.0], marker="ab")

    def test_tiny_canvas_rejected(self):
        with pytest.raises(AnalysisError):
            AsciiPlot(width=2, height=2)


class TestVcd:
    def _trace(self, name, pairs):
        trace = Trace(name)
        for t, v in pairs:
            trace.append(t, v)
        return trace

    def test_structure(self, tmp_path):
        path = tmp_path / "out.vcd"
        write_vcd(
            path,
            [self._trace("sig_a", [(0, 1.0), (1000, 2.0)])],
            module_name="top",
        )
        text = path.read_text()
        assert "$timescale 1 fs $end" in text
        assert "$scope module top $end" in text
        assert "$var real 64" in text
        assert "#0" in text and "#1000" in text
        assert "r1.0" in text and "r2.0" in text

    def test_multiple_traces_merged_in_time_order(self, tmp_path):
        path = tmp_path / "multi.vcd"
        write_vcd(
            path,
            [
                self._trace("a", [(0, 1.0), (2000, 3.0)]),
                self._trace("b", [(1000, 2.0)]),
            ],
        )
        text = path.read_text()
        assert text.index("#0") < text.index("#1000") < text.index("#2000")

    def test_timestamp_not_repeated(self, tmp_path):
        path = tmp_path / "same.vcd"
        write_vcd(
            path,
            [
                self._trace("a", [(500, 1.0)]),
                self._trace("b", [(500, 2.0)]),
            ],
        )
        assert path.read_text().count("#500") == 1

    def test_empty_traces_rejected(self, tmp_path):
        with pytest.raises(AnalysisError):
            write_vcd(tmp_path / "x.vcd", [])

    def test_identifiers_unique_for_many_traces(self, tmp_path):
        traces = [self._trace(f"s{i}", [(0, float(i))]) for i in range(200)]
        path = tmp_path / "many.vcd"
        write_vcd(path, traces)
        text = path.read_text()
        ids = [
            line.split()[3]
            for line in text.splitlines()
            if line.startswith("$var")
        ]
        assert len(set(ids)) == 200


class TestBatchVcd:
    def _result(self, n_cores=3):
        from repro.batch.engine import BatchTimelessModel
        from repro.batch.sweep import run_batch_series
        from repro.ja.parameters import PAPER_PARAMETERS

        batch = BatchTimelessModel([PAPER_PARAMETERS] * n_cores, dhmax=100.0)
        h = np.linspace(0.0, 4e3, 20)[:, None] * np.linspace(
            0.6, 1.0, n_cores
        )[None, :]
        return run_batch_series(batch, h)

    def test_three_core_dump_structure(self, tmp_path):
        result = self._result(3)
        path = tmp_path / "ensemble.vcd"
        write_batch_vcd(path, result, module_name="bench")
        text = path.read_text()
        # one signal group per core under the top module
        assert "$scope module bench $end" in text
        for core in ("core0", "core1", "core2"):
            assert f"$scope module {core} $end" in text
        # each core carries h/m/b plus the timeless m_an extra
        var_names = [
            line.split()[4]
            for line in text.splitlines()
            if line.startswith("$var")
        ]
        assert var_names.count("h") == 3
        assert var_names.count("m") == 3
        assert var_names.count("b") == 3
        assert var_names.count("m_an") == 3
        # one timestamp per sample, identifiers all unique
        assert text.count("\n#") == len(result)
        ids = [
            line.split()[3]
            for line in text.splitlines()
            if line.startswith("$var")
        ]
        assert len(set(ids)) == len(ids) == 12

    def test_values_recorded_per_lane(self, tmp_path):
        result = self._result(3)
        path = tmp_path / "values.vcd"
        write_batch_vcd(path, result, sample_period_fs=500)
        text = path.read_text()
        assert "#0\n" in text and f"#{(len(result) - 1) * 500}\n" in text
        # the last b value of lane 2 appears verbatim (repr round-trip)
        assert f"r{float(result.b[-1, 2])!r}" in text

    def test_custom_core_names_and_validation(self, tmp_path):
        result = self._result(2)
        path = tmp_path / "named.vcd"
        write_batch_vcd(path, result, core_names=["soft iron", "ferrite"])
        text = path.read_text()
        assert "$scope module soft_iron $end" in text
        assert "$scope module ferrite $end" in text
        with pytest.raises(AnalysisError):
            write_batch_vcd(tmp_path / "x.vcd", result, core_names=["one"])
        with pytest.raises(AnalysisError):
            write_batch_vcd(tmp_path / "y.vcd", result, sample_period_fs=0)
