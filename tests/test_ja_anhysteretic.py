"""Tests for repro.ja.anhysteretic."""

import math

import numpy as np
import pytest

from repro.constants import TWO_OVER_PI
from repro.errors import ParameterError
from repro.ja.anhysteretic import (
    BrillouinAnhysteretic,
    LangevinAnhysteretic,
    ModifiedLangevinAnhysteretic,
    make_anhysteretic,
)
from repro.ja.parameters import PAPER_PARAMETERS


class TestLangevin:
    def setup_method(self):
        self.curve = LangevinAnhysteretic(shape=2000.0)

    def test_zero_at_origin(self):
        assert self.curve.curve(0.0) == 0.0

    def test_odd_symmetry(self):
        for x in (0.3, 1.7, 5.0, 40.0):
            assert self.curve.curve(-x) == pytest.approx(-self.curve.curve(x))

    def test_saturates_to_one(self):
        assert self.curve.curve(1e4) == pytest.approx(1.0, abs=1e-3)

    def test_small_x_series_matches_closed_form(self):
        # Just above the series cutoff, both branches must agree.  The
        # closed form uses np.tanh — the implementation's kernel (libm's
        # math.tanh differs by 1 ulp, which the 1/tanh(x) - 1/x
        # cancellation amplifies to ~5e-8 relative at this x).
        x = 1.01e-4
        closed = 1.0 / float(np.tanh(x)) - 1.0 / x
        assert self.curve.curve(x) == pytest.approx(closed, rel=1e-10)

    def test_series_region_linear_slope(self):
        # L(x) ~ x/3 for small x.
        x = 1e-6
        assert self.curve.curve(x) == pytest.approx(x / 3.0, rel=1e-6)

    def test_derivative_at_origin_is_one_third(self):
        assert self.curve.curve_derivative(0.0) == pytest.approx(1.0 / 3.0)

    def test_derivative_matches_finite_difference(self):
        for x in (0.5, 2.0, 8.0):
            eps = 1e-6
            numeric = (self.curve.curve(x + eps) - self.curve.curve(x - eps)) / (
                2 * eps
            )
            assert self.curve.curve_derivative(x) == pytest.approx(
                numeric, rel=1e-6
            )

    def test_value_uses_shape_scaling(self):
        assert self.curve.value(2000.0) == pytest.approx(self.curve.curve(1.0))

    def test_derivative_uses_chain_rule(self):
        assert self.curve.derivative(2000.0) == pytest.approx(
            self.curve.curve_derivative(1.0) / 2000.0
        )


class TestModifiedLangevin:
    def setup_method(self):
        self.curve = ModifiedLangevinAnhysteretic(shape=3500.0)

    def test_matches_published_formula(self):
        # Lang_mod(x) = (2/3.14159265) * atan(x) in the listing.
        for x in (-3.0, -0.5, 0.0, 0.5, 3.0):
            assert self.curve.curve(x) == pytest.approx(
                TWO_OVER_PI * math.atan(x)
            )

    def test_odd_symmetry(self):
        assert self.curve.curve(-2.0) == -self.curve.curve(2.0)

    def test_bounded_by_one(self):
        assert abs(self.curve.curve(1e9)) < 1.0

    def test_rises_faster_than_langevin(self):
        # Initial slope 2/pi vs the Langevin's 1/3; the atan form stays
        # above the classic curve at equal shape parameter.
        classic = LangevinAnhysteretic(shape=3500.0)
        for x in (0.2, 1.0, 5.0):
            assert self.curve.curve(x) > classic.curve(x)

    def test_derivative_at_origin(self):
        assert self.curve.curve_derivative(0.0) == pytest.approx(TWO_OVER_PI)

    def test_derivative_matches_finite_difference(self):
        for x in (0.2, 1.0, 4.0):
            eps = 1e-6
            numeric = (self.curve.curve(x + eps) - self.curve.curve(x - eps)) / (
                2 * eps
            )
            assert self.curve.curve_derivative(x) == pytest.approx(
                numeric, rel=1e-6
            )


class TestBrillouin:
    def test_half_spin_is_tanh(self):
        curve = BrillouinAnhysteretic(shape=1.0, j=0.5)
        for x in (0.3, 1.0, 2.5):
            assert curve.curve(x) == pytest.approx(math.tanh(x), rel=1e-9)

    def test_large_j_approaches_langevin(self):
        brillouin = BrillouinAnhysteretic(shape=1.0, j=500.0)
        langevin = LangevinAnhysteretic(shape=1.0)
        for x in (0.5, 1.5, 3.0):
            assert brillouin.curve(x) == pytest.approx(
                langevin.curve(x), abs=2e-3
            )

    def test_small_x_slope(self):
        j = 2.0
        curve = BrillouinAnhysteretic(shape=1.0, j=j)
        expected = (j + 1.0) / (3.0 * j)
        assert curve.curve_derivative(0.0) == pytest.approx(expected)

    def test_invalid_j_rejected(self):
        with pytest.raises(ParameterError):
            BrillouinAnhysteretic(shape=1.0, j=0.0)


class TestFactory:
    def test_default_is_modified_with_a2(self):
        curve = make_anhysteretic(PAPER_PARAMETERS)
        assert isinstance(curve, ModifiedLangevinAnhysteretic)
        assert curve.shape == 3500.0

    def test_modified_without_a2_uses_a(self):
        curve = make_anhysteretic(
            PAPER_PARAMETERS, "modified-langevin", use_a2=False
        )
        assert curve.shape == 2000.0

    def test_classic_always_uses_a(self):
        curve = make_anhysteretic(PAPER_PARAMETERS, "langevin")
        assert isinstance(curve, LangevinAnhysteretic)
        assert curve.shape == 2000.0

    def test_unknown_kind_raises(self):
        with pytest.raises(ParameterError, match="modified-langevin"):
            make_anhysteretic(PAPER_PARAMETERS, "sigmoid")

    def test_invalid_shape_rejected(self):
        with pytest.raises(ParameterError):
            LangevinAnhysteretic(shape=-1.0)

    def test_value_array_vectorises(self):
        curve = make_anhysteretic(PAPER_PARAMETERS)
        h = np.array([-1000.0, 0.0, 1000.0])
        values = curve.value_array(h)
        assert values.shape == (3,)
        assert values[1] == 0.0
        assert values[2] == -values[0]
