"""Tests for repro.hdl.vhdlams.above (the Q'ABOVE attribute)."""

import pytest

from repro.errors import SolverError
from repro.hdl.vhdlams import (
    AboveDetector,
    AnalogSystem,
    SolverOptions,
    TransientSolver,
)
from repro.waveforms import SineWave


def _sine_system(amplitude=2.0, frequency=1000.0):
    system = AnalogSystem("sine")
    wave = SineWave(amplitude, frequency)
    q = system.add_quantity("v", initial=0.0)
    system.add_equation("src", lambda ctx: ctx.value(q) - wave.value(ctx.time))
    return system, q


class TestAboveDetector:
    def test_counts_crossings_of_sine(self):
        system, q = _sine_system()
        detector = AboveDetector(q, 1.0, break_on_cross=False)
        system.add_process(detector)
        solver = TransientSolver(
            system, SolverOptions(dt_initial=1e-6, dt_max=2e-5)
        )
        solver.run(t_stop=3e-3)  # three periods
        assert detector.rising_crossings == 3
        assert detector.falling_crossings == 3

    def test_callback_receives_direction(self):
        system, q = _sine_system()
        log = []
        detector = AboveDetector(
            q,
            0.0,
            callback=lambda t, rising: log.append((t, rising)),
            break_on_cross=False,
            initial_state=True,
        )
        system.add_process(detector)
        TransientSolver(
            system, SolverOptions(dt_initial=1e-6, dt_max=2e-5)
        ).run(t_stop=1.2e-3)  # past the rising zero at exactly 1 ms
        directions = [rising for _, rising in log]
        # Starting (forced) above 0: first crossing is falling at the
        # half period, then rising at the full period.
        assert directions == [False, True]

    def test_break_on_cross_reports_breaks(self):
        system, q = _sine_system()
        detector = AboveDetector(q, 1.5, break_on_cross=True)
        system.add_process(detector)
        result = TransientSolver(
            system, SolverOptions(dt_initial=1e-6, dt_max=2e-5)
        ).run(t_stop=1e-3)
        assert result.report.breaks == detector.crossings
        assert detector.crossings >= 2

    def test_level_never_reached(self):
        system, q = _sine_system(amplitude=1.0)
        detector = AboveDetector(q, 5.0, break_on_cross=False)
        system.add_process(detector)
        TransientSolver(
            system, SolverOptions(dt_initial=1e-6, dt_max=2e-5)
        ).run(t_stop=1e-3)
        assert detector.crossings == 0
        assert detector.state is False

    def test_initial_state_from_quantity(self):
        system = AnalogSystem()
        q = system.add_quantity("x", initial=3.0)
        detector = AboveDetector(q, 1.0)
        assert detector.state is True

    def test_invalid_level(self):
        system = AnalogSystem()
        q = system.add_quantity("x")
        with pytest.raises(SolverError):
            AboveDetector(q, float("nan"))

    def test_dhmax_window_watching(self):
        """The native-VHDL-AMS wiring of the timeless model: watch H
        leaving the lasth +/- dhmax window via two 'ABOVE detectors."""
        from repro.waveforms import TriangularWave

        system = AnalogSystem("window")
        wave = TriangularWave(1000.0, 1e-3)
        q = system.add_quantity("H", initial=0.0)
        system.add_equation(
            "src", lambda ctx: ctx.value(q) - wave.value(ctx.time)
        )
        events = []

        class Window:
            def __init__(self, dhmax):
                self.dhmax = dhmax
                self.lasth = 0.0

            def on_accept(self, time, reader):
                h = reader.value(q)
                if abs(h - self.lasth) > self.dhmax:
                    events.append((time, h - self.lasth))
                    self.lasth = h
                return False

        system.add_process(Window(dhmax=100.0))
        TransientSolver(
            system, SolverOptions(dt_initial=1e-7, dt_max=5e-6)
        ).run(t_stop=1e-3)
        # The triangle spans 4000 A/m of travel per period: ~40 window
        # exits at dhmax = 100.
        assert 30 <= len(events) <= 50
