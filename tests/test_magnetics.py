"""Tests for repro.magnetics: units, geometry, materials, components."""

import math

import numpy as np
import pytest

from repro.constants import MU0
from repro.errors import ParameterError, SolverError
from repro.magnetics import (
    EICore,
    HysteresisInductor,
    HysteresisTransformer,
    RLDriveCircuit,
    ToroidCore,
    amps_per_meter_from_oersted,
    gauss_from_tesla,
    oersted_from_amps_per_meter,
    tesla_from_gauss,
)
from repro.magnetics.material import FERRITE, PAPER_STEEL, MagneticMaterial
from repro.waveforms import SineWave


class TestUnits:
    def test_oersted_round_trip(self):
        assert oersted_from_amps_per_meter(
            amps_per_meter_from_oersted(2.5)
        ) == pytest.approx(2.5)

    def test_one_oersted(self):
        assert amps_per_meter_from_oersted(1.0) == pytest.approx(79.577, rel=1e-4)

    def test_gauss_round_trip(self):
        assert gauss_from_tesla(tesla_from_gauss(123.0)) == pytest.approx(123.0)

    def test_one_tesla_is_ten_kilogauss(self):
        assert gauss_from_tesla(1.0) == pytest.approx(1e4)

    def test_non_finite_rejected(self):
        with pytest.raises(ParameterError):
            amps_per_meter_from_oersted(math.nan)


class TestToroid:
    def setup_method(self):
        self.core = ToroidCore(inner_radius=0.04, outer_radius=0.06, height=0.02)

    def test_path_length_is_mean_circumference(self):
        assert self.core.path_length == pytest.approx(math.pi * 0.1)

    def test_area(self):
        assert self.core.area == pytest.approx(0.02 * 0.02)

    def test_volume(self):
        assert self.core.volume == pytest.approx(
            self.core.path_length * self.core.area
        )

    def test_field_from_current(self):
        h = self.core.field_from_current(turns=100, current=2.0)
        assert h == pytest.approx(200.0 / (math.pi * 0.1))

    def test_current_field_round_trip(self):
        h = 1234.0
        i = self.core.current_from_field(100, h)
        assert self.core.field_from_current(100, i) == pytest.approx(h)

    def test_flux_linkage(self):
        assert self.core.flux_linkage(50, 1.5) == pytest.approx(
            50 * 1.5 * self.core.area
        )

    def test_swapped_radii_rejected(self):
        with pytest.raises(ParameterError):
            ToroidCore(inner_radius=0.06, outer_radius=0.04, height=0.02)

    def test_zero_turns_rejected(self):
        with pytest.raises(ParameterError):
            self.core.field_from_current(0, 1.0)


class TestEICore:
    def test_effective_values_passthrough(self):
        core = EICore(effective_path_length=0.2, effective_area=5e-4)
        assert core.path_length == 0.2
        assert core.area == 5e-4

    def test_invalid_dimensions(self):
        with pytest.raises(ParameterError):
            EICore(effective_path_length=0.0, effective_area=1e-4)


class TestMaterial:
    def test_b_sat(self):
        assert PAPER_STEEL.b_sat == pytest.approx(MU0 * 1.6e6)

    def test_specific_loss(self):
        loss = PAPER_STEEL.specific_loss(loop_area=100.0, frequency=50.0)
        assert loss == pytest.approx(100.0 * 50.0 / PAPER_STEEL.density)

    def test_specific_loss_invalid_frequency(self):
        with pytest.raises(ParameterError):
            PAPER_STEEL.specific_loss(100.0, 0.0)

    def test_invalid_density(self):
        with pytest.raises(ParameterError):
            MagneticMaterial(params=PAPER_STEEL.params, density=0.0)

    def test_name_comes_from_params(self):
        assert PAPER_STEEL.name == "date2006-paper"


class TestInductor:
    def _inductor(self, turns=100):
        core = ToroidCore(0.04, 0.06, 0.02)
        return HysteresisInductor(PAPER_STEEL, core, turns=turns, dhmax=50.0)

    def test_apply_current_updates_field(self):
        inductor = self._inductor()
        inductor.apply_current(10.0)
        expected_h = 100 * 10.0 / (math.pi * 0.1)
        assert inductor.h == pytest.approx(expected_h)
        assert inductor.current == 10.0

    def test_flux_linkage_positive_with_positive_current(self):
        inductor = self._inductor()
        linkage = inductor.apply_current(20.0)
        assert linkage > 0.0

    def test_remanence_after_current_pulse(self):
        inductor = self._inductor()
        for i in np.linspace(0.0, 40.0, 200):
            inductor.apply_current(float(i))
        for i in np.linspace(40.0, 0.0, 200):
            inductor.apply_current(float(i))
        assert inductor.b > 0.1  # remanent flux

    def test_reset(self):
        inductor = self._inductor()
        inductor.apply_current(30.0)
        inductor.reset()
        assert inductor.current == 0.0
        assert inductor.b == 0.0

    def test_incremental_inductance_positive(self):
        inductor = self._inductor()
        inductor.apply_current(5.0)
        assert inductor.incremental_inductance() > 0.0

    def test_incremental_inductance_does_not_disturb_state(self):
        inductor = self._inductor()
        inductor.apply_current(5.0)
        b_before = inductor.b
        inductor.incremental_inductance()
        assert inductor.b == b_before
        assert inductor.current == 5.0

    def test_inductance_drops_in_saturation(self):
        inductor = self._inductor(turns=500)
        inductor.apply_current(2.0)
        l_linear = inductor.incremental_inductance()
        for i in np.linspace(2.0, 100.0, 300):
            inductor.apply_current(float(i))
        l_saturated = inductor.incremental_inductance()
        assert l_saturated < 0.5 * l_linear

    def test_non_finite_current_rejected(self):
        inductor = self._inductor()
        with pytest.raises(ParameterError):
            inductor.apply_current(math.inf)

    def test_invalid_turns(self):
        core = ToroidCore(0.04, 0.06, 0.02)
        with pytest.raises(ParameterError):
            HysteresisInductor(PAPER_STEEL, core, turns=0)


class TestTransformer:
    def _transformer(self):
        core = ToroidCore(0.04, 0.06, 0.02)
        return HysteresisTransformer(
            PAPER_STEEL, core, primary_turns=200, secondary_turns=100, dhmax=50.0
        )

    def test_turns_ratio(self):
        assert self._transformer().turns_ratio == 2.0

    def test_mmf_balance(self):
        transformer = self._transformer()
        # A secondary current of N1/N2 * i1 cancels the primary MMF.
        transformer.apply_currents(10.0, 20.0)
        assert transformer.h == pytest.approx(0.0)

    def test_flux_linkage_ratio_follows_turns(self):
        transformer = self._transformer()
        transformer.apply_currents(10.0, 0.0)
        ratio = (
            transformer.primary_flux_linkage
            / transformer.secondary_flux_linkage
        )
        assert ratio == pytest.approx(2.0)

    def test_magnetising_current_round_trip(self):
        transformer = self._transformer()
        transformer.apply_currents(5.0, 0.0)
        assert transformer.magnetising_current() == pytest.approx(5.0)

    def test_reset(self):
        transformer = self._transformer()
        transformer.apply_currents(50.0, 0.0)
        transformer.reset()
        assert transformer.b == 0.0

    def test_invalid_turns(self):
        core = ToroidCore(0.04, 0.06, 0.02)
        with pytest.raises(ParameterError):
            HysteresisTransformer(PAPER_STEEL, core, 0, 10)


class TestRLDriveCircuit:
    def _circuit(self, resistance=5.0, turns=800):
        core = ToroidCore(0.04, 0.06, 0.02)
        inductor = HysteresisInductor(PAPER_STEEL, core, turns=turns, dhmax=50.0)
        source = SineWave(50.0, 50.0)
        return RLDriveCircuit(inductor, resistance, source)

    def test_run_produces_aligned_arrays(self):
        circuit = self._circuit()
        result = circuit.run(t_stop=0.02, dt=1e-4)
        n = len(result)
        assert result.t.shape == (n,)
        assert result.i.shape == (n,)
        assert result.b.shape == (n,)
        assert np.all(np.isfinite(result.i))

    def test_steady_state_current_bounded_by_resistance(self):
        circuit = self._circuit(resistance=5.0)
        result = circuit.run(t_stop=0.06, dt=1e-4)
        assert result.peak_current <= 50.0 / 5.0 * 1.2

    @staticmethod
    def _kvl_residuals(dhmax: float) -> np.ndarray:
        core = ToroidCore(0.04, 0.06, 0.02)
        inductor = HysteresisInductor(
            PAPER_STEEL, core, turns=800, dhmax=dhmax
        )
        circuit = RLDriveCircuit(inductor, 5.0, SineWave(50.0, 50.0))
        dt = 1e-4
        result = circuit.run(t_stop=0.02, dt=dt)
        dlambda = np.diff(result.flux_linkage) / dt
        return np.abs(result.v[1:] - 5.0 * result.i[1:] - dlambda)

    def test_kvl_residual_quantisation_limited(self):
        """v = R*i + dlambda/dt holds to solver tolerance off the event
        boundaries, and the residual spikes that land ON a boundary are
        bounded by the event quantum: shrinking dhmax must shrink them
        proportionally (lambda(i) is a staircase with dhmax-sized
        treads, so KVL cannot be satisfied better than one tread)."""
        coarse = self._kvl_residuals(dhmax=50.0)
        fine = self._kvl_residuals(dhmax=10.0)
        # Typical samples sit at solver tolerance.
        assert np.median(coarse) / 50.0 < 1e-6
        assert np.median(fine) / 50.0 < 1e-6
        # The spike envelope scales with the quantum (5x smaller here).
        assert np.percentile(fine, 95) < np.percentile(coarse, 95) / 2.0

    def test_no_newton_failures_on_benign_drive(self):
        circuit = self._circuit()
        result = circuit.run(t_stop=0.04, dt=1e-4)
        assert result.newton_failures == 0

    def test_resistor_energy_positive(self):
        circuit = self._circuit()
        result = circuit.run(t_stop=0.02, dt=1e-4)
        assert result.resistor_energy(5.0) > 0.0

    def test_reenergisation_survives_newton_overshoot(self):
        """Regression: re-energising a remanent core at a voltage zero
        drives the per-step Newton into geometric overshoot (on the
        lambda(i) staircase the probed incremental inductance
        under-reads the secant), and the trial current used to escalate
        until the bisection bracket overflowed to inf and crashed the
        run.  The solver must cap absurd trials and bisect from the
        last sane one instead.  This exact sequence (3 cycles, then 2
        from remanence, 230 V / 50 Hz / 2 ohm) crashed the unguarded
        solver."""
        core = ToroidCore(0.04, 0.06, 0.02)
        inductor = HysteresisInductor(PAPER_STEEL, core, turns=1500, dhmax=25.0)
        period = 1.0 / 50.0
        for cycles in (3, 2):
            circuit = RLDriveCircuit(inductor, 2.0, SineWave(230.0, 50.0))
            result = circuit.run(t_stop=cycles * period, dt=period / 400)
        assert np.all(np.isfinite(result.i))
        assert np.all(np.isfinite(result.b))

    def test_invalid_resistance(self):
        core = ToroidCore(0.04, 0.06, 0.02)
        inductor = HysteresisInductor(PAPER_STEEL, core, turns=10)
        with pytest.raises(SolverError):
            RLDriveCircuit(inductor, 0.0, SineWave(1.0, 50.0))

    def test_invalid_time_step(self):
        circuit = self._circuit()
        with pytest.raises(SolverError):
            circuit.run(t_stop=0.01, dt=0.0)

    def test_ferrite_core_runs_too(self):
        core = ToroidCore(0.04, 0.06, 0.02)
        inductor = HysteresisInductor(FERRITE, core, turns=50, dhmax=5.0)
        circuit = RLDriveCircuit(inductor, 10.0, SineWave(5.0, 1000.0))
        result = circuit.run(t_stop=2e-3, dt=2e-6)
        assert np.all(np.isfinite(result.b))
