"""BatchPreisachModel: bitwise lane equivalence and relay-tensor semantics.

Property-style sweeps over seeded random ensembles (heterogeneous
perturbed weights, m_sat scales and waveforms): every lane must
reproduce an independent scalar :class:`PreisachModel` run bit for bit,
including the wiping-out property and the switch-event accounting.
Also covers the batched Everett identification, which must match the
scalar FORC loop it replaced exactly.
"""

import numpy as np
import pytest

from repro.batch.preisach import BatchPreisachModel
from repro.batch.sweep import run_batch_series
from repro.core.model import TimelessJAModel
from repro.core.sweep import run_sweep, waypoint_samples
from repro.errors import ParameterError
from repro.ja.parameters import PAPER_PARAMETERS
from repro.preisach import everett_from_ja, identify_ensemble_from_ja, identify_from_ja
from repro.preisach.model import PreisachModel


@pytest.fixture(scope="module")
def base_model():
    model, _ = identify_from_ja(
        PAPER_PARAMETERS, n_cells=12, h_sat=20e3, dhmax=400.0
    )
    return model


def random_ensemble(base_model, seed: int, n: int) -> list:
    """Heterogeneous relay ensembles: perturbed weights and m_sat."""
    rng = np.random.default_rng(seed)
    models = []
    for _ in range(n):
        factors = np.exp(
            rng.uniform(np.log(0.6), np.log(1.5), base_model.weights.shape)
        )
        models.append(
            PreisachModel(
                weights=base_model.weights * factors,
                alpha_thresholds=base_model.alpha_thresholds,
                beta_thresholds=base_model.beta_thresholds,
                m_sat=base_model.m_sat * float(rng.uniform(0.7, 1.3)),
            )
        )
    return models


def random_waveforms(seed: int, samples: int, n: int) -> np.ndarray:
    rng = np.random.default_rng(seed + 4000)
    steps = rng.normal(0.0, 1500.0, size=(samples, n))
    reversals = rng.random((samples, n)) < 0.05
    steps[reversals] *= -6.0
    return np.clip(np.cumsum(steps, axis=0), -25e3, 25e3)


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_waveforms_match_bitwise(self, base_model, seed):
        n, samples = 6, 400
        models = random_ensemble(base_model, seed, n)
        h = random_waveforms(seed, samples, n)

        batch = BatchPreisachModel.from_scalar_models(models)
        result = run_batch_series(batch, h, reset=True)

        for i in range(n):
            ref = models[i].clone()
            ref.reset()
            h_r, m_r, b_r = ref.trace(h[:, i])
            assert np.array_equal(result.b[:, i], b_r)
            assert np.array_equal(result.m[:, i], m_r)

    def test_shared_waveform_and_counters(self, base_model):
        models = random_ensemble(base_model, 7, 3)
        samples = waypoint_samples([0.0, 18e3, -9e3, 14e3, -18e3], 500.0)
        batch = BatchPreisachModel.from_scalar_models(models)
        result = run_batch_series(batch, samples, reset=True)

        for i in range(3):
            ref = models[i].clone()
            ref.reset()
            _, m_r, b_r = ref.trace(samples)
            assert np.array_equal(result.b[:, i], b_r)
            # switch events count exactly the samples where m changed
            m_prev = np.concatenate([[ref_initial_m(models[i])], m_r[:-1]])
            changed = (m_r != m_prev).sum()
            assert result.counters["switch_events"][i] == changed

    def test_monotone_endpoint_equals_subsampled_path(self, base_model):
        """Wiping-out: one call with the endpoint equals the sampled
        walk, lane-for-lane (the relay semantics survive batching)."""
        models = random_ensemble(base_model, 9, 2)
        batch_direct = BatchPreisachModel.from_scalar_models(
            [m.clone() for m in models]
        )
        batch_sampled = BatchPreisachModel.from_scalar_models(
            [m.clone() for m in models]
        )
        batch_direct.begin_series(0.0)
        batch_sampled.begin_series(0.0)
        batch_direct.step(17e3)
        for h in np.linspace(0.0, 17e3, 60)[1:]:
            batch_sampled.step(float(h))
        assert np.array_equal(batch_direct.m, batch_sampled.m)

    def test_saturate_matches_scalar(self, base_model):
        models = random_ensemble(base_model, 11, 4)
        batch = BatchPreisachModel.from_scalar_models(models)
        batch.saturate(np.array([True, False, True, False]))
        for i, positive in enumerate([True, False, True, False]):
            ref = models[i].clone()
            ref.saturate(positive)
            assert batch.m_normalised[i] == ref.m_normalised
            assert batch.h[i] == ref.h

    def test_write_back_round_trip(self, base_model):
        models = random_ensemble(base_model, 13, 2)
        mirror = [m.clone() for m in models]
        batch = BatchPreisachModel.from_scalar_models(models)
        samples = waypoint_samples([0.0, 12e3, -5e3], 700.0)
        run_batch_series(batch, samples, reset=False)
        batch.write_back_to_models(models)
        for scalar, ref in zip(models, mirror):
            ref.apply_field_series(samples)
            assert scalar.m_normalised == ref.m_normalised
            assert scalar.h == ref.h


def ref_initial_m(model) -> float:
    """Initial magnetisation [A/m] of the demagnetised staircase."""
    fresh = model.clone()
    fresh.reset()
    return fresh.m


class TestValidation:
    def test_grid_shapes_must_match(self, base_model):
        small, _ = identify_from_ja(
            PAPER_PARAMETERS, n_cells=8, h_sat=20e3, dhmax=800.0
        )
        with pytest.raises(ParameterError):
            BatchPreisachModel.from_scalar_models([base_model, small])

    def test_invalid_half_plane_weight_rejected(self, base_model):
        weights = np.stack([base_model.weights.copy()])
        weights[0, 0, -1] = 0.5  # alpha bottom, beta top: invalid cell
        with pytest.raises(ParameterError):
            BatchPreisachModel(
                weights,
                base_model.alpha_thresholds,
                base_model.beta_thresholds,
                base_model.m_sat,
            )

    def test_waveform_shape_checked(self, base_model):
        batch = BatchPreisachModel.from_scalar_models([base_model, base_model])
        with pytest.raises(ParameterError):
            batch.trace(np.zeros((5, 3)))

    def test_non_finite_field_rejected(self, base_model):
        batch = BatchPreisachModel.from_scalar_models([base_model])
        with pytest.raises(ParameterError):
            batch.step(np.nan)


class TestBatchedIdentification:
    def test_everett_matches_scalar_forc_loop(self):
        """The batched FORC measurement reproduces the scalar sweep
        loop it replaced bit for bit."""
        n_cells, h_sat, dhmax = 8, 20e3, 800.0
        batched = everett_from_ja(
            PAPER_PARAMETERS, n_cells=n_cells, h_sat=h_sat, dhmax=dhmax
        )

        nodes = np.linspace(-h_sat, h_sat, n_cells + 1)
        values = np.zeros((len(nodes), len(nodes)))
        for i in range(len(nodes)):
            alpha = float(nodes[i])
            model = TimelessJAModel(PAPER_PARAMETERS, dhmax=dhmax)
            run_sweep(model, [0.0, h_sat, -h_sat, alpha])
            m_alpha = model.m_normalised
            if i == 0:
                continue
            descent = run_sweep(model, [alpha, float(nodes[0])], reset=False)
            h_desc = descent.h[::-1]
            m_desc = descent.m[::-1] / PAPER_PARAMETERS.m_sat
            for j in range(i + 1):
                m_forc = float(np.interp(float(nodes[j]), h_desc, m_desc))
                values[i, j] = 0.5 * (m_alpha - m_forc)

        assert np.array_equal(batched.values, values)

    def test_identify_ensemble_stacks_per_params(self):
        from repro.models import perturbed_parameters

        params = perturbed_parameters(3, seed=5)
        batch, clipped = identify_ensemble_from_ja(
            params, n_cells=8, h_sat=20e3, dhmax=800.0
        )
        assert batch.n_cores == 3
        assert clipped.shape == (3,)
        assert (clipped >= 0.0).all()
        # lane 0 equals a direct identification of params[0]
        direct, _ = identify_from_ja(
            params[0], n_cells=8, h_sat=20e3, dhmax=800.0
        )
        assert np.array_equal(batch.weights[0], direct.weights)
