"""BatchTimeDomainModel: bitwise lane equivalence incl. divergence freeze.

The vectorised pre-paper chain must reproduce N independent scalar
sample-driven :class:`TimeDomainJAModel` runs bit for bit — guarded or
unguarded, including lanes that blow up and freeze — with per-lane
pathology counters matching the scalar accounting exactly.
"""

import numpy as np
import pytest

from repro.baselines.time_domain import TimeDomainJAModel
from repro.batch.sweep import run_batch_series
from repro.batch.time_domain import BatchTimeDomainModel
from repro.core.slope import SlopeGuards
from repro.errors import ParameterError
from repro.ja.parameters import (
    HARD_STEEL,
    JILES_ATHERTON_1984,
    PAPER_PARAMETERS,
    SOFT_FERRITE,
)

GUARD_CHOICES = [
    SlopeGuards(True, True),
    SlopeGuards(True, False),
    SlopeGuards(False, True),
    SlopeGuards(False, False),
]


def random_ensemble(seed: int, n: int) -> list:
    rng = np.random.default_rng(seed)
    base = [PAPER_PARAMETERS, SOFT_FERRITE, HARD_STEEL, JILES_ATHERTON_1984]
    models = []
    for i in range(n):
        p = base[int(rng.integers(len(base)))]
        params = p.with_updates(
            k=float(p.k * rng.uniform(0.6, 1.6)),
            c=float(rng.uniform(0.02, 0.6)),
            m_sat=float(p.m_sat * rng.uniform(0.7, 1.3)),
            name=f"td-rand-{seed}-{i}",
        )
        models.append(
            TimeDomainJAModel(
                params, guards=GUARD_CHOICES[int(rng.integers(4))]
            )
        )
    return models


def random_waveforms(seed: int, samples: int, n: int) -> np.ndarray:
    rng = np.random.default_rng(seed + 9000)
    steps = rng.normal(0.0, 400.0, size=(samples, n))
    reversals = rng.random((samples, n)) < 0.03
    steps[reversals] *= -8.0
    return np.cumsum(steps, axis=0)


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_waveforms_match_bitwise(self, seed):
        n, samples = 8, 300
        models = random_ensemble(seed, n)
        h = random_waveforms(seed, samples, n)

        batch = BatchTimeDomainModel.from_scalar_models(models)
        result = run_batch_series(batch, h, reset=True)

        for i, model in enumerate(models):
            model.reset(h_initial=float(h[0, i]))
            h_r, m_r, b_r = model.trace(h[:, i])
            assert np.array_equal(result.b[:, i], b_r, equal_nan=True)
            assert np.array_equal(result.m[:, i], m_r, equal_nan=True)
            counters = result.counters
            assert counters["steps"][i] == model.steps
            assert counters["slope_evaluations"][i] == model.slope_evaluations
            assert (
                counters["negative_slope_evaluations"][i]
                == model.negative_slope_evaluations
            )
            assert bool(counters["diverged"][i]) == model.diverged

    def test_divergence_freezes_lane_but_not_others(self):
        """An unguarded lane that blows up freezes; its neighbours keep
        integrating exactly as if they ran alone."""
        fragile = TimeDomainJAModel(
            PAPER_PARAMETERS.with_updates(k=PAPER_PARAMETERS.k * 0.05),
            guards=SlopeGuards.none(),
            divergence_limit=2.0,
        )
        robust = TimeDomainJAModel(PAPER_PARAMETERS, guards=SlopeGuards.paper())
        batch = BatchTimeDomainModel.from_scalar_models([fragile, robust])

        h = np.concatenate(
            [np.linspace(0.0, 9e3, 150), np.linspace(9e3, -9e3, 300)]
        )
        result = run_batch_series(batch, h, reset=True)

        solo = TimeDomainJAModel(PAPER_PARAMETERS, guards=SlopeGuards.paper())
        solo.reset(h_initial=0.0)
        _, _, b_solo = solo.trace(h)
        assert np.array_equal(result.b[:, 1], b_solo)
        if result.counters["diverged"][0]:
            # frozen lane: magnetisation constant after the freeze
            frozen_from = int(result.counters["steps"][0])
            assert np.all(result.m[frozen_from:, 0] == result.m[-1, 0])

    def test_scalar_run_api_untouched_by_step_state(self):
        """The waveform-in-time run() still works after sample stepping."""
        from repro.waveforms import TriangularWave

        model = TimeDomainJAModel(PAPER_PARAMETERS, guards=SlopeGuards.paper())
        model.apply_field_series(np.linspace(0.0, 5e3, 50))
        result = model.run(
            TriangularWave(9e3, 10e-3), t_stop=12.5e-3, dt=25e-6
        )
        assert result.completed
        assert len(result) > 100


class TestValidation:
    def test_guard_count_must_match(self):
        with pytest.raises(ParameterError):
            BatchTimeDomainModel(
                [PAPER_PARAMETERS] * 3, guards=[SlopeGuards()] * 2
            )

    def test_waveform_shape_checked(self):
        batch = BatchTimeDomainModel([PAPER_PARAMETERS] * 2)
        with pytest.raises(ParameterError):
            batch.trace(np.zeros((4, 3)))

    def test_divergence_limit_broadcast(self):
        batch = BatchTimeDomainModel(
            [PAPER_PARAMETERS] * 2, divergence_limit=np.array([5.0, 100.0])
        )
        assert np.array_equal(batch.divergence_limit, [5.0, 100.0])
        with pytest.raises(ParameterError):
            BatchTimeDomainModel(
                [PAPER_PARAMETERS] * 2, divergence_limit=np.zeros(3)
            )
