"""Scenario registry and library: schedules, sampling, execution."""

import numpy as np
import pytest

from repro.batch.engine import BatchTimelessModel
from repro.core.model import TimelessJAModel
from repro.core.sweep import run_sweep, waypoint_samples
from repro.errors import ScenarioError
from repro.ja.parameters import PAPER_PARAMETERS
from repro.scenarios import (
    Scenario,
    get_scenario,
    list_scenarios,
    run_scenario,
    scenario_samples,
)

EXPECTED = {
    "major-loop",
    "minor-loop-ladder",
    "demagnetisation",
    "forc-descent",
    "major-loop-return",
    "biased-minor",
    "centred-minor",
    "forc-family",
    "inrush",
    "harmonic",
}


class TestRegistry:
    def test_catalogue_registered(self):
        names = {s.name for s in list_scenarios()}
        assert EXPECTED <= names

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ScenarioError):
            get_scenario("no-such-drive")

    def test_scenario_needs_exactly_one_builder(self):
        with pytest.raises(ScenarioError):
            Scenario(name="broken", description="no builder")
        with pytest.raises(ScenarioError):
            Scenario(
                name="broken2",
                description="both builders",
                waypoint_builder=lambda h: [0.0, h],
                sample_builder=lambda h, s, n: np.zeros(3),
            )

    def test_sampled_scenarios_have_no_waypoints(self):
        with pytest.raises(ScenarioError):
            get_scenario("harmonic").waypoints(1e3)

    def test_bad_parameters_rejected(self):
        scenario = get_scenario("major-loop")
        with pytest.raises(ScenarioError):
            scenario.samples(-1.0, 10.0)
        with pytest.raises(ScenarioError):
            scenario.samples(1e3, 0.0)
        with pytest.raises(ScenarioError):
            scenario.samples(1e3, 10.0, n_cores=0)


class TestSchedules:
    def test_waypoint_scenarios_sample_their_vertices(self):
        scenario = get_scenario("major-loop")
        samples = scenario.samples(8e3, 100.0)
        expected = waypoint_samples(scenario.waypoints(8e3), 100.0)
        assert np.array_equal(samples, expected)

    def test_cross_model_vertices_are_exact_fractions(self):
        """The EXP-X4 schedules at h=20 kA/m hit the historic vertices."""
        h = 20e3
        assert get_scenario("forc-descent").waypoints(h) == [h, -10e3]
        assert get_scenario("major-loop-return").waypoints(h) == [
            h, -10e3, 10e3, -10e3, 10e3
        ]
        assert get_scenario("biased-minor").waypoints(h) == [
            h, 5000.0, -1000.0, 5000.0, -1000.0, 5000.0
        ]
        assert get_scenario("centred-minor").waypoints(h) == [
            h, 0.0, 2000.0, -2000.0, 2000.0
        ]

    def test_forc_family_is_per_core_and_padded(self):
        scenario = get_scenario("forc-family")
        assert scenario.per_core
        samples = scenario.samples(10e3, 200.0, n_cores=5)
        assert samples.ndim == 2 and samples.shape[1] == 5
        # every lane starts at 0, peaks at +h, reverses at its own alpha
        assert np.array_equal(samples[0], np.zeros(5))
        assert (samples.max(axis=0) == 10e3).all()
        # reversal fields spread over [-0.8, 0.8] * h; lane minima are
        # min(alpha, 0) and must be non-decreasing across lanes
        minima = samples.min(axis=0)
        assert minima[0] == -8e3
        assert (np.diff(minima) >= 0).all()
        # lanes genuinely differ (each reverses at its own field)
        assert len({tuple(samples[:, i]) for i in range(5)}) == 5

    def test_sampled_drives_bounded_and_smooth(self):
        for name in ("inrush", "harmonic"):
            samples = get_scenario(name).samples(10e3, 100.0)
            assert samples.ndim == 1
            assert np.abs(samples).max() <= 10e3 * 1.2
            assert np.abs(np.diff(samples)).max() <= 3.0 * 100.0
            assert samples[0] == 0.0

    def test_demagnetisation_decays_towards_origin(self):
        samples = get_scenario("demagnetisation").samples(10e3, 100.0)
        assert abs(samples[-1]) < 0.1 * 10e3


class TestExecution:
    def test_batch_run_matches_scalar_sweep(self):
        """Scenario execution through the batch executor is bitwise the
        scalar run_sweep of the same schedule."""
        scenario = get_scenario("minor-loop-ladder")
        batch = BatchTimelessModel([PAPER_PARAMETERS], dhmax=50.0)
        result = run_scenario(batch, scenario, h_max=9e3, driver_step=12.5)

        model = TimelessJAModel(PAPER_PARAMETERS, dhmax=50.0)
        reference = run_sweep(
            model, scenario.waypoints(9e3), driver_step=12.5
        )
        lane = result.core(0)
        assert np.array_equal(lane.b, reference.b)
        assert lane.euler_steps == reference.euler_steps

    def test_scenario_resolved_by_name(self):
        batch = BatchTimelessModel([PAPER_PARAMETERS], dhmax=50.0)
        result = run_scenario(batch, "harmonic", h_max=5e3, driver_step=50.0)
        assert result.family == "timeless"
        assert result.finite

    def test_scalar_model_path(self):
        model = TimelessJAModel(PAPER_PARAMETERS, dhmax=50.0)
        h, m, b = run_scenario(model, "major-loop", h_max=5e3, driver_step=50.0)
        assert h.shape == m.shape == b.shape
        with pytest.raises(ScenarioError):
            run_scenario(model, "major-loop", h_max=5e3)  # needs driver_step

    def test_scenario_samples_helper(self):
        direct = get_scenario("inrush").samples(5e3, 50.0)
        via_helper = scenario_samples("inrush", 5e3, 50.0)
        assert np.array_equal(direct, via_helper)

    def test_scalar_path_starts_at_first_sample(self):
        """Regression: a scenario opening at a nonzero field (the
        EXP-X4 schedules start at +h_sat) must not make the scalar path
        integrate a spurious 0 -> h_sat jump; scalar and one-lane batch
        runs of the same scenario agree bitwise."""
        from repro.baselines.time_domain import TimeDomainJAModel
        from repro.batch.time_domain import BatchTimeDomainModel

        scalar = TimeDomainJAModel(PAPER_PARAMETERS)
        h_s, m_s, b_s = run_scenario(
            scalar, "forc-descent", h_max=20e3, driver_step=100.0
        )
        assert m_s[0] == 0.0  # no spurious first Euler step
        batch = BatchTimeDomainModel([PAPER_PARAMETERS])
        result = run_scenario(
            batch, "forc-descent", h_max=20e3, driver_step=100.0
        )
        assert np.array_equal(result.b[:, 0], b_s)
        # the field-free Preisach reset path still works
        from repro.models import get_family

        preisach = get_family("preisach").make_scalar()
        h_p, m_p, b_p = run_scenario(
            preisach, "forc-descent", h_max=20e3, driver_step=100.0
        )
        assert np.isfinite(b_p).all()


class TestSatelliteFixes:
    """Regressions for the scenario-layer correctness sweep (PR 3)."""

    def test_pad_lanes_rejects_empty_lane(self):
        from repro.scenarios.library import _pad_lanes

        with pytest.raises(ScenarioError, match="empty lanes \\[1\\]"):
            _pad_lanes([np.array([1.0, 2.0]), np.array([])])

    def test_pad_lanes_holds_final_values(self):
        from repro.scenarios.library import _pad_lanes

        out = _pad_lanes([np.array([1.0, 2.0, 3.0]), np.array([5.0])])
        assert np.array_equal(out[:, 0], [1.0, 2.0, 3.0])
        assert np.array_equal(out[:, 1], [5.0, 5.0, 5.0])

    def test_forc_family_one_core_is_lane_zero(self):
        """A 1-core forc-family run is lane 0 of any multi-core run
        (it used to reverse at alpha=0, matching no lane at all)."""
        scenario = get_scenario("forc-family")
        single = scenario.samples(10e3, 200.0, n_cores=1)
        pair = scenario.samples(10e3, 200.0, n_cores=2)
        # lane 0 (alpha = -0.8 h) is the deepest descent, hence the
        # longest lane: the 2-core matrix is exactly its length and
        # its column 0 needs no padding.
        assert single.shape[0] == pair.shape[0]
        assert np.array_equal(single[:, 0], pair[:, 0])
        assert single[:, 0].min() == -8e3

    def test_scalar_reset_type_errors_propagate(self):
        """Regression: a genuine TypeError raised *inside* a conforming
        reset(h_initial=...) used to be swallowed by the dispatch and
        silently retried without the initial field."""
        calls = []

        class BrokenResetModel:
            def reset(self, h_initial=0.0):
                calls.append(h_initial)
                raise TypeError("broken inside reset")

            def trace(self, samples):  # pragma: no cover - never reached
                raise AssertionError("trace must not run")

        with pytest.raises(TypeError, match="broken inside reset"):
            run_scenario(
                BrokenResetModel(), "major-loop", h_max=5e3, driver_step=50.0
            )
        assert len(calls) == 1  # no silent field-free retry

    def test_field_free_reset_still_dispatched_plain(self):
        """Models whose reset takes no field (the Preisach family) get
        the plain call; **kwargs resets receive the initial field."""
        seen = {}

        class KwargsResetModel:
            def reset(self, **kwargs):
                seen.update(kwargs)

            def trace(self, samples):
                samples = np.asarray(samples, dtype=float)
                return samples, samples, samples

        run_scenario(
            KwargsResetModel(), "forc-descent", h_max=5e3, driver_step=50.0
        )
        assert seen == {"h_initial": 5e3}
