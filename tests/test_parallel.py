"""Sharded multi-process executor: planning, specs, bitwise equivalence.

The load-bearing suite is :class:`TestShardEquivalence`: for every
registered model family, the sharded run — uneven lane splits, real
pool workers, shared-memory reassembly — must reproduce the
single-process :func:`repro.batch.sweep.run_batch_series` result array
for array, including extras/counters keys and dtypes.  Bitwise, not
approximately: sharding is a transport optimisation, never a numerics
change.
"""

import multiprocessing
import pickle

import numpy as np
import pytest

from repro.backend import BACKEND_ENV, get_backend, list_backends
from repro.batch.sweep import run_batch_series
from repro.errors import ParameterError, ScenarioError
from repro.models.registry import get_family, list_families
from repro.parallel import (
    MAX_WORKERS_ENV,
    DriveSpec,
    EnsembleSpec,
    ShardSpec,
    plan_shards,
    resolve_workers,
    run_scenario_grid,
    run_sharded,
)
from repro.scenarios import scenario_samples
from repro.sched import Calibration, ExecutionPlan, Probe

FAMILY_NAMES = [family.name for family in list_families()]
BACKEND_NAMES = [backend.name for backend in list_backends()]

#: The deliberately awkward geometry of the equivalence suite: 7 lanes
#: over 3 workers -> shards of 3 + 2 + 2.
N_CORES = 7
N_WORKERS = 3


def assert_results_bitwise_equal(reference, other) -> None:
    """Full-record equality: arrays bit for bit (NaN-aware), channel
    keys identical, dtypes identical."""
    assert np.array_equal(reference.h, other.h)
    assert np.array_equal(reference.m, other.m, equal_nan=True)
    assert np.array_equal(reference.b, other.b, equal_nan=True)
    assert np.array_equal(reference.updated, other.updated)
    assert reference.updated.dtype == other.updated.dtype
    assert reference.family == other.family
    assert sorted(reference.extras) == sorted(other.extras)
    for key in reference.extras:
        assert np.array_equal(
            reference.extras[key], other.extras[key], equal_nan=True
        ), key
        assert reference.extras[key].dtype == other.extras[key].dtype, key
    assert sorted(reference.counters) == sorted(other.counters)
    for key in reference.counters:
        assert np.array_equal(
            reference.counters[key], other.counters[key]
        ), key
        assert reference.counters[key].dtype == other.counters[key].dtype, key


class TestPlanShards:
    @pytest.mark.parametrize(
        "n_cores,n_workers,min_shard",
        [(7, 3, 1), (512, 4, 1), (5, 8, 1), (16, 4, 8), (1, 1, 1), (9, 2, 4)],
    )
    def test_contiguous_ordered_exact_cover(self, n_cores, n_workers, min_shard):
        bounds = plan_shards(n_cores, n_workers, min_shard)
        assert bounds[0][0] == 0 and bounds[-1][1] == n_cores
        for (_, stop), (start, _) in zip(bounds, bounds[1:]):
            assert stop == start  # contiguous, ordered, non-overlapping
        widths = [stop - start for start, stop in bounds]
        assert min(widths) >= 1
        assert max(widths) - min(widths) <= 1  # balanced

    def test_uneven_split_shape(self):
        assert plan_shards(7, 3) == [(0, 3), (3, 5), (5, 7)]

    def test_min_shard_reduces_shard_count(self):
        assert plan_shards(16, 8, min_shard=8) == [(0, 8), (8, 16)]
        assert plan_shards(3, 8, min_shard=8) == [(0, 3)]

    def test_never_more_shards_than_cores(self):
        assert len(plan_shards(2, 16)) == 2

    @pytest.mark.parametrize("bad", [(0, 1, 1), (4, 0, 1), (4, 2, 0)])
    def test_invalid_arguments_rejected(self, bad):
        with pytest.raises(ParameterError):
            plan_shards(*bad)

    def test_property_sweep(self):
        """Every invariant, over the whole (n_cores, n_workers,
        min_shard) grid the executors and the cost model rely on —
        plan_shards is pure arithmetic, so exhaustive beats sampled."""
        for n_cores in (1, 2, 3, 5, 7, 8, 16, 31, 64, 129, 512):
            for n_workers in (1, 2, 3, 4, 7, 8, 16, 33):
                for min_shard in (1, 2, 4, 9, 100):
                    bounds = plan_shards(n_cores, n_workers, min_shard)
                    label = (n_cores, n_workers, min_shard)
                    # contiguous, ordered, exact cover of [0, n_cores)
                    assert bounds[0][0] == 0, label
                    assert bounds[-1][1] == n_cores, label
                    for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                        assert stop == start, label
                    widths = [stop - start for start, stop in bounds]
                    # every shard non-empty, balanced to within one lane
                    assert min(widths) >= 1, label
                    assert max(widths) - min(widths) <= 1, label
                    # never more shards than workers or lanes
                    assert len(bounds) <= min(n_workers, n_cores), label
                    # the min_shard floor: splitting never produces a
                    # shard below it (a single shard may be the whole
                    # ensemble, however small)
                    assert len(bounds) == 1 or min(widths) >= min_shard, label


class TestSpecs:
    def test_drive_spec_needs_exactly_one_route(self):
        with pytest.raises(ParameterError):
            DriveSpec()
        with pytest.raises(ParameterError):
            DriveSpec(scenario="major-loop", samples=np.zeros(3))
        with pytest.raises(ScenarioError):
            DriveSpec(scenario="major-loop", h_max=1e3)  # no driver_step

    def test_drive_spec_slices_per_core_columns(self):
        drive = DriveSpec(
            scenario="forc-family", h_max=10e3, driver_step=200.0
        )
        full = drive.full_samples(N_CORES)
        assert full.shape[1] == N_CORES
        shard = drive.shard_samples(N_CORES, 3, 5)
        assert np.array_equal(shard, full[:, 3:5])
        shared = DriveSpec(samples=np.array([0.0, 1.0, 2.0]))
        assert shared.shard_samples(N_CORES, 3, 5).ndim == 1

    def test_ensemble_spec_rejects_unknown_family(self):
        with pytest.raises(ParameterError):
            EnsembleSpec(family="no-such-family", n_cores=4)

    def test_ensemble_spec_slice_is_full_recipe_lane(self):
        """Workers must rebuild the full RNG stream and slice — lane 2
        of the recipe, not lane 0 of a narrower recipe."""
        spec = EnsembleSpec(family="timeless", n_cores=4, seed=9)
        sliced = spec.build_batch(2, 4)
        full = spec.build_batch()
        assert np.array_equal(sliced.params.m_sat, full.params.m_sat[2:4])
        assert np.array_equal(sliced.dhmax, full.dhmax[2:4])

    def test_shard_spec_needs_exactly_one_source(self):
        drive = DriveSpec(samples=np.zeros(3))
        spec = EnsembleSpec(family="timeless", n_cores=4)
        with pytest.raises(ParameterError):
            ShardSpec(
                family="timeless",
                n_cores_total=4,
                start=0,
                stop=2,
                drive=drive,
            )
        with pytest.raises(ParameterError):
            ShardSpec(
                family="timeless",
                n_cores_total=4,
                start=2,
                stop=2,
                drive=drive,
                ensemble=spec,
            )

    def test_shard_spec_rejects_sub_one_threads(self):
        with pytest.raises(ParameterError, match="threads"):
            ShardSpec(
                family="timeless",
                n_cores_total=4,
                start=0,
                stop=2,
                drive=DriveSpec(samples=np.zeros(3)),
                ensemble=EnsembleSpec(family="timeless", n_cores=4),
                threads=0,
            )

    def test_specs_pickle_round_trip(self):
        drive = DriveSpec(
            scenario="minor-loop-ladder", h_max=10e3, driver_step=250.0
        )
        shard = ShardSpec(
            family="timeless",
            n_cores_total=4,
            start=1,
            stop=3,
            drive=drive,
            ensemble=EnsembleSpec(family="timeless", n_cores=4, seed=5),
        )
        clone = pickle.loads(pickle.dumps(shard))
        assert (clone.family, clone.start, clone.stop) == ("timeless", 1, 3)
        assert clone.drive == drive
        assert clone.ensemble == shard.ensemble
        batch = clone.build_batch()
        assert batch.n_cores == 2

    def test_drive_spec_equality_is_array_aware(self):
        """The dataclass-generated __eq__ would crash on the ndarray
        field; the custom one compares element-wise."""
        a = DriveSpec(samples=np.array([0.0, 1.0]))
        b = DriveSpec(samples=np.array([0.0, 1.0]))
        c = DriveSpec(samples=np.array([0.0, 2.0]))
        assert a == b and a != c
        assert a != DriveSpec(
            scenario="major-loop", h_max=1e3, driver_step=10.0
        )


class TestCounterMerge:
    def test_union_with_zero_fill_for_lazy_keys(self):
        """Counters registered by only some shards (lazily appearing
        keys) merge over the union, zero-filled where absent — the
        sharded analogue of run_batch_series' lazy-counter support."""
        from repro.parallel.executor import merge_shard_counters

        merged = merge_shard_counters(
            [
                {"steps": np.array([1, 2], dtype=np.int64)},
                {
                    "steps": np.array([3], dtype=np.int64),
                    "late": np.array([9], dtype=np.int64),
                },
            ],
            widths=[2, 1],
        )
        assert set(merged) == {"steps", "late"}
        assert np.array_equal(merged["steps"], [1, 2, 3])
        assert np.array_equal(merged["late"], [0, 0, 9])
        assert merged["late"].dtype == np.int64

    def test_shard_local_explicit_samples_enforced(self):
        """ShardSpec explicit drives are shard-local; a full-width
        matrix smuggled in is rejected, not silently mis-sliced."""
        drive = DriveSpec(samples=np.zeros((4, 7)))
        spec = ShardSpec(
            family="timeless",
            n_cores_total=7,
            start=0,
            stop=3,
            drive=drive,
            ensemble=EnsembleSpec(family="timeless", n_cores=7),
        )
        with pytest.raises(ParameterError, match="shard-local"):
            spec.build_samples()


class TestResolveWorkers:
    def test_env_cap_clamps(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "2")
        assert resolve_workers(8) == 2
        assert resolve_workers(1) == 1

    def test_bad_env_cap_rejected(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "lots")
        with pytest.raises(ParameterError):
            resolve_workers(4)

    @pytest.mark.parametrize("cap", ["0", "-1", "-8"])
    def test_sub_one_env_cap_rejected(self, cap, monkeypatch):
        """A sub-1 cap is a configuration error and must fail loudly —
        the historical behaviour clamped it to 1, silently serialising
        runs a broken CI matrix entry meant to parallelise."""
        monkeypatch.setenv(MAX_WORKERS_ENV, cap)
        with pytest.raises(ParameterError, match=">= 1"):
            resolve_workers(4)
        with pytest.raises(ParameterError, match=">= 1"):
            resolve_workers(None)  # the default request hits it too

    def test_invalid_request_rejected(self):
        with pytest.raises(ParameterError):
            resolve_workers(0)


@pytest.mark.parametrize("name", FAMILY_NAMES)
class TestShardConstruction:
    def test_engine_shard_is_bitwise_lane_slice(self, name):
        """Engine-level contract: a shard's run equals the full run's
        column slice, for uneven slices, in process."""
        family = get_family(name)
        batch = family.make_batch(N_CORES, seed=1)
        h = scenario_samples(
            "minor-loop-ladder", family.h_scale, family.h_scale / 40.0
        )
        full = run_batch_series(batch, h)
        for start, stop in plan_shards(N_CORES, N_WORKERS):
            part = run_batch_series(batch.shard(start, stop), h)
            assert np.array_equal(
                part.m, full.m[:, start:stop], equal_nan=True
            )
            assert np.array_equal(
                part.b, full.b[:, start:stop], equal_nan=True
            )
            for key in full.counters:
                assert np.array_equal(
                    part.counters[key], full.counters[key][start:stop]
                ), key

    def test_shard_payload_rejects_bad_range(self, name):
        batch = get_family(name).make_batch(3, seed=1)
        with pytest.raises(ParameterError):
            batch.shard_payload(2, 2)
        with pytest.raises(ParameterError):
            batch.shard_payload(0, 4)


@pytest.mark.parametrize("name", FAMILY_NAMES)
class TestShardEquivalence:
    """The tentpole contract: sharded == single-process, bitwise."""

    def test_pool_uneven_split_per_core_drive(self, name):
        """N = 7 lanes over 3 real pool workers, per-core FORC drive
        (2-D samples exercise column slicing on both sides)."""
        family = get_family(name)
        batch = family.make_batch(N_CORES, seed=0)
        h = scenario_samples(
            "forc-family",
            family.h_scale,
            family.h_scale / 40.0,
            n_cores=N_CORES,
        )
        reference = run_batch_series(batch, h)
        sharded = run_sharded(batch, h, n_workers=N_WORKERS)
        assert_results_bitwise_equal(reference, sharded)

    def test_serial_fallback_shared_drive(self, name):
        """n_workers=1: same shard specs, no processes, still bitwise."""
        family = get_family(name)
        batch = family.make_batch(N_CORES, seed=0)
        h = scenario_samples(
            "minor-loop-ladder", family.h_scale, family.h_scale / 40.0
        )
        reference = run_batch_series(batch, h)
        sharded = run_sharded(batch, h, n_workers=1)
        assert_results_bitwise_equal(reference, sharded)

    def test_ensemble_spec_route_matches_live_batch(self, name):
        """Workers rebuilding from the registry recipe produce the same
        lanes as sharding a live batch."""
        family = get_family(name)
        spec = EnsembleSpec(family=name, n_cores=N_CORES, seed=0)
        h = scenario_samples(
            "minor-loop-ladder", family.h_scale, family.h_scale / 40.0
        )
        reference = run_batch_series(family.make_batch(N_CORES, seed=0), h)
        sharded = run_sharded(spec, h, n_workers=N_WORKERS)
        assert_results_bitwise_equal(reference, sharded)


@pytest.mark.parametrize("backend_name", BACKEND_NAMES)
@pytest.mark.parametrize("name", FAMILY_NAMES)
class TestFusedShardedEquivalence:
    """Fused × sharded composition, per family × registered backend:
    shards run the fused ``step_series`` path internally (compiled
    drivers included, when the backend registers one for the family),
    and the reassembly is pinned against the single-process
    ``run_batch_series(fused=True)`` — bitwise on exact backends,
    rtol-tiered on JIT backends.  A newly registered backend is covered
    with zero new test code."""

    def _assert_composed_equal(self, reference, sharded, backend) -> None:
        if backend.exact:
            assert_results_bitwise_equal(reference, sharded)
            return
        # Per-sample trajectories hold the backend tier; structure
        # (channel sets, updated masks, threshold-decision counters)
        # stays exact — the same split the conformance suite applies.
        assert np.array_equal(reference.h, sharded.h)
        assert np.array_equal(reference.updated, sharded.updated)
        assert sorted(reference.extras) == sorted(sharded.extras)
        assert sorted(reference.counters) == sorted(sharded.counters)
        for key in ("euler_steps", "switch_events", "steps"):
            if key in reference.counters:
                assert np.array_equal(
                    reference.counters[key], sharded.counters[key]
                ), key
        for actual, expected in ((sharded.m, reference.m), (sharded.b, reference.b)):
            scale = float(np.nanmax(np.abs(expected)))
            assert np.allclose(
                actual,
                expected,
                rtol=backend.rtol,
                atol=backend.rtol * max(scale, 1.0),
                equal_nan=True,
            )

    def test_sharded_matches_single_process_fused(self, name, backend_name):
        """N = 7 lanes over 3 pool workers (uneven 3+2+2 split), both
        sides on the same backend and both on the fused path."""
        family = get_family(name)
        backend = get_backend(backend_name)
        batch = family.make_batch(N_CORES, seed=0, backend=backend_name)
        h = scenario_samples(
            "minor-loop-ladder", family.h_scale, family.h_scale / 40.0
        )
        reference = run_batch_series(
            family.make_batch(N_CORES, seed=0, backend=backend_name),
            h,
            fused=True,
        )
        sharded = run_sharded(batch, h, n_workers=N_WORKERS)
        self._assert_composed_equal(reference, sharded, backend)

    def test_serial_fallback_matches_single_process_fused(
        self, name, backend_name
    ):
        """The n_workers=1 serial path composes with the fused drivers
        identically (same shard specs, no processes)."""
        family = get_family(name)
        backend = get_backend(backend_name)
        batch = family.make_batch(N_CORES, seed=0, backend=backend_name)
        h = scenario_samples(
            "minor-loop-ladder", family.h_scale, family.h_scale / 40.0
        )
        reference = run_batch_series(
            family.make_batch(N_CORES, seed=0, backend=backend_name),
            h,
            fused=True,
        )
        sharded = run_sharded(batch, h, n_workers=1)
        self._assert_composed_equal(reference, sharded, backend)


class TestRunShardedValidation:
    def test_needs_exactly_one_drive(self):
        batch = get_family("timeless").make_batch(2)
        with pytest.raises(ParameterError):
            run_sharded(batch)
        with pytest.raises(ParameterError):
            run_sharded(
                batch, np.zeros(3), scenario="major-loop", h_max=1e3
            )

    def test_scenario_route_resolves_full_hint(self):
        """The driver step comes from the full ensemble, not a shard:
        the sharded scenario run equals the single-process scenario run
        even though shard hints would differ."""
        from repro.scenarios import run_scenario

        batch = get_family("timeless").make_batch(N_CORES, seed=0)
        reference = run_scenario(batch, "major-loop", h_max=5e3)
        sharded = run_sharded(
            batch, scenario="major-loop", h_max=5e3, n_workers=N_WORKERS
        )
        assert_results_bitwise_equal(reference, sharded)

    def test_rejects_non_batch_source(self):
        with pytest.raises(ParameterError):
            run_sharded(object(), np.zeros(3))

    def test_min_shard_collapses_to_serial(self):
        """A tiny ensemble with a large min_shard never forks."""
        family = get_family("timeless")
        batch = family.make_batch(3, seed=0)
        h = scenario_samples("major-loop", family.h_scale, 250.0)
        reference = run_batch_series(batch, h)
        sharded = run_sharded(batch, h, n_workers=4, min_shard=8)
        assert_results_bitwise_equal(reference, sharded)


def write_synthetic_calibration(path) -> None:
    """A numpy-only calibration with a large measured pool overhead, so
    ``plan="auto"`` deterministically picks the single-process numpy
    plan on any host — correctness of the plan *plumbing* is what these
    tests pin; plan *selection* is pinned in tests/test_sched.py."""
    probes = tuple(
        Probe(
            family=name,
            backend="numpy",
            threads=1,
            lanes=lanes,
            samples=samples,
            seconds=samples * (1e-6 + 1e-7 * lanes),
        )
        for name in FAMILY_NAMES
        for lanes in (4, 16, 64)
        for samples in (64, 256)
    )
    Calibration(
        host={"hostname": "synthetic"},
        probes=probes,
        pool={
            "base_seconds": 10.0,
            "per_worker_seconds": 1.0,
            "start_method": "fork",
        },
        created="2026-08-08T00:00:00",
    ).save(path)


class TestExecutionPlanPlumbing:
    """``plan=`` owns the backend / pool / thread knobs end to end —
    and never changes what is computed, only how."""

    def _drive(self, family):
        return scenario_samples(
            "minor-loop-ladder", family.h_scale, family.h_scale / 40.0
        )

    def test_plan_and_n_workers_mutually_exclusive(self):
        batch = get_family("timeless").make_batch(2, seed=0)
        with pytest.raises(ParameterError, match="plan"):
            run_sharded(
                batch,
                np.zeros(3),
                n_workers=2,
                plan=ExecutionPlan(backend="numpy"),
            )

    def test_invalid_plan_value_rejected(self):
        batch = get_family("timeless").make_batch(2, seed=0)
        with pytest.raises(ParameterError, match="plan must be"):
            run_sharded(batch, np.zeros(3), plan="fast")

    def test_explicit_plan_matches_unplanned_run(self):
        """A hand plan through plan= is bitwise the same run as the
        explicit n_workers knob it replaces — pooled and serial."""
        family = get_family("timeless")
        h = self._drive(family)
        reference = run_sharded(
            family.make_batch(N_CORES, seed=0), h, n_workers=N_WORKERS
        )
        for workers in (1, N_WORKERS):
            planned = run_sharded(
                family.make_batch(N_CORES, seed=0),
                h,
                plan=ExecutionPlan(backend="numpy", n_workers=workers),
            )
            assert_results_bitwise_equal(reference, planned)

    def test_auto_plan_matches_unplanned_run(self, tmp_path, monkeypatch):
        """plan="auto" against a persisted calibration: still bitwise
        against the plain single-process run, for a live batch and for
        an EnsembleSpec recipe."""
        from repro.sched import CALIBRATION_ENV

        target = tmp_path / "cal.json"
        write_synthetic_calibration(target)
        monkeypatch.setenv(CALIBRATION_ENV, str(target))
        family = get_family("timeless")
        h = self._drive(family)
        reference = run_batch_series(family.make_batch(N_CORES, seed=0), h)
        for source in (
            family.make_batch(N_CORES, seed=0),
            EnsembleSpec(family="timeless", n_cores=N_CORES, seed=0),
        ):
            sharded = run_sharded(source, h, plan="auto")
            assert_results_bitwise_equal(reference, sharded)

    def test_threads_clamped_to_host_affinity(self, monkeypatch):
        """workers x threads never exceeds the CPU affinity: a plan
        asking for more lane threads than the host has is clamped
        before shard specs are cut."""
        import repro.parallel.executor as executor

        monkeypatch.setattr(executor, "available_cpus", lambda: 4)
        seen = []
        real_prepare = executor.prepare_job

        def spying_prepare(source, drive, n_workers, min_shard, threads=1,
                           chunk_lanes=None):
            seen.append((n_workers, threads))
            return real_prepare(source, drive, n_workers, min_shard, threads,
                                chunk_lanes=chunk_lanes)

        monkeypatch.setattr(executor, "prepare_job", spying_prepare)
        family = get_family("timeless")
        h = self._drive(family)
        run_sharded(
            family.make_batch(3, seed=0),
            h,
            plan=ExecutionPlan(
                backend="numpy", n_workers=1, threads_per_worker=64
            ),
        )
        assert seen == [(1, 4)]  # 64 requested, 4 CPUs -> 4 threads

        seen.clear()
        monkeypatch.setattr(executor, "available_cpus", lambda: 1)
        run_sharded(
            family.make_batch(3, seed=0),
            h,
            plan=ExecutionPlan(
                backend="numpy", n_workers=1, threads_per_worker=64
            ),
        )
        assert seen == [(1, 1)]
        for workers, threads in seen:
            assert workers * threads <= 1

    def test_plan_threads_stamped_into_shard_specs(self):
        """prepare_job carries the plan's thread count into every
        ShardSpec (pooled shards always carry threads=1 — the planner
        never composes the axes, and ExecutionPlan cannot express it)."""
        from repro.parallel.executor import prepare_job

        spec = EnsembleSpec(family="timeless", n_cores=6, seed=0)
        drive = DriveSpec(samples=np.zeros(4))
        serial_job = prepare_job(spec, drive, 1, 1, threads=2)
        assert [s.threads for s in serial_job.specs] == [2]
        serial_job.release()
        pooled_job = prepare_job(spec, drive, 3, 1, threads=1)
        assert [s.threads for s in pooled_job.specs] == [1, 1, 1]
        pooled_job.release()

    def test_apply_plan_backend_spec_is_repinned_copy(self):
        from repro.parallel.executor import _apply_plan_backend

        spec = EnsembleSpec(family="timeless", n_cores=4, seed=0)
        replaced, restore = _apply_plan_backend(spec, "numpy")
        assert replaced.backend == "numpy"
        assert spec.backend is None  # the original spec is untouched
        restore()  # no-op for immutable specs

    def test_apply_plan_backend_live_batch_restores(self):
        from repro.parallel.executor import _apply_plan_backend

        batch = get_family("timeless").make_batch(3, seed=0)
        previous = batch.backend
        replaced, restore = _apply_plan_backend(batch, "numpy")
        assert replaced is batch
        assert batch.backend.name == "numpy"
        restore()
        assert batch.backend is previous


class TestScenarioGrid:
    def test_grid_cells_match_single_process(self):
        families = ["timeless", "time-domain"]
        scenarios = ["major-loop", "harmonic"]
        amplitudes = [5e3, 10e3]
        cells = run_scenario_grid(
            families,
            scenarios,
            amplitudes,
            n_cores=5,
            seed=2,
            driver_step=200.0,
            n_workers=2,
            chunk_cells=3,  # smaller than the 8 cells: chunking runs
        )
        assert [c.key for c in cells] == [
            (f, s, h)
            for f in families
            for s in scenarios
            for h in amplitudes
        ]
        for cell in cells:
            batch = EnsembleSpec(
                family=cell.family, n_cores=5, seed=2
            ).build_batch()
            h = scenario_samples(cell.scenario, cell.h_max, 200.0, n_cores=5)
            assert_results_bitwise_equal(
                run_batch_series(batch, h), cell.result
            )

    def test_serial_grid_matches_pooled(self):
        kwargs = dict(n_cores=3, seed=1, driver_step=250.0, chunk_cells=2)
        pooled = run_scenario_grid(
            ["timeless"], ["major-loop", "inrush"], [5e3], n_workers=2, **kwargs
        )
        serial = run_scenario_grid(
            ["timeless"], ["major-loop", "inrush"], [5e3], n_workers=1, **kwargs
        )
        for a, b in zip(pooled, serial):
            assert a.key == b.key
            assert_results_bitwise_equal(a.result, b.result)

    def test_empty_axes_rejected(self):
        with pytest.raises(ParameterError):
            run_scenario_grid([], ["major-loop"], [1e3], n_cores=2)

    def test_backend_resolved_once_at_grid_entry(self, monkeypatch):
        """The grid pins the backend before planning any cell: flipping
        ``REPRO_BACKEND`` mid-campaign (here: before every cell's
        ``prepare_job``) must not re-resolve per cell — with per-cell
        resolution the unregistered name would raise, and a registered
        one would silently split the grid across backends."""
        import repro.parallel.grid as grid_mod

        monkeypatch.setenv(BACKEND_ENV, "numpy")
        real_prepare = grid_mod.prepare_job
        pinned_backends = []

        def flipping_prepare(source, *args, **kwargs):
            monkeypatch.setenv(BACKEND_ENV, "definitely-not-registered")
            pinned_backends.append(source.backend)
            return real_prepare(source, *args, **kwargs)

        monkeypatch.setattr(grid_mod, "prepare_job", flipping_prepare)
        cells = run_scenario_grid(
            ["timeless"],
            ["major-loop"],
            [2e3, 5e3],
            n_cores=2,
            driver_step=250.0,
            n_workers=1,
        )
        assert len(cells) == 2
        assert pinned_backends == ["numpy", "numpy"]

    def test_explicit_backend_argument_stamps_cells(self):
        """run_scenario_grid(backend=...) reaches every cell's spec."""
        import repro.parallel.grid as grid_mod

        cells = grid_mod._plan_cells(
            ["timeless"], ["major-loop"], [1e3], 2, 0, 100.0, "numpy"
        )
        for _, spec, source, _ in cells:
            assert spec.backend == "numpy"
            assert source.backend == "numpy"

    def test_plan_conflicts_with_explicit_knobs(self):
        plan = ExecutionPlan(backend="numpy")
        kwargs = dict(n_cores=2, driver_step=250.0)
        with pytest.raises(ParameterError, match="plan"):
            run_scenario_grid(
                ["timeless"], ["major-loop"], [1e3],
                n_workers=2, plan=plan, **kwargs,
            )
        with pytest.raises(ParameterError, match="plan"):
            run_scenario_grid(
                ["timeless"], ["major-loop"], [1e3],
                backend="numpy", plan=plan, **kwargs,
            )

    def test_invalid_plan_value_rejected(self):
        with pytest.raises(ParameterError, match="plan must be"):
            run_scenario_grid(
                ["timeless"], ["major-loop"], [1e3],
                n_cores=2, driver_step=250.0, plan="fast",
            )

    def test_explicit_plan_matches_unplanned_grid(self):
        kwargs = dict(n_cores=3, seed=1, driver_step=250.0)
        reference = run_scenario_grid(
            ["timeless"], ["major-loop", "inrush"], [5e3],
            n_workers=2, **kwargs,
        )
        planned = run_scenario_grid(
            ["timeless"], ["major-loop", "inrush"], [5e3],
            plan=ExecutionPlan(backend="numpy", n_workers=2), **kwargs,
        )
        for a, b in zip(reference, planned):
            assert a.key == b.key
            assert_results_bitwise_equal(a.result, b.result)

    def test_auto_plan_grid_matches_unplanned(self, tmp_path, monkeypatch):
        """One auto plan for the whole grid, from the persisted
        calibration — every cell still bitwise against the explicit
        run (one-backend-per-grid is preserved by construction)."""
        from repro.sched import CALIBRATION_ENV

        target = tmp_path / "cal.json"
        write_synthetic_calibration(target)
        monkeypatch.setenv(CALIBRATION_ENV, str(target))
        kwargs = dict(n_cores=3, seed=1, driver_step=250.0)
        reference = run_scenario_grid(
            ["timeless", "preisach"], ["major-loop"], [5e3],
            n_workers=1, **kwargs,
        )
        planned = run_scenario_grid(
            ["timeless", "preisach"], ["major-loop"], [5e3],
            plan="auto", **kwargs,
        )
        for a, b in zip(reference, planned):
            assert a.key == b.key
            assert_results_bitwise_equal(a.result, b.result)


class DtypeExtrasShardedBatch:
    """Minimal conforming batch whose extras channels are int32/bool —
    the sharded regression twin of the in-process dtype pin: shared
    output buffers must allocate from the registry-declared dtypes
    instead of hard-coding float64 (which silently coerced these
    channels before the per-channel schema existed)."""

    family = "dtype-shard-test"

    def __init__(self, multipliers) -> None:
        self._mult = np.asarray(multipliers, dtype=np.int32)
        n = len(self._mult)
        self._h = np.zeros(n)
        self._count = np.zeros(n, dtype=np.int32)

    @property
    def n_cores(self) -> int:
        return len(self._mult)

    @property
    def h(self) -> np.ndarray:
        return self._h.copy()

    @property
    def m(self) -> np.ndarray:
        return self._h * 0.5

    @property
    def m_normalised(self) -> np.ndarray:
        return self.m

    @property
    def b(self) -> np.ndarray:
        return self._h * 2.0

    def begin_series(self, h_initial) -> None:
        self._h = np.broadcast_to(
            np.asarray(h_initial, dtype=float), (self.n_cores,)
        ).copy()
        self._count[:] = 0

    def step(self, h_new) -> np.ndarray:
        self._h = np.broadcast_to(
            np.asarray(h_new, dtype=float), (self.n_cores,)
        ).copy()
        self._count += 1
        return np.ones(self.n_cores, dtype=bool)

    def counter_totals(self) -> dict:
        return {"steps": self._count.astype(np.int64)}

    def probe_extras(self) -> dict:
        # Lane-dependent values: reassembly order errors cannot hide.
        return {
            "event_count": (self._count * self._mult).astype(np.int32),
            "armed": (self._count + self._mult) % 2 == 1,
        }

    def driver_step_hint(self) -> float:
        return 1.0

    def snapshot(self):
        return (self._h.copy(), self._count.copy())

    def restore(self, snap) -> None:
        self._h, self._count = snap[0].copy(), snap[1].copy()

    def shard_payload(self, start: int, stop: int) -> dict:
        return {"multipliers": self._mult[start:stop].copy()}


@pytest.fixture
def dtype_extras_family():
    """Temporarily register the non-float-extras family (fork workers
    inherit the registration; the registry is restored afterwards)."""
    from repro.models.registry import ModelFamily, register_family, unregister_family

    family = ModelFamily(
        name=DtypeExtrasShardedBatch.family,
        description="sharded extras dtype regression family",
        make_models=lambda n, seed: list(range(1, n + 1)),
        stack=lambda models: DtypeExtrasShardedBatch(list(models)),
        extras_channels=(("event_count", "<i4"), ("armed", "|b1")),
        counter_channels=("steps",),
        batch_from_payload=lambda payload: DtypeExtrasShardedBatch(**payload),
    )
    register_family(family)
    try:
        yield family
    finally:
        unregister_family(family.name)


class TestShardedExtrasDtypes:
    def test_pooled_round_trip_preserves_probed_dtypes(
        self, dtype_extras_family
    ):
        """The satellite pin: int32/bool extras survive the pooled
        shared-memory path exactly as the in-process executor records
        them — values and dtypes, over an uneven 7-lanes/3-workers
        split."""
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs the fork start method (registry is inherited)")
        batch = dtype_extras_family.make_batch(N_CORES)
        h = np.array([1.0, 2.0, 3.0, 4.0])
        reference = run_batch_series(batch, h)
        assert reference.extras["event_count"].dtype == np.int32
        assert reference.extras["armed"].dtype == np.bool_
        sharded = run_sharded(
            dtype_extras_family.make_batch(N_CORES),
            h,
            n_workers=N_WORKERS,
            mp_context="fork",
        )
        assert_results_bitwise_equal(reference, sharded)

    def test_serial_round_trip_preserves_probed_dtypes(
        self, dtype_extras_family
    ):
        batch = dtype_extras_family.make_batch(5)
        h = np.array([1.0, 2.0, 3.0])
        reference = run_batch_series(batch, h)
        sharded = run_sharded(
            dtype_extras_family.make_batch(5), h, n_workers=1
        )
        assert_results_bitwise_equal(reference, sharded)

    def test_registry_schema_route_allocates_declared_dtypes(
        self, dtype_extras_family
    ):
        """An EnsembleSpec source has no live batch to probe: the
        registry-declared (name, dtype) entries are the allocation
        schema."""
        from repro.parallel.executor import _extras_schema, prepare_job

        spec = EnsembleSpec(family=dtype_extras_family.name, n_cores=4)
        schema = _extras_schema(spec)
        assert schema == {
            "event_count": np.dtype(np.int32),
            "armed": np.dtype(np.bool_),
        }
        job = prepare_job(
            spec,
            DriveSpec(samples=np.array([1.0, 2.0])),
            n_workers=2,
            min_shard=1,
        )
        try:
            job.allocate()
            assert job.layout.extras["event_count"].dtype == "<i4"
            assert job.layout.extras["armed"].dtype == "|b1"
        finally:
            job.release()
