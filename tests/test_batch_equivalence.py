"""Batch/scalar bitwise equivalence: the batch engine's defining property.

``BatchTimelessModel`` must reproduce N independent ``TimelessJAModel``
runs *bitwise* — same IEEE operations per lane — for heterogeneous
parameters, ``dhmax``, guard combinations, ``accept_equal`` flags and
per-core waveforms.  These are property-style sweeps over seeded random
ensembles; any 1-ulp divergence (e.g. a libm-vs-SIMD mismatch creeping
back into the anhysteretic scalar path) fails them.
"""

import numpy as np
import pytest

from repro.analysis.stability import audit_trajectory, audit_trajectory_batch
from repro.batch import (
    BatchJAParameters,
    BatchTimelessModel,
    run_batch_series,
    sweep,
)
from repro.core.model import TimelessJAModel
from repro.core.slope import SlopeGuards
from repro.core.sweep import run_sweep
from repro.errors import ParameterError
from repro.ja.parameters import (
    HARD_STEEL,
    JILES_ATHERTON_1984,
    PAPER_PARAMETERS,
    SOFT_FERRITE,
)
from repro.waveforms.sweeps import major_loop_waypoints

GUARD_CHOICES = [
    SlopeGuards(True, True),
    SlopeGuards(True, False),
    SlopeGuards(False, True),
    SlopeGuards(False, False),
]


def random_ensemble(seed: int, n: int):
    """Heterogeneous params/dhmax/guards/accept_equal, seeded."""
    rng = np.random.default_rng(seed)
    base = [PAPER_PARAMETERS, SOFT_FERRITE, HARD_STEEL, JILES_ATHERTON_1984]
    params = []
    for i in range(n):
        p = base[int(rng.integers(len(base)))]
        params.append(
            p.with_updates(
                k=float(p.k * rng.uniform(0.6, 1.6)),
                c=float(rng.uniform(0.02, 0.6)),
                m_sat=float(p.m_sat * rng.uniform(0.7, 1.3)),
                name=f"rand-{seed}-{i}",
            )
        )
    dhmax = rng.uniform(5.0, 150.0, n)
    guards = [GUARD_CHOICES[int(rng.integers(4))] for _ in range(n)]
    accept_equal = rng.random(n) < 0.5
    return params, dhmax, guards, accept_equal


def random_waveforms(seed: int, samples: int, n: int) -> np.ndarray:
    """Random-walk waveforms with occasional large reversals, per core."""
    rng = np.random.default_rng(seed + 1000)
    steps = rng.normal(0.0, 600.0, size=(samples, n))
    reversals = rng.random((samples, n)) < 0.02
    steps[reversals] *= -8.0
    return np.cumsum(steps, axis=0)


def scalar_reference(params, dhmax, guards, accept_equal, h):
    """N independent scalar models over the same sample matrix."""
    samples, n = h.shape
    b = np.empty((samples, n))
    m = np.empty((samples, n))
    models = []
    for i in range(n):
        model = TimelessJAModel(
            params[i],
            dhmax=float(dhmax[i]),
            guards=guards[i],
            accept_equal=bool(accept_equal[i]),
        )
        model.reset(h_initial=float(h[0, i]))
        step = model._integrator.step
        for s in range(samples):
            step(float(h[s, i]))
            m[s, i] = model.m
            b[s, i] = model.b
        models.append(model)
    return models, m, b


class TestHeterogeneousBitwiseEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_waveforms_match_bitwise(self, seed):
        n, samples = 12, 300
        params, dhmax, guards, accept_equal = random_ensemble(seed, n)
        h = random_waveforms(seed, samples, n)

        batch = BatchTimelessModel(
            params, dhmax=dhmax, guards=guards, accept_equal=accept_equal
        )
        result = run_batch_series(batch, h)
        models, m_ref, b_ref = scalar_reference(
            params, dhmax, guards, accept_equal, h
        )

        # Bitwise trajectories: array_equal with NaN-aware fallback for
        # deliberately unguarded (possibly diverging) lanes.
        assert np.array_equal(result.b, b_ref, equal_nan=True)
        assert np.array_equal(result.m, m_ref, equal_nan=True)

        # Final states and counters, lane by lane.
        for i, model in enumerate(models):
            s = model._integrator.state
            assert _same_float(batch.state.m_irr[i], s.m_irr)
            assert _same_float(batch.state.m_total[i], s.m_total)
            assert _same_float(batch.state.h_accepted[i], s.h_accepted)
            assert batch.state.delta[i] == s.delta
            assert batch.state.updates[i] == s.updates
            c = model._integrator.counters
            assert result.euler_steps[i] == c.euler_steps
            assert result.clamped_slopes[i] == c.clamped_slopes
            assert result.dropped_increments[i] == c.dropped_increments

    @pytest.mark.parametrize("seed", [7, 8])
    def test_shared_waypoint_sweep_matches_run_sweep(self, seed):
        n = 6
        params, dhmax, guards, accept_equal = random_ensemble(seed, n)
        waypoints = major_loop_waypoints(8e3, cycles=1)
        driver_step = 20.0

        result = sweep(
            params,
            waypoints,
            dhmax=dhmax,
            driver_step=driver_step,
            guards=guards,
            accept_equal=accept_equal,
        )
        for i in range(n):
            model = TimelessJAModel(
                params[i],
                dhmax=float(dhmax[i]),
                guards=guards[i],
                accept_equal=bool(accept_equal[i]),
            )
            reference = run_sweep(model, waypoints, driver_step=driver_step)
            lane = result.core(i)
            assert np.array_equal(lane.h, reference.h)
            assert np.array_equal(lane.b, reference.b, equal_nan=True)
            assert np.array_equal(lane.m, reference.m, equal_nan=True)
            assert np.array_equal(lane.updated, reference.updated)
            assert lane.euler_steps == reference.euler_steps
            assert lane.clamped_slopes == reference.clamped_slopes
            assert lane.dropped_increments == reference.dropped_increments


class TestScalarSeriesRouting:
    """apply_field_series/trace route ndarray input through the batch
    engine; the result must be bitwise identical to scalar stepping."""

    def test_ndarray_series_matches_list_series(self):
        h = np.linspace(0.0, 9000.0, 400)
        via_batch = TimelessJAModel(PAPER_PARAMETERS, dhmax=50.0)
        via_list = TimelessJAModel(PAPER_PARAMETERS, dhmax=50.0)
        b_batch = via_batch.apply_field_series(h)
        b_list = via_list.apply_field_series(list(h))
        assert np.array_equal(b_batch, b_list)
        assert via_batch.state.snapshot() == via_list.state.snapshot()
        assert via_batch.counters == via_list.counters
        disc_a = via_batch._integrator.discretiser
        disc_b = via_list._integrator.discretiser
        assert disc_a.observations == disc_b.observations
        assert disc_a.acceptances == disc_b.acceptances

    def test_trace_ndarray_matches_iterable(self):
        h = np.linspace(0.0, 6000.0, 250)
        a = TimelessJAModel(PAPER_PARAMETERS, dhmax=40.0)
        b = TimelessJAModel(PAPER_PARAMETERS, dhmax=40.0)
        ha, ma, ba = a.trace(h)
        hb, mb, bb = b.trace(tuple(float(x) for x in h))
        assert np.array_equal(ha, hb)
        assert np.array_equal(ma, mb)
        assert np.array_equal(ba, bb)

    def test_ndarray_series_works_with_custom_anhysteretic(self):
        """Regression: the batch routing must reuse a model's own curve
        object, not rebuild it from (shape,) — a custom subclass with
        extra constructor arguments used to crash with TypeError."""
        from repro.ja.anhysteretic import ModifiedLangevinAnhysteretic

        class ScaledCurve(ModifiedLangevinAnhysteretic):
            def __init__(self, shape, gain):
                super().__init__(shape)
                self.gain = gain

            def curve(self, x):
                return self.gain * super().curve(x)

            def curve_derivative(self, x):
                return self.gain * super().curve_derivative(x)

        h = np.linspace(0.0, 5000.0, 120)
        curve = ScaledCurve(3500.0, 0.9)
        via_batch = TimelessJAModel(
            PAPER_PARAMETERS, dhmax=50.0, anhysteretic=curve
        )
        via_list = TimelessJAModel(
            PAPER_PARAMETERS, dhmax=50.0, anhysteretic=curve
        )
        b_batch = via_batch.apply_field_series(h)
        b_list = via_list.apply_field_series(list(h))
        assert np.array_equal(b_batch, b_list)

    def test_series_continues_live_state(self):
        """Mixing scalar stepping and batched series stays exact."""
        mixed = TimelessJAModel(PAPER_PARAMETERS, dhmax=50.0)
        pure = TimelessJAModel(PAPER_PARAMETERS, dhmax=50.0)
        for h in (1000.0, 2500.0, 4000.0):
            mixed.apply_field(h)
            pure.apply_field(h)
        tail = np.linspace(4000.0, -9000.0, 300)
        b_mixed = mixed.apply_field_series(tail)
        b_pure = np.array([pure.apply_field(float(h)) for h in tail])
        assert np.array_equal(b_mixed, b_pure)
        assert mixed.state.snapshot() == pure.state.snapshot()


class TestFromScalarModels:
    def test_adopts_and_writes_back(self):
        def build():
            return [
                TimelessJAModel(PAPER_PARAMETERS, dhmax=50.0),
                TimelessJAModel(SOFT_FERRITE, dhmax=10.0),
            ]

        models = build()
        reference = build()
        for model in models + reference:
            model.apply_field(500.0)

        batch = BatchTimelessModel.from_scalar_models(models)
        h = np.linspace(500.0, 7000.0, 150)
        batch.trace(np.column_stack([h, h]))
        batch.write_back_to_models(models)

        for model, ref in zip(models, reference):
            for hv in h:
                ref.apply_field(float(hv))
            assert model.state.snapshot() == ref.state.snapshot()
            assert model.counters == ref.counters

    def test_rejects_mixed_anhysteretic_families(self):
        from repro.ja.anhysteretic import make_anhysteretic

        a = TimelessJAModel(PAPER_PARAMETERS, dhmax=50.0)
        b = TimelessJAModel(
            PAPER_PARAMETERS,
            dhmax=50.0,
            anhysteretic=make_anhysteretic(PAPER_PARAMETERS, kind="langevin"),
        )
        with pytest.raises(ParameterError):
            BatchTimelessModel.from_scalar_models([a, b])


class TestBatchValidation:
    def test_heterogeneous_dhmax_validated(self):
        with pytest.raises(ParameterError):
            BatchTimelessModel([PAPER_PARAMETERS] * 2, dhmax=[50.0, -1.0])

    def test_guard_count_must_match(self):
        with pytest.raises(ParameterError):
            BatchTimelessModel(
                [PAPER_PARAMETERS] * 3, guards=[SlopeGuards()] * 2
            )

    def test_waveform_shape_checked(self):
        batch = BatchTimelessModel([PAPER_PARAMETERS] * 3)
        with pytest.raises(ParameterError):
            batch.apply_field_series(np.zeros((10, 2)))

    def test_sweep_rejects_overrides_with_ready_batch_model(self):
        """sweep() must not silently drop timeless construction
        keywords when handed a ready batch model."""
        batch = BatchTimelessModel([PAPER_PARAMETERS] * 2)
        waypoints = [0.0, 5e3, -5e3]
        result = sweep(batch, waypoints, driver_step=100.0)  # defaults fine
        assert result.n_cores == 2
        with pytest.raises(ParameterError, match="dhmax"):
            sweep(batch, waypoints, dhmax=10.0)
        with pytest.raises(ParameterError, match="guards"):
            sweep(batch, waypoints, guards=SlopeGuards.none())
        with pytest.raises(ParameterError, match="accept_equal"):
            sweep(batch, waypoints, accept_equal=True)

    def test_stacked_parameters_roundtrip(self):
        stacked = BatchJAParameters.from_sequence(
            [PAPER_PARAMETERS, JILES_ATHERTON_1984]
        )
        assert len(stacked) == 2
        assert stacked.member(0) == PAPER_PARAMETERS
        assert stacked.member(1) == JILES_ATHERTON_1984
        # a2=None lanes resolve modified_shape to `a`, like the scalar
        # property.
        assert stacked.modified_shape[1] == JILES_ATHERTON_1984.a


class TestCoreRoundTrip:
    """BatchSweepResult.core() must reproduce the exact SweepResult a
    scalar run produces — columns, counters and dtypes — even when the
    ensemble runs heterogeneous per-core waveforms."""

    def test_heterogeneous_h_lane_equals_scalar_sweep_result(self):
        seed, n, samples = 21, 5, 250
        params, dhmax, guards, accept_equal = random_ensemble(seed, n)
        h = random_waveforms(seed, samples, n)

        batch = BatchTimelessModel(
            params, dhmax=dhmax, guards=guards, accept_equal=accept_equal
        )
        result = run_batch_series(batch, h)

        for i in range(n):
            model = TimelessJAModel(
                params[i],
                dhmax=float(dhmax[i]),
                guards=guards[i],
                accept_equal=bool(accept_equal[i]),
            )
            model.reset(h_initial=float(h[0, i]))
            lane_h = h[:, i]
            m_ref = np.empty(samples)
            b_ref = np.empty(samples)
            man_ref = np.empty(samples)
            updated_ref = np.zeros(samples, dtype=bool)
            steps0 = model.counters.euler_steps
            clamp0 = model.counters.clamped_slopes
            drop0 = model.counters.dropped_increments
            for s in range(samples):
                updated_ref[s] = model._integrator.step(float(lane_h[s])) is not None
                m_ref[s] = model.m
                b_ref[s] = model.b
                man_ref[s] = model.state.m_an

            lane = result.core(i)
            # columns, bitwise
            assert np.array_equal(lane.h, lane_h)
            assert np.array_equal(lane.m, m_ref, equal_nan=True)
            assert np.array_equal(lane.b, b_ref, equal_nan=True)
            assert np.array_equal(lane.m_an, man_ref, equal_nan=True)
            assert np.array_equal(lane.updated, updated_ref)
            # dtypes of every column and counter
            assert lane.h.dtype == lane.m.dtype == lane.b.dtype == np.float64
            assert lane.m_an.dtype == np.float64
            assert lane.updated.dtype == np.bool_
            assert type(lane.euler_steps) is int
            assert type(lane.clamped_slopes) is int
            assert type(lane.dropped_increments) is int
            # counters
            assert lane.euler_steps == model.counters.euler_steps - steps0
            assert lane.clamped_slopes == model.counters.clamped_slopes - clamp0
            assert (
                lane.dropped_increments
                == model.counters.dropped_increments - drop0
            )

    def test_core_rejected_for_non_timeless_families(self):
        from repro.batch.time_domain import BatchTimeDomainModel

        batch = BatchTimeDomainModel([PAPER_PARAMETERS] * 2)
        result = run_batch_series(batch, np.linspace(0.0, 5e3, 40))
        with pytest.raises(ParameterError):
            result.core(0)
        lane = result.lane(0)
        assert lane.family == "time-domain"
        assert set(lane.counters) == {
            "steps",
            "slope_evaluations",
            "negative_slope_evaluations",
            "diverged",
        }


class TestBatchAudit:
    def test_audit_batch_matches_per_lane_audit(self):
        params, dhmax, guards, accept_equal = random_ensemble(42, 4)
        waypoints = major_loop_waypoints(8e3, cycles=1)
        result = sweep(
            params,
            waypoints,
            dhmax=dhmax,
            driver_step=25.0,
            guards=guards,
            accept_equal=accept_equal,
        )
        audits = audit_trajectory_batch(result.h, result.b)
        assert len(audits) == 4
        for i, audit in enumerate(audits):
            lane = result.core(i)
            assert audit == audit_trajectory(lane.h, lane.b)


def _same_float(a, b) -> bool:
    """Bitwise float comparison treating NaN == NaN."""
    a, b = float(a), float(b)
    return a == b or (np.isnan(a) and np.isnan(b))
