"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import PAPER_PARAMETERS, TimelessJAModel, run_sweep
from repro.ja.anhysteretic import make_anhysteretic
from repro.waveforms.sweeps import fig1_waypoints, major_loop_waypoints


@pytest.fixture(scope="session")
def paper_params():
    """The paper's parameter set (shared, immutable)."""
    return PAPER_PARAMETERS


@pytest.fixture(scope="session")
def paper_anhysteretic():
    """The paper's modified-Langevin anhysteretic with a2."""
    return make_anhysteretic(PAPER_PARAMETERS)


@pytest.fixture(scope="session")
def major_loop_sweep():
    """One coarse major loop, shared by read-only analysis tests."""
    model = TimelessJAModel(PAPER_PARAMETERS, dhmax=100.0)
    return run_sweep(model, major_loop_waypoints(10e3, cycles=1))


@pytest.fixture(scope="session")
def fig1_sweep():
    """The Figure 1 decaying-triangle sweep (coarse, shared)."""
    model = TimelessJAModel(PAPER_PARAMETERS, dhmax=100.0)
    return run_sweep(model, fig1_waypoints(minor_loop_count=3))


@pytest.fixture()
def fresh_model():
    """A fresh default model per test (mutable)."""
    return TimelessJAModel(PAPER_PARAMETERS, dhmax=50.0)
