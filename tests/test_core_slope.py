"""Tests for repro.core.slope (the guarded Integral-process algebra)."""

import math

import pytest

from repro.core.slope import SlopeGuards, guarded_slope
from repro.ja.equations import irreversible_slope
from repro.ja.parameters import PAPER_PARAMETERS


class TestSlopeGuardsConfig:
    def test_default_is_paper(self):
        guards = SlopeGuards()
        assert guards.clamp_negative and guards.drop_opposing

    def test_paper_constructor(self):
        assert SlopeGuards.paper() == SlopeGuards(True, True)

    def test_none_constructor(self):
        guards = SlopeGuards.none()
        assert not guards.clamp_negative and not guards.drop_opposing

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SlopeGuards().clamp_negative = False  # type: ignore[misc]


class TestGuardedSlope:
    def test_zero_step_is_noop(self):
        result = guarded_slope(PAPER_PARAMETERS, 0.8, 0.5, 0.0)
        assert result.dm == 0.0
        assert result.dmdh == 0.0
        assert not result.clamped and not result.dropped

    def test_positive_step_toward_anhysteretic(self):
        result = guarded_slope(PAPER_PARAMETERS, 0.8, 0.5, 50.0)
        assert result.dm > 0.0
        assert result.dmdh > 0.0
        assert not result.clamped

    def test_negative_step_from_above(self):
        # Falling field, m above anhysteretic: slope positive, dm < 0.
        result = guarded_slope(PAPER_PARAMETERS, 0.3, 0.6, -50.0)
        assert result.dmdh > 0.0
        assert result.dm < 0.0

    def test_raw_slope_recorded(self):
        result = guarded_slope(PAPER_PARAMETERS, 0.8, 0.5, 50.0)
        expected_raw = irreversible_slope(PAPER_PARAMETERS, 0.8, 0.5, 1.0)
        assert result.raw_dmdh == pytest.approx(expected_raw)

    def test_clamp_fires_on_negative_slope(self):
        # Rising field with m above anhysteretic: raw slope < 0.
        result = guarded_slope(PAPER_PARAMETERS, 0.3, 0.6, 50.0)
        assert result.raw_dmdh < 0.0
        assert result.clamped
        assert result.dmdh == 0.0
        assert result.dm == 0.0
        assert not result.dropped  # guard 2 sees dm == 0 already

    def test_published_clamp_semantics_zero_not_flagged(self):
        # dmdh1 == 0 goes down the clamp branch but changes nothing.
        result = guarded_slope(PAPER_PARAMETERS, 0.5, 0.5, 50.0)
        assert result.dmdh == 0.0
        assert not result.clamped

    def test_drop_only_equivalent_to_clamp_only(self):
        """Either guard alone suppresses the same increments (EXP-A1)."""
        cases = [
            (0.3, 0.6, 50.0),
            (0.8, 0.2, 50.0),
            (0.1, 0.7, -50.0),
            (0.9, 0.2, -50.0),
        ]
        for m_an, m_total, dh in cases:
            clamp_only = guarded_slope(
                PAPER_PARAMETERS, m_an, m_total, dh, SlopeGuards(True, False)
            )
            drop_only = guarded_slope(
                PAPER_PARAMETERS, m_an, m_total, dh, SlopeGuards(False, True)
            )
            assert clamp_only.dm == pytest.approx(drop_only.dm)

    def test_no_guards_lets_negative_through(self):
        result = guarded_slope(
            PAPER_PARAMETERS, 0.3, 0.6, 50.0, SlopeGuards.none()
        )
        assert result.dm < 0.0
        assert not result.clamped and not result.dropped

    def test_drop_fires_without_clamp(self):
        result = guarded_slope(
            PAPER_PARAMETERS, 0.3, 0.6, 50.0, SlopeGuards(False, True)
        )
        assert result.dropped
        assert result.dm == 0.0

    def test_dm_is_dh_times_dmdh(self):
        result = guarded_slope(PAPER_PARAMETERS, 0.9, 0.1, 25.0)
        assert result.dm == pytest.approx(25.0 * result.dmdh)

    def test_dm_never_opposes_dh_with_paper_guards(self):
        for m_an, m_total in [(0.1, 0.9), (0.9, 0.1), (0.5, 0.5), (-0.4, 0.4)]:
            for dh in (75.0, -75.0):
                result = guarded_slope(PAPER_PARAMETERS, m_an, m_total, dh)
                assert result.dm * dh >= 0.0

    def test_singular_denominator_handled(self):
        # deltam chosen so the published denominator crosses zero: the
        # raw slope is +/-inf; the guards must keep dm finite or zero.
        delta_m = PAPER_PARAMETERS.k / (
            PAPER_PARAMETERS.alpha * PAPER_PARAMETERS.m_sat
        )
        result = guarded_slope(PAPER_PARAMETERS, delta_m, 0.0, 50.0)
        assert math.isinf(result.raw_dmdh)
        assert math.isinf(result.dm) or result.dm == 0.0 or math.isfinite(result.dm)
