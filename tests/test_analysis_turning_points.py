"""Tests for repro.analysis.turning_points."""

import numpy as np
import pytest

from repro.analysis.turning_points import monotone_segments, turning_point_indices
from repro.errors import AnalysisError


class TestTurningPoints:
    def test_simple_triangle(self):
        h = np.array([0.0, 1.0, 2.0, 1.0, 0.0])
        # The peak sample (index 2) is the turning point.
        assert list(turning_point_indices(h)) == [2]

    def test_w_shape(self):
        h = np.array([0.0, 2.0, 1.0, 3.0, 0.0])
        # Peak, valley, peak.
        assert list(turning_point_indices(h)) == [1, 2, 3]

    def test_monotone_has_none(self):
        h = np.linspace(0.0, 10.0, 50)
        assert len(turning_point_indices(h)) == 0

    def test_plateau_not_double_counted(self):
        # rise, hold, fall: exactly one turning point.
        h = np.array([0.0, 1.0, 2.0, 2.0, 2.0, 1.0, 0.0])
        turns = turning_point_indices(h)
        assert len(turns) == 1

    def test_plateau_then_continue_same_direction(self):
        h = np.array([0.0, 1.0, 1.0, 2.0, 3.0])
        assert len(turning_point_indices(h)) == 0

    def test_tolerance_suppresses_noise(self):
        h = np.array([0.0, 1.0, 0.9999, 2.0, 3.0])
        assert len(turning_point_indices(h, tolerance=0.001)) == 0
        assert len(turning_point_indices(h, tolerance=0.0)) == 2

    def test_short_input(self):
        assert len(turning_point_indices(np.array([0.0, 1.0]))) == 0

    def test_negative_tolerance_rejected(self):
        with pytest.raises(AnalysisError):
            turning_point_indices(np.array([0.0, 1.0, 0.0]), tolerance=-1.0)

    def test_2d_input_rejected(self):
        with pytest.raises(AnalysisError):
            turning_point_indices(np.zeros((3, 3)))

    def test_endpoints_never_reported(self):
        h = np.array([5.0, 0.0, 5.0])
        turns = turning_point_indices(h)
        assert 0 not in turns
        assert len(h) - 1 not in turns


class TestMonotoneSegments:
    def test_covers_whole_array(self):
        h = np.array([0.0, 2.0, -2.0, 2.0])
        segments = monotone_segments(h)
        assert segments[0][0] == 0
        assert segments[-1][1] == len(h) - 1
        # Adjacent segments share their boundary sample.
        for (_, stop), (start, _) in zip(segments[:-1], segments[1:]):
            assert stop == start

    def test_monotone_single_segment(self):
        h = np.linspace(0.0, 1.0, 10)
        assert monotone_segments(h) == [(0, 9)]

    def test_each_segment_is_monotone(self):
        rng = np.random.default_rng(42)
        h = np.cumsum(rng.normal(size=200))
        for start, stop in monotone_segments(h):
            seg = h[start : stop + 1]
            diffs = np.diff(seg)
            assert np.all(diffs >= 0) or np.all(diffs <= 0)

    def test_too_short_rejected(self):
        with pytest.raises(AnalysisError):
            monotone_segments(np.array([1.0]))
