"""The warm-pool service layer: pool, cache, async front-end, grid.

The acceptance pin this whole layer leans on: a **cache-served result
is byte-identical to a fresh single-process ``run_batch_series``** on
the exact backend, for every registered family.  PR 3 pinned sharded
reassembly and PR 6 pinned lane threading to the single-process bits,
which is exactly what makes a content-addressed cache trustworthy —
any execution shape may serve any hit, so the digest deliberately
excludes pool width and thread count (see ``test_service_digest.py``
for the digest's own invariants).

Everything here is structural/correctness and runs on any host,
including single-CPU CI (a width-1 ``WorkerPool`` falls back to the
serial executor).  Timing claims live in
``benchmarks/test_bench_service.py``.
"""

import asyncio
import threading

import numpy as np
import pytest

from repro.batch.sweep import run_batch_series
from repro.errors import ParameterError
from repro.experiments import run_experiment
from repro.models.registry import get_family, list_families
from repro.parallel.executor import run_sharded
from repro.parallel.grid import run_scenario_grid
from repro.parallel.spec import DriveSpec, EnsembleSpec
from repro.service import (
    HysteresisService,
    ResultCache,
    WorkerPool,
    load_result,
    prewarm_fused_kernels,
    save_result,
    spec_digest,
)

FAMILY_NAMES = tuple(family.name for family in list_families())


def small_workload(family_name: str, n_cores: int = 4, seed: int = 7):
    """One registry spec plus a resolved scenario drive for it."""
    family = get_family(family_name)
    spec = EnsembleSpec(family=family_name, n_cores=n_cores, seed=seed)
    step = float(spec.build_batch().driver_step_hint())
    drive = DriveSpec(
        scenario="major-loop", h_max=float(family.h_scale), driver_step=step
    )
    return spec, drive


def assert_bitwise(reference, other):
    """Byte-identity of two BatchSweepResults, dtypes included."""
    for column in ("h", "m", "b", "updated"):
        ref, got = getattr(reference, column), getattr(other, column)
        assert ref.dtype == got.dtype, column
        assert np.array_equal(ref, got), column
    assert sorted(reference.extras) == sorted(other.extras)
    for key in reference.extras:
        assert reference.extras[key].dtype == other.extras[key].dtype
        assert np.array_equal(reference.extras[key], other.extras[key]), key
    assert sorted(reference.counters) == sorted(other.counters)
    for key in reference.counters:
        assert np.array_equal(
            np.asarray(reference.counters[key]),
            np.asarray(other.counters[key]),
        ), key
    assert reference.family == other.family


class TestWorkerPool:
    def test_width_one_serial_fallback(self):
        with WorkerPool(1) as pool:
            assert pool.n_workers == 1
            assert not pool.closed
            spec, drive = small_workload("timeless")
            result = run_sharded(
                spec,
                scenario=drive.scenario,
                h_max=drive.h_max,
                driver_step=drive.driver_step,
                pool=pool,
            )
        reference = run_batch_series(
            spec.build_batch(), drive.full_samples(spec.n_cores)
        )
        assert_bitwise(reference, result)

    def test_reaped_pool_logs_the_close_failure(self, caplog):
        import logging

        pool = WorkerPool(1)

        def exploding_close():
            raise RuntimeError("close exploded")

        pool.close = exploding_close
        with caplog.at_level(logging.DEBUG, logger="repro.service.pool"):
            pool.__del__()  # must not raise through the finaliser
        assert "close exploded" in caplog.text

    def test_prewarm_is_noop_without_jit_backends(self):
        from repro.backend import list_backends

        warmed = prewarm_fused_kernels()
        jit_backends = [b for b in list_backends() if not b.exact]
        if not jit_backends:
            assert warmed == ()
        else:
            assert all(
                backend in {b.name for b in jit_backends}
                for _, backend in warmed
            )

    def test_pool_outlives_many_calls(self):
        spec, drive = small_workload("preisach", n_cores=3)
        with WorkerPool(1) as pool:
            first = run_sharded(
                spec,
                scenario=drive.scenario,
                h_max=drive.h_max,
                driver_step=drive.driver_step,
                pool=pool,
            )
            second = run_sharded(
                spec,
                scenario=drive.scenario,
                h_max=drive.h_max,
                driver_step=drive.driver_step,
                pool=pool,
            )
        assert_bitwise(first, second)

    def test_closed_pool_rejects_execution(self):
        pool = WorkerPool(1)
        pool.close()
        pool.close()  # idempotent
        assert pool.closed
        with pytest.raises(ParameterError, match="closed"):
            pool.execute([])

    def test_pool_excludes_explicit_width_and_context(self):
        spec, drive = small_workload("timeless")
        with WorkerPool(1) as pool:
            with pytest.raises(ParameterError, match="pool width"):
                run_sharded(
                    spec,
                    scenario=drive.scenario,
                    h_max=drive.h_max,
                    driver_step=drive.driver_step,
                    pool=pool,
                    n_workers=2,
                )
            with pytest.raises(ParameterError, match="start method"):
                run_sharded(
                    spec,
                    scenario=drive.scenario,
                    h_max=drive.h_max,
                    driver_step=drive.driver_step,
                    pool=pool,
                    mp_context="spawn",
                )


class TestResultCache:
    def _result(self, family="timeless", n_cores=3, seed=1):
        spec, drive = small_workload(family, n_cores=n_cores, seed=seed)
        result = run_batch_series(
            spec.build_batch(), drive.full_samples(n_cores)
        )
        return spec_digest(spec, drive), result

    def test_put_get_returns_frozen_entry(self):
        cache = ResultCache(max_entries=4)
        key, result = self._result()
        stored = cache.put(key, result)
        assert cache.get(key) is stored
        assert not stored.m.flags.writeable
        assert not stored.h.flags.writeable
        with pytest.raises(ValueError):
            stored.m[0, 0] = 0.0
        assert cache.stats["hits"] == 1
        assert cache.stats["entries"] == 1

    def test_h_column_is_copied_not_aliased(self):
        cache = ResultCache()
        key, result = self._result()
        h_before = np.array(result.h)
        stored = cache.put(key, result)
        assert result.h.flags.writeable  # the caller's array is untouched
        result.h[0] = 1e9
        assert np.array_equal(stored.h, h_before)

    def test_lru_eviction_order(self):
        cache = ResultCache(max_entries=2)
        keys = []
        for seed in (1, 2, 3):
            key, result = self._result(seed=seed)
            keys.append(key)
            cache.put(key, result)
        assert len(cache) == 2
        assert cache.stats["evictions"] == 1
        assert keys[0] not in cache  # oldest evicted
        assert keys[1] in cache and keys[2] in cache
        assert cache.get(keys[0]) is None
        assert cache.stats["misses"] == 1

    def test_spill_roundtrip_is_byte_exact(self, tmp_path):
        key, result = self._result("preisach")
        save_result(tmp_path / "entry.npz", result)
        loaded = load_result(tmp_path / "entry.npz")
        assert_bitwise(result, loaded)

    def test_disk_hit_survives_a_fresh_cache(self, tmp_path):
        first = ResultCache(spill_dir=tmp_path)
        key, result = self._result()
        first.put(key, result)

        fresh = ResultCache(spill_dir=tmp_path)
        served = fresh.get(key)
        assert served is not None
        assert_bitwise(result, served)
        assert not served.m.flags.writeable
        assert fresh.stats["disk_hits"] == 1

        fresh.clear(spilled=True)
        assert list(tmp_path.glob("*.npz")) == []
        again = ResultCache(spill_dir=tmp_path)
        assert again.get(key) is None

    def test_zero_capacity_rejected(self):
        with pytest.raises(ParameterError, match="max_entries"):
            ResultCache(max_entries=0)


class TestHysteresisService:
    @pytest.mark.parametrize("family_name", FAMILY_NAMES)
    def test_cache_served_result_is_bitwise_fresh(self, family_name):
        """The acceptance pin: a cache hit is byte-identical to a fresh
        single-process run_batch_series, for every registered family."""
        spec, drive = small_workload(family_name)
        with HysteresisService(1) as service:
            computed = service.run(spec, drive)
            served = service.run(spec, drive)
        assert served is computed  # the same frozen entry
        assert service.cache.stats["hits"] == 1
        reference = run_batch_series(
            spec.build_batch(), drive.full_samples(spec.n_cores)
        )
        assert_bitwise(reference, served)

    def test_submit_requires_running_loop(self):
        spec, drive = small_workload("timeless")
        with HysteresisService(1) as service:
            with pytest.raises(ParameterError, match="event loop"):
                service.submit(spec, drive)

    def test_async_submissions_coalesce(self):
        spec, drive = small_workload("timeless", seed=11)
        with HysteresisService(1, dispatch_threads=2) as service:

            async def main():
                futures = [service.submit(spec, drive) for _ in range(4)]
                return await asyncio.gather(*futures)

            results = asyncio.run(main())
        first = results[0]
        assert all(result is first for result in results)
        # At most one compute happened: 4 requests, >= 3 served by the
        # coalescer or the cache, never 4 misses.
        assert service.cache.stats["misses"] <= 2

    def test_concurrent_identical_runs_compute_once(self):
        spec, drive = small_workload("preisach", n_cores=3, seed=5)
        with HysteresisService(1) as service:
            barrier = threading.Barrier(3)
            results = []

            def request():
                barrier.wait()
                results.append(service.run(spec, drive))

            threads = [threading.Thread(target=request) for _ in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len({id(r) for r in results}) == 1

    def test_stream_grid_yields_unique_cells(self):
        with HysteresisService(1) as service:
            family = get_family("timeless")
            step = float(family.h_scale * 0.05)

            async def main():
                cells = []
                async for cell in service.stream_grid(
                    ["timeless"],
                    ["major-loop"],
                    [family.h_scale, family.h_scale, family.h_scale / 2],
                    3,
                    driver_step=step,
                ):
                    cells.append(cell)
                return cells

            cells = asyncio.run(main())
        assert sorted(cell.key for cell in cells) == [
            ("timeless", "major-loop", family.h_scale / 2),
            ("timeless", "major-loop", family.h_scale),
        ]

    def test_plan_backend_conflict_rejected(self):
        from repro.sched.planner import ExecutionPlan

        spec, drive = small_workload("timeless")
        with HysteresisService(1) as service:
            with pytest.raises(ParameterError, match="backend"):
                service.run(
                    spec, drive, plan=ExecutionPlan(backend="no-such")
                )

    def test_closed_service_rejects_requests(self):
        spec, drive = small_workload("timeless")
        service = HysteresisService(1)
        service.close()
        service.close()  # idempotent
        with pytest.raises(ParameterError, match="closed"):
            service.run(spec, drive)

    def test_disk_spill_warms_a_fresh_service(self, tmp_path):
        spec, drive = small_workload("preisach", n_cores=3)
        with HysteresisService(1, cache_dir=tmp_path) as first:
            computed = first.run(spec, drive)
        with HysteresisService(1, cache_dir=tmp_path) as second:
            served = second.run(spec, drive)
            assert second.cache.stats["disk_hits"] == 1
        assert_bitwise(computed, served)


class TestGridDedupe:
    def test_duplicate_cells_collapse(self, caplog):
        family = get_family("timeless")
        step = float(family.h_scale * 0.05)
        with caplog.at_level("INFO", logger="repro.parallel.grid"):
            cells = run_scenario_grid(
                ["timeless"],
                ["major-loop"],
                [family.h_scale, family.h_scale / 2, family.h_scale],
                3,
                driver_step=step,
                n_workers=1,
            )
        assert len(cells) == 3  # positional shape preserved
        assert cells[0].key == cells[2].key
        assert cells[0].result is cells[2].result  # computed once
        assert any("collapsed 1 duplicate" in r.message for r in caplog.records)

    def test_grid_with_duplicates_matches_unique_grid(self):
        family = get_family("preisach")
        step = float(family.h_scale * 0.05)
        h_values = [family.h_scale, family.h_scale / 2]
        deduped = run_scenario_grid(
            ["preisach"], ["major-loop"], h_values + [family.h_scale],
            3, driver_step=step, n_workers=1,
        )
        plain = run_scenario_grid(
            ["preisach"], ["major-loop"], h_values,
            3, driver_step=step, n_workers=1,
        )
        assert_bitwise(plain[0].result, deduped[0].result)
        assert_bitwise(plain[1].result, deduped[1].result)
        assert_bitwise(plain[0].result, deduped[2].result)


class TestGridService:
    def test_second_pass_is_all_hits_and_identical(self):
        family = get_family("timeless")
        step = float(family.h_scale * 0.05)
        h_values = [family.h_scale, family.h_scale / 2]
        with HysteresisService(1) as service:
            pass1 = run_scenario_grid(
                FAMILY_NAMES, ["major-loop"], h_values, 3,
                driver_step=step, service=service,
            )
            misses_after_pass1 = service.cache.stats["misses"]
            pass2 = run_scenario_grid(
                FAMILY_NAMES, ["major-loop"], h_values, 3,
                driver_step=step, service=service,
            )
            assert service.cache.stats["misses"] == misses_after_pass1
        assert [c.key for c in pass1] == [c.key for c in pass2]
        for one, two in zip(pass1, pass2):
            assert one.result is two.result  # the same frozen entries

    def test_service_results_match_plain_grid(self):
        family = get_family("preisach")
        step = float(family.h_scale * 0.05)
        h_values = [family.h_scale]
        with HysteresisService(1) as service:
            serviced = run_scenario_grid(
                ["preisach"], ["major-loop", "harmonic"], h_values, 3,
                driver_step=step, service=service,
            )
        plain = run_scenario_grid(
            ["preisach"], ["major-loop", "harmonic"], h_values, 3,
            driver_step=step, n_workers=1,
        )
        assert [c.key for c in serviced] == [c.key for c in plain]
        for one, two in zip(serviced, plain):
            assert_bitwise(two.result, one.result)

    def test_service_excludes_workers_and_context(self):
        with HysteresisService(1) as service:
            with pytest.raises(ParameterError, match="pool width"):
                run_scenario_grid(
                    ["timeless"], ["major-loop"], [1e4], 2,
                    service=service, n_workers=2,
                )
            with pytest.raises(ParameterError, match="start method"):
                run_scenario_grid(
                    ["timeless"], ["major-loop"], [1e4], 2,
                    service=service, mp_context="spawn",
                )


class TestServiceExperimentSmoke:
    def test_exp_b7_structure_and_correctness(self):
        """EXP-B7 at smoke scale: correctness pins must hold on any
        host (including 1 CPU); the >= 5x timing bar is asserted only
        at benchmark scale in benchmarks/test_bench_service.py."""
        result = run_experiment(
            "EXP-B7",
            n_cores=4,
            repeats=1,
            hit_requests=4,
            grid_scenarios=("major-loop",),
            grid_h_max_ratios=(1.0, 0.5),
        )
        data = result.data
        assert data["warm_matches_cold"]
        assert data["pass2_matches_pass1"]
        assert data["grid_cells"] == len(FAMILY_NAMES) * 2
        assert data["grid_unique"] == len(FAMILY_NAMES) * 2
        ops = {row["op"] for row in data["rows"]}
        assert ops == {
            "cold_submit", "warm_submit", "cache_miss", "cache_hit",
            "grid_pass1", "grid_pass2",
        }
        for row in data["rows"]:
            assert row["seconds"] > 0.0, row
        assert "warm-pool service" in result.render()


class TestCrossInterpreterSpill:
    """A spilled ``.npz`` written by one interpreter must load in a
    *fresh* interpreter byte-for-byte — the spill directory is the
    cache's only cross-process (and cross-restart) surface, so its
    member-name schema (``extra__``/``counter__`` prefixes) and raw
    array bytes are wire format, not an implementation detail."""

    def test_spill_round_trips_through_a_fresh_interpreter(self, tmp_path):
        import hashlib
        import json
        import subprocess
        import sys
        from pathlib import Path

        spec, drive = small_workload("timeless", n_cores=3, seed=11)
        result = run_batch_series(
            spec.build_batch(), drive.full_samples(spec.n_cores)
        )
        assert result.extras and result.counters  # the pin needs both
        path = tmp_path / "entry.npz"
        save_result(path, result)

        # The member-name schema is pinned here, not discovered: a
        # renamed prefix would silently orphan every existing spill.
        with np.load(path) as npz:
            members = sorted(npz.files)
        expected = sorted(
            ["h", "m", "b", "updated", "family"]
            + ["extra__" + key for key in result.extras]
            + ["counter__" + key for key in result.counters]
        )
        assert members == expected

        def digest_channels(res):
            channels = {
                "h": res.h, "m": res.m, "b": res.b, "updated": res.updated,
            }
            for key, value in res.extras.items():
                channels["extra__" + key] = value
            for key, value in res.counters.items():
                channels["counter__" + key] = np.asarray(value)
            return {
                name: [str(arr.dtype), hashlib.sha256(
                    np.ascontiguousarray(arr).tobytes()
                ).hexdigest()]
                for name, arr in channels.items()
            }

        child = subprocess.run(
            [
                sys.executable,
                "-c",
                (
                    "import json, sys, hashlib\n"
                    "import numpy as np\n"
                    "from pathlib import Path\n"
                    "from repro.service import load_result\n"
                    "res = load_result(Path(sys.argv[1]))\n"
                    "channels = {'h': res.h, 'm': res.m, 'b': res.b,"
                    " 'updated': res.updated}\n"
                    "for k, v in res.extras.items():\n"
                    "    channels['extra__' + k] = v\n"
                    "for k, v in res.counters.items():\n"
                    "    channels['counter__' + k] = np.asarray(v)\n"
                    "print(json.dumps({'family': res.family, 'channels': {\n"
                    "    name: [str(arr.dtype), hashlib.sha256(\n"
                    "        np.ascontiguousarray(arr).tobytes()\n"
                    "    ).hexdigest()]\n"
                    "    for name, arr in channels.items()}}))\n"
                ),
                str(path),
            ],
            capture_output=True,
            text=True,
            env={
                **__import__("os").environ,
                "PYTHONPATH": str(
                    Path(__file__).resolve().parents[1] / "src"
                ),
            },
            timeout=120,
        )
        assert child.returncode == 0, child.stderr
        report = json.loads(child.stdout)
        assert report["family"] == result.family
        assert report["channels"] == digest_channels(result)
