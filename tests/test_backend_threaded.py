"""Intra-shard lane threading: pinning controls and lane-major loops.

Two contracts, both validated **interpreted** so they hold on hosts
with or without numba installed (the same pattern as
``tests/test_backend.py``'s driver-semantics suite):

1. the thread-pinning surface (:mod:`repro.backend.threads`) is
   explicit process state — clamped to the host, scoped by
   ``thread_limit``, never ambient;
2. every family's lane-major ``prange`` loop body is **bitwise equal**
   to its sample-major twin — the claim that makes threaded numba runs
   bitwise against sequential numba runs (lanes are independent, so
   swapping the loop nesting re-executes each lane's exact arithmetic
   sequence).  This is stronger than the backend's rtol tier and it is
   what the planner's threading axis leans on.

The numba CI leg additionally compiles both kernels and exercises the
dispatch (``active_threads() > 1`` selects the ``parallel=True``
kernel) with real threads.
"""

import numpy as np
import pytest

from repro.backend import (
    active_threads,
    has_threading,
    max_threads,
    set_active_threads,
    thread_limit,
)
from repro.backend import numba_backend
from repro.batch.sweep import run_batch_series
from repro.core.sweep import waypoint_samples
from repro.errors import ParameterError
from repro.models.registry import get_family

#: (family, sequential loop body cache key/value, lane-major twin).
LOOP_PAIRS = [
    (
        "timeless",
        "timeless",
        numba_backend.timeless_series_loop,
        "timeless-lanes",
        numba_backend.timeless_lane_series_loop,
        numba_backend._timeless_fused_series,
    ),
    (
        "preisach",
        "preisach",
        numba_backend.preisach_series_loop,
        "preisach-lanes",
        numba_backend.preisach_lane_series_loop,
        numba_backend._preisach_fused_series,
    ),
    (
        "time-domain",
        "time-domain",
        numba_backend.time_domain_series_loop,
        "time-domain-lanes",
        numba_backend.time_domain_lane_series_loop,
        numba_backend._time_domain_fused_series,
    ),
]


def drive(scale: float = 1.0) -> np.ndarray:
    h = 10e3 * scale
    return waypoint_samples([0.0, h, -h, h], h / 40.0)


class TestThreadControls:
    def test_max_threads_is_one_without_numba(self):
        if has_threading():
            assert max_threads() >= 1
        else:
            assert max_threads() == 1

    def test_default_is_single_threaded(self):
        assert active_threads() == 1

    @pytest.mark.parametrize("bad", [0, -1, -8])
    def test_sub_one_request_rejected(self, bad):
        with pytest.raises(ParameterError, match="thread count"):
            set_active_threads(bad)
        assert active_threads() == 1  # state untouched by the rejection

    def test_requests_clamp_to_host_capacity(self):
        """Above max_threads() clamps, never raises: calibrations
        recorded on wider hosts must still produce executable plans."""
        try:
            effective = set_active_threads(10_000)
            assert effective == max_threads()
            assert active_threads() == effective
        finally:
            set_active_threads(1)

    def test_thread_limit_scopes_and_restores(self):
        assert active_threads() == 1
        with thread_limit(max(2, max_threads())) as effective:
            assert effective == min(max(2, max_threads()), max_threads())
            assert active_threads() == effective
            with thread_limit(1) as inner:
                assert inner == 1
                assert active_threads() == 1
            assert active_threads() == effective  # inner scope restored
        assert active_threads() == 1  # outer scope restored

    def test_thread_limit_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with thread_limit(max_threads()):
                raise RuntimeError("boom")
        assert active_threads() == 1


def _interpreted(monkeypatch, forced_threads: int):
    """Wire every loop body (both variants) into the kernel cache so
    the drivers run interpreted, and force the dispatch decision."""
    for _family, seq_key, seq_loop, lane_key, lane_loop, _drv in LOOP_PAIRS:
        monkeypatch.setitem(numba_backend._KERNEL_CACHE, seq_key, seq_loop)
        monkeypatch.setitem(numba_backend._KERNEL_CACHE, lane_key, lane_loop)
    monkeypatch.setattr(
        numba_backend, "active_threads", lambda: forced_threads
    )


@pytest.mark.parametrize(
    "family_name,driver",
    [(pair[0], pair[5]) for pair in LOOP_PAIRS],
    ids=[pair[0] for pair in LOOP_PAIRS],
)
class TestLaneMajorBitwiseEquality:
    """The load-bearing claim: lane-major == sample-major, bitwise —
    outputs, advanced state, and counters."""

    def _run(self, family_name, driver, monkeypatch, threads):
        _interpreted(monkeypatch, forced_threads=threads)
        family = get_family(family_name)
        batch = family.make_batch(5, seed=11)
        h = drive(2.0 if family_name == "preisach" else 1.0)
        batch.begin_series(h[0])
        out = driver(batch, h)
        assert out is not None
        m, b, updated, extras = out
        return m, b, updated, extras, batch

    def test_outputs_and_state_bitwise_equal(
        self, family_name, driver, monkeypatch
    ):
        m1, b1, upd1, extras1, batch1 = self._run(
            family_name, driver, monkeypatch, threads=1
        )
        m2, b2, upd2, extras2, batch2 = self._run(
            family_name, driver, monkeypatch, threads=2
        )
        assert np.array_equal(m1, m2)  # bitwise, not allclose
        assert np.array_equal(b1, b2)
        assert np.array_equal(upd1, upd2)
        assert sorted(extras1) == sorted(extras2)
        for key in extras1:
            assert np.array_equal(extras1[key], extras2[key]), key
        totals1, totals2 = batch1.counter_totals(), batch2.counter_totals()
        assert sorted(totals1) == sorted(totals2)
        for key in totals1:
            assert np.array_equal(totals1[key], totals2[key]), key
        assert np.array_equal(batch1.h, batch2.h)
        assert np.array_equal(batch1.m, batch2.m)

    def test_lane_major_holds_jit_tier_vs_reference(
        self, family_name, driver, monkeypatch
    ):
        """Against the per-sample numpy reference, the lane-major path
        holds exactly the tier the sequential driver holds: decisions
        exact, trajectories within rtol 1e-9."""
        m, b, updated, _extras, batch = self._run(
            family_name, driver, monkeypatch, threads=2
        )
        family = get_family(family_name)
        loop_batch = family.make_batch(5, seed=11)
        h = drive(2.0 if family_name == "preisach" else 1.0)
        reference = run_batch_series(loop_batch, h, fused=False)
        assert np.array_equal(updated, reference.updated)
        rtol = 1e-9
        for actual, expected in ((m, reference.m), (b, reference.b)):
            scale = float(np.nanmax(np.abs(expected)))
            assert np.allclose(
                actual,
                expected,
                rtol=rtol,
                atol=rtol * max(scale, 1.0),
                equal_nan=True,
            )


class TestDispatch:
    def test_thread_count_selects_kernel_variant(self, monkeypatch):
        """active_threads() > 1 routes through the lane-major kernel;
        1 routes through the sample-major kernel — observed via the
        cache entries the driver pulls."""
        calls = []

        def spy(key, body):
            def wrapper(*args):
                calls.append(key)
                return body(*args)

            return wrapper

        for _f, seq_key, seq_loop, lane_key, lane_loop, _d in LOOP_PAIRS:
            monkeypatch.setitem(
                numba_backend._KERNEL_CACHE, seq_key, spy(seq_key, seq_loop)
            )
            monkeypatch.setitem(
                numba_backend._KERNEL_CACHE, lane_key, spy(lane_key, lane_loop)
            )

        family = get_family("timeless")
        h = drive()

        monkeypatch.setattr(numba_backend, "active_threads", lambda: 1)
        batch = family.make_batch(2, seed=0)
        batch.begin_series(h[0])
        numba_backend._timeless_fused_series(batch, h)
        assert calls == ["timeless"]

        monkeypatch.setattr(numba_backend, "active_threads", lambda: 3)
        batch = family.make_batch(2, seed=0)
        batch.begin_series(h[0])
        numba_backend._timeless_fused_series(batch, h)
        assert calls == ["timeless", "timeless-lanes"]

    def test_prange_fallback_is_range_without_numba(self):
        """The loop bodies stay importable and iterate identically on
        numba-free hosts: prange must alias plain range there."""
        if has_threading():
            pytest.skip("numba present: prange is the real numba.prange")
        assert numba_backend.prange is range
