"""Tests for the VHDL-AMS substrate: quantities, system, solver,
and the two JA architectures."""

import math

import numpy as np
import pytest

from repro.constants import MU0
from repro.errors import SolverError
from repro.hdl.vhdlams import (
    AnalogSystem,
    IntegJAArchitecture,
    SolverOptions,
    TimelessJAArchitecture,
    TransientSolver,
)
from repro.ja.parameters import PAPER_PARAMETERS
from repro.solver.newton import NewtonOptions
from repro.waveforms import SineWave, TriangularWave


class TestAnalogSystem:
    def test_quantity_indices_sequential(self):
        system = AnalogSystem()
        q1 = system.add_quantity("a")
        q2 = system.add_quantity("b")
        assert (q1.index, q2.index) == (0, 1)

    def test_square_system_check(self):
        system = AnalogSystem("bad")
        system.add_quantity("x")
        with pytest.raises(SolverError, match="not square"):
            system.check_elaboration()

    def test_empty_system_rejected(self):
        with pytest.raises(SolverError):
            AnalogSystem().check_elaboration()

    def test_differential_indices(self):
        system = AnalogSystem()
        system.add_quantity("x", differential=True)
        system.add_quantity("y")
        system.add_quantity("z", differential=True)
        assert system.differential_indices() == [0, 2]

    def test_initial_state_vector(self):
        system = AnalogSystem()
        system.add_quantity("x", initial=3.0)
        system.add_quantity("y", initial=-1.0)
        assert list(system.initial_state()) == [3.0, -1.0]


class TestTransientSolverBasics:
    def _decay_system(self, tau=1e-3):
        """dx/dt = -x/tau with x(0) = 1."""
        system = AnalogSystem("decay")
        q = system.add_quantity("x", initial=1.0, differential=True)
        system.add_equation(
            "ode", lambda ctx: ctx.dot(q) + ctx.value(q) / tau
        )
        return system, q

    def test_exponential_decay_accuracy(self):
        system, q = self._decay_system(tau=1e-3)
        solver = TransientSolver(
            system, SolverOptions(dt_initial=1e-6, dt_max=2e-5)
        )
        result = solver.run(t_stop=2e-3)
        assert not result.report.gave_up
        exact = math.exp(-result.t[-1] / 1e-3)
        assert result.of(q)[-1] == pytest.approx(exact, rel=1e-2)

    def test_source_pinning(self):
        system = AnalogSystem("pin")
        wave = SineWave(2.0, 1000.0)
        q = system.add_quantity("v", initial=0.0)
        system.add_equation("src", lambda ctx: ctx.value(q) - wave.value(ctx.time))
        solver = TransientSolver(
            system, SolverOptions(dt_initial=1e-6, dt_max=1e-5)
        )
        result = solver.run(t_stop=1e-3)
        expected = np.array([wave.value(t) for t in result.t])
        assert np.allclose(result.of(q), expected, atol=1e-6)

    def test_invalid_time_span_rejected(self):
        system, _ = self._decay_system()
        solver = TransientSolver(system)
        with pytest.raises(SolverError):
            solver.run(t_stop=0.0)

    def test_report_counts_accepted_steps(self):
        system, _ = self._decay_system()
        solver = TransientSolver(
            system, SolverOptions(dt_initial=1e-6, dt_max=5e-5)
        )
        result = solver.run(t_stop=1e-3)
        assert result.report.accepted_steps == len(result) - 1

    def test_stiff_linear_system_stable(self):
        """Trapezoidal/BE must not blow up on a stiff decay."""
        system, q = self._decay_system(tau=1e-9)  # very stiff vs dt_max
        solver = TransientSolver(
            system, SolverOptions(dt_initial=1e-6, dt_max=1e-4)
        )
        result = solver.run(t_stop=1e-3)
        assert not result.report.gave_up
        assert abs(result.of(q)[-1]) < 1e-3


class TestTimelessArchitecture:
    def test_full_loop_without_failures(self):
        wave = TriangularWave(10e3, 10e-3)
        arch = TimelessJAArchitecture(PAPER_PARAMETERS, wave, dhmax=100.0)
        solver = TransientSolver(
            arch.system, SolverOptions(dt_initial=1e-6, dt_max=1e-4)
        )
        result = solver.run(t_stop=12.5e-3)
        report = result.report
        assert not report.gave_up
        assert report.newton_failures == 0
        assert arch.euler_steps > 100

    def test_b_tracks_constitutive_equation(self):
        wave = TriangularWave(5e3, 10e-3)
        arch = TimelessJAArchitecture(PAPER_PARAMETERS, wave, dhmax=100.0)
        solver = TransientSolver(
            arch.system, SolverOptions(dt_initial=1e-6, dt_max=1e-4)
        )
        result = solver.run(t_stop=2.5e-3)
        h = result.of(arch.q_h)
        b = result.of(arch.q_b)
        # B - mu0*H = mu0*M >= 0 on the initial magnetisation curve.
        assert np.all(b - MU0 * h >= -1e-9)

    def test_break_on_update_counts_breaks(self):
        wave = TriangularWave(5e3, 10e-3)
        arch = TimelessJAArchitecture(
            PAPER_PARAMETERS, wave, dhmax=500.0, break_on_update=True
        )
        solver = TransientSolver(
            arch.system, SolverOptions(dt_initial=1e-6, dt_max=1e-4)
        )
        result = solver.run(t_stop=2.5e-3)
        assert result.report.breaks > 0

    def test_hysteresis_visible_in_ams_run(self):
        wave = TriangularWave(10e3, 10e-3)
        arch = TimelessJAArchitecture(PAPER_PARAMETERS, wave, dhmax=100.0)
        solver = TransientSolver(
            arch.system, SolverOptions(dt_initial=1e-6, dt_max=5e-5)
        )
        result = solver.run(t_stop=12.5e-3)
        h = result.of(arch.q_h)
        b = result.of(arch.q_b)
        # B at H ~ 0 on the descending branch (remanence) is far from 0.
        descending = (np.diff(h, prepend=h[0]) < 0) & (np.abs(h) < 200.0)
        assert np.any(descending)
        assert np.max(np.abs(b[descending])) > 0.5


class TestIntegArchitecture:
    def test_counts_negative_slope_evaluations(self):
        wave = TriangularWave(10e3, 10e-3)
        arch = IntegJAArchitecture(PAPER_PARAMETERS, wave)
        solver = TransientSolver(
            arch.system,
            SolverOptions(
                dt_initial=1e-6,
                dt_max=5e-5,
                newton=NewtonOptions(residual_tol=1e-4),
            ),
        )
        solver.run(t_stop=12.5e-3)
        assert arch.negative_slope_evaluations > 0

    def test_tight_tolerance_gives_up(self):
        """The paper's non-convergence claim: at SPICE-like tolerances
        the solver-coupled formulation aborts mid-loop."""
        wave = TriangularWave(10e3, 10e-3)
        arch = IntegJAArchitecture(PAPER_PARAMETERS, wave)
        solver = TransientSolver(
            arch.system, SolverOptions(dt_initial=1e-6, dt_max=5e-5)
        )
        result = solver.run(t_stop=12.5e-3)
        assert result.report.gave_up
        assert result.report.newton_failures > 0

    def test_loose_tolerance_completes_with_more_work(self):
        wave = TriangularWave(10e3, 10e-3)
        timeless = TimelessJAArchitecture(PAPER_PARAMETERS, wave, dhmax=100.0)
        solver_t = TransientSolver(
            timeless.system, SolverOptions(dt_initial=1e-6, dt_max=5e-5)
        )
        result_t = solver_t.run(t_stop=12.5e-3)

        integ = IntegJAArchitecture(PAPER_PARAMETERS, wave)
        solver_i = TransientSolver(
            integ.system,
            SolverOptions(
                dt_initial=1e-6,
                dt_max=5e-5,
                newton=NewtonOptions(residual_tol=1e-4),
            ),
        )
        result_i = solver_i.run(t_stop=12.5e-3)
        assert not result_i.report.gave_up
        # The paper's "long simulation times": at least 10x the steps.
        assert (
            result_i.report.accepted_steps
            > 10 * result_t.report.accepted_steps
        )
