"""Tests for repro.waveforms: time-domain sources and composition."""

import math

import numpy as np
import pytest

from repro.errors import WaveformError
from repro.waveforms import (
    BiasedSineWave,
    ConcatenatedWave,
    ConstantWave,
    DampedSineWave,
    PiecewiseLinearWave,
    SawtoothWave,
    SineWave,
    TriangularWave,
)


class TestTriangular:
    def setup_method(self):
        self.wave = TriangularWave(amplitude=10.0, period=1.0)

    def test_key_points(self):
        assert self.wave.value(0.0) == 0.0
        assert self.wave.value(0.25) == pytest.approx(10.0)
        assert self.wave.value(0.5) == pytest.approx(0.0)
        assert self.wave.value(0.75) == pytest.approx(-10.0)
        assert self.wave.value(1.0) == pytest.approx(0.0)

    def test_periodicity(self):
        for t in (0.1, 0.37, 0.93):
            assert self.wave.value(t) == pytest.approx(self.wave.value(t + 3.0))

    def test_analytic_derivative_matches_slope(self):
        assert self.wave.derivative(0.1) == pytest.approx(40.0)
        assert self.wave.derivative(0.4) == pytest.approx(-40.0)
        assert self.wave.derivative(0.9) == pytest.approx(40.0)

    def test_phase_offset(self):
        shifted = TriangularWave(10.0, 1.0, phase=0.25)
        assert shifted.value(0.0) == pytest.approx(10.0)

    def test_bounded_by_amplitude(self):
        times = np.linspace(0.0, 2.0, 1000)
        values = self.wave.sample(times)
        assert np.max(np.abs(values)) <= 10.0 + 1e-12

    def test_invalid_amplitude(self):
        with pytest.raises(WaveformError):
            TriangularWave(0.0, 1.0)

    def test_invalid_period(self):
        with pytest.raises(WaveformError):
            TriangularWave(1.0, -1.0)


class TestSawtooth:
    def test_ramp_shape(self):
        wave = SawtoothWave(5.0, 2.0)
        assert wave.value(0.0) == pytest.approx(-5.0)
        assert wave.value(1.0) == pytest.approx(0.0)
        assert wave.value(1.999) == pytest.approx(4.995, abs=1e-2)

    def test_reset_discontinuity(self):
        wave = SawtoothWave(5.0, 2.0)
        assert wave.value(2.0) == pytest.approx(-5.0)


class TestSine:
    def test_value_and_derivative(self):
        wave = SineWave(amplitude=2.0, frequency=50.0)
        t = 1.234e-3
        omega = 2 * math.pi * 50.0
        assert wave.value(t) == pytest.approx(2.0 * math.sin(omega * t))
        assert wave.derivative(t) == pytest.approx(
            2.0 * omega * math.cos(omega * t)
        )

    def test_phase(self):
        wave = SineWave(1.0, 1.0, phase=math.pi / 2)
        assert wave.value(0.0) == pytest.approx(1.0)

    def test_invalid_frequency(self):
        with pytest.raises(WaveformError):
            SineWave(1.0, 0.0)


class TestDampedSine:
    def test_envelope_decay(self):
        wave = DampedSineWave(amplitude=1.0, frequency=10.0, tau=0.1)
        # Peaks near t = 1/40 + k/10 shrink with exp(-t/tau).
        v1 = abs(wave.value(0.025))
        v2 = abs(wave.value(0.125))
        assert v2 < v1
        assert v2 == pytest.approx(v1 * math.exp(-0.1 / 0.1), rel=0.05)

    def test_derivative_includes_envelope_term(self):
        wave = DampedSineWave(1.0, 10.0, 0.05)
        t = 0.01
        eps = 1e-8
        numeric = (wave.value(t + eps) - wave.value(t - eps)) / (2 * eps)
        assert wave.derivative(t) == pytest.approx(numeric, rel=1e-5)

    def test_invalid_tau(self):
        with pytest.raises(WaveformError):
            DampedSineWave(1.0, 10.0, 0.0)


class TestBiasedSine:
    def test_offset_applied(self):
        wave = BiasedSineWave(bias=3.0, amplitude=1.0, frequency=1.0)
        values = wave.sample(np.linspace(0.0, 1.0, 100))
        assert np.mean(values) == pytest.approx(3.0, abs=0.05)
        assert np.max(values) == pytest.approx(4.0, abs=0.01)


class TestConstant:
    def test_value_and_derivative(self):
        wave = ConstantWave(7.5)
        assert wave.value(123.0) == 7.5
        assert wave.derivative(123.0) == 0.0

    def test_non_finite_rejected(self):
        with pytest.raises(WaveformError):
            ConstantWave(math.inf)


class TestComposition:
    def test_sum_operator(self):
        combined = SineWave(1.0, 1.0) + ConstantWave(2.0)
        assert combined.value(0.0) == pytest.approx(2.0)

    def test_scale_operator(self):
        scaled = 3.0 * ConstantWave(2.0)
        assert scaled.value(0.0) == pytest.approx(6.0)

    def test_offset_method(self):
        wave = ConstantWave(1.0).offset(4.0)
        assert wave.value(0.0) == pytest.approx(5.0)

    def test_sum_derivative(self):
        combined = SineWave(1.0, 1.0) + SineWave(2.0, 2.0)
        t = 0.1
        eps = 1e-8
        numeric = (combined.value(t + eps) - combined.value(t - eps)) / (2 * eps)
        assert combined.derivative(t) == pytest.approx(numeric, rel=1e-5)


class TestPiecewiseLinear:
    def setup_method(self):
        self.wave = PiecewiseLinearWave([(0.0, 0.0), (1.0, 10.0), (3.0, -10.0)])

    def test_interpolation(self):
        assert self.wave.value(0.5) == pytest.approx(5.0)
        assert self.wave.value(2.0) == pytest.approx(0.0)

    def test_hold_outside_span(self):
        assert self.wave.value(-1.0) == 0.0
        assert self.wave.value(99.0) == -10.0

    def test_segment_derivative(self):
        assert self.wave.derivative(0.5) == pytest.approx(10.0)
        assert self.wave.derivative(2.0) == pytest.approx(-10.0)

    def test_non_increasing_times_rejected(self):
        with pytest.raises(WaveformError):
            PiecewiseLinearWave([(0.0, 0.0), (0.0, 1.0)])

    def test_single_point_rejected(self):
        with pytest.raises(WaveformError):
            PiecewiseLinearWave([(0.0, 0.0)])


class TestConcatenated:
    def test_sequencing(self):
        wave = ConcatenatedWave(
            [(ConstantWave(1.0), 1.0), (ConstantWave(2.0), 1.0)]
        )
        assert wave.value(0.5) == 1.0
        assert wave.value(1.5) == 2.0

    def test_local_time_restarts(self):
        ramp = PiecewiseLinearWave([(0.0, 0.0), (1.0, 1.0)])
        wave = ConcatenatedWave([(ramp, 1.0), (ramp, 1.0)])
        assert wave.value(0.5) == pytest.approx(0.5)
        assert wave.value(1.5) == pytest.approx(0.5)

    def test_holds_final_value(self):
        ramp = PiecewiseLinearWave([(0.0, 0.0), (1.0, 1.0)])
        wave = ConcatenatedWave([(ramp, 1.0)])
        assert wave.value(5.0) == pytest.approx(1.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(WaveformError):
            ConcatenatedWave([(ConstantWave(1.0), 0.0)])


class TestSamplingHelpers:
    def test_sample_uniform(self):
        wave = ConstantWave(3.0)
        times, values = wave.sample_uniform(1.0, 11)
        assert len(times) == len(values) == 11
        assert times[0] == 0.0 and times[-1] == 1.0
        assert np.all(values == 3.0)

    def test_sample_uniform_validation(self):
        with pytest.raises(WaveformError):
            ConstantWave(1.0).sample_uniform(1.0, 1)
        with pytest.raises(WaveformError):
            ConstantWave(1.0).sample_uniform(0.0, 10, t_start=1.0)
