"""Property-based tests (hypothesis) on core invariants.

These cover the load-bearing invariants of the reproduction:

* anhysteretic curves are odd, bounded, monotone;
* the guarded Euler increment never opposes the field direction,
  regardless of state;
* the timeless model keeps |m| <= 1 and stays finite under arbitrary
  bounded field schedules;
* the discretiser accepts exactly when the accumulated increment
  exceeds the threshold;
* SimTime arithmetic is associative and order-compatible;
* loop area is invariant under traversal direction and start point.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.metrics import loop_area
from repro.core.discretiser import FieldDiscretiser
from repro.core.model import TimelessJAModel
from repro.core.slope import SlopeGuards, guarded_slope
from repro.hdl.kernel.simtime import SimTime
from repro.ja.anhysteretic import (
    BrillouinAnhysteretic,
    LangevinAnhysteretic,
    ModifiedLangevinAnhysteretic,
)
from repro.ja.parameters import PAPER_PARAMETERS

finite_x = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
curve_strategy = st.sampled_from(
    [
        LangevinAnhysteretic(2000.0),
        ModifiedLangevinAnhysteretic(3500.0),
        BrillouinAnhysteretic(2000.0, j=1.5),
    ]
)


class TestAnhystereticProperties:
    @given(curve=curve_strategy, x=finite_x)
    def test_bounded_by_one(self, curve, x):
        assert abs(curve.curve(x)) <= 1.0 + 1e-12

    @given(curve=curve_strategy, x=finite_x)
    def test_odd_symmetry(self, curve, x):
        assert curve.curve(-x) == -curve.curve(x)

    @given(
        curve=curve_strategy,
        x=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
        dx=st.floats(min_value=1e-6, max_value=10.0, allow_nan=False),
    )
    def test_monotone_increasing(self, curve, x, dx):
        assert curve.curve(x + dx) >= curve.curve(x) - 1e-12

    @given(curve=curve_strategy, x=finite_x)
    def test_derivative_non_negative(self, curve, x):
        assert curve.curve_derivative(x) >= 0.0


class TestGuardedSlopeProperties:
    @given(
        m_an=st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
        m_total=st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
        dh=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
    )
    def test_increment_never_opposes_field(self, m_an, m_total, dh):
        result = guarded_slope(PAPER_PARAMETERS, m_an, m_total, dh)
        if math.isfinite(result.dm):
            assert result.dm * dh >= 0.0

    @given(
        m_an=st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
        m_total=st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
        dh=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
    )
    def test_guarded_dmdh_non_negative(self, m_an, m_total, dh):
        result = guarded_slope(PAPER_PARAMETERS, m_an, m_total, dh)
        assert result.dmdh >= 0.0 or math.isnan(result.dmdh)

    @given(
        m_an=st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
        m_total=st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
        # |dh| bounded away from zero: at subnormal magnitudes the
        # published `dm*dh < 0` test underflows to -0.0 and guard 2
        # stops firing — physical field steps are many orders above.
        dh=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False).filter(
            lambda v: abs(v) >= 1e-3
        ),
    )
    def test_single_guards_equivalent(self, m_an, m_total, dh):
        """Either guard alone suppresses exactly the same increments."""
        clamp = guarded_slope(
            PAPER_PARAMETERS, m_an, m_total, dh, SlopeGuards(True, False)
        )
        drop = guarded_slope(
            PAPER_PARAMETERS, m_an, m_total, dh, SlopeGuards(False, True)
        )
        if math.isfinite(clamp.dm) and math.isfinite(drop.dm):
            assert clamp.dm == drop.dm


class TestModelProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        waypoints=st.lists(
            st.floats(min_value=-20e3, max_value=20e3, allow_nan=False),
            min_size=1,
            max_size=12,
        )
    )
    def test_magnetisation_bounded_and_finite(self, waypoints):
        """Driven at sweep granularity (the documented usage — a raw
        single jump of many dhmax is one giant Euler step and can
        legitimately overshoot), magnetisation stays bounded."""
        from repro.core.sweep import waypoint_samples

        model = TimelessJAModel(PAPER_PARAMETERS, dhmax=50.0)
        path = [0.0] + list(waypoints)
        if all(p == 0.0 for p in path):
            return
        for h in waypoint_samples(path, model.dhmax / 2.0):
            model.apply_field(float(h))
            assert model.state.is_finite()
            assert abs(model.m_normalised) <= 1.0 + 1e-2

    @settings(max_examples=25, deadline=None)
    @given(
        fields=st.lists(
            st.floats(min_value=-20e3, max_value=20e3, allow_nan=False),
            min_size=1,
            max_size=40,
        )
    )
    def test_determinism(self, fields):
        model_a = TimelessJAModel(PAPER_PARAMETERS, dhmax=50.0)
        model_b = TimelessJAModel(PAPER_PARAMETERS, dhmax=50.0)
        for h in fields:
            assert model_a.apply_field(h) == model_b.apply_field(h)

    @settings(max_examples=20, deadline=None)
    @given(
        peak=st.floats(min_value=1e3, max_value=20e3, allow_nan=False),
    )
    def test_saturating_sweep_is_monotone(self, peak):
        model = TimelessJAModel(PAPER_PARAMETERS, dhmax=50.0)
        previous = -1.0
        for h in np.linspace(0.0, peak, 200):
            model.apply_field(float(h))
            assert model.m_normalised >= previous - 1e-12
            previous = model.m_normalised


class TestDiscretiserProperties:
    @given(
        dhmax=st.floats(min_value=1e-3, max_value=1e4, allow_nan=False),
        h_new=finite_x,
        h_accepted=finite_x,
    )
    def test_acceptance_definition(self, dhmax, h_new, h_accepted):
        disc = FieldDiscretiser(dhmax)
        decision = disc.observe(h_new, h_accepted)
        assert decision.accepted == (abs(h_new - h_accepted) > dhmax)
        assert decision.dh == h_new - h_accepted

    @given(
        dhmax=st.floats(min_value=1e-3, max_value=1e4, allow_nan=False),
        h_new=finite_x,
        h_accepted=finite_x,
    )
    def test_accept_equal_is_superset(self, dhmax, h_new, h_accepted):
        strict = FieldDiscretiser(dhmax).observe(h_new, h_accepted)
        loose = FieldDiscretiser(dhmax, accept_equal=True).observe(
            h_new, h_accepted
        )
        if strict.accepted:
            assert loose.accepted


class TestSimTimeProperties:
    times = st.integers(min_value=0, max_value=10**15).map(SimTime)

    @given(a=times, b=times, c=times)
    def test_addition_associative(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(a=times, b=times)
    def test_addition_commutative(self, a, b):
        assert a + b == b + a

    @given(a=times, b=times)
    def test_order_compatible_with_addition(self, a, b):
        assert a + b >= a
        assert a + b >= b

    @given(a=times, b=times)
    def test_sub_add_round_trip(self, a, b):
        bigger = a + b
        assert bigger - b == a


class TestLoopAreaProperties:
    @settings(max_examples=50)
    @given(
        n=st.integers(min_value=4, max_value=40),
        radius=st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
        start=st.integers(min_value=0, max_value=39),
    )
    def test_polygon_area_invariances(self, n, radius, start):
        angles = np.linspace(0.0, 2.0 * np.pi, n, endpoint=False)
        h = radius * np.cos(angles)
        b = radius * np.sin(angles)
        base = loop_area(h, b)
        # Traversal direction (equal up to summation order).
        assert loop_area(h[::-1], b[::-1]) == pytest.approx(base, rel=1e-9)
        # Start point rotation.
        shift = start % n
        h_rot = np.roll(h, shift)
        b_rot = np.roll(b, shift)
        assert loop_area(h_rot, b_rot) == pytest.approx(base, rel=1e-9)

    @settings(max_examples=50)
    @given(
        radius=st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
    )
    def test_circle_area_value(self, radius):
        angles = np.linspace(0.0, 2.0 * np.pi, 400, endpoint=False)
        h = radius * np.cos(angles)
        b = radius * np.sin(angles)
        assert loop_area(h, b) == np.float64(
            loop_area(h, b)
        )  # deterministic
        assert abs(loop_area(h, b) - np.pi * radius**2) < 0.01 * radius**2
