"""Tests for the experiment registry and cheap experiment runs.

Experiments are run with reduced workloads (coarse dhmax, few grid
points) so the suite stays fast; the full-resolution runs live in
``benchmarks/``.
"""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    ExperimentResult,
    get_experiment,
    list_experiments,
    run_experiment,
)
from repro.experiments.registry import register


class TestRegistry:
    def test_all_design_md_ids_registered(self):
        ids = {e.experiment_id for e in list_experiments()}
        expected = {
            "EXP-F1",
            "EXP-T1",
            "EXP-T2",
            "EXP-T3",
            "EXP-T4",
            "EXP-T5",
            "EXP-A1",
            "EXP-A2",
            "EXP-X1",
            "EXP-X5",
            "EXP-B2",
        }
        assert expected <= ids

    def test_unknown_id_raises(self):
        with pytest.raises(ExperimentError):
            get_experiment("EXP-NOPE")

    def test_duplicate_registration_rejected(self):
        @register("EXP-TEST-DUP", "dup test")
        def _runner():
            return ExperimentResult("EXP-TEST-DUP", "dup test")

        with pytest.raises(ExperimentError):
            register("EXP-TEST-DUP", "again")(lambda: None)

    def test_result_render_contains_notes_and_tables(self):
        result = ExperimentResult("X", "title")
        result.notes = ["a note"]
        from repro.io.table import TextTable

        table = TextTable(["c"])
        table.add_row(1)
        result.tables = [table]
        text = result.render()
        assert "a note" in text
        assert "X" in text and "title" in text


class TestFig1Cheap:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("EXP-F1", dhmax=200.0, minor_loop_count=2)

    def test_trajectory_spans_paper_axes(self, result):
        assert result.data["h"].max() == pytest.approx(10e3)
        assert result.data["h"].min() == pytest.approx(-10e3)
        assert np.abs(result.data["b"]).max() < 2.0

    def test_reliability(self, result):
        audit = result.data["audit"]
        assert audit.finite
        assert audit.acceptable()

    def test_metrics_in_plot_ranges(self, result):
        metrics = result.data["metrics"]
        assert 2000.0 < metrics.coercivity < 5000.0
        assert 0.8 < metrics.remanence < 1.6

    def test_ascii_art_present(self, result):
        assert "B [T]" in result.artifacts["fig1_ascii"]


class TestEquivalenceCheap:
    @pytest.fixture(scope="class")
    def result(self):
        # The one-event output lag scales with dhmax; at 200 A/m it
        # exceeds the 2% "virtually identical" bound, so the cheap run
        # uses 100 A/m (the full-resolution bench uses the paper's 50).
        return run_experiment("EXP-T1", dhmax=100.0)

    def test_all_pairs_within_two_percent(self, result):
        b_swing = result.data["b_swing"]
        for name, distance in result.data["distances"].items():
            assert distance.max_abs / b_swing < 0.02, name

    def test_ams_run_had_no_failures(self, result):
        assert result.data["ams_report"].newton_failures == 0


class TestMinorLoopsCheap:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(
            "EXP-T4",
            dhmax=100.0,
            amplitudes=(1000.0, 4000.0),
            biases=(0.0, 4000.0),
            cycles=5,
        )

    def test_all_acceptable(self, result):
        assert result.data["all_acceptable"]

    def test_drift_decays(self, result):
        assert result.data["all_decayed"]


class TestAblationGuardsCheap:
    @pytest.fixture(scope="class")
    def result(self):
        # dhmax=100: coarse enough to be fast, fine enough that the
        # unguarded retrace (~0.2 T, resolution-independent) stands
        # clear of the per-event output quantum.
        return run_experiment("EXP-A1", dhmax=100.0)

    def test_paper_guards_acceptable(self, result):
        audit = result.data["both guards (paper)"]["audit"]
        assert audit.acceptable()

    def test_unguarded_fails(self, result):
        audit = result.data["no guards"]["audit"]
        assert not audit.acceptable()

    def test_single_guards_equivalent(self, result):
        clamp = result.data["clamp only"]["sweep"]
        drop = result.data["drop only"]["sweep"]
        assert np.array_equal(clamp.b, drop.b)


class TestAblationAnhystereticCheap:
    def test_all_variants_qualitatively_alike(self):
        result = run_experiment("EXP-A2", dhmax=200.0)
        metrics = [entry["metrics"] for entry in result.data.values()]
        coercivities = [m.coercivity for m in metrics]
        assert max(coercivities) / min(coercivities) < 1.3


class TestFluxDrivenCheap:
    def test_round_trip_and_distortion(self):
        result = run_experiment(
            "EXP-X2", cycles=1, samples_per_cycle=120, dbmax=0.02, dhmax=50.0
        )
        assert result.data["round_trip_error"] < 6.0 * 0.02
        assert result.data["crest_factor"] > 1.45


class TestCrossModelCheap:
    def test_fitted_family_beats_predictions(self):
        result = run_experiment("EXP-X4", n_cells=40, dhmax=200.0)
        scenarios = result.data["scenarios"]
        forc = scenarios["FORC descent (fitted family)"]
        minor = scenarios["biased minor loop (prediction)"]
        forc_rel = forc["distance"].max_abs / forc["swing"]
        minor_rel = minor["distance"].max_abs / minor["swing"]
        # The congruency gap dominates the discretisation error even on
        # the cheap grid.
        assert minor_rel > forc_rel
        assert result.data["clipped"] < 0.08


class TestScenarioGridCheap:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(
            "EXP-X5",
            n_cores=2,
            driver_step=250.0,
            n_cells=8,
            identification_dhmax=800.0,
        )

    def test_full_grid_ran(self, result):
        cells = result.data["cells"]
        families = {family for family, _ in cells}
        scenarios = {name for _, name in cells}
        assert families == {"timeless", "preisach", "time-domain"}
        assert len(scenarios) >= 5
        assert len(cells) == len(families) * len(scenarios)

    def test_paper_families_stay_finite(self, result):
        """The timeless and relay models survive every scenario."""
        for (family, name), run in result.data["cells"].items():
            if family in ("timeless", "preisach"):
                assert run.finite, (family, name)

    def test_time_domain_shows_pathologies(self, result):
        """The unguarded chain accumulates negative-slope evaluations
        somewhere on the grid — the paper's comparative claim."""
        total_neg = sum(
            int(run.counters["negative_slope_evaluations"].sum())
            for (family, _), run in result.data["cells"].items()
            if family == "time-domain"
        )
        assert total_neg > 0


class TestBatchFamiliesCheap:
    def test_equivalence_both_families(self):
        result = run_experiment(
            "EXP-B2", n_cores=6, n_cells=10, driver_step=400.0
        )
        for family in ("preisach", "time-domain"):
            row = result.data[family]
            assert row["equal_lanes"] == row["n_cores"], family


class TestFusedShardedCheap:
    def test_composition_rows_hold_their_tier(self):
        result = run_experiment(
            "EXP-B5", n_cores=6, driver_step=800.0, n_workers=2
        )
        rows = result.data["rows"]
        # one single + one sharded row per family per registered backend
        assert len(rows) == 3 * 2 * len(result.data["backends"])
        for row in rows:
            if row["equal_lanes"] is not None:  # exact-tier rows
                assert row["equal_lanes"] == 6, row
            else:
                assert "within rtol" in row["equivalence"], row
        assert result.data["workers"] >= 1
        families = {row["family"] for row in rows}
        assert families == {"timeless", "preisach", "time-domain"}
