"""Property tests for the service layer's content addressing.

The digest is the cache's correctness boundary, so its invariants get
their own file:

* **representation never reaches the digest** — dict-key order, dtype
  spellings (``"float64"`` vs ``"<f8"`` vs ``np.float64``), array
  memory layout (C/Fortran/strided views of equal values) all digest
  identically;
* **plan-irrelevant knobs never reach the digest** — the payload is
  built from ``(EnsembleSpec, DriveSpec, backend)`` only; pool width
  and lane threads have no field to flow through, and the executor
  pins prove they cannot change the bytes anyway;
* **every semantic field reaches the digest** — family, width, seed,
  backend, scenario, amplitude, driver step, explicit samples: change
  any one and the digest must change.

Hypothesis drives the representation-invariance properties; the
semantic sweep is exhaustive over the payload fields.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import resolve_backend
from repro.errors import ParameterError
from repro.parallel.spec import DriveSpec, EnsembleSpec
from repro.service.digest import canonicalise, digest_payload, spec_digest

BASE_SPEC = dict(family="timeless", n_cores=8, seed=3)
BASE_DRIVE = dict(scenario="major-loop", h_max=1.0e4, driver_step=250.0)


def base_digest() -> str:
    return spec_digest(
        EnsembleSpec(**BASE_SPEC), DriveSpec(**BASE_DRIVE)
    )


# -- representation invariance ----------------------------------------

scalar_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False),
    st.text(max_size=20),
)
payload_dicts = st.dictionaries(
    st.text(min_size=1, max_size=10), scalar_values, min_size=1, max_size=6
)


@given(payload=payload_dicts, seed=st.randoms())
@settings(max_examples=50, deadline=None)
def test_dict_key_order_never_reaches_the_digest(payload, seed):
    items = list(payload.items())
    seed.shuffle(items)
    shuffled = dict(items)
    assert digest_payload(payload) == digest_payload(shuffled)


@given(
    values=st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=64),
        min_size=1,
        max_size=32,
    )
)
@settings(max_examples=50, deadline=None)
def test_array_layout_never_reaches_the_digest(values):
    arr = np.array(values, dtype=np.float64)
    reference = digest_payload({"samples": arr})
    # A Fortran-ordered 2-D reshape of the same values is a DIFFERENT
    # drive (different shape) — but a strided view re-materialised to
    # the same 1-D values must digest equally.
    doubled = np.empty(2 * len(arr), dtype=np.float64)
    doubled[0::2] = arr
    doubled[1::2] = -1.0
    strided = doubled[0::2]
    assert not strided.flags.c_contiguous or len(arr) == 1
    assert digest_payload({"samples": strided}) == reference


def test_equivalent_dtype_spellings_digest_equally():
    """Any spelling of the same dtype — the scalar type, ``np.dtype``
    of either name — canonicalises to one token; arrays built from
    equivalent spellings digest equally too.  Bare *strings* stay
    strings (a scenario literally named "float64" is not a dtype)."""
    spellings = [np.float64, np.dtype("float64"), np.dtype("<f8")]
    digests = {digest_payload({"dtype": s}) for s in spellings}
    assert len(digests) == 1
    assert digest_payload({"dtype": np.dtype("float32")}) not in digests
    arr = [0.0, 1.5, -2.0]
    assert digest_payload(
        {"a": np.array(arr, dtype="float64")}
    ) == digest_payload({"a": np.array(arr, dtype="<f8")})


def test_numpy_scalars_digest_as_python_scalars():
    assert digest_payload({"n": np.int64(8)}) == digest_payload({"n": 8})
    assert digest_payload({"x": np.float64(0.5)}) == digest_payload(
        {"x": 0.5}
    )
    assert digest_payload({"b": np.bool_(True)}) == digest_payload(
        {"b": True}
    )


def test_array_shape_and_dtype_are_semantic():
    flat = np.arange(6, dtype=np.float64)
    assert digest_payload({"a": flat}) != digest_payload(
        {"a": flat.reshape(2, 3)}
    )
    assert digest_payload({"a": flat}) != digest_payload(
        {"a": flat.astype(np.float32)}
    )


def test_unsupported_payloads_rejected_not_guessed():
    class Opaque:
        pass

    with pytest.raises(ParameterError, match="canonicalise"):
        digest_payload({"x": Opaque()})
    with pytest.raises(ParameterError, match="keys must be strings"):
        digest_payload({1: "x"})


def test_canonical_form_is_json_stable():
    payload = {
        "z": np.arange(3),
        "a": {"nested": (1, 2.5, None)},
        "dtype": np.float64,
    }
    text = json.dumps(canonicalise(payload), sort_keys=True)
    assert json.loads(text) == canonicalise(payload)


# -- plan-irrelevant fields -------------------------------------------

def test_digest_is_execution_shape_blind():
    """The payload is built from the spec/drive/backend triple only;
    there is no field for pool width, threads, min_shard or chunking —
    the same request digests identically however it will be executed."""
    spec = EnsembleSpec(**BASE_SPEC)
    drive = DriveSpec(**BASE_DRIVE)
    assert spec_digest(spec, drive) == base_digest()
    # Rebuilding identical specs (fresh objects) digests identically.
    assert spec_digest(
        EnsembleSpec(**BASE_SPEC), DriveSpec(**BASE_DRIVE)
    ) == base_digest()


def test_default_backend_and_pinned_default_digest_equally():
    default_name = resolve_backend(None).name
    pinned = EnsembleSpec(**BASE_SPEC, backend=default_name)
    unpinned = EnsembleSpec(**BASE_SPEC)
    drive = DriveSpec(**BASE_DRIVE)
    assert spec_digest(pinned, drive) == spec_digest(unpinned, drive)
    assert spec_digest(unpinned, drive, backend=default_name) == spec_digest(
        unpinned, drive
    )


# -- every semantic field is load-bearing -----------------------------

@pytest.mark.parametrize(
    "change",
    [
        {"family": "preisach"},
        {"n_cores": 9},
        {"seed": 4},
    ],
    ids=lambda change: next(iter(change)),
)
def test_ensemble_fields_are_semantic(change):
    spec = EnsembleSpec(**{**BASE_SPEC, **change})
    assert spec_digest(spec, DriveSpec(**BASE_DRIVE)) != base_digest()


@pytest.mark.parametrize(
    "change",
    [
        {"scenario": "harmonic"},
        {"h_max": 1.1e4},
        {"driver_step": 125.0},
    ],
    ids=lambda change: next(iter(change)),
)
def test_drive_fields_are_semantic(change):
    drive = DriveSpec(**{**BASE_DRIVE, **change})
    assert spec_digest(EnsembleSpec(**BASE_SPEC), drive) != base_digest()


def test_backend_is_semantic_when_multiple_registered():
    """numpy's bitwise tier and a JIT backend's rtol tier must never
    cross-serve — the backend name is part of the key.  Runs wherever
    a second backend is registered (the numba CI leg)."""
    from repro.backend import list_backends

    names = [backend.name for backend in list_backends()]
    if len(names) < 2:
        pytest.skip("only one backend registered on this host")
    spec = EnsembleSpec(**BASE_SPEC)
    drive = DriveSpec(**BASE_DRIVE)
    assert spec_digest(spec, drive, backend=names[0]) != spec_digest(
        spec, drive, backend=names[1]
    )


def test_explicit_samples_are_semantic():
    spec = EnsembleSpec(**BASE_SPEC)
    a = spec_digest(spec, DriveSpec(samples=np.array([0.0, 1.0, 0.0])))
    b = spec_digest(spec, DriveSpec(samples=np.array([0.0, 2.0, 0.0])))
    c = spec_digest(spec, DriveSpec(samples=np.array([0.0, 1.0, 0.0])))
    assert a != b
    assert a == c
    assert a != base_digest()


@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=2,
        max_size=16,
    ),
    index=st.integers(min_value=0, max_value=15),
    delta=st.floats(min_value=1e-6, max_value=1e3),
)
@settings(max_examples=50, deadline=None)
def test_any_sample_change_changes_the_digest(values, index, delta):
    spec = EnsembleSpec(**BASE_SPEC)
    arr = np.array(values, dtype=np.float64)
    changed = arr.copy()
    changed[index % len(arr)] += delta
    a = spec_digest(spec, DriveSpec(samples=arr))
    b = spec_digest(spec, DriveSpec(samples=changed))
    assert a != b


def test_live_batches_are_not_content_addressable():
    spec = EnsembleSpec(**BASE_SPEC)
    with pytest.raises(ParameterError, match="EnsembleSpec"):
        spec_digest(spec.build_batch(), DriveSpec(**BASE_DRIVE))
    with pytest.raises(ParameterError, match="DriveSpec"):
        spec_digest(spec, np.zeros(4))


# ---------------------------------------------------------------------------
# Unknown-extra-field backstop (the runtime half of lint rule L004)
# ---------------------------------------------------------------------------


def test_subclass_with_extra_semantic_field_is_rejected():
    """A spec subclass growing a field the payload never serialises
    must raise, not silently digest to its parent's key."""
    import dataclasses

    @dataclasses.dataclass(frozen=True)
    class AnisotropicSpec(EnsembleSpec):
        anisotropy: float = 0.0

    spec = AnisotropicSpec(**BASE_SPEC)
    with pytest.raises(ParameterError, match="anisotropy"):
        spec_digest(spec, DriveSpec(**BASE_DRIVE))


def test_subclass_with_extra_drive_field_is_rejected():
    import dataclasses

    @dataclasses.dataclass(frozen=True, eq=False)
    class RampDrive(DriveSpec):
        ramp_rate: float = 0.0

    with pytest.raises(ParameterError, match="ramp_rate"):
        spec_digest(EnsembleSpec(**BASE_SPEC), RampDrive(**BASE_DRIVE))


def test_subclass_with_execution_shape_field_still_digests():
    """Execution-shape fields are on the documented exclusion list —
    a subclass carrying one digests exactly like its parent (pool
    width is bitwise-neutral, PR 3)."""
    import dataclasses

    @dataclasses.dataclass(frozen=True)
    class PooledSpec(EnsembleSpec):
        n_workers: int = 4

    digest = spec_digest(PooledSpec(**BASE_SPEC), DriveSpec(**BASE_DRIVE))
    assert digest == base_digest()
