"""Wire-payload properties (hypothesis): every spec type repro.dist
ships must survive pickle → bytes → unpickle with its content digest
intact.

The dispatcher's dedup table and the PR 7 result cache both key on
content digests computed *before* a spec crosses a process or socket
boundary; a digest that drifted across pickling would silently alias
distinct requests (or miss identical ones).  These properties pin the
transport invariant: round-tripped specs are equal, and they digest
identically.
"""

import pickle

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dist import shard_digest
from repro.models.registry import list_families
from repro.parallel import DriveSpec, EnsembleSpec, ShardSpec
from repro.scenarios import list_scenarios
from repro.service.digest import spec_digest

FAMILY_NAMES = [family.name for family in list_families()]
SCENARIO_NAMES = [scenario.name for scenario in list_scenarios()]

positive_field = st.floats(
    min_value=1.0, max_value=1e6, allow_nan=False, allow_infinity=False
)

ensembles = st.builds(
    EnsembleSpec,
    family=st.sampled_from(FAMILY_NAMES),
    n_cores=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)

scenario_drives = st.builds(
    DriveSpec,
    scenario=st.sampled_from(SCENARIO_NAMES),
    h_max=positive_field,
    driver_step=positive_field,
)

sample_drives = st.builds(
    lambda values: DriveSpec(samples=np.asarray(values, dtype=float)),
    st.lists(
        st.floats(
            min_value=-1e6, max_value=1e6,
            allow_nan=False, allow_infinity=False,
        ),
        min_size=1,
        max_size=8,
    ),
)

drives = st.one_of(scenario_drives, sample_drives)


@st.composite
def shard_specs(draw):
    ensemble = draw(ensembles)
    start = draw(st.integers(min_value=0, max_value=ensemble.n_cores - 1))
    stop = draw(st.integers(min_value=start + 1, max_value=ensemble.n_cores))
    return ShardSpec(
        family=ensemble.family,
        n_cores_total=ensemble.n_cores,
        start=start,
        stop=stop,
        drive=draw(scenario_drives),
        ensemble=ensemble,
        threads=draw(st.integers(min_value=1, max_value=4)),
        chunk_lanes=draw(
            st.one_of(st.none(), st.integers(min_value=1, max_value=8))
        ),
    )


@settings(max_examples=50, deadline=None)
@given(ensemble=ensembles, drive=scenario_drives)
def test_ensemble_and_drive_survive_the_wire(ensemble, drive):
    thawed_ensemble = pickle.loads(pickle.dumps(ensemble))
    thawed_drive = pickle.loads(pickle.dumps(drive))
    assert thawed_ensemble == ensemble
    assert thawed_drive == drive
    assert spec_digest(thawed_ensemble, thawed_drive) == spec_digest(
        ensemble, drive
    )


@settings(max_examples=50, deadline=None)
@given(drive=sample_drives, ensemble=ensembles)
def test_explicit_sample_drives_survive_the_wire(drive, ensemble):
    thawed = pickle.loads(pickle.dumps(drive))
    assert thawed == drive
    assert spec_digest(ensemble, thawed) == spec_digest(ensemble, drive)


@settings(max_examples=50, deadline=None)
@given(spec=shard_specs())
def test_shard_specs_survive_the_wire(spec):
    thawed = pickle.loads(pickle.dumps(spec))
    # ShardSpec compares by identity; pin the scalar fields and the
    # array-aware drive explicitly, then the transport invariant: the
    # round trip never changes the wire digest.
    assert thawed.family == spec.family
    assert thawed.n_cores_total == spec.n_cores_total
    assert (thawed.start, thawed.stop) == (spec.start, spec.stop)
    assert thawed.drive == spec.drive
    assert thawed.ensemble == spec.ensemble
    assert thawed.threads == spec.threads
    assert thawed.chunk_lanes == spec.chunk_lanes
    assert shard_digest(thawed) == shard_digest(spec)
    assert shard_digest(thawed) is not None


@settings(max_examples=25, deadline=None)
@given(spec=shard_specs())
def test_double_pickle_is_stable(spec):
    once = pickle.loads(pickle.dumps(spec))
    twice = pickle.loads(pickle.dumps(once))
    assert shard_digest(twice) == shard_digest(spec)
