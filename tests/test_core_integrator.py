"""Tests for repro.core.integrator (the timeless Euler process)."""

import pytest

from repro.core.integrator import TimelessIntegrator
from repro.core.slope import SlopeGuards
from repro.ja.parameters import PAPER_PARAMETERS


@pytest.fixture()
def integrator():
    integ = TimelessIntegrator(PAPER_PARAMETERS, dhmax=50.0)
    integ.reset()
    return integ


class TestReset:
    def test_reset_clears_state_and_counters(self, integrator):
        integrator.step(100.0)
        integrator.step(200.0)
        integrator.reset()
        assert integrator.state.m_irr == 0.0
        assert integrator.state.updates == 0
        assert integrator.counters.euler_steps == 0
        assert integrator.counters.field_events == 0

    def test_reset_refreshes_algebraic_state(self):
        integ = TimelessIntegrator(PAPER_PARAMETERS, dhmax=50.0)
        integ.reset(h_initial=5000.0)
        # m_an must reflect the initial field, not stay zero.
        assert integ.state.m_an > 0.0
        assert integ.state.m_rev > 0.0

    def test_reset_with_initial_mirr(self):
        integ = TimelessIntegrator(PAPER_PARAMETERS, dhmax=50.0)
        integ.reset(m_irr_initial=0.4)
        assert integ.state.m_irr == 0.4
        assert integ.state.m_total >= 0.4


class TestEventSemantics:
    def test_small_step_updates_reversible_only(self, integrator):
        result = integrator.step(25.0)  # below dhmax
        assert result is None
        state = integrator.state
        assert state.m_irr == 0.0
        assert state.m_rev > 0.0  # responds continuously
        assert state.h_accepted == 0.0  # lasth unchanged

    def test_large_step_fires_euler(self, integrator):
        result = integrator.step(75.0)
        assert result is not None
        state = integrator.state
        assert state.m_irr > 0.0
        assert state.h_accepted == 75.0
        assert state.updates == 1
        assert state.delta == 1.0

    def test_accumulation_across_small_steps(self, integrator):
        assert integrator.step(30.0) is None
        result = integrator.step(60.0)  # accumulated 60 > 50
        assert result is not None
        assert integrator.state.h_accepted == 60.0

    def test_falling_field_sets_negative_delta(self, integrator):
        integrator.step(200.0)
        integrator.step(100.0)
        assert integrator.state.delta == -1.0

    def test_counters_track_events(self, integrator):
        integrator.step(25.0)
        integrator.step(75.0)
        integrator.step(80.0)
        assert integrator.counters.field_events == 3
        assert integrator.counters.euler_steps == 1

    def test_total_is_rev_plus_irr(self, integrator):
        integrator.step(500.0)
        state = integrator.state
        assert state.m_total == pytest.approx(state.m_rev + state.m_irr)


class TestPhysics:
    def test_initial_magnetisation_curve_rises(self, integrator):
        previous = 0.0
        for h in range(100, 10001, 100):
            integrator.step(float(h))
            assert integrator.state.m_total >= previous - 1e-12
            previous = integrator.state.m_total

    def test_saturation_bounded_by_one(self, integrator):
        for h in range(500, 100001, 500):
            integrator.step(float(h))
        assert integrator.state.m_total <= 1.0

    def test_remanence_after_loop(self, integrator):
        # Magnetise up, come back to zero: m stays positive (remanence).
        for h in range(100, 10001, 100):
            integrator.step(float(h))
        for h in range(9900, -1, -100):
            integrator.step(float(h))
        assert integrator.state.m_total > 0.1

    def test_hysteresis_branches_differ(self, integrator):
        # m at H=+5 kA/m on the rising branch...
        for h in range(100, 10001, 100):
            integrator.step(float(h))
        # ... and on the falling branch after saturation:
        m_values = {}
        for h in range(9900, 4899, -100):
            integrator.step(float(h))
        m_falling = integrator.state.m_total
        integrator.reset()
        for h in range(100, 5001, 100):
            integrator.step(float(h))
        m_rising = integrator.state.m_total
        assert m_falling > m_rising + 0.05

    def test_clamp_counter_fires_after_reversal(self, integrator):
        for h in range(100, 10001, 100):
            integrator.step(float(h))
        clamped_before = integrator.counters.clamped_slopes
        for h in range(9900, 7999, -100):
            integrator.step(float(h))
        assert integrator.counters.clamped_slopes > clamped_before

    def test_guards_off_allows_negative_dm(self):
        integ = TimelessIntegrator(
            PAPER_PARAMETERS, dhmax=50.0, guards=SlopeGuards.none()
        )
        integ.reset()
        for h in range(100, 10001, 100):
            integ.step(float(h))
        m_peak = integ.state.m_total
        # Right after reversal the raw slope is negative: falling field
        # with negative slope means m INCREASES (non-physical).
        integ.step(9900.0)
        integ.step(9800.0)
        assert integ.state.m_irr > 0.0
        # The unguarded model moved m the wrong way relative to the
        # guarded model, which would have kept m_irr frozen.
        guarded = TimelessIntegrator(PAPER_PARAMETERS, dhmax=50.0)
        guarded.reset()
        for h in range(100, 10001, 100):
            guarded.step(float(h))
        guarded.step(9900.0)
        guarded.step(9800.0)
        assert integ.state.m_total != pytest.approx(guarded.state.m_total)


class TestDhmaxAccess:
    def test_dhmax_property(self, integrator):
        assert integrator.dhmax == 50.0
