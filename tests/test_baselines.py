"""Tests for repro.baselines: time-domain chain and scipy reference."""

import numpy as np
import pytest

from repro.analysis.comparison import compare_bh_curves
from repro.analysis.stability import audit_trajectory
from repro.baselines import TimeDomainJAModel, solve_time_domain
from repro.core.model import TimelessJAModel
from repro.core.slope import SlopeGuards
from repro.core.sweep import run_sweep
from repro.errors import SolverError
from repro.ja.parameters import PAPER_PARAMETERS
from repro.waveforms import TriangularWave


@pytest.fixture(scope="module")
def triangle():
    return TriangularWave(10e3, 10e-3)


class TestTimeDomainModel:
    def test_completes_with_guards(self, triangle):
        model = TimeDomainJAModel(PAPER_PARAMETERS, guards=SlopeGuards.paper())
        result = model.run(triangle, t_stop=12.5e-3, dt=1e-5)
        assert result.completed
        assert np.all(np.isfinite(result.b))

    def test_unguarded_counts_negative_slopes(self, triangle):
        model = TimeDomainJAModel(PAPER_PARAMETERS, guards=SlopeGuards.none())
        model.run(triangle, t_stop=12.5e-3, dt=1e-5)
        assert model.negative_slope_evaluations > 0

    def test_guarded_output_matches_timeless_shape(self, triangle):
        """Fine-step guarded time integration approaches the timeless
        result: the two discretisations solve the same physics."""
        baseline = TimeDomainJAModel(
            PAPER_PARAMETERS, guards=SlopeGuards.paper()
        )
        result = baseline.run(triangle, t_stop=12.5e-3, dt=2e-6)
        timeless = TimelessJAModel(PAPER_PARAMETERS, dhmax=20.0)
        sweep = run_sweep(timeless, [0.0, 10e3, -10e3, 10e3])
        distance = compare_bh_curves(result.h, result.b, sweep.h, sweep.b)
        b_swing = float(sweep.b.max() - sweep.b.min())
        assert distance.max_abs / b_swing < 0.05

    def test_coarse_unguarded_rk4_is_dirty(self, triangle):
        """The paper's motivation: time-stepping across the reversal
        discontinuity produces non-physical output."""
        model = TimeDomainJAModel(PAPER_PARAMETERS, guards=SlopeGuards.none())
        result = model.run(
            triangle, t_stop=12.5e-3, dt=10e-3 / 200, method="rk4"
        )
        audit = audit_trajectory(result.h, result.b)
        assert (
            audit.monotonicity_depth > 0.01
            or model.negative_slope_evaluations > 0
        )

    def test_invalid_dt(self, triangle):
        model = TimeDomainJAModel(PAPER_PARAMETERS)
        with pytest.raises(SolverError):
            model.run(triangle, t_stop=1e-3, dt=0.0)

    def test_invalid_span(self, triangle):
        model = TimeDomainJAModel(PAPER_PARAMETERS)
        with pytest.raises(SolverError):
            model.run(triangle, t_stop=0.0, dt=1e-5)


class TestScipyReference:
    def test_succeeds_on_major_loop(self, triangle):
        result = solve_time_domain(
            PAPER_PARAMETERS, triangle, t_stop=12.5e-3, samples=500
        )
        assert result.success
        assert result.segments >= 3  # split at the two reversals

    def test_detects_turning_points(self, triangle):
        result = solve_time_domain(
            PAPER_PARAMETERS, triangle, t_stop=12.5e-3, samples=200
        )
        # H extremes reached at the detected reversals.
        assert result.h.max() == pytest.approx(10e3, rel=1e-3)
        assert result.h.min() == pytest.approx(-10e3, rel=1e-3)

    def test_agrees_with_fine_euler(self, triangle):
        reference = solve_time_domain(
            PAPER_PARAMETERS, triangle, t_stop=12.5e-3, samples=1000
        )
        euler = TimeDomainJAModel(
            PAPER_PARAMETERS,
            guards=SlopeGuards(clamp_negative=True, drop_opposing=False),
        ).run(triangle, t_stop=12.5e-3, dt=1e-6)
        distance = compare_bh_curves(
            reference.h, reference.b, euler.h, euler.b
        )
        b_swing = float(reference.b.max() - reference.b.min())
        assert distance.max_abs / b_swing < 0.02

    def test_magnetisation_bounded(self, triangle):
        result = solve_time_domain(
            PAPER_PARAMETERS, triangle, t_stop=12.5e-3, samples=300
        )
        assert np.all(np.abs(result.m) <= 1.0)

    def test_sample_validation(self, triangle):
        with pytest.raises(SolverError):
            solve_time_domain(PAPER_PARAMETERS, triangle, t_stop=1e-3, samples=1)
