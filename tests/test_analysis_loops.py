"""Tests for repro.analysis.loops."""

import numpy as np
import pytest

from repro.analysis.loops import (
    Loop,
    extract_loops,
    loop_closure_error,
    loop_contains,
)
from repro.errors import AnalysisError


def _diamond_loop(offset=0.0):
    """A synthetic closed loop: diamond in the (H, B) plane."""
    h = np.array([1.0, 0.0, -1.0, 0.0, 1.0])
    b = np.array([0.0, 1.0, 0.0, -1.0, 0.0]) + offset
    return h, b


class TestExtractLoops:
    def test_major_loop_from_sweep(self, major_loop_sweep):
        loops = extract_loops(major_loop_sweep.h, major_loop_sweep.b)
        assert len(loops) >= 1
        major = loops[0]
        low, high = major.h_span
        assert low == pytest.approx(-10e3)
        assert high == pytest.approx(10e3)

    def test_initial_branch_excluded(self, major_loop_sweep):
        loops = extract_loops(major_loop_sweep.h, major_loop_sweep.b)
        # The first loop starts at the first turning point (+Hmax), not
        # at the demagnetised origin.
        assert loops[0].h[0] == pytest.approx(10e3)

    def test_nested_sweep_yields_multiple_loops(self, fig1_sweep):
        loops = extract_loops(fig1_sweep.h, fig1_sweep.b)
        assert len(loops) >= 4

    def test_monotone_trace_has_no_loops(self):
        h = np.linspace(0.0, 1.0, 20)
        b = h**2
        assert extract_loops(h, b) == []

    def test_shape_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            extract_loops(np.zeros(5), np.zeros(6))

    def test_loop_properties(self):
        # Lead-in from 2.0, then a full -1 -> +1 -> -1 excursion.
        h = np.array([2.0, 1.0, 0.0, -1.0, 0.0, 1.0, 0.0, -1.0])
        b = np.array([0.5, 0.0, -0.5, -1.0, 0.0, 1.0, 0.0, -1.0])
        loops = extract_loops(h, b)
        assert len(loops) == 1
        loop = loops[0]
        assert loop.amplitude == pytest.approx(1.0)
        assert loop.bias == pytest.approx(0.0)


class TestClosure:
    def test_closed_loop_has_zero_error(self):
        h, b = _diamond_loop()
        loop = Loop(h=h, b=b, start_index=0, stop_index=4)
        assert loop_closure_error(loop) == pytest.approx(0.0, abs=1e-12)

    def test_open_loop_reports_gap(self):
        h = np.array([1.0, 0.0, -1.0, 0.0, 1.0])
        b = np.array([0.0, 1.0, 0.0, -1.0, 0.5])
        loop = Loop(h=h, b=b, start_index=0, stop_index=4)
        assert loop_closure_error(loop) == pytest.approx(0.5)

    def test_settled_major_loop_closes(self, fresh_model):
        from repro.core.sweep import run_sweep

        sweep = run_sweep(fresh_model, [0.0, 10e3, -10e3, 10e3, -10e3, 10e3])
        loops = extract_loops(sweep.h, sweep.b)
        # The second full cycle retraces the first: closure ~ 0.
        assert loop_closure_error(loops[-1]) < 5e-3

    def test_too_short_rejected(self):
        loop = Loop(
            h=np.array([0.0, 1.0]),
            b=np.array([0.0, 1.0]),
            start_index=0,
            stop_index=1,
        )
        with pytest.raises(AnalysisError):
            loop_closure_error(loop)


class TestContainment:
    def test_scaled_copy_is_inside(self):
        h, b = _diamond_loop()
        outer = Loop(h=h, b=b, start_index=0, stop_index=4)
        inner = Loop(h=0.5 * h, b=0.5 * b, start_index=0, stop_index=4)
        assert loop_contains(outer, inner)

    def test_shifted_loop_outside(self):
        h, b = _diamond_loop()
        outer = Loop(h=h, b=b, start_index=0, stop_index=4)
        shifted = Loop(h=h, b=b + 5.0, start_index=0, stop_index=4)
        assert not loop_contains(outer, shifted)

    def test_wider_field_span_outside(self):
        h, b = _diamond_loop()
        outer = Loop(h=h, b=b, start_index=0, stop_index=4)
        wide = Loop(h=2.0 * h, b=0.1 * b, start_index=0, stop_index=4)
        assert not loop_contains(outer, wide)

    def test_tolerance_allows_touching(self):
        h, b = _diamond_loop()
        outer = Loop(h=h, b=b, start_index=0, stop_index=4)
        touching = Loop(h=h, b=b * 1.001, start_index=0, stop_index=4)
        assert loop_contains(outer, touching, tolerance=0.01)

    def test_minor_loops_inside_major(self, fig1_sweep):
        loops = extract_loops(fig1_sweep.h, fig1_sweep.b)
        major = loops[0]
        smallest = loops[-1]
        assert loop_contains(major, smallest, tolerance=1e-2)
