"""Tests for repro.ja.equations (Eq. 1 algebra)."""

import math

import pytest

from repro.constants import MU0
from repro.ja.anhysteretic import make_anhysteretic
from repro.ja.equations import (
    anhysteretic_slope_term,
    effective_field,
    flux_density,
    irreversible_slope,
    magnetisation_from_flux,
    magnetisation_slope,
    magnetisation_slope_simplified,
    reversible_magnetisation,
)
from repro.ja.parameters import PAPER_PARAMETERS


class TestEffectiveField:
    def test_matches_published_expression(self):
        # He = H + alpha * ms * mtotal
        h, m = 5000.0, 0.5
        expected = h + 0.003 * 1.6e6 * m
        assert effective_field(PAPER_PARAMETERS, h, m) == expected

    def test_zero_magnetisation_passthrough(self):
        assert effective_field(PAPER_PARAMETERS, 1234.0, 0.0) == 1234.0

    def test_negative_magnetisation_reduces_field(self):
        assert effective_field(PAPER_PARAMETERS, 0.0, -0.5) < 0.0


class TestReversible:
    def test_matches_published_expression(self):
        # mrev = c * man / (1 + c)
        m_an = 0.8
        expected = 0.1 * m_an / 1.1
        assert reversible_magnetisation(PAPER_PARAMETERS, m_an) == pytest.approx(
            expected
        )

    def test_zero_c_kills_reversible(self):
        params = PAPER_PARAMETERS.with_updates(c=0.0)
        assert reversible_magnetisation(params, 0.9) == 0.0


class TestIrreversibleSlope:
    def test_matches_published_expression(self):
        # dmdh1 = deltam / ((1+c) * (dk - alpha*ms*deltam))
        m_an, m = 0.7, 0.5
        delta_m = m_an - m
        expected = delta_m / (
            1.1 * (4000.0 - 0.003 * 1.6e6 * delta_m)
        )
        assert irreversible_slope(
            PAPER_PARAMETERS, m_an, m, delta=1.0
        ) == pytest.approx(expected)

    def test_rising_towards_anhysteretic_is_positive(self):
        assert irreversible_slope(PAPER_PARAMETERS, 0.8, 0.5, delta=1.0) > 0.0

    def test_falling_with_m_above_anhysteretic_is_positive(self):
        # deltam < 0 and dk < 0 -> positive slope (B falls as H falls).
        assert irreversible_slope(PAPER_PARAMETERS, 0.3, 0.6, delta=-1.0) > 0.0

    def test_rising_with_m_above_anhysteretic_is_negative(self):
        # The non-physical branch the guards clamp.
        assert irreversible_slope(PAPER_PARAMETERS, 0.3, 0.6, delta=1.0) < 0.0

    def test_equilibrium_gives_zero(self):
        assert irreversible_slope(PAPER_PARAMETERS, 0.5, 0.5, delta=1.0) == 0.0

    def test_singular_denominator_returns_inf(self):
        # Choose deltam so dk == alpha*ms*deltam exactly.
        delta_m = 4000.0 / (0.003 * 1.6e6)
        result = irreversible_slope(
            PAPER_PARAMETERS, delta_m, 0.0, delta=1.0
        )
        assert math.isinf(result)


class TestTotalSlope:
    def setup_method(self):
        self.anhysteretic = make_anhysteretic(PAPER_PARAMETERS)

    def test_simplified_is_sum_of_terms(self):
        h, m = 3000.0, 0.4
        h_eff = effective_field(PAPER_PARAMETERS, h, m)
        m_an = self.anhysteretic.value(h_eff)
        expected = irreversible_slope(
            PAPER_PARAMETERS, m_an, m, 1.0
        ) + anhysteretic_slope_term(PAPER_PARAMETERS, self.anhysteretic, h_eff)
        assert magnetisation_slope_simplified(
            PAPER_PARAMETERS, self.anhysteretic, h, m, 1.0
        ) == pytest.approx(expected)

    def test_self_consistent_exceeds_simplified(self):
        # The mean-field denominator (< 1) amplifies the slope.
        h, m = 3000.0, 0.4
        full = magnetisation_slope(
            PAPER_PARAMETERS, self.anhysteretic, h, m, 1.0
        )
        simplified = magnetisation_slope_simplified(
            PAPER_PARAMETERS, self.anhysteretic, h, m, 1.0
        )
        assert full > simplified > 0.0

    def test_forms_agree_when_alpha_zero(self):
        params = PAPER_PARAMETERS.with_updates(alpha=0.0)
        anhysteretic = make_anhysteretic(params)
        h, m = 3000.0, 0.4
        assert magnetisation_slope(
            params, anhysteretic, h, m, 1.0
        ) == pytest.approx(
            magnetisation_slope_simplified(params, anhysteretic, h, m, 1.0)
        )

    def test_clamp_irreversible_floors_negative_term(self):
        # m above anhysteretic while rising: raw irr < 0.
        h, m = 100.0, 0.6
        clamped = magnetisation_slope(
            PAPER_PARAMETERS, self.anhysteretic, h, m, 1.0, clamp_irreversible=True
        )
        raw = magnetisation_slope(
            PAPER_PARAMETERS, self.anhysteretic, h, m, 1.0
        )
        assert clamped > raw
        # With the irr term clamped away only the reversible part remains.
        h_eff = effective_field(PAPER_PARAMETERS, h, m)
        reversible = anhysteretic_slope_term(
            PAPER_PARAMETERS, self.anhysteretic, h_eff
        )
        feedback = PAPER_PARAMETERS.alpha * PAPER_PARAMETERS.m_sat * reversible
        assert clamped == pytest.approx(reversible / (1.0 - feedback))


class TestFluxDensity:
    def test_definition(self):
        h, m = 2000.0, 0.25
        expected = MU0 * (h + 1.6e6 * m)
        assert flux_density(PAPER_PARAMETERS, h, m) == pytest.approx(expected)

    def test_round_trip_with_inverse(self):
        h, m = -4000.0, -0.8
        b = flux_density(PAPER_PARAMETERS, h, m)
        assert magnetisation_from_flux(PAPER_PARAMETERS, h, b) == pytest.approx(m)

    def test_saturation_magnitude(self):
        # Full saturation: B ~ mu0 * Msat ~ 2.01 T plus the H term.
        b = flux_density(PAPER_PARAMETERS, 0.0, 1.0)
        assert b == pytest.approx(MU0 * 1.6e6)
        assert 1.9 < b < 2.1
