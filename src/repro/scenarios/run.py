"""Execute a scenario on any model, scalar or batch.

:func:`run_scenario` is the one entry point the experiments use: give
it a scenario (name or object) and a model conforming to either
protocol, and it builds the drive samples at the right width and runs
them through the appropriate executor — the model-agnostic batch
executor for ensembles, the model's own ``trace`` for scalars.
"""

from __future__ import annotations

import inspect

import numpy as np

from repro.batch.sweep import BatchSweepResult, run_batch_series
from repro.errors import ScenarioError
from repro.models.protocol import is_batch_model
from repro.scenarios.registry import Scenario, get_scenario


def scenario_samples(
    scenario: "Scenario | str",
    h_max: float,
    driver_step: float,
    n_cores: int = 1,
) -> np.ndarray:
    """Driver samples of a scenario (resolving registry names)."""
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    return scenario.samples(h_max, driver_step, n_cores=n_cores)


def run_scenario(
    model,
    scenario: "Scenario | str",
    h_max: float,
    driver_step: float | None = None,
    reset: bool = True,
    backend=None,
):
    """Run one scenario on a scalar or batch hysteresis model.

    Batch models (anything with ``n_cores`` and ``counter_totals``) go
    through :func:`repro.batch.sweep.run_batch_series` and return a
    :class:`~repro.batch.sweep.BatchSweepResult`; scalar models run
    their own ``trace`` and return the ``(h, m, b)`` arrays.  For batch
    models ``driver_step`` defaults to the model's own hint.

    ``backend`` switches a batch model onto an array backend for this
    run (name, :class:`repro.backend.ArrayBackend`, or ``"env"`` to
    re-resolve the ``REPRO_BACKEND`` default); ``None`` leaves the
    model's own backend untouched.  Scalar models carry no backend —
    passing one is an error rather than a silent no-op.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if is_batch_model(model):
        if backend is not None:
            from repro.backend import resolve_backend

            if not hasattr(model, "use_backend"):
                # Third-party batch models conform to the structural
                # protocol without any backend hook; error clearly
                # instead of an AttributeError mid-dispatch.
                raise ScenarioError(
                    f"{type(model).__name__} has no use_backend hook; "
                    "backend= only applies to backend-aware batch models"
                )
            model.use_backend(
                resolve_backend(None if backend == "env" else backend)
            )
        if driver_step is None:
            driver_step = model.driver_step_hint()
        samples = scenario.samples(h_max, driver_step, n_cores=model.n_cores)
        return run_batch_series(model, samples, reset=reset)
    if backend is not None:
        raise ScenarioError(
            "scalar models carry no array backend; backend= applies to "
            "batch models only"
        )
    if driver_step is None:
        raise ScenarioError(
            "scalar models need an explicit driver_step (they carry no hint)"
        )
    samples = scenario.samples(h_max, driver_step, n_cores=1)
    if samples.ndim == 2:
        samples = samples[:, 0]
    if reset:
        # Mirror the batch executor's begin_series(h[0]): families with
        # a meaningful initial field start their history at the first
        # sample (a scenario opening at +h_sat must not integrate a
        # spurious 0 -> h_sat jump); the Preisach reset is field-free.
        # Dispatch on the reset signature rather than trying the kwarg
        # and catching TypeError — that catch used to swallow genuine
        # TypeErrors raised *inside* a conforming reset.
        _dispatch_reset(model, float(samples[0]))
    return model.trace(samples)


def _dispatch_reset(model, h_initial: float) -> None:
    """Call ``model.reset`` with ``h_initial`` iff it takes one.

    Signature introspection decides for every Python-level reset (so a
    ``TypeError`` raised *inside* a conforming reset propagates); only
    for unintrospectable callables (C extensions, odd wrappers) does
    the historic try-the-kwarg-then-retry fallback remain — dropping
    the field there outright would silently start such models at
    ``h = 0``.
    """
    try:
        parameters = inspect.signature(model.reset).parameters
    except (TypeError, ValueError):
        try:
            model.reset(h_initial=h_initial)
        except TypeError:
            model.reset()
        return
    if "h_initial" in parameters or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    ):
        model.reset(h_initial=h_initial)
    else:
        model.reset()


__all__ = ["BatchSweepResult", "run_scenario", "scenario_samples"]
