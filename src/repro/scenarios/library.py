"""The built-in scenario catalogue.

Ten schedules covering the workloads the experiments exercise, from the
paper's own Figure 1 shapes to power-electronics drives:

waypoint scenarios
    ``major-loop``, ``minor-loop-ladder``, ``demagnetisation``, and the
    four cross-model schedules of EXP-X4 (``forc-descent``,
    ``major-loop-return``, ``biased-minor``, ``centred-minor``; their
    vertices are exact fractions of ``h_max``, chosen so the historic
    EXP-X4 tables reproduce bit for bit at ``h_max = 20 kA/m``);

per-core scenario
    ``forc-family`` — every lane saturates, reverses at its own field
    and returns: the whole first-order-reversal measurement as one
    lockstep batch (shorter lanes pad by holding the final field, a
    no-op for every model family);

sampled scenarios
    ``inrush`` — an asymmetric re-energisation drive (offset decaying
    envelope settling into a symmetric steady state), ``harmonic`` — a
    3rd/5th-harmonic-distorted mains-style drive.
"""

from __future__ import annotations

import numpy as np

from repro.core.sweep import waypoint_samples
from repro.errors import ScenarioError
from repro.scenarios.registry import Scenario, register_scenario
from repro.waveforms.sweeps import (
    decaying_triangle_waypoints,
    major_loop_waypoints,
)


def _pad_lanes(lanes: "list[np.ndarray]") -> np.ndarray:
    """Stack per-core sample vectors, holding each lane's final value.

    A held field is a no-op for every family (no pending increment, no
    relay crossing, zero dH), so padding does not perturb trajectories.
    An empty lane has no final value to hold — that is a builder bug,
    reported as such instead of an ``IndexError`` deep in the padding.
    """
    empty = [i for i, lane in enumerate(lanes) if len(lane) == 0]
    if empty:
        raise ScenarioError(
            f"per-core scenario produced empty lanes {empty}: every lane "
            "needs at least one driver sample to pad from"
        )
    samples = max(len(lane) for lane in lanes)
    out = np.empty((samples, len(lanes)))
    for i, lane in enumerate(lanes):
        out[: len(lane), i] = lane
        out[len(lane) :, i] = lane[-1]
    return out


def _forc_family(h_max: float, driver_step: float, n_cores: int) -> np.ndarray:
    """One first-order reversal curve per core.

    Core ``i`` rises to ``+h_max``, descends to its own reversal field
    ``alpha_i`` (evenly spread over ``[-0.8, 0.8] * h_max``) and rises
    back — the measurement family behind Everett identification, here
    as a single lockstep batch.  ``n_cores=1`` keeps ``np.linspace``'s
    one-point spread, the ``-0.8 * h_max`` endpoint — i.e. exactly lane
    0 of every multi-core run (a special-cased ``alpha=0`` here used to
    make 1-core runs match no lane of the family at all).
    """
    alphas = np.linspace(-0.8 * h_max, 0.8 * h_max, n_cores)
    lanes = [
        waypoint_samples([0.0, h_max, float(alpha), h_max], driver_step)
        for alpha in alphas
    ]
    return _pad_lanes(lanes)


def _cycle_samples(h_max: float, driver_step: float, cycles: float) -> np.ndarray:
    """Time grid for sampled drives: enough samples per cycle that the
    steepest slope advances about one ``driver_step`` per sample."""
    per_cycle = max(16, int(np.ceil(2.0 * np.pi * h_max / driver_step)))
    return np.arange(int(np.ceil(per_cycle * cycles)) + 1) / per_cycle


def _inrush(h_max: float, driver_step: float, n_cores: int) -> np.ndarray:
    """Re-energisation drive: a large asymmetric first peak (the offset
    ``1 - cos`` inrush envelope) decaying into a symmetric steady state."""
    del n_cores  # shared waveform
    t = _cycle_samples(h_max, driver_step, cycles=4.0)
    envelope = np.exp(-t / 2.5)
    inrush = 0.5 * h_max * (1.0 - np.cos(2.0 * np.pi * t)) * envelope
    steady = 0.3 * h_max * np.sin(2.0 * np.pi * t) * (1.0 - envelope)
    return inrush + steady


def _harmonic(h_max: float, driver_step: float, n_cores: int) -> np.ndarray:
    """Mains-style distorted drive: fundamental plus 30% third and 15%
    fifth harmonic, normalised to peak near ``h_max``."""
    del n_cores  # shared waveform
    t = _cycle_samples(h_max, driver_step, cycles=2.0)
    phase = 2.0 * np.pi * t
    wave = (
        np.sin(phase)
        + 0.3 * np.sin(3.0 * phase)
        + 0.15 * np.sin(5.0 * phase)
    )
    return h_max * wave / 1.45


register_scenario(
    Scenario(
        name="major-loop",
        description="initial rise plus one full major loop",
        waypoint_builder=lambda h: major_loop_waypoints(h, cycles=1),
    )
)

register_scenario(
    Scenario(
        name="minor-loop-ladder",
        description="major loop then a ladder of shrinking minor loops",
        waypoint_builder=lambda h: decaying_triangle_waypoints(
            [h, h, 0.8 * h, 0.6 * h, 0.4 * h, 0.2 * h]
        ),
    )
)

register_scenario(
    Scenario(
        name="demagnetisation",
        description="decaying alternating sweep towards the origin",
        waypoint_builder=lambda h: decaying_triangle_waypoints(
            [h * 0.75**k for k in range(12)]
        ),
    )
)

register_scenario(
    Scenario(
        name="forc-descent",
        description="descent from the outer loop (the identified family)",
        waypoint_builder=lambda h: [h, -(h / 2.0)],
    )
)

register_scenario(
    Scenario(
        name="major-loop-return",
        description="return branches cycling between +/- h/2 after saturation",
        waypoint_builder=lambda h: [
            h, -(h / 2.0), h / 2.0, -(h / 2.0), h / 2.0
        ],
    )
)

register_scenario(
    Scenario(
        name="biased-minor",
        description="biased minor loop away from the origin",
        waypoint_builder=lambda h: [
            h, h / 4.0, -(h / 20.0), h / 4.0, -(h / 20.0), h / 4.0
        ],
    )
)

register_scenario(
    Scenario(
        name="centred-minor",
        description="small centred minor loop after recoil to the origin",
        waypoint_builder=lambda h: [h, 0.0, h / 10.0, -(h / 10.0), h / 10.0],
    )
)

register_scenario(
    Scenario(
        name="forc-family",
        description="per-core first-order reversal curves (one alpha per lane)",
        sample_builder=_forc_family,
        per_core=True,
    )
)

register_scenario(
    Scenario(
        name="inrush",
        description="asymmetric re-energisation drive decaying to steady state",
        sample_builder=_inrush,
    )
)

register_scenario(
    Scenario(
        name="harmonic",
        description="3rd/5th-harmonic-distorted mains-style drive",
        sample_builder=_harmonic,
    )
)
