"""Scenario registry: named drive schedules any model family can run.

A :class:`Scenario` turns ``(h_max, driver_step, n_cores)`` into the
driver sample array the lockstep executor consumes — either a shared
1-D vector (most scenarios) or a ``(samples, cores)`` matrix (per-core
families such as the FORC sweep, where every lane reverses at its own
field).  Scenarios carry **no model knowledge**: the same schedule
drives a timeless JA ensemble, a Preisach relay tensor or the classic
time-domain chain, which is what makes cross-model experiments one
loop over the registry instead of hand-written drive code per model.

Two scenario kinds exist:

* **waypoint scenarios** — a piecewise-linear vertex list (the paper's
  timeless DC-sweep style), sampled at ``driver_step``;
* **sampled scenarios** — an explicit sample vector for drives that are
  not piecewise linear (harmonic distortion, inrush envelopes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.sweep import waypoint_samples
from repro.errors import ScenarioError


@dataclass(frozen=True)
class Scenario:
    """One named drive schedule.

    Exactly one of ``waypoint_builder`` / ``sample_builder`` is set:

    ``waypoint_builder(h_max) -> list[float]``
        Field vertices of a piecewise-linear walk.
    ``sample_builder(h_max, driver_step, n_cores) -> np.ndarray``
        Explicit driver samples, 1-D (shared) or ``(samples, cores)``.
    """

    name: str
    description: str
    waypoint_builder: Callable[[float], Sequence[float]] | None = None
    sample_builder: Callable[[float, float, int], np.ndarray] | None = None
    #: True when the scenario builds one waveform per core (its sample
    #: matrix is ``(samples, n_cores)``).
    per_core: bool = False

    def __post_init__(self) -> None:
        if (self.waypoint_builder is None) == (self.sample_builder is None):
            raise ScenarioError(
                f"scenario {self.name!r} needs exactly one of "
                "waypoint_builder / sample_builder"
            )

    def waypoints(self, h_max: float) -> list[float]:
        """The vertex list of a waypoint scenario."""
        if self.waypoint_builder is None:
            raise ScenarioError(
                f"scenario {self.name!r} is sampled, not piecewise-linear; "
                "use samples()"
            )
        return list(self.waypoint_builder(float(h_max)))

    def samples(
        self, h_max: float, driver_step: float, n_cores: int = 1
    ) -> np.ndarray:
        """Driver samples for the executor.

        Waypoint scenarios sample their vertex walk at ``driver_step``
        (shared 1-D vector, whatever ``n_cores``); sampled and per-core
        scenarios delegate to their builder.
        """
        if h_max <= 0.0 or not np.isfinite(h_max):
            raise ScenarioError(f"h_max must be finite and > 0, got {h_max!r}")
        if driver_step <= 0.0 or not np.isfinite(driver_step):
            raise ScenarioError(
                f"driver_step must be finite and > 0, got {driver_step!r}"
            )
        if n_cores < 1:
            raise ScenarioError(f"n_cores must be >= 1, got {n_cores}")
        if self.sample_builder is not None:
            return self.sample_builder(float(h_max), float(driver_step), n_cores)
        return waypoint_samples(self.waypoints(h_max), driver_step)


_SCENARIOS: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    if scenario.name in _SCENARIOS:
        raise ScenarioError(f"duplicate scenario {scenario.name!r}")
    _SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    try:
        return _SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(_SCENARIOS))
        raise ScenarioError(f"unknown scenario {name!r}; known: {known}")


def list_scenarios() -> list[Scenario]:
    return [_SCENARIOS[k] for k in sorted(_SCENARIOS)]
