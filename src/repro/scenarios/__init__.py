"""Shared drive-scenario layer.

One registry of named field schedules (major loop, minor-loop ladder,
FORC family, demagnetisation, inrush/re-energisation, harmonic
distortion, ...) that every hysteresis model — scalar or batch, any
family — can execute through one call:

    from repro.scenarios import get_scenario, run_scenario

    batch = get_family("preisach").make_batch(8)
    result = run_scenario(batch, "minor-loop-ladder", h_max=10e3)

Importing this package registers the built-in catalogue
(:mod:`repro.scenarios.library`).
"""

# Importing the library registers the built-in catalogue.
from repro.scenarios import library  # noqa: F401  (import for side effect)
from repro.scenarios.registry import (
    Scenario,
    get_scenario,
    list_scenarios,
    register_scenario,
)
from repro.scenarios.run import run_scenario, scenario_samples

__all__ = [
    "Scenario",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "run_scenario",
    "scenario_samples",
]
