"""Calibrated autoscheduling for the execution stack.

Three layers, each usable alone:

:mod:`repro.sched.calibration`
    One-time per-host micro-calibration — timed probes of every family
    × backend (× thread count) plus pool spin-up, persisted as
    schema-versioned, host-stamped JSON.
:mod:`repro.sched.model`
    A per-(family, backend, threads) linear cost model fitted from the
    calibration: ``seconds ~= samples * (c + a * lanes)``, plus the
    pool-overhead line and the shard-makespan composition.
:mod:`repro.sched.planner`
    Candidate enumeration and selection: :func:`plan_for` returns the
    cheapest executable :class:`ExecutionPlan`, which
    ``run_sharded(..., plan="auto")`` and
    ``run_scenario_grid(..., plan="auto")`` consume.

Plans choose *where and how wide* a run executes, never *what* it
computes: the bitwise pins of the numpy paths and the rtol tier of the
JIT paths are invariant under any plan.
"""

from repro.sched.calibration import (
    CALIBRATION_ENV,
    SCHEMA_VERSION,
    Calibration,
    Probe,
    default_calibration_path,
    get_calibration,
    run_calibration,
)
from repro.sched.model import CostModel, GroupFit
from repro.sched.planner import (
    ExecutionPlan,
    describe_workload,
    enumerate_candidates,
    plan_for,
    plan_grid,
    resolve_plan,
)

__all__ = [
    "CALIBRATION_ENV",
    "Calibration",
    "CostModel",
    "ExecutionPlan",
    "GroupFit",
    "Probe",
    "SCHEMA_VERSION",
    "default_calibration_path",
    "describe_workload",
    "enumerate_candidates",
    "get_calibration",
    "plan_for",
    "plan_grid",
    "resolve_plan",
    "run_calibration",
]
