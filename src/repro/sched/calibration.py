"""One-time per-host micro-calibration of the execution stack.

The planner (:mod:`repro.sched.planner`) chooses between backends, pool
widths and lane-thread counts from *measured* numbers, not guesses.
This module produces those numbers: :func:`run_calibration` times every
registered family × backend (× pinned thread count, on backends with a
real thread pool) on a small ladder of ``(lanes, samples)`` probes plus
a pool spin-up probe, and the result persists as schema-versioned,
host-stamped JSON (:class:`Calibration`) — stored next to the benchmark
records (``results/calibration.json`` by default, overridable through
the ``REPRO_CALIBRATION_FILE`` environment variable).

The probes deliberately run the *real* execution paths — the registry
factories, ``run_batch_series``'s fused dispatch, a real
``multiprocessing`` pool — so fork cost, JIT warm-up (timed separately
from the steady-state probe) and per-sample vectorised work are all
measured where they actually occur.  Probe budgets are tiny: the
default ladder runs in a few seconds per backend; CI smoke budgets
(:data:`SMOKE_BUDGET`) in well under one.

A calibration is content-addressed: :attr:`Calibration.calibration_id`
is a short digest of the canonical payload, stamped into experiment
headers (see :func:`repro.experiments.runner.results_header`) so a
recorded table names the exact calibration that planned it.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import socket
import tempfile
import time
from dataclasses import asdict, dataclass
from multiprocessing import get_context
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ParameterError

#: Bump when the JSON layout changes incompatibly; load() rejects files
#: written by a different schema.
SCHEMA_VERSION = 1

#: Environment override for the calibration file location.
CALIBRATION_ENV = "REPRO_CALIBRATION_FILE"

#: Default location, versioned alongside the benchmark records.
DEFAULT_CALIBRATION_PATH = Path("results") / "calibration.json"

#: The tiny probe budget CI smoke runs (and in-process auto-calibration)
#: use: one warm repeat over a 2-point ladder per family x backend.
SMOKE_BUDGET = {"lanes": (4, 16), "samples": (32, 128), "repeats": 1}


def default_calibration_path() -> Path:
    """The calibration file location (environment override first)."""
    env = os.environ.get(CALIBRATION_ENV, "").strip()
    return Path(env) if env else DEFAULT_CALIBRATION_PATH


@dataclass(frozen=True)
class Probe:
    """One timed probe: a family on a backend, pinned thread count,
    ``lanes`` lanes over ``samples`` driver samples, in ``seconds``
    (best of the repeats — the least-noise estimator on shared hosts)."""

    family: str
    backend: str
    threads: int
    lanes: int
    samples: int
    seconds: float


@dataclass(frozen=True)
class Calibration:
    """A persisted micro-calibration: host stamp, probe timings, pool
    overhead.  Everything the cost model needs, nothing executable."""

    host: dict
    probes: tuple
    pool: dict
    created: str = ""
    schema_version: int = SCHEMA_VERSION
    notes: tuple = ()

    def __post_init__(self) -> None:
        # Normalise probes to Probe records (from_json hands in dicts).
        object.__setattr__(
            self,
            "probes",
            tuple(
                p if isinstance(p, Probe) else Probe(**p) for p in self.probes
            ),
        )

    @property
    def calibration_id(self) -> str:
        """Short content digest — the id experiment headers stamp."""
        payload = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:12]

    @property
    def families(self) -> tuple:
        return tuple(sorted({p.family for p in self.probes}))

    @property
    def backends(self) -> tuple:
        return tuple(sorted({p.backend for p in self.probes}))

    def thread_counts(self, family: str, backend: str) -> tuple:
        """The pinned thread counts probed for one family × backend."""
        return tuple(
            sorted(
                {
                    p.threads
                    for p in self.probes
                    if p.family == family and p.backend == backend
                }
            )
        )

    # -- persistence -------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "Calibration":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ParameterError(f"calibration file is not JSON: {exc}")
        version = payload.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ParameterError(
                f"calibration schema {version!r} does not match this "
                f"build's schema {SCHEMA_VERSION}; re-run the calibration "
                "(python -m repro.sched.calibrate)"
            )
        try:
            return cls(
                host=payload["host"],
                probes=tuple(payload["probes"]),
                pool=payload["pool"],
                created=payload.get("created", ""),
                schema_version=version,
                notes=tuple(payload.get("notes", ())),
            )
        except (KeyError, TypeError) as exc:
            raise ParameterError(f"calibration file is incomplete: {exc}")

    def save(self, path: "Path | str | None" = None) -> Path:
        """Persist atomically: write a temp file in the target directory
        and ``os.replace`` it over the destination.  ``get_calibration``
        auto-creates this file mid-run; a reader racing (or a writer
        crashing) must see either the old complete file or the new one,
        never a truncated JSON that would fail every later load."""
        target = Path(path) if path is not None else default_calibration_path()
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=target.parent, prefix=target.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(self.to_json())
            os.replace(tmp_name, target)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except FileNotFoundError:
                pass
            raise
        return target

    @classmethod
    def load(cls, path: "Path | str | None" = None) -> "Calibration":
        target = Path(path) if path is not None else default_calibration_path()
        if not target.exists():
            raise ParameterError(
                f"no calibration file at {target}; run "
                "python -m repro.sched.calibrate (or pass plan=None for "
                "explicit knobs)"
            )
        return cls.from_json(target.read_text())


def host_stamp() -> dict:
    """The host fingerprint stamped into every calibration."""
    from repro.backend import has_threading, max_threads
    from repro.parallel.executor import available_cpus

    try:
        import numba

        numba_version = numba.__version__
    except ImportError:
        numba_version = None
    return {
        "hostname": socket.gethostname(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "numba": numba_version,
        "cpus": available_cpus(),
        "max_threads": max_threads() if has_threading() else 1,
    }


def probe_drive(h_scale: float, samples: int) -> np.ndarray:
    """A shared sine drive with exactly ``samples`` points at the
    family's amplitude — representative per-sample work (threshold
    crossings, relay scans) without scenario machinery in the timing."""
    if samples < 2:
        raise ParameterError(f"probe needs >= 2 samples, got {samples}")
    phase = np.linspace(0.0, 2.0 * np.pi, samples)
    return float(h_scale) * np.sin(phase)


def _time_run(batch, h: np.ndarray, repeats: int) -> float:
    """Best-of-``repeats`` wall time of one fused series run."""
    from repro.batch.sweep import run_batch_series

    best = np.inf
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        run_batch_series(batch, h)
        best = min(best, time.perf_counter() - start)
    return float(best)


def _pool_overhead(mp_context: "str | None" = None) -> dict:
    """Measured pool spin-up: fork/spawn + one trivial map + teardown,
    split into a base and a per-worker component from two pool widths."""
    ctx = get_context(mp_context)

    def spin(workers: int) -> float:
        start = time.perf_counter()
        with ctx.Pool(processes=workers) as pool:
            pool.map(int, range(workers))
        return time.perf_counter() - start

    t1 = spin(1)
    t2 = spin(2)
    per_worker = max(t2 - t1, 0.0)
    base = max(t1 - per_worker, 0.0)
    return {
        "base_seconds": base,
        "per_worker_seconds": per_worker,
        "start_method": ctx.get_start_method(),
    }


def _thread_ladder(backend_name: str, cpus: int) -> "tuple[int, ...]":
    """Thread counts worth probing for one backend: only backends with
    compiled drivers have a lane thread pool, and only multi-CPU hosts
    can exploit it."""
    from repro.backend import get_backend, has_threading, max_threads

    if not has_threading() or not get_backend(backend_name).fused_families:
        return (1,)
    cap = min(cpus, max_threads())
    ladder = sorted({1, min(2, cap), min(4, cap), cap})
    return tuple(t for t in ladder if t >= 1)


def run_calibration(
    families: "Sequence[str] | None" = None,
    backends: "Sequence[str] | None" = None,
    lanes: Iterable[int] = (4, 16, 64),
    samples: Iterable[int] = (64, 256),
    repeats: int = 2,
    seed: int = 0,
    mp_context: "str | None" = None,
) -> Calibration:
    """Run the micro-calibration and return the (unsaved) result.

    For every family × backend, each ``(lanes, samples)`` ladder cell is
    timed on the fused single-process path — JIT backends get one
    untimed warm-up call per (family, thread count) first, so the probe
    measures steady state, and thread counts above 1 are probed only on
    backends with compiled drivers (:func:`_thread_ladder`).  One pool
    spin-up probe measures the fork/IPC fixed cost the sharded executor
    pays per worker.
    """
    from repro.backend import get_backend, list_backends, thread_limit
    from repro.models.registry import get_family, list_families

    lanes = tuple(sorted({int(n) for n in lanes}))
    samples = tuple(sorted({int(s) for s in samples}))
    if not lanes or min(lanes) < 1:
        raise ParameterError(f"probe lanes must be >= 1, got {lanes}")
    if not samples or min(samples) < 2:
        raise ParameterError(f"probe samples must be >= 2, got {samples}")

    family_records = (
        [get_family(name) for name in families]
        if families is not None
        else list_families()
    )
    backend_records = (
        [get_backend(name) for name in backends]
        if backends is not None
        else list_backends()
    )

    host = host_stamp()
    probes: list[Probe] = []
    for family in family_records:
        for backend in backend_records:
            for threads in _thread_ladder(backend.name, host["cpus"]):
                with thread_limit(threads) as effective:
                    if effective != threads:
                        continue  # clamped: this host cannot pin it
                    warmed = False
                    for n in lanes:
                        batch = family.make_batch(
                            n, seed=seed, backend=backend.name
                        )
                        for count in samples:
                            h = probe_drive(family.h_scale, count)
                            if not backend.exact and not warmed:
                                # JIT warm-up, untimed (recorded runs
                                # measure steady state; the compile cost
                                # is per process and per kernel variant).
                                _time_run(batch, h, repeats=1)
                                warmed = True
                            probes.append(
                                Probe(
                                    family=family.name,
                                    backend=backend.name,
                                    threads=threads,
                                    lanes=n,
                                    samples=count,
                                    seconds=_time_run(batch, h, repeats),
                                )
                            )

    return Calibration(
        host=host,
        probes=tuple(probes),
        pool=_pool_overhead(mp_context),
        created=time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    )


def get_calibration(
    path: "Path | str | None" = None,
    create: bool = True,
) -> Calibration:
    """Load the persisted calibration, micro-calibrating once if absent.

    The auto-created calibration uses the :data:`SMOKE_BUDGET` ladder —
    coarse but measured — and persists, so the cost is paid once per
    host; regenerate with a fuller budget via
    ``python -m repro.sched.calibrate`` when plans matter.
    """
    target = Path(path) if path is not None else default_calibration_path()
    if target.exists():
        return Calibration.load(target)
    if not create:
        raise ParameterError(
            f"no calibration file at {target}; run "
            "python -m repro.sched.calibrate"
        )
    calibration = run_calibration(**SMOKE_BUDGET)
    calibration.save(target)
    return calibration
