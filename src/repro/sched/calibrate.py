"""Command-line micro-calibration: ``python -m repro.sched.calibrate``.

Runs :func:`repro.sched.calibration.run_calibration` with an explicit
probe budget and persists the JSON.  CI's calibration smoke step runs
this with the tiny ``--smoke`` budget and uploads the file as an
artifact; on workstations the default ladder gives the planner a
better-conditioned fit in a few extra seconds.
"""

from __future__ import annotations

import argparse
import sys

from repro.sched.calibration import (
    SMOKE_BUDGET,
    run_calibration,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sched.calibrate",
        description="Micro-calibrate the execution stack on this host.",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="calibration file to write (default: REPRO_CALIBRATION_FILE "
        "or results/calibration.json)",
    )
    parser.add_argument(
        "--lanes",
        type=int,
        nargs="+",
        default=[4, 16, 64],
        help="lane counts on the probe ladder",
    )
    parser.add_argument(
        "--samples",
        type=int,
        nargs="+",
        default=[64, 256],
        help="drive sample counts on the probe ladder",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="timing repeats per probe (best-of)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="use the tiny CI smoke budget instead of the ladder flags",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.smoke:
        calibration = run_calibration(**SMOKE_BUDGET)
    else:
        calibration = run_calibration(
            lanes=args.lanes, samples=args.samples, repeats=args.repeats
        )
    target = calibration.save(args.output)
    host = calibration.host
    print(
        f"wrote {target} (id {calibration.calibration_id}): "
        f"{len(calibration.probes)} probes, "
        f"backends {', '.join(calibration.backends)}, "
        f"{host['cpus']} cpus, numba {host['numba'] or 'absent'}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
