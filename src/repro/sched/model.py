"""Per-family cost model fitted from a micro-calibration.

The fused drivers advance every lane through every sample, so wall time
is — to first order — linear in ``samples`` with a lane-dependent slope:

    seconds ~= samples * (c + a * lanes)

``c`` captures the per-sample fixed work (dispatch, the drive scan) and
``a`` the per-sample-per-lane vectorised work.  One ``(c, a)`` pair is
fitted per ``(family, backend, threads)`` group of calibration probes
by least squares on ``seconds / samples``; negative coefficients (pure
timing noise on tiny probes) clamp to zero.

On top of the single-process predictions sit the two composition costs
the calibration measured directly:

* **pool overhead** — ``base + per_worker * n_workers`` seconds of
  fork/IPC fixed cost, paid once per sharded run;
* **shard makespan** — a sharded run finishes with its widest shard, so
  the model prices the actual :func:`~repro.parallel.plan.plan_shards`
  decomposition, not an idealised ``lanes / workers``.

The model deliberately stays this small.  A two-coefficient line per
group is robust to the tiny probe budgets CI can afford, and the
planner only needs *ordering* between a handful of candidate plans —
not accurate absolute times.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.sched.calibration import Calibration


@dataclass(frozen=True)
class GroupFit:
    """The fitted line for one (family, backend, threads) group:
    ``seconds ~= samples * (c + a * lanes)``."""

    family: str
    backend: str
    threads: int
    c: float
    a: float

    def seconds(self, lanes: int, samples: int) -> float:
        return float(samples) * (self.c + self.a * float(lanes))


def _fit_group(probes) -> "tuple[float, float]":
    """Least-squares ``(c, a)`` from one group's probes.

    Fits ``seconds / samples = c + a * lanes`` — normalising by samples
    first keeps the ladder's sample sizes equally weighted.  A ladder
    with a single lanes value cannot separate the intercept, so all the
    time is attributed to the lane term (the conservative choice: it
    makes wide ensembles look expensive rather than free).
    """
    lanes = np.array([p.lanes for p in probes], dtype=np.float64)
    per_sample = np.array(
        [p.seconds / p.samples for p in probes], dtype=np.float64
    )
    if np.unique(lanes).size < 2:
        return 0.0, float(np.mean(per_sample) / max(np.mean(lanes), 1.0))
    design = np.stack([np.ones_like(lanes), lanes], axis=1)
    (c, a), *_ = np.linalg.lstsq(design, per_sample, rcond=None)
    return max(float(c), 0.0), max(float(a), 0.0)


@dataclass(frozen=True)
class CostModel:
    """All group fits plus the pool-overhead line from one calibration."""

    fits: dict
    pool_base: float
    pool_per_worker: float
    calibration_id: str

    @classmethod
    def from_calibration(cls, calibration: Calibration) -> "CostModel":
        groups: dict = {}
        for probe in calibration.probes:
            key = (probe.family, probe.backend, probe.threads)
            groups.setdefault(key, []).append(probe)
        fits = {
            key: GroupFit(*key, *_fit_group(probes))
            for key, probes in groups.items()
        }
        if not fits:
            raise ParameterError(
                "calibration contains no probes; re-run it "
                "(python -m repro.sched.calibrate)"
            )
        pool = calibration.pool or {}
        return cls(
            fits=fits,
            pool_base=float(pool.get("base_seconds", 0.0)),
            pool_per_worker=float(pool.get("per_worker_seconds", 0.0)),
            calibration_id=calibration.calibration_id,
        )

    def fit_for(
        self, family: str, backend: str, threads: int = 1
    ) -> "GroupFit | None":
        """The fitted group, falling back to threads=1 for thread counts
        the calibration never probed (scaled by the ideal-speedup ratio
        is *not* attempted — an unprobed thread count is simply priced
        as unknown and skipped by the planner)."""
        return self.fits.get((family, backend, threads))

    def thread_counts(self, family: str, backend: str) -> tuple:
        """Probed thread counts for one family × backend (sorted)."""
        return tuple(
            sorted(
                t
                for (fam, back, t) in self.fits
                if fam == family and back == backend
            )
        )

    def backends(self, family: str) -> tuple:
        """Backends with a fit for this family (sorted)."""
        return tuple(
            sorted({back for (fam, back, _t) in self.fits if fam == family})
        )

    def predict_single(
        self, family: str, backend: str, lanes: int, samples: int,
        threads: int = 1,
    ) -> "float | None":
        """Predicted seconds for one in-process fused run, or ``None``
        when the calibration has no probe group for this combination."""
        fit = self.fit_for(family, backend, threads)
        if fit is None:
            return None
        return fit.seconds(lanes, samples)

    def predict_sharded(
        self, family: str, backend: str, lanes: int, samples: int,
        n_workers: int, min_shard: int = 1, warm_pool: bool = False,
    ) -> "float | None":
        """Predicted seconds for a pooled sharded run: pool spin-up plus
        the widest shard's compute (the makespan; shards run threads=1
        inside pool workers — the planner never composes both axes).

        ``warm_pool=True`` prices the spin-up at zero: a live
        :class:`~repro.service.pool.WorkerPool` already paid the fork
        (and, under ``fork``, the JIT warm-up its children inherited),
        so a run dispatched onto it pays only shard compute — which is
        exactly why the planner prefers wider plans for short grids
        when a warm pool is attached."""
        from repro.parallel.plan import plan_shards

        fit = self.fit_for(family, backend, threads=1)
        if fit is None:
            return None
        shards = plan_shards(lanes, n_workers, min_shard=min_shard)
        widest = max(stop - start for start, stop in shards)
        overhead = (
            0.0
            if warm_pool
            else self.pool_base + self.pool_per_worker * len(shards)
        )
        return overhead + fit.seconds(widest, samples)
