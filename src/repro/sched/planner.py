"""Cost-model-driven execution planning.

The execution stack has four knobs — array backend, fused dispatch,
pool width, lane threads per worker — and the best setting shifts with
ensemble width, drive length and host (PR 5's benchmarks put the
numba/sharding crossovers orders of magnitude apart across cells).
:func:`plan_for` picks the knobs from the host's micro-calibration
(:mod:`repro.sched.calibration`) instead of asking the caller to know
the crossovers: it enumerates every *executable* candidate plan,
prices each with the fitted :class:`~repro.sched.model.CostModel`, and
returns the cheapest as an :class:`ExecutionPlan` that
:func:`repro.parallel.executor.run_sharded` and
:func:`repro.parallel.grid.run_scenario_grid` accept via ``plan=``.

Two hard constraints shape the candidate set:

* **no oversubscription** — ``n_workers × threads_per_worker`` never
  exceeds the host's CPU affinity (and the pool width additionally
  respects ``REPRO_PARALLEL_MAX_WORKERS``, via the same
  :func:`~repro.parallel.executor.resolve_workers` the executor uses);
* **fork safety** — lane threading (``threads_per_worker > 1``) is only
  offered in-process (``n_workers == 1``).  numba's thread pools and
  ``fork``-started children are a known bad mix, and composing both
  axes never beats the better single axis on the pool sizes this stack
  targets; pool workers always run their shards single-threaded.

Plans are advisory about *speed* and silent about *semantics*: a plan
never changes which result is computed, only which backend/width
computes it, so all of the executor's bitwise reassembly pins hold
under any plan with an exact backend, and the rtol tier under a JIT
backend is the backend's own, unchanged by threading (lane-major
``prange`` preserves each lane's arithmetic sequence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ParameterError
from repro.sched.calibration import Calibration, get_calibration
from repro.sched.model import CostModel


@dataclass(frozen=True)
class ExecutionPlan:
    """One chosen configuration of the execution stack.

    ``backend`` names the array backend every shard runs on;
    ``n_workers`` the pool width (1: the serial in-process path);
    ``threads_per_worker`` the pinned lane-thread count inside each
    worker.  ``predicted_seconds`` and ``calibration_id`` document how
    the planner priced this plan (``None`` on hand-written plans).

    ``hosts`` is the multi-host placement axis: a tuple of
    ``"host:port"`` :mod:`repro.dist` worker-agent addresses.  Empty
    (default) means local execution; non-empty routes the run through
    :func:`repro.dist.dispatch.run_distributed`, with ``n_workers``
    naming the *shard count* to cut across those hosts.  Placement
    travels inside the plan — the executors grow no new tuning knobs —
    and remote shards always run single-threaded (the fork-safety rule,
    one layer out).
    """

    backend: str
    n_workers: int = 1
    threads_per_worker: int = 1
    predicted_seconds: "float | None" = None
    calibration_id: "str | None" = None
    source: str = "manual"
    hosts: "tuple[str, ...]" = ()

    def __post_init__(self) -> None:
        if not isinstance(self.hosts, tuple):
            object.__setattr__(self, "hosts", tuple(self.hosts))
        if self.hosts and self.threads_per_worker > 1:
            raise ParameterError(
                "multi-host plans run remote shards single-threaded; "
                f"got threads_per_worker={self.threads_per_worker} with "
                f"hosts={self.hosts}"
            )
        if self.n_workers < 1:
            raise ParameterError(
                f"plan n_workers must be >= 1, got {self.n_workers}"
            )
        if self.threads_per_worker < 1:
            raise ParameterError(
                "plan threads_per_worker must be >= 1, got "
                f"{self.threads_per_worker}"
            )
        if self.n_workers > 1 and self.threads_per_worker > 1:
            raise ParameterError(
                "lane threading composes with the serial path only: "
                f"n_workers={self.n_workers} with threads_per_worker="
                f"{self.threads_per_worker} would fork around a live "
                "thread pool (and oversubscribe)"
            )

    def describe(self) -> str:
        """One-line summary for logs and experiment headers."""
        cost = (
            f" (~{self.predicted_seconds:.3g}s)"
            if self.predicted_seconds is not None
            else ""
        )
        placement = f" @{len(self.hosts)}h" if self.hosts else ""
        return (
            f"{self.backend} x{self.n_workers}w/{self.threads_per_worker}t"
            f"{placement}{cost}"
        )


def describe_workload(source, drive=None, samples: "int | None" = None):
    """``(family, lanes, n_samples)`` for one planned run.

    ``source`` is anything the executor accepts (a live batch model or
    an :class:`~repro.parallel.spec.EnsembleSpec`); the sample count
    comes from ``samples`` directly, from an explicit sample array, or
    from a :class:`~repro.parallel.spec.DriveSpec` (scenario drives are
    materialised once — the same construction the run itself performs).
    """
    import numpy as np

    from repro.models.protocol import is_batch_model
    from repro.parallel.spec import DriveSpec, EnsembleSpec

    if is_batch_model(source):
        family, lanes = source.family, source.n_cores
    elif isinstance(source, EnsembleSpec):
        family, lanes = source.family, source.n_cores
    else:
        raise ParameterError(
            "cannot plan for a "
            f"{type(source).__name__}; expected a BatchHysteresisModel "
            "or an EnsembleSpec"
        )
    if samples is not None:
        n_samples = int(samples)
    elif isinstance(drive, DriveSpec):
        n_samples = len(drive.full_samples(lanes))
    elif drive is not None:
        n_samples = len(np.asarray(drive))
    else:
        raise ParameterError(
            "planning needs the drive length: pass drive= or samples="
        )
    if n_samples < 1:
        raise ParameterError(f"cannot plan a {n_samples}-sample run")
    return family, lanes, n_samples


def _worker_ladder(cap: int, lanes: int) -> "tuple[int, ...]":
    """Pool widths worth pricing: powers of two up to the cap, plus the
    cap itself, never wider than the lane count (extra workers past one
    shard per lane would idle)."""
    cap = min(cap, lanes)
    ladder = {1}
    width = 2
    while width < cap:
        ladder.add(width)
        width *= 2
    ladder.add(cap)
    return tuple(sorted(w for w in ladder if w >= 1))


def enumerate_candidates(
    model: CostModel,
    family: str,
    lanes: int,
    samples: int,
    max_workers: "int | None" = None,
    min_shard: int = 1,
    warm_pool: bool = False,
    backend: "str | None" = None,
    hosts: "Sequence[str] | None" = None,
    link_overhead_s: float = 0.0,
    host_models: "dict[str, CostModel] | None" = None,
) -> "list[ExecutionPlan]":
    """Every executable candidate plan, priced, cheapest first.

    Candidates span each calibrated backend × (serial, threaded at each
    calibrated thread count, pooled at each ladder width), constrained
    by the oversubscription and fork-safety rules above.  Combinations
    the calibration never probed are skipped, not guessed.

    ``warm_pool=True`` prices pooled candidates without the spin-up
    overhead (see :meth:`CostModel.predict_sharded`): with a live
    :class:`~repro.service.pool.WorkerPool` attached, sharding starts
    paying off on workloads the cold cost model would have kept serial.

    ``backend`` pins the backend axis to that one backend — the
    service layer's cache keys make the backend semantic, so planning
    under a cache may only trade the width/thread axes.

    ``hosts`` grows the candidate set along the placement axis: for
    each backend a multi-host plan cutting one shard per listed
    :mod:`repro.dist` worker agent, priced per host from that host's
    calibrated cost model (``host_models``, keyed by address; hosts
    without an entry price on the local model — the honest default for
    homogeneous fleets) plus ``link_overhead_s`` per dispatched shard
    — the measured request/stream round-trip cost
    (:func:`repro.dist.probe.probe_link_overhead`).  Remote shards are
    already-running agents, so no pool spin-up is priced, and the local
    oversubscription cap never constrains remote placement.
    """
    from repro.backend import max_threads
    from repro.parallel.executor import available_cpus, resolve_workers

    cpus = available_cpus()
    cap = resolve_workers(max_workers)
    pinned = backend
    backends = model.backends(family)
    if pinned is not None:
        backends = tuple(b for b in backends if b == pinned)
    candidates: list[ExecutionPlan] = []
    for backend in backends:
        seconds = model.predict_single(family, backend, lanes, samples)
        if seconds is not None:
            candidates.append(
                ExecutionPlan(
                    backend=backend,
                    n_workers=1,
                    threads_per_worker=1,
                    predicted_seconds=seconds,
                    calibration_id=model.calibration_id,
                    source="auto",
                )
            )
        thread_cap = min(cpus, max_threads())
        for threads in model.thread_counts(family, backend):
            if threads <= 1 or threads > thread_cap:
                continue
            seconds = model.predict_single(
                family, backend, lanes, samples, threads=threads
            )
            if seconds is None:
                continue
            candidates.append(
                ExecutionPlan(
                    backend=backend,
                    n_workers=1,
                    threads_per_worker=threads,
                    predicted_seconds=seconds,
                    calibration_id=model.calibration_id,
                    source="auto",
                )
            )
        for workers in _worker_ladder(cap, lanes):
            if workers <= 1:
                continue
            seconds = model.predict_sharded(
                family, backend, lanes, samples, workers, min_shard,
                warm_pool=warm_pool,
            )
            if seconds is None:
                continue
            candidates.append(
                ExecutionPlan(
                    backend=backend,
                    n_workers=workers,
                    threads_per_worker=1,
                    predicted_seconds=seconds,
                    calibration_id=model.calibration_id,
                    source="auto",
                )
            )
        if hosts:
            seconds = _price_distributed(
                model, family, backend, lanes, samples, tuple(hosts),
                min_shard, link_overhead_s, host_models,
            )
            if seconds is not None:
                candidates.append(
                    ExecutionPlan(
                        backend=backend,
                        n_workers=len(hosts),
                        threads_per_worker=1,
                        predicted_seconds=seconds,
                        calibration_id=model.calibration_id,
                        source="auto-dist",
                        hosts=tuple(hosts),
                    )
                )
    if not candidates:
        raise ParameterError(
            f"the calibration has no probes for family {family!r}"
            + (f" on backend {pinned!r}" if pinned is not None else "")
            + "; re-run python -m repro.sched.calibrate"
        )
    return sorted(candidates, key=lambda plan: plan.predicted_seconds)


def _price_distributed(
    model: CostModel,
    family: str,
    backend: str,
    lanes: int,
    samples: int,
    hosts: "tuple[str, ...]",
    min_shard: int,
    link_overhead_s: float,
    host_models: "dict[str, CostModel] | None",
) -> "float | None":
    """Makespan of one shard per host, each priced on its host's model.

    Shards come from the same :func:`~repro.parallel.plan.plan_shards`
    decomposition the dispatcher cuts; shard ``i`` prices on host ``i``
    (the dispatcher's lane-ordered assignment when every host is up).
    Each dispatched shard additionally pays the measured link overhead
    once — request pickle out, result blocks back.  ``None`` when any
    involved model lacks a fit for this family × backend (unprobed
    placements are skipped, not guessed — the PR 6 rule).
    """
    from repro.parallel.plan import plan_shards

    shards = plan_shards(lanes, len(hosts), min_shard=min_shard)
    per_host = [0.0] * len(hosts)
    for i, (start, stop) in enumerate(shards):
        host = hosts[i % len(hosts)]
        host_model = (host_models or {}).get(host, model)
        seconds = host_model.predict_single(
            family, backend, stop - start, samples
        )
        if seconds is None:
            return None
        per_host[i % len(hosts)] += seconds + link_overhead_s
    return max(per_host)


def plan_for(
    source,
    drive=None,
    samples: "int | None" = None,
    calibration: "Calibration | None" = None,
    max_workers: "int | None" = None,
    min_shard: int = 1,
    warm_pool: bool = False,
    backend: "str | None" = None,
) -> ExecutionPlan:
    """The cheapest executable plan for one run.

    ``calibration=None`` loads (or, once per host, creates) the
    persisted calibration file — see
    :func:`repro.sched.calibration.get_calibration`.  ``warm_pool``
    prices pooled candidates spin-up-free (a live pool is attached);
    ``backend`` pins the backend axis (the service layer's cache keys
    include the backend, so a cached run may only plan width/threads).
    """
    family, lanes, n_samples = describe_workload(source, drive, samples)
    if calibration is None:
        calibration = get_calibration()
    model = CostModel.from_calibration(calibration)
    return enumerate_candidates(
        model, family, lanes, n_samples, max_workers, min_shard,
        warm_pool=warm_pool, backend=backend,
    )[0]


def plan_grid(
    workloads: Sequence[tuple],
    calibration: "Calibration | None" = None,
    max_workers: "int | None" = None,
    min_shard: int = 1,
    warm_pool: bool = False,
    backend: "str | None" = None,
) -> ExecutionPlan:
    """One plan for a whole grid of ``(family, lanes, samples)`` cells.

    The grid executor runs every cell on one backend and one pool (a
    deliberate invariant: one campaign, one configuration, one record
    header), so the planner picks the single candidate shape that
    minimises the *summed* predicted cost across all cells — priced per
    cell, because the same shape costs differently per family.
    Candidate shapes must be priceable for **every** cell's family;
    shapes any cell cannot price are discarded.

    ``backend`` pins the backend axis: only shapes on that backend are
    considered, and the planner chooses width/threads alone.  The
    service layer uses this — with a result cache attached the backend
    is *semantic* (it is part of every cache key), so the planner must
    not trade it away for speed.
    """
    if not workloads:
        raise ParameterError("plan_grid needs at least one workload cell")
    if calibration is None:
        calibration = get_calibration()
    model = CostModel.from_calibration(calibration)

    totals: dict = {}
    per_cell = []
    for family, lanes, samples in workloads:
        cell = {
            (p.backend, p.n_workers, p.threads_per_worker): p.predicted_seconds
            for p in enumerate_candidates(
                model, family, int(lanes), int(samples), max_workers,
                min_shard, warm_pool=warm_pool,
            )
        }
        per_cell.append(cell)
    shared = set(per_cell[0])
    for cell in per_cell[1:]:
        shared &= set(cell)
    if backend is not None:
        shared = {shape for shape in shared if shape[0] == backend}
    if not shared:
        raise ParameterError(
            "no candidate plan shape is calibrated for every family in "
            "this grid"
            + (f" on backend {backend!r}" if backend is not None else "")
            + "; re-run python -m repro.sched.calibrate"
        )
    for shape in shared:
        totals[shape] = sum(cell[shape] for cell in per_cell)
    backend, workers, threads = min(totals, key=totals.get)
    return ExecutionPlan(
        backend=backend,
        n_workers=workers,
        threads_per_worker=threads,
        predicted_seconds=totals[(backend, workers, threads)],
        calibration_id=model.calibration_id,
        source="auto-grid",
    )


def resolve_plan(
    plan,
    source,
    drive=None,
    samples: "int | None" = None,
    max_workers: "int | None" = None,
    min_shard: int = 1,
    warm_pool: bool = False,
) -> ExecutionPlan:
    """Normalise the executor's ``plan=`` argument.

    ``"auto"`` plans from the persisted calibration; an
    :class:`ExecutionPlan` passes through unchanged (hand-written plans
    are first-class — the benchmarks race them against ``"auto"``).
    ``warm_pool`` reaches the auto path only: the executor sets it when
    a live pool is attached, so auto plans stop pricing a spin-up the
    caller already paid.
    """
    if isinstance(plan, ExecutionPlan):
        return plan
    if plan == "auto":
        return plan_for(
            source,
            drive,
            samples=samples,
            max_workers=max_workers,
            min_shard=min_shard,
            warm_pool=warm_pool,
        )
    raise ParameterError(
        f"plan must be an ExecutionPlan or 'auto', got {plan!r}"
    )
