"""Multi-host dispatch: shard campaigns over socket-connected workers.

The scale-out layer past one pool (ROADMAP's last open scaling axis):
worker agents (``python -m repro.dist.worker --bind HOST:PORT``)
rebuild sub-ensembles from the same picklable
:class:`~repro.parallel.spec.ShardSpec` payloads the local executor
forks with — never shipped live models — and stream results back in
bounded lane blocks, so a million-lane campaign never materialises on
either side of the wire::

    from repro.dist import run_distributed
    from repro.parallel import EnsembleSpec

    spec = EnsembleSpec(family="timeless", n_cores=4096, seed=0)
    result = run_distributed(
        spec, scenario="major-loop", h_max=10e3,
        hosts=["10.0.0.5:7501", "10.0.0.6:7501"], chunk_lanes=256,
    )

``result`` is **bitwise identical** to the single-process
:func:`repro.batch.sweep.run_batch_series` run.  Robustness is built
in: per-job deadlines, dead-worker requeue onto survivors, digest-
keyed request dedup, and graceful local fallback when no worker is
reachable.  ``run_sharded(..., hosts=[...])`` and multi-host
:class:`~repro.sched.planner.ExecutionPlan` candidates route here.
"""

from repro.dist.dispatch import (
    DEFAULT_DEADLINE_S,
    DEFAULT_RETRIES,
    Dispatcher,
    run_distributed,
    shard_digest,
)
from repro.dist.probe import probe_hosts, probe_link_overhead
from repro.dist.protocol import DEFAULT_AUTHKEY, PROTOCOL_VERSION
from repro.dist.worker import WorkerAgent

__all__ = [
    "DEFAULT_AUTHKEY",
    "DEFAULT_DEADLINE_S",
    "DEFAULT_RETRIES",
    "PROTOCOL_VERSION",
    "Dispatcher",
    "WorkerAgent",
    "probe_hosts",
    "probe_link_overhead",
    "run_distributed",
    "shard_digest",
]
