"""Multi-host shard dispatch: campaigns over a fleet of worker agents.

:func:`run_distributed` is the socket-transport sibling of
:func:`repro.parallel.executor.run_sharded`: the same
``prepare_job`` planning (full-ensemble driver-step resolution first —
the PR 3 bitwise rule), the same :class:`~repro.parallel.spec.ShardSpec`
payloads, but each shard travels to a :class:`~repro.dist.worker.
WorkerAgent` over TCP and its result streams back as bounded lane
blocks (:mod:`repro.parallel.blocks`).  Reassembly writes every block
into full-width output buffers by absolute lane range — idempotent, so
a re-dispatched shard simply rewrites its (bitwise identical) columns —
and the finished :class:`~repro.batch.sweep.BatchSweepResult` is
bitwise identical to the single-process run.

Robustness model:

* **per-job deadline** — every receive on a worker connection counts
  against the dispatching job's deadline; an expired deadline retires
  the connection and requeues the job;
* **dead-worker requeue** — a connection error (killed agent, dropped
  link) requeues the in-flight job for any surviving worker, up to
  ``retries`` re-dispatches per job; block writes being idempotent is
  what makes the partial first attempt harmless;
* **request dedup** — submitted jobs are keyed by a content digest of
  their shard spec (the same canonicalisation as the PR 7 result
  cache); identical in-flight requests coalesce onto one wire job with
  many sinks, mirroring the service layer's future table;
* **graceful degradation** — zero reachable workers (or a fleet that
  dies mid-campaign) degrades to the local executor with a logged
  warning, never an error.

Worker-*side* exceptions (a failed rebuild, a schema drift) are
deterministic — they are raised as :class:`~repro.errors.DistError`
rather than retried.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from multiprocessing import AuthenticationError
from multiprocessing.connection import Client

import numpy as np

from repro.batch.sweep import BatchSweepResult
from repro.dist.protocol import (
    DEFAULT_AUTHKEY,
    MSG_BLOCK,
    MSG_DONE,
    MSG_ERROR,
    MSG_PING,
    MSG_PONG,
    MSG_RUN,
    MSG_SHUTDOWN,
    PROTOCOL_VERSION,
    parse_address,
    recv_message,
    send_message,
)
from repro.errors import DistError, DistTimeoutError, ParameterError
from repro.parallel.blocks import (
    BlockBudget,
    iter_shard_blocks,
    merge_shard_counters,
)
from repro.parallel.executor import (
    _apply_plan_backend,
    _resolve_drive,
    prepare_job,
    run_job_serial,
)
from repro.parallel.spec import ShardSpec

_log = logging.getLogger(__name__)

#: Per-job wall-clock budget before a worker is presumed wedged.
DEFAULT_DEADLINE_S = 600.0

#: Re-dispatches per job after its first attempt.
DEFAULT_RETRIES = 2

#: Budget for the connect + ping handshake per host.
CONNECT_TIMEOUT_S = 5.0


def shard_digest(spec: ShardSpec) -> "str | None":
    """Content digest of one shard request, for wire-level dedup.

    Semantic fields only — the drive, the lane range, and the rebuild
    route — never execution shape (``threads``, ``chunk_lanes``): two
    requests that compute bitwise-identical columns coalesce regardless
    of how either would have chunked.  ``None`` (no dedup, dispatch
    as unique) when a payload route carries values the canonicaliser
    cannot digest.
    """
    # Lazy sideways import: repro.service and repro.dist share a layer
    # rank; only the digest helpers are borrowed, at call time.
    from repro.service.digest import digest_payload

    if spec.ensemble is not None:
        route = {
            "kind": "ensemble",
            "family": spec.ensemble.family,
            "n_cores": spec.ensemble.n_cores,
            "seed": spec.ensemble.seed,
            "backend": spec.ensemble.backend,
        }
    else:
        route = {"kind": "payload", "payload": spec.payload}
    payload = {
        "schema": PROTOCOL_VERSION,
        "family": spec.family,
        "n_cores_total": spec.n_cores_total,
        "start": spec.start,
        "stop": spec.stop,
        "drive": {
            "scenario": spec.drive.scenario,
            "h_max": spec.drive.h_max,
            "driver_step": spec.drive.driver_step,
            "samples": spec.drive.samples,
        },
        "route": route,
    }
    try:
        return digest_payload(payload)
    except ParameterError:
        return None


class _WorkerFailure(DistError):
    """A worker-side exception forwarded over the wire (deterministic —
    re-dispatching would fail identically, so it is never retried)."""


class _Assembly:
    """Full-width output buffers one job's streamed blocks land in.

    Writes are by absolute lane range into disjoint column slices, so
    concurrent worker threads never touch overlapping memory and a
    retried shard's rewrite is a no-op by value.  Counters commit per
    shard only when that shard's stream completes — a half-streamed
    attempt leaves no counter residue behind.
    """

    def __init__(self, job) -> None:
        self.job = job
        wide = (len(job.h_full), job.n_total)
        self.m = np.empty(wide, dtype=np.float64)
        self.b = np.empty(wide, dtype=np.float64)
        self.updated = np.empty(wide, dtype=np.bool_)
        self.extras = {
            key: np.empty(wide, dtype=dtype)
            for key, dtype in job.extras_schema.items()
        }
        self._shard_counters: dict = {}

    def write_block(self, block) -> None:
        expected = self.job.extras_schema
        if sorted(block.extras) != sorted(expected):
            raise ParameterError(
                f"family {self.job.family!r} lanes [{block.start}, "
                f"{block.stop}) recorded extras {sorted(block.extras)}, "
                f"expected {sorted(expected)}; the schema (registry "
                "declaration or pre-run probe) is stale"
            )
        self.m[:, block.start : block.stop] = block.m
        self.b[:, block.start : block.stop] = block.b
        self.updated[:, block.start : block.stop] = block.updated
        for key, values in block.extras.items():
            if values.dtype != np.dtype(expected[key]):
                raise ParameterError(
                    f"family {self.job.family!r} recorded {key!r} extras "
                    f"as {values.dtype}, but the schema declares "
                    f"{np.dtype(expected[key])}; the schema is stale"
                )
            self.extras[key][:, block.start : block.stop] = values

    def commit_shard(self, start, stop, counters, widths) -> None:
        self._shard_counters[(start, stop)] = merge_shard_counters(
            counters, widths
        )

    def result(self) -> BatchSweepResult:
        ordered, widths = [], []
        for spec in self.job.specs:
            key = (spec.start, spec.stop)
            if key not in self._shard_counters:
                raise DistError(
                    f"shard [{spec.start}, {spec.stop}) never completed; "
                    "the campaign result is incomplete"
                )
            ordered.append(self._shard_counters[key])
            widths.append(spec.width)
        return BatchSweepResult(
            h=self.job.h_full,
            m=self.m,
            b=self.b,
            updated=self.updated,
            extras=self.extras,
            counters=merge_shard_counters(ordered, widths),
            family=self.job.family,
        )


class _WireJob:
    """One deduped wire request: a spec plus every sink awaiting it."""

    __slots__ = ("spec", "digest", "sinks", "attempts")

    def __init__(self, spec: ShardSpec, digest: "str | None") -> None:
        self.spec = spec
        self.digest = digest
        self.sinks: list[_Assembly] = []
        self.attempts = 0


class _CampaignState:
    """Shared job queue + completion accounting for one ``run_jobs``.

    Worker threads pull with :meth:`next_job`, which blocks while other
    threads still hold outstanding jobs (a dead worker's requeue must
    be able to wake an idle survivor) and returns ``None`` once every
    job has completed, failed, or exhausted its retries.
    """

    def __init__(self, jobs, retries: int) -> None:
        self._cond = threading.Condition()
        self._pending = deque(jobs)
        self._outstanding = len(jobs)
        self._retries = retries
        self.failures: list[tuple[_WireJob, str]] = []
        self.exhausted: list[_WireJob] = []

    def next_job(self) -> "_WireJob | None":
        with self._cond:
            while True:
                if self._pending:
                    return self._pending.popleft()
                if self._outstanding <= 0:
                    return None
                self._cond.wait()

    def complete(self, job: _WireJob) -> None:
        with self._cond:
            self._outstanding -= 1
            self._cond.notify_all()

    def requeue(self, job: _WireJob) -> None:
        job.attempts += 1
        with self._cond:
            if job.attempts > self._retries:
                # Out of re-dispatch budget: hand the job to the local
                # drain instead of erroring the whole campaign.
                self.exhausted.append(job)
                self._outstanding -= 1
            else:
                self._pending.append(job)
            self._cond.notify_all()

    def fail(self, job: _WireJob, message: str) -> None:
        with self._cond:
            self.failures.append((job, message))
            self._outstanding -= 1
            self._cond.notify_all()

    def abandoned(self) -> "list[_WireJob]":
        """Jobs still queued after every worker thread has exited."""
        with self._cond:
            jobs = list(self._pending)
            self._pending.clear()
            self._outstanding -= len(jobs)
            self._cond.notify_all()
            return jobs


class Dispatcher:
    """A connected fleet of worker agents, reusable across campaigns.

    Connections are made (and ping-verified, protocol version included)
    at construction; unreachable hosts are logged and skipped, and
    :attr:`n_live` reports the surviving fleet size.  ``run_jobs``
    executes a batch of prepared cell jobs across the fleet — the
    digest-keyed dedup table spans the whole batch, so identical shard
    requests from different jobs coalesce onto one wire dispatch.
    """

    def __init__(
        self,
        hosts,
        *,
        authkey: bytes = DEFAULT_AUTHKEY,
        deadline_s: "float | None" = DEFAULT_DEADLINE_S,
        retries: int = DEFAULT_RETRIES,
        max_buffer_bytes: "int | None" = None,
        connect_timeout_s: float = CONNECT_TIMEOUT_S,
    ) -> None:
        if retries < 0:
            raise ParameterError(f"retries must be >= 0, got {retries}")
        self.deadline_s = deadline_s
        self.retries = retries
        self.budget = BlockBudget(max_buffer_bytes)
        self._authkey = authkey
        self._connect_timeout_s = connect_timeout_s
        self._workers: dict = {}
        for address in hosts:
            conn = self._connect(address)
            if conn is not None:
                self._workers[address] = conn

    @property
    def n_live(self) -> int:
        return len(self._workers)

    def close(self) -> None:
        for conn in self._workers.values():
            try:
                conn.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        self._workers = {}

    def shutdown_workers(self) -> int:
        """Gracefully stop every connected agent, then close.

        Sends ``MSG_SHUTDOWN`` on each live connection — the agent's
        serve loop closes its listener and exits — and returns how many
        agents took the message.  An agent that died before the send is
        logged and skipped: shutdown is best-effort by design, the
        fleet owner reclaims stragglers out of band.
        """
        stopped = 0
        for address, conn in list(self._workers.items()):
            try:
                send_message(conn, (MSG_SHUTDOWN,))
                stopped += 1
            except (OSError, EOFError) as exc:
                _log.warning(
                    "worker %s did not take the shutdown: %s", address, exc
                )
            self._drop(address, conn)
        return stopped

    def __enter__(self) -> "Dispatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- connection management --------------------------------------------

    def _connect(self, address: str):
        try:
            conn = Client(
                parse_address(address), family="AF_INET",
                authkey=self._authkey,
            )
        except (OSError, EOFError, AuthenticationError) as exc:
            _log.warning(
                "repro.dist worker %s unreachable: %s", address, exc
            )
            return None
        try:
            send_message(conn, (MSG_PING,))
            reply = recv_message(conn, self._connect_timeout_s)
            if reply[0] != MSG_PONG or reply[1] != PROTOCOL_VERSION:
                raise DistError(
                    f"worker {address} answered {reply!r}; expected "
                    f"('pong', {PROTOCOL_VERSION}) — mismatched protocol "
                    "versions cannot share a fleet"
                )
        except (OSError, EOFError, DistTimeoutError) as exc:
            _log.warning(
                "repro.dist worker %s failed the handshake: %s",
                address, exc,
            )
            conn.close()
            return None
        return conn

    def _drop(self, address: str, conn) -> None:
        if self._workers.get(address) is conn:
            del self._workers[address]
        try:
            conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass

    # -- campaign execution ------------------------------------------------

    def run_jobs(self, jobs) -> "list[BatchSweepResult]":
        """Execute prepared cell jobs across the fleet, reassembled.

        Every job's shards enter one digest-deduped queue; one serving
        thread per live connection drains it.  Shards left over when
        the whole fleet has died (or a job ran out of re-dispatches)
        drain through the local block runner with a logged warning —
        the campaign completes, bitwise identical, just slower.
        Worker-side exceptions raise :class:`~repro.errors.DistError`.
        """
        assemblies = [_Assembly(job) for job in jobs]
        table: dict = {}
        wire_jobs: list[_WireJob] = []
        coalesced = 0
        for job, assembly in zip(jobs, assemblies):
            for spec in job.specs:
                digest = shard_digest(spec)
                wire = table.get(digest) if digest is not None else None
                if wire is None:
                    wire = _WireJob(spec, digest)
                    wire_jobs.append(wire)
                    if digest is not None:
                        table[digest] = wire
                else:
                    coalesced += 1
                wire.sinks.append(assembly)
        if coalesced:
            _log.info(
                "dispatch coalesced %d duplicate shard request(s): %d "
                "unique on the wire", coalesced, len(wire_jobs),
            )
        state = _CampaignState(wire_jobs, self.retries)
        threads = [
            threading.Thread(
                target=self._serve,
                args=(address, conn, state),
                name=f"repro-dispatch-{address}",
                daemon=True,
            )
            for address, conn in list(self._workers.items())
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        leftovers = state.abandoned() + state.exhausted
        if state.failures:
            job, message = state.failures[0]
            raise DistError(
                f"shard [{job.spec.start}, {job.spec.stop}) failed "
                f"worker-side ({len(state.failures)} failure(s) total):\n"
                f"{message}"
            )
        if leftovers:
            _log.warning(
                "no surviving repro.dist worker for %d shard(s); "
                "draining them through the local executor",
                len(leftovers),
            )
            for wire in leftovers:
                self._run_local(wire)
        return [assembly.result() for assembly in assemblies]

    def _serve(self, address: str, conn, state: _CampaignState) -> None:
        """One connection's serving loop: pull, dispatch, stream."""
        while True:
            wire = state.next_job()
            if wire is None:
                return
            try:
                self._dispatch_one(conn, wire)
            except _WorkerFailure as exc:
                state.fail(wire, str(exc))
            except (EOFError, OSError, DistTimeoutError) as exc:
                _log.warning(
                    "worker %s lost mid-job (%s: %s); requeueing shard "
                    "[%d, %d)",
                    address, type(exc).__name__, exc,
                    wire.spec.start, wire.spec.stop,
                )
                state.requeue(wire)
                self._drop(address, conn)
                return
            else:
                state.complete(wire)

    def _dispatch_one(self, conn, wire: _WireJob) -> None:
        """Send one request; stream its blocks under the job deadline."""
        spec = wire.spec
        limit = (
            None
            if self.deadline_s is None
            else time.monotonic() + self.deadline_s
        )
        send_message(conn, (MSG_RUN, wire.digest, spec))
        counters, widths, covered = [], [], 0
        while True:
            remaining = None if limit is None else limit - time.monotonic()
            message = recv_message(conn, remaining)
            kind = message[0]
            if kind == MSG_BLOCK:
                block = message[2]
                nbytes = block.nbytes
                self.budget.acquire(nbytes)
                try:
                    for sink in wire.sinks:
                        sink.write_block(block)
                finally:
                    self.budget.release(nbytes)
                counters.append(block.counters)
                widths.append(block.width)
                covered += block.width
            elif kind == MSG_DONE:
                if covered != spec.width:
                    raise DistError(
                        f"shard [{spec.start}, {spec.stop}) streamed "
                        f"{covered} lanes but declared done at width "
                        f"{spec.width}"
                    )
                for sink in wire.sinks:
                    sink.commit_shard(spec.start, spec.stop, counters, widths)
                return
            elif kind == MSG_ERROR:
                raise _WorkerFailure(message[2])
            else:
                raise DistError(
                    f"unexpected {kind!r} message mid-stream for shard "
                    f"[{spec.start}, {spec.stop})"
                )

    def _run_local(self, wire: _WireJob) -> None:
        """Local drain: same block generator, no socket."""
        spec = wire.spec
        counters, widths = [], []
        for block in iter_shard_blocks(spec):
            nbytes = block.nbytes
            self.budget.acquire(nbytes)
            try:
                for sink in wire.sinks:
                    sink.write_block(block)
            finally:
                self.budget.release(nbytes)
            counters.append(block.counters)
            widths.append(block.width)
        for sink in wire.sinks:
            sink.commit_shard(spec.start, spec.stop, counters, widths)


def run_distributed(
    source,
    h_samples=None,
    *,
    scenario: "str | None" = None,
    h_max: "float | None" = None,
    driver_step: "float | None" = None,
    drive=None,
    hosts,
    n_workers: "int | None" = None,
    min_shard: int = 1,
    chunk_lanes: "int | None" = None,
    plan=None,
    deadline_s: "float | None" = DEFAULT_DEADLINE_S,
    retries: int = DEFAULT_RETRIES,
    max_buffer_bytes: "int | None" = None,
    authkey: bytes = DEFAULT_AUTHKEY,
    connect_timeout_s: float = CONNECT_TIMEOUT_S,
) -> BatchSweepResult:
    """Run one ensemble drive sharded across remote worker agents.

    The multi-host sibling of
    :func:`repro.parallel.executor.run_sharded`: ``source`` and the
    drive arguments mean exactly the same thing (including the
    full-ensemble driver-step resolution — the step is resolved here,
    *before* sharding, so remote shards can never re-derive a different
    ladder), and the returned result is bitwise identical to the
    single-process :func:`repro.batch.sweep.run_batch_series`.

    ``hosts`` lists ``"host:port"`` worker-agent addresses.
    ``n_workers`` names the shard count (default: one per host) —
    uneven splits are fine, surviving workers drain the queue.
    ``chunk_lanes`` streams each shard in bounded lane blocks;
    ``max_buffer_bytes`` puts a hard back-pressure ceiling on the
    dispatcher's in-flight block bytes.  ``deadline_s`` / ``retries``
    bound each job's wall clock and its re-dispatch budget.  ``plan``
    accepts a resolved :class:`~repro.sched.planner.ExecutionPlan`
    (the ``run_sharded(plan=...)`` routing path); its backend is
    applied and its ``n_workers`` names the shard count.

    Zero reachable workers degrades to the local serial executor with
    a logged warning — never an error.
    """
    if not hosts:
        raise ParameterError(
            "run_distributed needs at least one 'host:port' worker address"
        )
    if drive is None:
        drive, built = _resolve_drive(
            source, h_samples, scenario, h_max, driver_step
        )
        if built is not None:
            source = built
    elif h_samples is not None or scenario is not None:
        raise ParameterError(
            "pass either drive= or h_samples/scenario arguments, not both"
        )
    restore_backend = lambda: None  # noqa: E731 - trivial default restore
    if plan is not None:
        from repro.sched.planner import ExecutionPlan

        if not isinstance(plan, ExecutionPlan):
            raise ParameterError(
                "run_distributed takes a resolved ExecutionPlan; use "
                "run_sharded(plan='auto', hosts=...) for auto-planning"
            )
        if n_workers is not None:
            raise ParameterError(
                "pass either plan= or n_workers=, not both: a plan owns "
                "the shard count"
            )
        n_shards = plan.n_workers
        source, restore_backend = _apply_plan_backend(source, plan.backend)
    else:
        n_shards = len(hosts) if n_workers is None else n_workers
    try:
        job = prepare_job(
            source, drive, n_shards, min_shard, chunk_lanes=chunk_lanes
        )
    finally:
        restore_backend()
    with Dispatcher(
        hosts,
        authkey=authkey,
        deadline_s=deadline_s,
        retries=retries,
        max_buffer_bytes=max_buffer_bytes,
        connect_timeout_s=connect_timeout_s,
    ) as dispatcher:
        if dispatcher.n_live == 0:
            _log.warning(
                "no repro.dist worker reachable at %s; degrading to the "
                "local executor", ", ".join(hosts),
            )
            return run_job_serial(job)
        return dispatcher.run_jobs([job])[0]
