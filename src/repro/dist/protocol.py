"""The repro.dist wire protocol: framing, deadlines, message shapes.

Transport is the stdlib :mod:`multiprocessing.connection` over TCP —
``Listener``/``Client`` with an HMAC ``authkey`` handshake, pickling
each message whole.  No third-party dependency, and the payloads are
exactly the picklable spec types the sharded executor already ships
across fork boundaries (:mod:`repro.parallel.spec`): a worker never
receives a live model, only the recipe to rebuild one.

Message vocabulary (plain tuples, first element the kind):

``("ping",)`` → ``("pong", PROTOCOL_VERSION)``
    Reachability handshake; the version reply refuses mixed fleets.
``("echo", payload)`` → ``("echo", payload)``
    Link-overhead probe (:mod:`repro.dist.probe`).
``("run", digest, spec)``
    Execute one :class:`~repro.parallel.spec.ShardSpec`.  The worker
    streams back ``("block", digest, LaneBlock)`` per lane block
    (one block for an unchunked spec) and finishes with ``("done",
    digest, n_blocks)``; a worker-side exception arrives as
    ``("error", digest, message)``.
``("shutdown",)``
    Graceful agent stop (no reply; the connection closes).

Every receive in this package goes through :func:`recv_message`, which
polls with a deadline before touching ``Connection.recv`` — a dead or
wedged peer surfaces as :class:`~repro.errors.DistTimeoutError`
instead of a forever-blocked dispatcher (lint rule L005 enforces this
pattern for all dist code).
"""

from __future__ import annotations

import time

from repro.errors import DistError, DistTimeoutError

#: Bump on any incompatible message-shape change: mixed fleets refuse
#: each other at the ping handshake instead of failing mid-stream.
PROTOCOL_VERSION = 1

#: The message-tag vocabulary.  Every wire message is a tuple whose
#: first element is one of these; dispatch/worker/probe compare against
#: the constants, never the raw strings, so lint rule L010 can prove
#: the whole set is constructed, handled, and version-recorded.
MSG_PING = "ping"
MSG_PONG = "pong"
MSG_ECHO = "echo"
MSG_RUN = "run"
MSG_BLOCK = "block"
MSG_DONE = "done"
MSG_ERROR = "error"
MSG_SHUTDOWN = "shutdown"

#: Every tag, as a set — the introspection handle tests use.
MESSAGE_TAGS = frozenset(
    {
        MSG_PING,
        MSG_PONG,
        MSG_ECHO,
        MSG_RUN,
        MSG_BLOCK,
        MSG_DONE,
        MSG_ERROR,
        MSG_SHUTDOWN,
    }
)

#: Which sibling module(s) must pattern-match each tag (L010 checks
#: the named files really do).  ``worker`` consumes the dispatcher's
#: requests; ``dispatch`` consumes the worker's stream; the ``echo``
#: reply is consumed by both the worker (loopback) and the probe.
TAG_HANDLERS = {
    MSG_PING: ("worker",),
    MSG_PONG: ("dispatch",),
    MSG_ECHO: ("worker", "probe"),
    MSG_RUN: ("worker",),
    MSG_BLOCK: ("dispatch",),
    MSG_DONE: ("dispatch",),
    MSG_ERROR: ("dispatch",),
    MSG_SHUTDOWN: ("worker",),
}

#: The frozen record of each protocol version's (sorted) tag set.
#: Entries for shipped versions never change; growing or shrinking the
#: vocabulary means adding a new PROTOCOL_VERSION entry here — L010
#: flags a current tag set that does not match its history row.
TAG_HISTORY = {
    1: (
        MSG_BLOCK,
        MSG_DONE,
        MSG_ECHO,
        MSG_ERROR,
        MSG_PING,
        MSG_PONG,
        MSG_RUN,
        MSG_SHUTDOWN,
    ),
}

#: Default HMAC authkey for the Listener/Client handshake.  Dispatch
#: and worker agents must agree; deployments sharing a network segment
#: should pass their own secret.
DEFAULT_AUTHKEY = b"repro-dist"

#: Upper bound on one poll slice: even "wait forever" receives wake at
#: this cadence so an agent shutting down can notice promptly.
POLL_SLICE_S = 0.25


def parse_address(address: str) -> tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` (IPv4/hostname form)."""
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise DistError(
            f"worker address must be 'host:port', got {address!r}"
        )
    try:
        return host, int(port)
    except ValueError:
        raise DistError(
            f"worker address port must be an integer, got {address!r}"
        )


def format_address(address: tuple[str, int]) -> str:
    return f"{address[0]}:{address[1]}"


def send_message(conn, message: tuple) -> None:
    """Pickle one message onto the connection."""
    conn.send(message)


def recv_message(conn, deadline_s: "float | None"):
    """Receive one message, polling under a deadline.

    ``deadline_s`` is the remaining time budget in seconds (``None``:
    wait indefinitely, in :data:`POLL_SLICE_S` slices so the caller's
    surrounding loop can still observe shutdown flags between slices).
    Raises :class:`~repro.errors.DistTimeoutError` when the budget runs
    out; ``EOFError``/``OSError`` from a dead peer propagate to the
    caller, which owns the requeue decision.
    """
    if deadline_s is not None and deadline_s <= 0:
        raise DistTimeoutError(
            "deadline expired before the peer sent anything"
        )
    limit = None if deadline_s is None else time.monotonic() + deadline_s
    while True:
        remaining = None if limit is None else limit - time.monotonic()
        if remaining is not None and remaining <= 0:
            raise DistTimeoutError(
                f"peer sent nothing within the {deadline_s:.3g}s deadline"
            )
        slice_s = (
            POLL_SLICE_S
            if remaining is None
            else min(POLL_SLICE_S, remaining)
        )
        if conn.poll(slice_s):
            return conn.recv()


def check_message(message, expected_kind: str) -> tuple:
    """Assert one message's kind, with a protocol-mismatch error."""
    if not isinstance(message, tuple) or not message:
        raise DistError(
            f"malformed wire message {message!r} (expected a non-empty "
            "tuple)"
        )
    if message[0] != expected_kind:
        raise DistError(
            f"expected a {expected_kind!r} message, got {message[0]!r}"
        )
    return message
