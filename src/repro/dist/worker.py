"""The repro.dist worker agent: one socket, shard specs in, lane
blocks out.

``python -m repro.dist.worker --bind HOST:PORT`` starts an agent that
accepts dispatcher connections (one at a time — a dispatcher holds one
connection per agent for a whole campaign), rebuilds each received
:class:`~repro.parallel.spec.ShardSpec` into its sub-ensemble
worker-side (never a shipped live model), executes it through the same
:func:`repro.parallel.blocks.iter_shard_blocks` generator the local
executor uses, and streams every lane block back as soon as it exists
— a chunked shard never materialises its full result on either side of
the socket.

:class:`WorkerAgent` is also usable in-process (``start()`` runs the
accept loop on a daemon thread), which is how the test suite and the
link-overhead probe spin up localhost fleets without subprocesses.
"""

from __future__ import annotations

import logging
import socket
import threading
import traceback

from multiprocessing import AuthenticationError
from multiprocessing.connection import Listener

from repro.dist.protocol import (
    DEFAULT_AUTHKEY,
    MSG_BLOCK,
    MSG_DONE,
    MSG_ECHO,
    MSG_ERROR,
    MSG_PING,
    MSG_PONG,
    MSG_RUN,
    MSG_SHUTDOWN,
    PROTOCOL_VERSION,
    format_address,
    recv_message,
    send_message,
)
from repro.parallel.blocks import iter_shard_blocks

_log = logging.getLogger(__name__)


class WorkerAgent:
    """One dispatchable execution agent bound to a TCP address.

    ``port=0`` binds an ephemeral port; read the actual address back
    from :attr:`address` (the CLI prints it, so orchestration scripts
    can scrape it from the first stdout line).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        authkey: bytes = DEFAULT_AUTHKEY,
    ) -> None:
        self._listener = Listener((host, port), family="AF_INET", authkey=authkey)
        # Cached at bind time: the listener forgets its address on
        # close, and stop() must stay idempotent.
        self._address = self._listener.address
        self._closed = threading.Event()
        self._thread: threading.Thread | None = None
        self._conn_lock = threading.Lock()
        self._active_conn = None

    @property
    def address(self) -> str:
        """The bound ``"host:port"`` (ephemeral port resolved)."""
        return format_address(self._address)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "WorkerAgent":
        """Serve on a daemon thread (in-process fleets for tests).

        Idempotent: a second call while the serve thread is alive is a
        no-op, so ``with WorkerAgent() as agent`` composes with an
        explicit ``start()``.
        """
        if self._thread is not None and self._thread.is_alive():
            return self
        self._thread = threading.Thread(
            target=self.serve_forever, name=f"repro-dist-{self.address}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting and drop the active connection."""
        self._closed.set()
        with self._conn_lock:
            conn = self._active_conn
            self._active_conn = None
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        # Closing a listening socket does not wake an accept() blocked
        # in another thread; poke one throwaway connection in so the
        # serve loop observes the closed flag promptly.
        try:
            poke = socket.create_connection(self._address, timeout=1.0)
            poke.close()
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already torn down
            pass
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "WorkerAgent":
        # A bound-but-unserved listener accepts TCP connects into the
        # backlog and then never answers the authkey handshake — a
        # client would block forever — so entering the context serves.
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- serving -----------------------------------------------------------

    def serve_forever(self) -> None:
        """Accept → handle, until :meth:`stop` closes the listener."""
        while not self._closed.is_set():
            try:
                conn = self._listener.accept()
            except (OSError, EOFError, AuthenticationError):
                # Listener closed (stop()), or a client failed the
                # authkey handshake — keep serving in the latter case.
                if self._closed.is_set():
                    return
                continue
            with self._conn_lock:
                self._active_conn = conn
            try:
                self._handle(conn)
            finally:
                with self._conn_lock:
                    self._active_conn = None
                try:
                    conn.close()
                except OSError:  # pragma: no cover - already torn down
                    pass

    def _handle(self, conn) -> None:
        """One dispatcher connection: request loop until it hangs up."""
        while not self._closed.is_set():
            try:
                message = recv_message(conn, None)
            except (EOFError, OSError):
                return
            kind = message[0]
            if kind == MSG_PING:
                send_message(conn, (MSG_PONG, PROTOCOL_VERSION))
            elif kind == MSG_ECHO:
                send_message(conn, (MSG_ECHO, message[1]))
            elif kind == MSG_RUN:
                _, digest, spec = message
                self._run(conn, digest, spec)
            elif kind == MSG_SHUTDOWN:
                self._closed.set()
                try:
                    self._listener.close()
                except OSError:  # pragma: no cover - already torn down
                    pass
                return
            else:
                send_message(
                    conn, (MSG_ERROR, None, f"unknown message kind {kind!r}")
                )

    def _run(self, conn, digest: str, spec) -> None:
        """Execute one shard spec, streaming its lane blocks back.

        Worker-side exceptions travel as ``("error", ...)`` messages —
        a failed rebuild or a family-schema error must reach the
        dispatcher as a campaign error, not a silent hang.  A broken
        pipe mid-stream just ends the connection; the dispatcher
        requeues from its side.
        """
        n_blocks = 0
        try:
            for block in iter_shard_blocks(spec):
                send_message(conn, (MSG_BLOCK, digest, block))
                n_blocks += 1
            send_message(conn, (MSG_DONE, digest, n_blocks))
        except (EOFError, OSError):
            raise
        except Exception as exc:  # noqa: BLE001 - forwarded to dispatcher
            _log.warning("shard %s failed worker-side: %s", digest[:12], exc)
            try:
                send_message(
                    conn,
                    (
                        MSG_ERROR,
                        digest,
                        f"{type(exc).__name__}: {exc}\n"
                        + traceback.format_exc(limit=8),
                    ),
                )
            except (EOFError, OSError):  # pragma: no cover - peer gone too
                pass


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry: ``python -m repro.dist.worker --bind HOST:PORT``."""
    import argparse

    from repro.dist.protocol import parse_address

    parser = argparse.ArgumentParser(
        prog="python -m repro.dist.worker",
        description="Serve repro shard specs over one TCP socket.",
    )
    parser.add_argument(
        "--bind",
        default="127.0.0.1:0",
        help="HOST:PORT to listen on (port 0: ephemeral, printed on start)",
    )
    parser.add_argument(
        "--authkey",
        default=None,
        help="connection authkey (default: the library-wide default)",
    )
    args = parser.parse_args(argv)
    host, port = parse_address(args.bind)
    authkey = (
        DEFAULT_AUTHKEY if args.authkey is None else args.authkey.encode()
    )
    agent = WorkerAgent(host=host, port=port, authkey=authkey)
    # The scrape-able contract: first stdout line names the bound
    # address (ephemeral ports resolved), nothing else precedes it.
    print(f"repro-dist worker listening on {agent.address}", flush=True)
    try:
        agent.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    finally:
        agent.stop()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
