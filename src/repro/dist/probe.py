"""Link-overhead measurement for multi-host planning.

The planner prices a remote shard as *compute on that host* plus the
cost of moving the request out and the result blocks back
(:func:`repro.sched.planner.enumerate_candidates`'s
``link_overhead_s``).  That link cost is measured, not guessed:
:func:`probe_link_overhead` round-trips a representative payload
through a worker agent's ``echo`` handler and reports the median
wall-clock seconds — pickling, both socket directions, and unpickling
included, because every dispatched shard pays all of them.
"""

from __future__ import annotations

import statistics
import time
from multiprocessing import AuthenticationError
from multiprocessing.connection import Client

from repro.dist.protocol import (
    DEFAULT_AUTHKEY,
    MSG_ECHO,
    parse_address,
    recv_message,
    send_message,
)
from repro.errors import DistError, ParameterError

#: Default probe payload: roughly one small lane block's pickle.
DEFAULT_PAYLOAD_BYTES = 64 * 1024


def probe_link_overhead(
    address: str,
    *,
    authkey: bytes = DEFAULT_AUTHKEY,
    payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
    repeats: int = 5,
    timeout_s: float = 5.0,
) -> float:
    """Median round-trip seconds to one worker agent.

    Each repeat sends ``payload_bytes`` of data through the agent's
    ``echo`` handler and times the full round trip under ``timeout_s``.
    The median resists one-off scheduler hiccups; raising ``repeats``
    tightens it.  Unreachable agents raise
    :class:`~repro.errors.DistError` — the caller decides whether an
    unprobeable host stays in the candidate fleet.
    """
    if repeats < 1:
        raise ParameterError(f"repeats must be >= 1, got {repeats}")
    if payload_bytes < 1:
        raise ParameterError(
            f"payload_bytes must be >= 1, got {payload_bytes}"
        )
    try:
        conn = Client(
            parse_address(address), family="AF_INET", authkey=authkey
        )
    except (OSError, EOFError, AuthenticationError) as exc:
        raise DistError(
            f"cannot probe link overhead: worker {address} unreachable "
            f"({exc})"
        )
    payload = b"\x00" * payload_bytes
    try:
        samples = []
        for _ in range(repeats):
            started = time.perf_counter()
            send_message(conn, (MSG_ECHO, payload))
            reply = recv_message(conn, timeout_s)
            if reply[0] != MSG_ECHO or reply[1] != payload:
                raise DistError(
                    f"worker {address} echoed a corrupted probe payload"
                )
            samples.append(time.perf_counter() - started)
        return statistics.median(samples)
    finally:
        conn.close()


def probe_hosts(
    hosts,
    *,
    authkey: bytes = DEFAULT_AUTHKEY,
    payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
    repeats: int = 5,
    timeout_s: float = 5.0,
) -> "dict[str, float]":
    """Link overhead per reachable host; unreachable hosts are omitted
    (their absence, not an exception, is the planning signal)."""
    overheads: dict[str, float] = {}
    for address in hosts:
        try:
            overheads[address] = probe_link_overhead(
                address,
                authkey=authkey,
                payload_bytes=payload_bytes,
                repeats=repeats,
                timeout_s=timeout_s,
            )
        except DistError:
            continue
    return overheads
