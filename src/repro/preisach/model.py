"""Discrete Preisach model: a weighted grid of relay hysterons.

The Preisach half-plane ``alpha >= beta`` is discretised into an
``n x n`` cell grid over ``[-h_sat, +h_sat]``; each valid cell carries a
non-negative weight and one relay.  A rising field switches **up**
every relay with ``alpha_threshold <= H``; a falling field switches
**down** every relay with ``beta_threshold >= H``.  The magnetisation
is the weighted relay sum; positive saturation equals ``sum(w)``.
Identification places the thresholds on the cell *edges* so that
node-field reversal curves are reproduced exactly (no half-cell bias).

The update is vectorised over the grid (a few thousand relays update in
microseconds); no staircase bookkeeping is needed at this scale.
"""

from __future__ import annotations

import math

import numpy as np

from repro.constants import MU0
from repro.errors import ParameterError


class PreisachModel:
    """Scalar discrete Preisach model.

    Parameters
    ----------
    weights:
        ``(n, n)`` array; entry ``[i, j]`` weighs the relay with
        up-threshold ``alpha_thresholds[i]`` and down-threshold
        ``beta_thresholds[j]``.  Entries with ``beta > alpha`` must be 0.
    alpha_thresholds, beta_thresholds:
        Cell-centre threshold grids [A/m], strictly increasing.
    m_sat:
        Physical magnetisation scale [A/m]: ``M = m_sat * m_norm`` where
        ``m_norm`` is the weighted relay sum (identification arranges
        ``sum(weights)`` to equal the source model's normalised
        saturation value).
    """

    def __init__(
        self,
        weights: np.ndarray,
        alpha_thresholds: np.ndarray,
        beta_thresholds: np.ndarray,
        m_sat: float,
    ) -> None:
        weights = np.asarray(weights, dtype=float)
        alpha_thresholds = np.asarray(alpha_thresholds, dtype=float)
        beta_thresholds = np.asarray(beta_thresholds, dtype=float)
        n = len(alpha_thresholds)
        if weights.shape != (n, len(beta_thresholds)):
            raise ParameterError(
                f"weights shape {weights.shape} does not match grids "
                f"({n}, {len(beta_thresholds)})"
            )
        if np.any(np.diff(alpha_thresholds) <= 0) or np.any(
            np.diff(beta_thresholds) <= 0
        ):
            raise ParameterError("threshold grids must strictly increase")
        if np.any(weights < 0.0):
            raise ParameterError("Preisach weights must be non-negative")
        if not math.isfinite(m_sat) or m_sat <= 0.0:
            raise ParameterError(f"m_sat must be > 0, got {m_sat!r}")

        valid = (
            alpha_thresholds[:, None] >= beta_thresholds[None, :]
        )  # alpha >= beta half-plane
        if np.any(weights[~valid] != 0.0):
            raise ParameterError(
                "weights outside the alpha >= beta half-plane must be zero"
            )
        self.weights = weights
        self.alpha_thresholds = alpha_thresholds
        self.beta_thresholds = beta_thresholds
        self.m_sat = float(m_sat)
        self._valid = valid
        self._total_weight = float(np.sum(weights))
        if self._total_weight <= 0.0:
            raise ParameterError("total Preisach weight must be positive")

        self._state = np.zeros_like(weights)  # relay values in {-1, 0(+invalid), +1}
        self._h = 0.0
        self.reset()

    # -- state ---------------------------------------------------------------

    def reset(self) -> None:
        """Demagnetised staircase: relays with ``alpha + beta < 0`` up.

        This is the AC-demagnetised state: the main diagonal of history
        has been erased by a decaying field, leaving the anti-diagonal
        interface.
        """
        up = (self.alpha_thresholds[:, None] + self.beta_thresholds[None, :]) < 0.0
        self._state = np.where(up, 1.0, -1.0) * self._valid
        self._h = 0.0

    def saturate(self, positive: bool = True) -> None:
        """Jump to positive (or negative) saturation."""
        value = 1.0 if positive else -1.0
        self._state = value * self._valid
        self._h = (
            float(self.alpha_thresholds[-1])
            if positive
            else float(self.beta_thresholds[0])
        )

    def snapshot(self) -> tuple:
        """Opaque copy of the relay state and applied field."""
        return (self._state.copy(), self._h)

    def restore(self, snap: tuple) -> None:
        """Return to a previously taken :meth:`snapshot` exactly."""
        state, h = snap
        self._state = state.copy()
        self._h = float(h)

    def clone(self) -> "PreisachModel":
        """Independent copy sharing the (immutable) weights and grids."""
        other = PreisachModel(
            self.weights,
            self.alpha_thresholds,
            self.beta_thresholds,
            self.m_sat,
        )
        other.restore(self.snapshot())
        return other

    @property
    def h(self) -> float:
        return self._h

    @property
    def m_normalised(self) -> float:
        """Weighted relay sum (normalised magnetisation, m = M/m_sat).

        Deliberately *not* divided by the total weight: identification
        sets ``sum(weights)`` to the normalised magnetisation at
        positive saturation (e.g. ~0.9 for the paper's JA parameters at
        20 kA/m), and the relay sum then lands exactly on the source
        model's branch values.
        """
        return float(np.sum(self.weights * self._state))

    @property
    def m(self) -> float:
        """Magnetisation [A/m]."""
        return self.m_normalised * self.m_sat

    @property
    def b(self) -> float:
        """Flux density ``mu0 * (H + M)`` [T]."""
        return MU0 * (self._h + self.m)

    # -- driving ---------------------------------------------------------------

    def apply_field(self, h: float) -> float:
        """Apply a field value [A/m]; returns the new B [T].

        Monotone sub-paths need no sub-sampling: relays switch by
        threshold comparison, so one call with the endpoint is exact for
        a monotone excursion (the wiping-out property).
        """
        if not math.isfinite(h):
            raise ParameterError(f"h must be finite, got {h!r}")
        if h > self._h:
            switch_up = self.alpha_thresholds <= h
            rows = np.where(switch_up)[0]
            if len(rows):
                self._state[rows, :] = np.where(
                    self._valid[rows, :], 1.0, 0.0
                )
        elif h < self._h:
            switch_down = self.beta_thresholds >= h
            cols = np.where(switch_down)[0]
            if len(cols):
                self._state[:, cols] = np.where(
                    self._valid[:, cols], -1.0, 0.0
                )
        self._h = float(h)
        return self.b

    def apply_field_series(self, h_values) -> np.ndarray:
        """Apply a field sequence; returns B [T] after each value."""
        return np.array([self.apply_field(float(h)) for h in h_values])

    def trace(self, h_values) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Apply a field series; returns ``(h, m, b)`` arrays."""
        h_arr = np.asarray(list(h_values), dtype=float)
        m_out = np.empty_like(h_arr)
        b_out = np.empty_like(h_arr)
        for i, h in enumerate(h_arr):
            b_out[i] = self.apply_field(float(h))
            m_out[i] = self.m
        return h_arr, m_out, b_out

    @property
    def relay_count(self) -> int:
        return int(np.sum(self._valid))

    def __repr__(self) -> str:
        return (
            f"PreisachModel({self.relay_count} relays, "
            f"h={self._h:.6g}, m={self.m_normalised:.4f})"
        )
