"""Discrete Preisach hysteresis model (comparison substrate).

The Preisach model is the other classical description of ferromagnetic
hysteresis: a weighted continuum of rectangular relays (hysterons) with
up/down switching thresholds ``alpha >= beta``.  It is included as a
cross-model baseline: identified from the Jiles-Atherton model's
first-order reversal curves (FORCs) via the Everett function, it should
predict the JA model's minor loops — and where it does not, the
difference is a property of the models, not of the discretisation.

* :mod:`repro.preisach.model` — the discrete relay grid with staircase
  state updates;
* :mod:`repro.preisach.identification` — FORC generation from a JA
  model and Everett-difference weight extraction.
"""

from repro.preisach.identification import (
    EverettMap,
    adaptive_nodes,
    everett_from_ja,
    identify_ensemble_from_ja,
    identify_from_ja,
    weights_from_everett,
)
from repro.preisach.model import PreisachModel

__all__ = [
    "EverettMap",
    "PreisachModel",
    "adaptive_nodes",
    "everett_from_ja",
    "identify_ensemble_from_ja",
    "identify_from_ja",
    "weights_from_everett",
]
