"""Preisach identification from first-order reversal curves (FORCs).

The Everett function ``E(alpha, beta)`` is the half-difference between
the ascending major branch at ``alpha`` and the first-order reversal
curve that turns around at ``alpha`` and descends to ``beta``::

    E(alpha, beta) = (m_asc(alpha) - m_forc(alpha -> beta)) / 2

For a true Preisach material ``E`` equals the integral of the weight
density over the triangle ``{beta <= b <= a <= alpha}``, so cell
weights follow from the mixed second difference of ``E`` on the grid.
Generating the FORCs from the timeless JA model and feeding the
resulting weights to :class:`repro.preisach.model.PreisachModel` yields
a Preisach model *identified against JA* — the cross-model experiment
EXP-X4 measures how well it predicts JA behaviour it was not fitted to
(minor loops).

JA is not exactly a Preisach material, so small negative second
differences occur; they are clipped to zero and the clipped mass is
reported (a few percent for the paper's parameters).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import TimelessJAModel
from repro.core.sweep import run_sweep
from repro.errors import ParameterError
from repro.ja.parameters import JAParameters
from repro.preisach.model import PreisachModel


@dataclass(frozen=True)
class EverettMap:
    """Everett function sampled on the node grid.

    ``values[i, j] = E(nodes[i], nodes[j])`` for ``nodes[j] <= nodes[i]``
    (0 elsewhere).
    """

    nodes: np.ndarray
    values: np.ndarray

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)


def adaptive_nodes(
    params: JAParameters,
    n_cells: int,
    h_sat: float,
    dhmax: float = 50.0,
) -> np.ndarray:
    """Threshold nodes at equal magnetisation quantiles.

    The intuition: a uniform grid wastes cells on the flat saturation
    tails while the steep region around +/-Hc stays under-resolved, so
    place nodes at equal increments of |dm| along the major branch
    (symmetrised for both polarities).

    Measured outcome (kept as a documented negative result, see
    EXP-X4): on the paper's JA parameters this *hurts* — the squeezed
    steep-region cells concentrate the JA model's non-Preisach negative
    Everett mass (clipped fraction grows from ~2% to ~10%) and the
    identified model gets worse everywhere.  ``everett_from_ja``
    therefore defaults to the uniform grid; this function remains for
    experimentation.
    """
    model = TimelessJAModel(params, dhmax=dhmax)
    run_sweep(model, [0.0, h_sat, -h_sat, h_sat])
    descent = run_sweep(model, [h_sat, -h_sat], reset=False)
    h_branch = descent.h[::-1]  # ascending order for interpolation
    m_branch = (descent.m / params.m_sat)[::-1]
    slope = np.abs(np.gradient(m_branch, h_branch))
    if not np.any(slope > 0.0):
        raise ParameterError("descending branch shows no magnetisation change")

    # Symmetrise: alpha thresholds need resolution where the *ascending*
    # branch is steep (+Hc side), beta thresholds where the descending
    # one is (-Hc side); for a symmetric loop the ascending density is
    # the mirrored descending one.  A small uniform floor keeps the
    # saturation tails from collapsing to zero-width cells.
    grid = np.linspace(-h_sat, h_sat, 4001)
    density = np.interp(grid, h_branch, slope)
    density = density + density[::-1]
    density += 0.05 * np.max(density)
    cumulative = np.concatenate([[0.0], np.cumsum(
        0.5 * (density[1:] + density[:-1]) * np.diff(grid)
    )])
    targets = np.linspace(0.0, cumulative[-1], n_cells + 1)
    nodes = np.interp(targets, cumulative, grid)
    nodes[0] = -h_sat
    nodes[-1] = h_sat
    # Enforce strict monotonicity (degenerate only if n_cells is huge).
    min_gap = (2.0 * h_sat) / (100.0 * n_cells)
    for i in range(1, len(nodes)):
        if nodes[i] <= nodes[i - 1] + min_gap:
            nodes[i] = nodes[i - 1] + min_gap
    nodes[-1] = max(nodes[-1], h_sat)
    return nodes


def everett_from_ja(
    params: JAParameters,
    n_cells: int = 40,
    h_sat: float = 20e3,
    dhmax: float = 50.0,
    nodes: np.ndarray | None = None,
) -> EverettMap:
    """Measure the Everett map of a JA parameter set via FORCs.

    One FORC per alpha node: saturate negative, ascend the major branch
    to ``alpha``, then descend; the descent *is* the FORC and is sampled
    at every beta node on the way down.  ``nodes`` defaults to a uniform
    grid (measured to beat the adaptive alternative — see
    :func:`adaptive_nodes`).

    All FORCs are measured in **one batched run**: each alpha node is a
    lane of a :class:`~repro.batch.engine.BatchTimelessModel` driven by
    its own per-lane waveform (shorter lanes padded by holding the final
    field, a no-op for the event discretiser).  Every lane is bitwise
    identical to the scalar sweep loop this replaces — same driver
    samples, same kernel operations — so the identified weights are
    unchanged while the measurement runs one vectorised pass instead of
    ``n_cells + 1`` Python sweeps.
    """
    if n_cells < 4:
        raise ParameterError(f"n_cells must be >= 4, got {n_cells}")
    if h_sat <= 0.0:
        raise ParameterError(f"h_sat must be > 0, got {h_sat!r}")
    if nodes is None:
        nodes = np.linspace(-h_sat, h_sat, n_cells + 1)
    else:
        nodes = np.asarray(nodes, dtype=float)
        if len(nodes) != n_cells + 1:
            raise ParameterError(
                f"need {n_cells + 1} nodes, got {len(nodes)}"
            )
        if np.any(np.diff(nodes) <= 0):
            raise ParameterError("nodes must strictly increase")
    n_nodes = len(nodes)
    values = np.zeros((n_nodes, n_nodes))

    from repro.batch.engine import BatchTimelessModel
    from repro.core.sweep import waypoint_samples

    # Per-lane waveforms: the scalar loop's exact driver samples —
    # ascent [0, +sat, -sat, alpha], then (for alpha above the bottom
    # node) the descent [alpha, bottom]; run_sweep's default driver step
    # is dhmax / 4.  The descent's leading `alpha` sample repeats the
    # ascent's last one, exactly like the scalar `reset=False` re-walk.
    driver_step = dhmax / 4.0
    bottom = float(nodes[0])
    ascents = []
    descents = []
    for i in range(n_nodes):
        alpha = float(nodes[i])
        ascents.append(
            waypoint_samples([0.0, h_sat, -h_sat, alpha], driver_step)
        )
        descents.append(
            waypoint_samples([alpha, bottom], driver_step)
            if i > 0
            else np.empty(0)
        )
    lane_lengths = [len(a) + len(d) for a, d in zip(ascents, descents)]
    samples = max(lane_lengths)
    h_matrix = np.empty((samples, n_nodes))
    for i, (ascent, descent) in enumerate(zip(ascents, descents)):
        lane = np.concatenate([ascent, descent])
        h_matrix[: len(lane), i] = lane
        h_matrix[len(lane) :, i] = lane[-1]  # hold: no-op padding

    batch = BatchTimelessModel([params] * n_nodes, dhmax=dhmax)
    batch.reset(h_initial=h_matrix[0])
    m_total = np.empty((samples, n_nodes))
    for s in range(samples):
        batch.step(h_matrix[s])
        m_total[s] = batch.state.m_total
    # Physical magnetisation exactly as the scalar sweep records it
    # (model.m = m_total * m_sat), so the later /m_sat reproduces the
    # scalar FORC values bit for bit.
    m_phys = m_total * params.m_sat

    for i in range(n_nodes):
        m_alpha = m_total[len(ascents[i]) - 1, i]
        if i == 0:
            # alpha at the bottom node: FORC degenerates to a point.
            values[i, i] = 0.0
            continue
        start = len(ascents[i])
        stop = start + len(descents[i])
        h_desc = h_matrix[start:stop, i][::-1]
        m_desc = m_phys[start:stop, i][::-1] / params.m_sat
        for j in range(i + 1):
            beta = float(nodes[j])
            m_forc = float(np.interp(beta, h_desc, m_desc))
            values[i, j] = 0.5 * (m_alpha - m_forc)
    return EverettMap(nodes=nodes, values=values)


def weights_from_everett(
    everett: EverettMap,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """Cell weights as the mixed second difference of the Everett map.

    Returns ``(weights, alpha_thresholds, beta_thresholds, clipped_fraction)``
    where ``clipped_fraction`` is the negative mass (JA's departure from
    Preisach behaviour) that was clipped, as a fraction of the total.
    """
    nodes = everett.nodes
    e = everett.values
    n = len(nodes) - 1
    weights = np.zeros((n, n))
    for i in range(1, n + 1):  # alpha cell between nodes[i-1], nodes[i]
        for j in range(i):  # beta cell between nodes[j], nodes[j+1]
            w = (
                e[i, j]
                - e[i - 1, j]
                - e[i, j + 1]
                + e[i - 1, j + 1]
            )
            weights[i - 1, j] = w
    negative_mass = float(-np.sum(weights[weights < 0.0]))
    total_mass = float(np.sum(np.abs(weights)))
    weights = np.clip(weights, 0.0, None)
    clipped = negative_mass / total_mass if total_mass > 0 else 0.0
    # Relay thresholds at the cell EDGES: up-switch at the cell's upper
    # alpha node, down-switch at its lower beta node.  A sweep that
    # stops exactly on a node then switches exactly the cells inside
    # the Everett triangle — node-field FORCs are reproduced with no
    # half-cell bias.
    alpha_thresholds = nodes[1:].copy()
    beta_thresholds = nodes[:-1].copy()
    return weights, alpha_thresholds, beta_thresholds, clipped


def identify_from_ja(
    params: JAParameters,
    n_cells: int = 160,
    h_sat: float = 20e3,
    dhmax: float = 50.0,
) -> tuple[PreisachModel, float]:
    """Build a Preisach model identified against a JA parameter set.

    Returns ``(model, clipped_fraction)``.
    """
    everett = everett_from_ja(
        params, n_cells=n_cells, h_sat=h_sat, dhmax=dhmax
    )
    weights, alpha_thresholds, beta_thresholds, clipped = weights_from_everett(
        everett
    )
    model = PreisachModel(
        weights=weights,
        alpha_thresholds=alpha_thresholds,
        beta_thresholds=beta_thresholds,
        m_sat=params.m_sat,
    )
    return model, clipped


def identify_ensemble_from_ja(
    params_seq,
    n_cells: int = 40,
    h_sat: float = 20e3,
    dhmax: float = 50.0,
):
    """Identify one Preisach core per JA parameter set and stack them.

    Returns ``(batch, clipped_fractions)`` where ``batch`` is a
    :class:`repro.batch.preisach.BatchPreisachModel` with one lane per
    input parameter set (all sharing the ``n_cells`` grid shape, as the
    lockstep relay tensor requires) and ``clipped_fractions`` records
    each lane's clipped non-Preisach Everett mass.  Each identification
    internally measures its FORC family as one batched run.
    """
    from repro.batch.preisach import BatchPreisachModel

    params_list = list(params_seq)
    if not params_list:
        raise ParameterError("need at least one parameter set to identify")
    models = []
    clipped_fractions = []
    for params in params_list:
        model, clipped = identify_from_ja(
            params, n_cells=n_cells, h_sat=h_sat, dhmax=dhmax
        )
        models.append(model)
        clipped_fractions.append(clipped)
    return (
        BatchPreisachModel.from_scalar_models(models),
        np.array(clipped_fractions),
    )
