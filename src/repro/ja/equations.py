"""Algebraic forms of the Jiles-Atherton equations (Eq. 1 of the paper).

Everything here works on the *normalised* magnetisation ``m = M / Msat``
exactly as the published SystemC code does::

    He     = H + alpha * ms * mtotal
    man    = Lang_mod(He / a)
    mrev   = c * man / (1 + c)
    mtotal = mrev + mirr
    dmirr/dH = (man - mtotal) / ((1 + c) * (delta*k - alpha*ms*(man - mtotal)))

Expanding ``mtotal = c/(1+c)*man + mirr`` shows the total slope is the
standard Eq. 1 of the paper,

    dm/dH = (1/(1+c)) * (man - m) / (delta*k - alpha*ms*(man - m))
          + (c/(1+c)) * dman/dH,

so the functions below are shared by every implementation in the repo:
the timeless core, the SystemC transliteration, the VHDL-AMS
architectures, the time-domain baselines and the vectorised batch
engine.

**Ufunc safety.**  Every function accepts either scalars or NumPy
arrays for the field/magnetisation operands *and* for the parameter
attributes (``params`` may be a struct-of-arrays such as
:class:`repro.batch.params.BatchJAParameters`).  Scalar inputs keep the
original pure-``float`` fast path — including its exact branch
structure — so scalar trajectories are bitwise identical to arrays
element-wise; the pure step kernel (:mod:`repro.core.kernel`) and the
batch ensemble engine (:mod:`repro.batch`) rely on this.

**Backend threading.**  The array branches evaluate through an
injectable ufunc namespace ``xp`` (default: the ``numpy`` module — the
exact reference backend of :mod:`repro.backend`, for which the
threading changes no bits).  Scalar branches always use NumPy's own
kernels: that is the 1-ulp parity rule the bitwise lane contract is
built on.
"""

from __future__ import annotations

import math

import numpy as np

from repro.constants import MU0
from repro.ja.anhysteretic import Anhysteretic
from repro.ja.parameters import JAParameters


def effective_field(params: JAParameters, h: float, m: float) -> float:
    """Weiss effective field ``He = H + alpha * Msat * m`` [A/m].

    ``m`` is normalised; ``alpha * Msat * m`` is the published
    ``alpha * ms * mtotal`` mean-field term.
    """
    return h + params.alpha * params.m_sat * m


def reversible_magnetisation(params: JAParameters, m_an: float) -> float:
    """Reversible component ``mrev = c * man / (1 + c)`` (normalised).

    This is the algebraic split used by the published code: the
    irreversible state variable then carries the remaining
    ``mirr = m - mrev``.
    """
    return params.c * m_an / (1.0 + params.c)


def irreversible_slope(
    params: JAParameters,
    m_an: float,
    m_total: float,
    delta: float,
    xp=np,
) -> float:
    """Raw irreversible slope ``dmirr/dH`` before any guard is applied.

    Implements the published expression

        dmdh1 = deltam / ((1+c) * (dk - alpha*ms*deltam))

    with ``deltam = man - mtotal`` and ``dk = delta * k``.  ``delta`` must
    be +1 (rising field) or -1 (falling field).  The value may be
    negative or even infinite near ``dk == alpha*ms*deltam``; the guards
    that make it physical live in :mod:`repro.core.slope` so that the
    stability experiments can exercise the *unguarded* form too.
    """
    delta_m = m_an - m_total
    denominator = (1.0 + params.c) * (
        delta * params.k - params.alpha * params.m_sat * delta_m
    )
    if np.ndim(denominator) == 0 and np.ndim(delta_m) == 0:
        if denominator == 0.0:
            return math.inf if delta_m > 0 else (-math.inf if delta_m < 0 else 0.0)
        return delta_m / denominator
    delta_m = xp.asarray(delta_m, dtype=float)
    denominator = xp.asarray(denominator, dtype=float)
    singular = denominator == 0.0
    with np.errstate(divide="ignore", invalid="ignore"):
        regular = delta_m / xp.where(singular, 1.0, denominator)
    at_pole = xp.where(delta_m > 0.0, math.inf, xp.where(delta_m < 0.0, -math.inf, 0.0))
    return xp.where(singular, at_pole, regular)


def anhysteretic_slope_term(
    params: JAParameters,
    anhysteretic: Anhysteretic,
    h_effective: float,
) -> float:
    """Reversible slope term ``(c/(1+c)) * dman/dHe`` of Eq. 1.

    Note the derivative is taken with respect to the *effective* field;
    the published incremental code realises this term implicitly by
    recomputing ``mrev`` from the updated ``man`` each event.
    """
    return params.c / (1.0 + params.c) * anhysteretic.derivative(h_effective)


def magnetisation_slope_simplified(
    params: JAParameters,
    anhysteretic: Anhysteretic,
    h: float,
    m: float,
    delta: float,
) -> float:
    """Eq. 1 exactly as printed: irreversible term plus
    ``(c/(1+c)) * dMan/dHe``, with no mean-field feedback correction.

    This simplified form is what the historical time-domain
    implementations transliterate, so the baselines integrate it.
    """
    h_eff = effective_field(params, h, m)
    m_an = anhysteretic.value(h_eff)
    irreversible = irreversible_slope(params, m_an, m, delta)
    reversible = anhysteretic_slope_term(params, anhysteretic, h_eff)
    return irreversible + reversible


def magnetisation_slope(
    params: JAParameters,
    anhysteretic: Anhysteretic,
    h: float,
    m: float,
    delta: float,
    clamp_irreversible: bool = False,
    xp=np,
) -> float:
    """Self-consistent total slope ``dm/dH`` (normalised).

    With ``clamp_irreversible=True`` the irreversible term is clamped
    non-negative *before* entering the total — matching the paper's
    guard, which acts on ``dmirr/dH`` only while the reversible
    component keeps responding (the anhysteretic can retrace
    immediately after a reversal).  This guarded form is the continuum
    limit of the published discrete scheme and what the high-accuracy
    reference integrates.

    The published incremental scheme re-evaluates
    ``mrev = c*man(He)/(1+c)`` with ``He = H + alpha*Msat*m`` at every
    event, so its continuum limit satisfies the *algebraic* relation
    ``m = c/(1+c)*man(He(m)) + mirr``.  Differentiating yields

        dm/dH = (f_irr + (c/(1+c))*man'(He))
                / (1 - alpha*Msat*(c/(1+c))*man'(He))

    — the classic full Jiles-Atherton slope with the mean-field feedback
    denominator that Eq. 1 of the paper drops.  This is the equation the
    high-accuracy reference integrates; the difference against
    :func:`magnetisation_slope_simplified` is a few percent at the loop
    knee for the paper's parameters.
    """
    h_eff = effective_field(params, h, m)
    m_an = anhysteretic.value(h_eff)
    irreversible = irreversible_slope(params, m_an, m, delta, xp=xp)
    reversible = anhysteretic_slope_term(params, anhysteretic, h_eff)
    feedback = params.alpha * params.m_sat * reversible
    denominator = 1.0 - feedback
    if np.ndim(denominator) == 0 and np.ndim(irreversible) == 0:
        if clamp_irreversible and irreversible < 0.0:
            irreversible = 0.0
        if denominator <= 0.0:
            # Mean-field runaway (non-physical parameterisation); fall back
            # to the simplified slope rather than produce a negative pole.
            return irreversible + reversible
        return (irreversible + reversible) / denominator
    irreversible = xp.asarray(irreversible, dtype=float)
    if clamp_irreversible:
        irreversible = xp.where(irreversible < 0.0, 0.0, irreversible)
    total = irreversible + reversible
    runaway = denominator <= 0.0
    with np.errstate(divide="ignore", invalid="ignore"):
        regular = total / xp.where(runaway, 1.0, denominator)
    return xp.where(runaway, total, regular)


def flux_density(params: JAParameters, h: float, m: float) -> float:
    """Flux density ``B = mu0 * (H + Msat * m)`` [T].

    The published code multiplies by the core area as well (returning
    flux, with area = 1 in the demonstration); area belongs to the
    component layer (:mod:`repro.magnetics`), not to the material, so it
    is kept out of this function.
    """
    return MU0 * (h + params.m_sat * m)


def magnetisation_from_flux(params: JAParameters, h: float, b: float) -> float:
    """Invert :func:`flux_density`: recover normalised ``m`` from ``B``."""
    return (b / MU0 - h) / params.m_sat
