"""High-accuracy reference solution of the Jiles-Atherton equation.

The accuracy experiments (EXP-T5) need ground truth to compare the
timeless Forward-Euler-in-H discretisation against.  Within one monotone
segment of the applied field the direction factor ``delta`` is constant,
so Eq. 1 is a smooth scalar ODE in ``H`` and can be integrated to
near-machine precision with ``scipy.integrate.solve_ivp``.  A full sweep
is just the concatenation of such segments with the state carried across
the turning points — which is exactly where discontinuities live, and why
the segment boundaries are placed there.

Physical fidelity note: the raw JA slope can yield negative irreversible
terms after a field reversal (the well-known artefact the paper's guards
remove).  The reference applies the same clamp — to the *irreversible
term only*, exactly as the published ``Integral`` process does, while
the reversible (anhysteretic) component keeps responding — so both
schemes solve the same guarded model; the unguarded form is kept for the
stability experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.integrate import solve_ivp

from repro.errors import ParameterError
from repro.ja.anhysteretic import Anhysteretic, make_anhysteretic
from repro.ja.equations import flux_density, magnetisation_slope
from repro.ja.parameters import JAParameters


@dataclass(frozen=True)
class ReferenceSolution:
    """Dense reference trajectory along a waypoint field path.

    Attributes
    ----------
    h:
        Field samples [A/m], concatenated across monotone segments.
    m:
        Normalised magnetisation at each sample.
    b:
        Flux density [T] at each sample.
    segment_starts:
        Index into ``h`` where each monotone segment begins.
    """

    h: np.ndarray
    m: np.ndarray
    b: np.ndarray
    segment_starts: tuple[int, ...]

    def final_state(self) -> tuple[float, float]:
        """Return the last ``(h, m)`` pair of the trajectory."""
        return float(self.h[-1]), float(self.m[-1])


def _guarded_slope(
    params: JAParameters,
    anhysteretic: Anhysteretic,
    h: float,
    m: float,
    delta: float,
    clamp: bool,
) -> float:
    return magnetisation_slope(
        params, anhysteretic, h, m, delta, clamp_irreversible=clamp
    )


def solve_segment(
    params: JAParameters,
    anhysteretic: Anhysteretic,
    h_start: float,
    h_stop: float,
    m_start: float,
    samples: int = 200,
    rtol: float = 1e-10,
    atol: float = 1e-12,
    clamp_negative_slope: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Integrate one monotone field segment to high accuracy.

    Returns ``(h_samples, m_samples)`` including both endpoints.  The
    integration runs in H directly — the same independent variable the
    timeless scheme uses — so no time parametrisation error enters.
    """
    if samples < 2:
        raise ParameterError(f"samples must be >= 2, got {samples}")
    if h_stop == h_start:
        h_only = np.array([h_start, h_stop])
        return h_only, np.array([m_start, m_start])
    delta = 1.0 if h_stop > h_start else -1.0

    def rhs(h: float, m: np.ndarray) -> list[float]:
        return [
            _guarded_slope(
                params, anhysteretic, h, float(m[0]), delta, clamp_negative_slope
            )
        ]

    h_eval = np.linspace(h_start, h_stop, samples)
    result = solve_ivp(
        rhs,
        (h_start, h_stop),
        [m_start],
        method="LSODA",
        t_eval=h_eval,
        rtol=rtol,
        atol=atol,
    )
    if not result.success:
        raise ParameterError(
            f"reference integration failed on segment "
            f"[{h_start}, {h_stop}]: {result.message}"
        )
    return result.t, result.y[0]


def solve_waypoints(
    params: JAParameters,
    waypoints: Sequence[float],
    m_initial: float = 0.0,
    samples_per_segment: int = 200,
    anhysteretic: Anhysteretic | None = None,
    clamp_negative_slope: bool = True,
    rtol: float = 1e-10,
    atol: float = 1e-12,
) -> ReferenceSolution:
    """Integrate Eq. 1 along a piecewise-monotone field path.

    Parameters
    ----------
    waypoints:
        Field values [A/m] visited in order; each adjacent pair is one
        monotone segment (typically the vertices of a triangular sweep).
    m_initial:
        Normalised magnetisation at the first waypoint (0 = demagnetised).
    anhysteretic:
        Curve to use; defaults to the paper's modified Langevin with a2.
    """
    if len(waypoints) < 2:
        raise ParameterError("need at least two waypoints for a sweep")
    if anhysteretic is None:
        anhysteretic = make_anhysteretic(params)

    h_parts: list[np.ndarray] = []
    m_parts: list[np.ndarray] = []
    starts: list[int] = []
    m_current = float(m_initial)
    offset = 0
    for h_start, h_stop in zip(waypoints[:-1], waypoints[1:]):
        h_seg, m_seg = solve_segment(
            params,
            anhysteretic,
            float(h_start),
            float(h_stop),
            m_current,
            samples=samples_per_segment,
            rtol=rtol,
            atol=atol,
            clamp_negative_slope=clamp_negative_slope,
        )
        starts.append(offset)
        if h_parts:
            # Drop the duplicated junction sample.
            h_seg = h_seg[1:]
            m_seg = m_seg[1:]
        h_parts.append(h_seg)
        m_parts.append(m_seg)
        offset += len(h_seg)
        m_current = float(m_seg[-1])

    h_all = np.concatenate(h_parts)
    m_all = np.concatenate(m_parts)
    b_all = np.array([flux_density(params, h, m) for h, m in zip(h_all, m_all)])
    return ReferenceSolution(
        h=h_all, m=m_all, b=b_all, segment_starts=tuple(starts)
    )


def interpolate_on_segment(
    solution: ReferenceSolution,
    segment_index: int,
    h_query: np.ndarray,
) -> np.ndarray:
    """Interpolate the reference ``m`` on one monotone segment.

    Comparison code needs reference values at the exact H samples a
    discrete scheme produced; interpolation is only well defined within a
    monotone segment, hence the explicit segment index.
    """
    starts = list(solution.segment_starts) + [len(solution.h)]
    if not 0 <= segment_index < len(solution.segment_starts):
        raise ParameterError(
            f"segment_index {segment_index} out of range "
            f"(0..{len(solution.segment_starts) - 1})"
        )
    lo = starts[segment_index]
    hi = starts[segment_index + 1]
    h_seg = solution.h[lo:hi]
    m_seg = solution.m[lo:hi]
    if h_seg[0] > h_seg[-1]:
        h_seg = h_seg[::-1]
        m_seg = m_seg[::-1]
    return np.interp(h_query, h_seg, m_seg)
