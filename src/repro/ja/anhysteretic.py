"""Anhysteretic magnetisation curves and their derivatives.

The anhysteretic curve ``Man(He)`` is the hysteresis-free magnetisation a
material would reach at effective field ``He`` given unlimited thermal
relaxation.  The Jiles-Atherton model drags the actual magnetisation
towards it.  Three families are provided:

* :class:`LangevinAnhysteretic` — the classic
  ``L(x) = coth(x) - 1/x`` of the original 1984 paper, with the
  series-expanded small-``x`` branch needed for numerical robustness;
* :class:`ModifiedLangevinAnhysteretic` — the arctangent form
  ``(2/pi) * atan(x)`` of Wilson et al. used by the paper's SystemC code
  (``Lang_mod``);
* :class:`BrillouinAnhysteretic` — the quantum-mechanical Brillouin
  function, included as an extension point (the paper cites only the two
  above).

All curves are *normalised*: they return ``m_an = Man / Msat`` in
``(-1, 1)`` and their derivative with respect to the normalised argument.
This matches the published SystemC code, which carries magnetisation as
``mtotal = M / ms`` throughout.

**Ufunc safety.**  ``curve``/``curve_derivative``/``value``/``derivative``
accept scalars or NumPy arrays; the ``shape`` parameter itself may be an
array (one shape per ensemble member), which is how the batch engine
(:mod:`repro.batch`) evaluates heterogeneous materials in one call.
Scalar arguments keep the original ``math``-based fast path; the array
branches use the NumPy ufuncs backed by the same libm kernels, so the
two evaluate bitwise identically element-wise (asserted by the
batch/scalar equivalence tests).

**Backend threading.**  The array branches evaluate through the
curve's ``xp`` attribute — an array-backend ufunc namespace
(:mod:`repro.backend`), defaulting to the ``numpy`` module itself (the
exact reference backend, for which the indirection changes no bits).
Assign a different namespace (``curve.xp = cupy`` style) to evaluate a
curve's array path on another backend; the scalar fast paths always
use NumPy's kernels, which is the 1-ulp parity rule the bitwise lane
contract relies on.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from repro.constants import TWO_OVER_PI
from repro.errors import ParameterError
from repro.ja.parameters import JAParameters

#: Below this |x| the Langevin function switches to its Taylor series to
#: avoid catastrophic cancellation in ``coth(x) - 1/x``.
_LANGEVIN_SERIES_CUTOFF = 1e-4

#: Above this |x|, ``1/sinh(x)**2`` has underflowed to zero while
#: ``sinh(x)`` itself would overflow near 710 — switch to asymptotics.
_SINH_OVERFLOW_CUTOFF = 350.0


class Anhysteretic(ABC):
    """A normalised anhysteretic curve ``m_an(He)``.

    Parameters
    ----------
    shape:
        Shape (scale) parameter in A/m: the effective field is divided by
        it before evaluating the dimensionless curve.  May be an array
        (one shape per ensemble member) for batch evaluation.
    """

    #: Registry key used by :func:`make_anhysteretic`.
    kind: str = "abstract"

    #: Array-backend ufunc namespace the array branches evaluate
    #: through (class default: the exact NumPy reference backend).
    xp = np

    def __init__(self, shape: float | np.ndarray) -> None:
        if np.ndim(shape) == 0:
            if not math.isfinite(shape) or shape <= 0.0:
                raise ParameterError(
                    f"anhysteretic shape parameter must be finite and > 0, "
                    f"got {shape!r}"
                )
            self.shape = float(shape)
        else:
            shape = np.asarray(shape, dtype=float)
            if not (np.isfinite(shape).all() and (shape > 0.0).all()):
                raise ParameterError(
                    "anhysteretic shape parameters must all be finite and "
                    f"> 0, got {shape!r}"
                )
            self.shape = shape

    @abstractmethod
    def curve(self, x: float | np.ndarray) -> float | np.ndarray:
        """Dimensionless curve value at dimensionless argument ``x``."""

    @abstractmethod
    def curve_derivative(self, x: float | np.ndarray) -> float | np.ndarray:
        """Derivative of :meth:`curve` with respect to ``x``."""

    def value(self, h_effective: float | np.ndarray) -> float | np.ndarray:
        """Normalised anhysteretic magnetisation at effective field [A/m]."""
        return self.curve(h_effective / self.shape)

    def derivative(self, h_effective: float | np.ndarray) -> float | np.ndarray:
        """d(m_an)/d(He) at effective field [A/m] (units 1/(A/m))."""
        return self.curve_derivative(h_effective / self.shape) / self.shape

    def value_array(self, h_effective: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`value` for analysis code."""
        flat = np.asarray(h_effective, dtype=float)
        return np.asarray(self.value(flat), dtype=float)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(shape={self.shape!r})"


class LangevinAnhysteretic(Anhysteretic):
    """Classic Langevin anhysteretic ``L(x) = coth(x) - 1/x``.

    Near ``x = 0`` the closed form loses all significance, so the Taylor
    series ``x/3 - x**3/45 + 2*x**5/945`` is used instead; the switchover
    point keeps both branches agreeing to better than 1e-12.
    """

    kind = "langevin"

    def curve(self, x: float | np.ndarray) -> float | np.ndarray:
        # np.tanh/np.sinh (not math.*) in the scalar branches: NumPy's
        # SIMD kernels differ from libm by 1 ulp at some inputs, and
        # batch lanes must match the scalar path bitwise.
        if np.ndim(x) == 0:
            if abs(x) < _LANGEVIN_SERIES_CUTOFF:
                x2 = x * x
                return x * (1.0 / 3.0 - x2 / 45.0 + 2.0 * x2 * x2 / 945.0)
            return 1.0 / float(np.tanh(x)) - 1.0 / x
        xp = self.xp
        x = xp.asarray(x, dtype=float)
        x2 = x * x
        series = x * (1.0 / 3.0 - x2 / 45.0 + 2.0 * x2 * x2 / 945.0)
        small = xp.abs(x) < _LANGEVIN_SERIES_CUTOFF
        safe = xp.where(small, 1.0, x)
        closed = 1.0 / xp.tanh(safe) - 1.0 / safe
        return xp.where(small, series, closed)

    def curve_derivative(self, x: float | np.ndarray) -> float | np.ndarray:
        if np.ndim(x) == 0:
            if abs(x) < _LANGEVIN_SERIES_CUTOFF:
                x2 = x * x
                return 1.0 / 3.0 - x2 / 15.0 + 2.0 * x2 * x2 / 189.0
            if abs(x) > _SINH_OVERFLOW_CUTOFF:
                # 1/sinh(x)^2 underflows long before sinh overflows.
                return 1.0 / (x * x)
            sinh = float(np.sinh(x))
            return 1.0 / (x * x) - 1.0 / (sinh * sinh)
        xp = self.xp
        x = xp.asarray(x, dtype=float)
        x2 = x * x
        series = 1.0 / 3.0 - x2 / 15.0 + 2.0 * x2 * x2 / 189.0
        small = xp.abs(x) < _LANGEVIN_SERIES_CUTOFF
        overflow = xp.abs(x) > _SINH_OVERFLOW_CUTOFF
        safe = xp.where(small, 1.0, x)
        inv_x2 = 1.0 / (safe * safe)
        sinh = xp.sinh(xp.where(small | overflow, 1.0, x))
        closed = inv_x2 - 1.0 / (sinh * sinh)
        return xp.where(small, series, xp.where(overflow, inv_x2, closed))


class ModifiedLangevinAnhysteretic(Anhysteretic):
    """Arctangent anhysteretic ``(2/pi) * atan(x)`` (Wilson et al. 2004).

    This is the ``Lang_mod`` function of the paper's SystemC listing.  It
    saturates more slowly than the classic Langevin and is cheap and
    singularity-free, which is why the behavioural HDL models prefer it.
    """

    kind = "modified-langevin"

    def curve(self, x: float | np.ndarray) -> float | np.ndarray:
        # np.arctan (not math.atan) in BOTH branches: NumPy's SIMD
        # kernel differs from libm by 1 ulp at some inputs, and the
        # batch engine's lanes must match the scalar path bitwise.
        if np.ndim(x) == 0:
            return TWO_OVER_PI * float(np.arctan(x))
        return TWO_OVER_PI * self.xp.arctan(x)

    def curve_derivative(self, x: float | np.ndarray) -> float | np.ndarray:
        return TWO_OVER_PI / (1.0 + x * x)


class BrillouinAnhysteretic(Anhysteretic):
    """Brillouin-function anhysteretic ``B_J(x)`` for total spin ``J``.

    ``B_J(x) -> L(x)`` as ``J -> inf`` and ``B_1/2(x) = tanh(x)``.
    Included as an extension beyond the paper's two curves; the series
    branch mirrors the Langevin treatment.
    """

    kind = "brillouin"

    def __init__(self, shape: float, j: float = 0.5) -> None:
        super().__init__(shape)
        if not math.isfinite(j) or j <= 0.0:
            raise ParameterError(f"Brillouin spin J must be > 0, got {j!r}")
        self.j = float(j)

    def curve(self, x: float | np.ndarray) -> float | np.ndarray:
        j = self.j
        c1 = (2.0 * j + 1.0) / (2.0 * j)
        c2 = 1.0 / (2.0 * j)
        if np.ndim(x) == 0:
            if abs(x) < _LANGEVIN_SERIES_CUTOFF:
                # B_J(x) ~ (J+1)/(3J) * x for small x.
                return (j + 1.0) / (3.0 * j) * x
            return c1 / float(np.tanh(c1 * x)) - c2 / float(np.tanh(c2 * x))
        xp = self.xp
        x = xp.asarray(x, dtype=float)
        series = (j + 1.0) / (3.0 * j) * x
        small = xp.abs(x) < _LANGEVIN_SERIES_CUTOFF
        safe = xp.where(small, 1.0, x)
        closed = c1 / xp.tanh(c1 * safe) - c2 / xp.tanh(c2 * safe)
        return xp.where(small, series, closed)

    def curve_derivative(self, x: float | np.ndarray) -> float | np.ndarray:
        j = self.j
        c1 = (2.0 * j + 1.0) / (2.0 * j)
        c2 = 1.0 / (2.0 * j)
        if np.ndim(x) == 0:
            if abs(x) < _LANGEVIN_SERIES_CUTOFF:
                return (j + 1.0) / (3.0 * j)

            def csch_squared(y: float) -> float:
                if abs(y) > _SINH_OVERFLOW_CUTOFF:
                    return 0.0
                sinh = float(np.sinh(y))
                return 1.0 / (sinh * sinh)

            return (c2 * c2) * csch_squared(c2 * x) - (c1 * c1) * csch_squared(
                c1 * x
            )
        xp = self.xp
        x = xp.asarray(x, dtype=float)
        small = xp.abs(x) < _LANGEVIN_SERIES_CUTOFF

        def csch_squared_array(y: np.ndarray) -> np.ndarray:
            overflow = xp.abs(y) > _SINH_OVERFLOW_CUTOFF
            sinh = xp.sinh(xp.where(overflow, 1.0, y))
            return xp.where(overflow, 0.0, 1.0 / (sinh * sinh))

        safe = xp.where(small, 1.0, x)
        closed = (c2 * c2) * csch_squared_array(c2 * safe) - (
            c1 * c1
        ) * csch_squared_array(c1 * safe)
        return xp.where(small, (j + 1.0) / (3.0 * j), closed)


_KINDS: dict[str, type[Anhysteretic]] = {
    LangevinAnhysteretic.kind: LangevinAnhysteretic,
    ModifiedLangevinAnhysteretic.kind: ModifiedLangevinAnhysteretic,
    BrillouinAnhysteretic.kind: BrillouinAnhysteretic,
}


def make_anhysteretic(
    params: JAParameters,
    kind: str = "modified-langevin",
    use_a2: bool = True,
) -> Anhysteretic:
    """Build the anhysteretic curve for a parameter set.

    Parameters
    ----------
    params:
        Jiles-Atherton parameters carrying the shape values ``a``/``a2``.
    kind:
        One of ``"langevin"``, ``"modified-langevin"``, ``"brillouin"``.
        The paper's model uses ``"modified-langevin"``.
    use_a2:
        For the modified curve only: use ``params.a2`` (the paper's
        override) when True, else fall back to ``params.a``.  The classic
        Langevin always uses ``a`` as in Jiles & Atherton (1984).
    """
    try:
        cls = _KINDS[kind]
    except KeyError:
        known = ", ".join(sorted(_KINDS))
        raise ParameterError(f"unknown anhysteretic kind {kind!r}; known: {known}")
    if cls is ModifiedLangevinAnhysteretic and use_a2:
        return cls(params.modified_shape)
    return cls(params.a)


def slice_anhysteretic(
    curve: Anhysteretic, start: int, stop: int
) -> Anhysteretic:
    """The lane range ``[start, stop)`` of a batch-evaluated curve.

    A curve with a scalar shape serves any ensemble width unchanged and
    is returned as-is; an array-shaped curve is rebuilt over the sliced
    shapes (Brillouin ``j`` carried along).  Because every built-in
    curve evaluates element-wise, the sliced curve is bitwise identical
    per lane to the full-width one — the property the sharded executor
    (:mod:`repro.parallel`) relies on.
    """
    if np.ndim(curve.shape) == 0:
        return curve
    shapes = np.asarray(curve.shape)
    n = len(shapes)
    if not (0 <= start < stop <= n):
        raise ParameterError(
            f"lane slice [{start}, {stop}) outside curve of {n} lanes"
        )
    extra: dict[str, float] = {}
    j = getattr(curve, "j", None)
    if j is not None:
        extra["j"] = j
    try:
        return type(curve)(shapes[start:stop].copy(), **extra)
    except TypeError as exc:
        raise ParameterError(
            f"cannot slice a {type(curve).__name__}: its constructor is "
            "not (shape)-compatible; use a scalar-shape curve or override "
            "slicing for the custom family"
        ) from exc
