"""Jiles-Atherton substrate: parameters, anhysteretic curves, equations.

This package contains everything about the *physics* of the
Jiles-Atherton (JA) ferromagnetic hysteresis model that is independent of
how the magnetisation slope is discretised.  The paper's contribution —
the timeless discretisation — lives in :mod:`repro.core` and builds on
the pieces here.
"""

from repro.ja.anhysteretic import (
    Anhysteretic,
    BrillouinAnhysteretic,
    LangevinAnhysteretic,
    ModifiedLangevinAnhysteretic,
    make_anhysteretic,
)
from repro.ja.equations import (
    effective_field,
    flux_density,
    irreversible_slope,
    magnetisation_slope,
    magnetisation_slope_simplified,
    reversible_magnetisation,
)
from repro.ja.parameters import PAPER_PARAMETERS, PRESETS, JAParameters
from repro.ja.thermal import ThermalJAParameters

__all__ = [
    "Anhysteretic",
    "BrillouinAnhysteretic",
    "JAParameters",
    "LangevinAnhysteretic",
    "ModifiedLangevinAnhysteretic",
    "PAPER_PARAMETERS",
    "PRESETS",
    "ThermalJAParameters",
    "effective_field",
    "flux_density",
    "irreversible_slope",
    "magnetisation_slope",
    "magnetisation_slope_simplified",
    "make_anhysteretic",
    "reversible_magnetisation",
]
