"""Validated Jiles-Atherton parameter sets.

The paper uses the original Jiles-Atherton (1984) parameters "except for
a2"::

    k = 4000 A/m, c = 0.1, Msat = 1.6e6 A/m, alpha = 0.003,
    a = 2000 A/m, a2 = 3500 A/m

``a`` is the classic Langevin shape parameter; ``a2`` is the shape
parameter of the *modified* (arctangent) Langevin function introduced by
Wilson et al. (DATE 2004) and used by the paper's SystemC code.  Both are
kept so either anhysteretic can be selected without re-entering data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterator, Mapping

from repro.errors import ParameterError

_POSITIVE_FIELDS = ("k", "m_sat", "a")
_NON_NEGATIVE_FIELDS = ("c", "alpha")


@dataclass(frozen=True)
class JAParameters:
    """Immutable Jiles-Atherton parameter set.

    Attributes
    ----------
    m_sat:
        Saturation magnetisation ``Msat`` [A/m].
    a:
        Anhysteretic shape parameter for the classic Langevin curve [A/m].
    a2:
        Shape parameter for the modified (arctangent) Langevin curve
        [A/m].  Defaults to ``a`` when not given, which reduces the
        modified curve to its single-parameter form.
    k:
        Pinning-site loss parameter [A/m]; sets coercivity.
    c:
        Reversibility ratio (dimensionless, ``0 <= c < 1``).
    alpha:
        Inter-domain coupling (dimensionless mean-field constant).
    name:
        Optional human-readable label used in reports.
    """

    m_sat: float
    a: float
    k: float
    c: float
    alpha: float
    a2: float | None = None
    name: str = "unnamed"

    def __post_init__(self) -> None:
        for field_name in _POSITIVE_FIELDS:
            value = getattr(self, field_name)
            if not math.isfinite(value) or value <= 0.0:
                raise ParameterError(
                    f"JA parameter {field_name!r} must be finite and > 0, "
                    f"got {value!r}"
                )
        for field_name in _NON_NEGATIVE_FIELDS:
            value = getattr(self, field_name)
            if not math.isfinite(value) or value < 0.0:
                raise ParameterError(
                    f"JA parameter {field_name!r} must be finite and >= 0, "
                    f"got {value!r}"
                )
        if self.c >= 1.0:
            raise ParameterError(
                f"reversibility c must satisfy 0 <= c < 1, got {self.c!r}"
            )
        if self.a2 is not None:
            if not math.isfinite(self.a2) or self.a2 <= 0.0:
                raise ParameterError(
                    f"JA parameter 'a2' must be finite and > 0, got {self.a2!r}"
                )

    @property
    def modified_shape(self) -> float:
        """Shape parameter for the modified Langevin curve (``a2`` or ``a``)."""
        if self.a2 is None:
            return self.a
        return self.a2

    def with_updates(self, **changes: float | str | None) -> "JAParameters":
        """Return a copy with the given fields replaced (and re-validated)."""
        return replace(self, **changes)  # type: ignore[arg-type]

    def as_dict(self) -> dict[str, float | str | None]:
        """Serialise to a plain dictionary (useful for CSV/report headers)."""
        return {
            "name": self.name,
            "m_sat": self.m_sat,
            "a": self.a,
            "a2": self.a2,
            "k": self.k,
            "c": self.c,
            "alpha": self.alpha,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "JAParameters":
        """Build a parameter set from a mapping produced by :meth:`as_dict`."""
        try:
            return cls(
                m_sat=float(data["m_sat"]),  # type: ignore[arg-type]
                a=float(data["a"]),  # type: ignore[arg-type]
                k=float(data["k"]),  # type: ignore[arg-type]
                c=float(data["c"]),  # type: ignore[arg-type]
                alpha=float(data["alpha"]),  # type: ignore[arg-type]
                a2=(
                    None
                    if data.get("a2") in (None, "", "None")
                    else float(data["a2"])  # type: ignore[arg-type]
                ),
                name=str(data.get("name", "unnamed")),
            )
        except KeyError as exc:
            raise ParameterError(f"missing JA parameter {exc.args[0]!r}") from exc

    def __iter__(self) -> Iterator[tuple[str, float | str | None]]:
        return iter(self.as_dict().items())


#: The exact parameter set printed in Section 2 of the paper.
PAPER_PARAMETERS = JAParameters(
    m_sat=1.6e6,
    a=2000.0,
    a2=3500.0,
    k=4000.0,
    c=0.1,
    alpha=0.003,
    name="date2006-paper",
)

#: The original Jiles & Atherton (1984) fit the paper says it copies
#: (all values identical except no a2 override).
JILES_ATHERTON_1984 = JAParameters(
    m_sat=1.6e6,
    a=2000.0,
    k=4000.0,
    c=0.1,
    alpha=0.003,
    name="jiles-atherton-1984",
)

#: A soft ferrite-like material: low coercivity, strong coupling of
#: reversible component.  Used by tests/examples as a contrast case.
SOFT_FERRITE = JAParameters(
    m_sat=4.0e5,
    a=25.0,
    k=15.0,
    c=0.55,
    alpha=6.0e-5,
    name="soft-ferrite",
)

#: A hard, square-loop material: wide loop, small reversible component.
HARD_STEEL = JAParameters(
    m_sat=1.3e6,
    a=1200.0,
    k=9000.0,
    c=0.05,
    alpha=2.0e-3,
    name="hard-steel",
)

#: Registry of named presets.
PRESETS: dict[str, JAParameters] = {
    preset.name: preset
    for preset in (PAPER_PARAMETERS, JILES_ATHERTON_1984, SOFT_FERRITE, HARD_STEEL)
}


def get_preset(name: str) -> JAParameters:
    """Look up a preset by name, raising :class:`ParameterError` if unknown."""
    try:
        return PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise ParameterError(f"unknown preset {name!r}; known presets: {known}")
