"""Temperature dependence of Jiles-Atherton parameters.

A standard engineering extension (Raghunathan et al., IEEE Trans. Mag.
2010): scale the JA parameters with temperature through the reduced
Curie temperature ``t = T / T_curie``:

    Msat(T) = Msat(T0) * ((1 - t) / (1 - t0)) ** beta_ms
    k(T)    = k(T0)    * ((1 - t) / (1 - t0)) ** beta_k
    a(T)    = a(T0)    * ((1 - t) / (1 - t0)) ** beta_a

with the pinning term usually collapsing fastest (loops shrink and
soften on heating and vanish at the Curie point).  ``alpha`` and ``c``
are held constant, which the literature finds adequate below ~0.9 Tc.

This module derives a parameter set at any temperature below Tc; the
timeless model itself is temperature-agnostic — it just receives the
scaled parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ParameterError
from repro.ja.parameters import JAParameters

#: Default critical exponents: mean-field magnetisation exponent for
#: Msat/a, and a faster collapse for the pinning strength k.
DEFAULT_BETA_MS = 0.36
DEFAULT_BETA_A = 0.36
DEFAULT_BETA_K = 1.2


@dataclass(frozen=True)
class ThermalJAParameters:
    """A JA parameter set with Curie-law temperature scaling.

    Attributes
    ----------
    reference:
        Parameter set at the reference temperature.
    t_reference:
        Temperature the reference set was fitted at [K].
    t_curie:
        Curie temperature [K]; must exceed ``t_reference``.
    beta_ms, beta_a, beta_k:
        Critical exponents for Msat/a2/a and k.
    """

    reference: JAParameters
    t_reference: float = 293.15
    t_curie: float = 1043.0  # iron
    beta_ms: float = DEFAULT_BETA_MS
    beta_a: float = DEFAULT_BETA_A
    beta_k: float = DEFAULT_BETA_K

    def __post_init__(self) -> None:
        if not math.isfinite(self.t_curie) or self.t_curie <= 0.0:
            raise ParameterError(f"t_curie must be > 0, got {self.t_curie!r}")
        if not 0.0 < self.t_reference < self.t_curie:
            raise ParameterError(
                f"t_reference ({self.t_reference}) must sit inside "
                f"(0, t_curie = {self.t_curie})"
            )
        for name in ("beta_ms", "beta_a", "beta_k"):
            value = getattr(self, name)
            if not math.isfinite(value) or value <= 0.0:
                raise ParameterError(f"{name} must be > 0, got {value!r}")

    def _reduced(self, temperature: float) -> float:
        """``(1 - T/Tc) / (1 - T0/Tc)`` with domain checks."""
        if not math.isfinite(temperature) or temperature <= 0.0:
            raise ParameterError(
                f"temperature must be > 0 K, got {temperature!r}"
            )
        if temperature >= self.t_curie:
            raise ParameterError(
                f"temperature {temperature} K is at/above the Curie "
                f"point {self.t_curie} K: no ferromagnetic phase"
            )
        return (1.0 - temperature / self.t_curie) / (
            1.0 - self.t_reference / self.t_curie
        )

    def at(self, temperature: float) -> JAParameters:
        """Parameter set at a temperature [K] (below the Curie point)."""
        reduced = self._reduced(temperature)
        ref = self.reference
        scaled_a2 = (
            None if ref.a2 is None else ref.a2 * reduced**self.beta_a
        )
        return ref.with_updates(
            m_sat=ref.m_sat * reduced**self.beta_ms,
            a=ref.a * reduced**self.beta_a,
            a2=scaled_a2,
            k=ref.k * reduced**self.beta_k,
            name=f"{ref.name}@{temperature:g}K",
        )

    def saturation_fraction(self, temperature: float) -> float:
        """``Msat(T) / Msat(T_reference)``."""
        return self._reduced(temperature) ** self.beta_ms
