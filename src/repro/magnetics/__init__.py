"""Magnetic components built on the hysteresis model.

The paper motivates the work with mixed-physical-domain modelling:
magnetic components inside electrical circuits.  This package provides
that context — core geometries, material presets, a JA-cored inductor
and transformer, and a small electrical co-simulation driving them.
"""

from repro.magnetics.circuit import RLDriveCircuit, RLDriveResult
from repro.magnetics.geometry import CoreGeometry, EICore, ToroidCore
from repro.magnetics.inductor import HysteresisInductor
from repro.magnetics.material import MagneticMaterial
from repro.magnetics.transformer import HysteresisTransformer
from repro.magnetics.units import (
    amps_per_meter_from_oersted,
    gauss_from_tesla,
    oersted_from_amps_per_meter,
    tesla_from_gauss,
)

__all__ = [
    "CoreGeometry",
    "EICore",
    "HysteresisInductor",
    "HysteresisTransformer",
    "MagneticMaterial",
    "RLDriveCircuit",
    "RLDriveResult",
    "ToroidCore",
    "amps_per_meter_from_oersted",
    "gauss_from_tesla",
    "oersted_from_amps_per_meter",
    "tesla_from_gauss",
]
