"""Nonlinear inductor with a hysteretic (JA) core.

The inductor maps its terminal current to the core field via geometry
(``H = N*i/l_e``), runs the timeless hysteresis model, and reports flux
linkage and incremental inductance.  Because the underlying model is
history-dependent, so is the inductance — including remanence after the
current returns to zero.
"""

from __future__ import annotations

import math

from repro.constants import DEFAULT_DHMAX
from repro.core.model import TimelessJAModel
from repro.core.slope import SlopeGuards
from repro.errors import ParameterError
from repro.ja.anhysteretic import Anhysteretic
from repro.magnetics.geometry import CoreGeometry
from repro.magnetics.material import MagneticMaterial


class HysteresisInductor:
    """An ``N``-turn winding on a hysteretic core."""

    def __init__(
        self,
        material: MagneticMaterial,
        geometry: CoreGeometry,
        turns: int,
        dhmax: float = DEFAULT_DHMAX,
        anhysteretic: Anhysteretic | None = None,
        guards: SlopeGuards = SlopeGuards(),
    ) -> None:
        if turns < 1:
            raise ParameterError(f"turns must be >= 1, got {turns}")
        self.material = material
        self.geometry = geometry
        self.turns = int(turns)
        self.model = TimelessJAModel(
            material.params,
            dhmax=dhmax,
            anhysteretic=anhysteretic,
            guards=guards,
        )
        self._last_current = 0.0

    def reset(self) -> None:
        """Demagnetise the core and zero the current."""
        self.model.reset()
        self._last_current = 0.0

    @property
    def current(self) -> float:
        """Winding current [A] at the last update."""
        return self._last_current

    @property
    def h(self) -> float:
        """Core field [A/m]."""
        return self.model.h

    @property
    def b(self) -> float:
        """Core flux density [T]."""
        return self.model.b

    @property
    def flux_linkage(self) -> float:
        """Flux linkage lambda = N*B*A [Wb-turns]."""
        return self.geometry.flux_linkage(self.turns, self.model.b)

    def apply_current(self, current: float) -> float:
        """Set the winding current [A]; returns the new flux linkage."""
        if not math.isfinite(current):
            raise ParameterError(f"current must be finite, got {current!r}")
        h = self.geometry.field_from_current(self.turns, current)
        self.model.apply_field(h)
        self._last_current = float(current)
        return self.flux_linkage

    def incremental_inductance(self, delta_current: float | None = None) -> float:
        """Numerical dlambda/di around the present operating point [H].

        Probes with a small current excursion on a *copy* of the model
        state — the real state is untouched.  The probe size defaults to
        the current equivalent of one ``dhmax`` field step.
        """
        if delta_current is None:
            delta_current = self.geometry.current_from_field(
                self.turns, 2.0 * self.model.dhmax
            )
        if delta_current <= 0.0 or not math.isfinite(delta_current):
            raise ParameterError(
                f"delta_current must be finite and > 0, got {delta_current!r}"
            )
        probe = self._clone()
        lambda_0 = probe.flux_linkage
        probe.apply_current(self._last_current + delta_current)
        lambda_1 = probe.flux_linkage
        return (lambda_1 - lambda_0) / delta_current

    def _clone(self) -> "HysteresisInductor":
        clone = object.__new__(HysteresisInductor)
        clone.material = self.material
        clone.geometry = self.geometry
        clone.turns = self.turns
        clone.model = self.model.clone()
        clone._last_current = self._last_current
        return clone

    def __repr__(self) -> str:
        return (
            f"HysteresisInductor({self.material.name!r}, turns={self.turns}, "
            f"i={self._last_current:.6g} A, B={self.b:.6g} T)"
        )
