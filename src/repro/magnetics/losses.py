"""Hysteresis-loss characterisation: amplitude sweeps and Steinmetz fit.

The engineering summary of a soft-magnetic material is its loss map:
energy per cycle versus peak flux density.  For rate-independent
hysteresis (this model — eddy currents are out of the paper's scope)
the classical Steinmetz law reduces to

    W(B_peak) = k_h * B_peak ** beta      [J/m^3 per cycle]

and the total power at frequency f is ``W * f * volume``.  This module
measures W over an amplitude sweep of settled loops and fits (k_h,
beta) by log-log linear regression.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.loops import extract_loops
from repro.analysis.metrics import loop_area
from repro.core.model import TimelessJAModel
from repro.core.sweep import run_sweep
from repro.errors import AnalysisError
from repro.ja.parameters import JAParameters


@dataclass(frozen=True)
class LossPoint:
    """One settled-loop measurement."""

    h_amplitude: float
    b_peak: float
    energy_per_cycle: float  # J/m^3


@dataclass(frozen=True)
class SteinmetzFit:
    """Fitted ``W = k_h * B_peak**beta`` with its data."""

    k_h: float
    beta: float
    points: tuple[LossPoint, ...]
    residual_log_rms: float

    def energy_per_cycle(self, b_peak: float) -> float:
        """Predicted loss [J/m^3 per cycle] at a peak flux density."""
        if b_peak <= 0.0:
            raise AnalysisError(f"b_peak must be > 0, got {b_peak!r}")
        return self.k_h * b_peak**self.beta

    def power(self, b_peak: float, frequency: float, volume: float) -> float:
        """Predicted loss power [W] for a core volume at a frequency."""
        if frequency <= 0.0 or volume <= 0.0:
            raise AnalysisError("frequency and volume must be > 0")
        return self.energy_per_cycle(b_peak) * frequency * volume


def measure_loss_point(
    params: JAParameters,
    h_amplitude: float,
    dhmax: float = 50.0,
    settle_cycles: int = 3,
) -> LossPoint:
    """Loss of the settled loop at one field amplitude."""
    if h_amplitude <= 0.0:
        raise AnalysisError(f"h_amplitude must be > 0, got {h_amplitude!r}")
    model = TimelessJAModel(params, dhmax=dhmax)
    waypoints = [0.0, h_amplitude]
    for _ in range(settle_cycles):
        waypoints.extend([-h_amplitude, h_amplitude])
    sweep = run_sweep(model, waypoints)
    loops = extract_loops(sweep.h, sweep.b)
    settled = loops[-1]
    return LossPoint(
        h_amplitude=float(h_amplitude),
        b_peak=float(np.max(np.abs(settled.b))),
        energy_per_cycle=loop_area(settled.h, settled.b),
    )


def loss_sweep(
    params: JAParameters,
    h_amplitudes: Sequence[float],
    dhmax: float = 50.0,
    settle_cycles: int = 3,
) -> list[LossPoint]:
    """Measure settled-loop losses over an amplitude sweep."""
    if len(h_amplitudes) == 0:
        raise AnalysisError("need at least one amplitude")
    return [
        measure_loss_point(
            params, float(amp), dhmax=dhmax, settle_cycles=settle_cycles
        )
        for amp in h_amplitudes
    ]


def fit_steinmetz(points: Sequence[LossPoint]) -> SteinmetzFit:
    """Fit ``W = k_h * B_peak**beta`` to measured loss points.

    Log-log linear regression; at least two points with distinct peaks
    are required.
    """
    if len(points) < 2:
        raise AnalysisError("need at least two loss points for a fit")
    b_peaks = np.array([p.b_peak for p in points])
    energies = np.array([p.energy_per_cycle for p in points])
    if np.any(b_peaks <= 0.0) or np.any(energies <= 0.0):
        raise AnalysisError("loss points must have positive B_peak and energy")
    if np.allclose(b_peaks, b_peaks[0]):
        raise AnalysisError("loss points must span distinct B_peak values")
    log_b = np.log(b_peaks)
    log_w = np.log(energies)
    beta, log_k = np.polyfit(log_b, log_w, 1)
    predicted = log_k + beta * log_b
    residual = float(np.sqrt(np.mean((log_w - predicted) ** 2)))
    return SteinmetzFit(
        k_h=float(np.exp(log_k)),
        beta=float(beta),
        points=tuple(points),
        residual_log_rms=residual,
    )
