"""Magnetic unit conversions (SI <-> CGS).

Datasheets for ferromagnetic materials habitually mix unit systems; the
helpers here keep conversions explicit and tested instead of scattered
as inline constants.
"""

from __future__ import annotations

import math

from repro.errors import ParameterError

#: One oersted in A/m (1000 / (4*pi)).
OERSTED_IN_A_PER_M = 1000.0 / (4.0 * math.pi)

#: One gauss in tesla.
GAUSS_IN_TESLA = 1e-4


def _check_finite(name: str, value: float) -> float:
    if not math.isfinite(value):
        raise ParameterError(f"{name} must be finite, got {value!r}")
    return float(value)


def amps_per_meter_from_oersted(oersted: float) -> float:
    """Convert a field strength from Oe to A/m."""
    return _check_finite("oersted", oersted) * OERSTED_IN_A_PER_M


def oersted_from_amps_per_meter(amps_per_meter: float) -> float:
    """Convert a field strength from A/m to Oe."""
    return _check_finite("amps_per_meter", amps_per_meter) / OERSTED_IN_A_PER_M


def tesla_from_gauss(gauss: float) -> float:
    """Convert a flux density from G to T."""
    return _check_finite("gauss", gauss) * GAUSS_IN_TESLA


def gauss_from_tesla(tesla: float) -> float:
    """Convert a flux density from T to G."""
    return _check_finite("tesla", tesla) / GAUSS_IN_TESLA
