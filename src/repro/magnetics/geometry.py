"""Core geometries: effective magnetic path length and cross-section.

A winding of ``n`` turns carrying current ``i`` around a closed core
produces (by Ampere's law, ignoring leakage) a field
``H = n * i / path_length``; the flux through the winding is
``n * B * area``.  Those two numbers — effective path length and
effective area — are all the hysteresis model needs from geometry.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import ParameterError


def _check_positive(name: str, value: float) -> float:
    if not math.isfinite(value) or value <= 0.0:
        raise ParameterError(f"{name} must be finite and > 0, got {value!r}")
    return float(value)


class CoreGeometry(ABC):
    """Effective magnetic dimensions of a closed core."""

    @property
    @abstractmethod
    def path_length(self) -> float:
        """Effective magnetic path length [m]."""

    @property
    @abstractmethod
    def area(self) -> float:
        """Effective cross-section [m^2]."""

    @property
    def volume(self) -> float:
        """Effective core volume [m^3] (loss = loop area x volume)."""
        return self.path_length * self.area

    def field_from_current(self, turns: int, current: float) -> float:
        """H = N*i / l_e [A/m]."""
        if turns < 1:
            raise ParameterError(f"turns must be >= 1, got {turns}")
        return turns * current / self.path_length

    def current_from_field(self, turns: int, h: float) -> float:
        """Invert :meth:`field_from_current`."""
        if turns < 1:
            raise ParameterError(f"turns must be >= 1, got {turns}")
        return h * self.path_length / turns

    def flux_linkage(self, turns: int, b: float) -> float:
        """Total flux linkage N*B*A [Wb-turns]."""
        if turns < 1:
            raise ParameterError(f"turns must be >= 1, got {turns}")
        return turns * b * self.area


@dataclass(frozen=True)
class ToroidCore(CoreGeometry):
    """Toroid of rectangular cross-section.

    Attributes
    ----------
    inner_radius, outer_radius:
        Radii [m]; the effective path is the mean circumference.
    height:
        Axial height [m].
    """

    inner_radius: float
    outer_radius: float
    height: float

    def __post_init__(self) -> None:
        _check_positive("inner_radius", self.inner_radius)
        _check_positive("outer_radius", self.outer_radius)
        _check_positive("height", self.height)
        if self.outer_radius <= self.inner_radius:
            raise ParameterError(
                f"outer_radius ({self.outer_radius}) must exceed "
                f"inner_radius ({self.inner_radius})"
            )

    @property
    def path_length(self) -> float:
        return math.pi * (self.inner_radius + self.outer_radius)

    @property
    def area(self) -> float:
        return (self.outer_radius - self.inner_radius) * self.height


@dataclass(frozen=True)
class EICore(CoreGeometry):
    """Laminated E-I core described directly by effective dimensions.

    Vendors publish ``l_e`` and ``A_e`` for standard laminations; this
    class takes them at face value.
    """

    effective_path_length: float
    effective_area: float

    def __post_init__(self) -> None:
        _check_positive("effective_path_length", self.effective_path_length)
        _check_positive("effective_area", self.effective_area)

    @property
    def path_length(self) -> float:
        return self.effective_path_length

    @property
    def area(self) -> float:
        return self.effective_area
