"""Magnetic material: JA parameters plus engineering metadata."""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import MU0
from repro.errors import ParameterError
from repro.ja.parameters import (
    HARD_STEEL,
    PAPER_PARAMETERS,
    SOFT_FERRITE,
    JAParameters,
)


@dataclass(frozen=True)
class MagneticMaterial:
    """A named material wrapping a JA parameter set.

    Attributes
    ----------
    params:
        The Jiles-Atherton fit.
    density:
        Mass density [kg/m^3] (for specific-loss numbers).
    resistivity:
        Electrical resistivity [ohm*m]; informational (eddy-current
        modelling is out of the paper's scope and not attempted).
    """

    params: JAParameters
    density: float = 7650.0
    resistivity: float = 4.7e-7

    def __post_init__(self) -> None:
        if self.density <= 0.0:
            raise ParameterError(f"density must be > 0, got {self.density!r}")
        if self.resistivity <= 0.0:
            raise ParameterError(
                f"resistivity must be > 0, got {self.resistivity!r}"
            )

    @property
    def name(self) -> str:
        return self.params.name

    @property
    def b_sat(self) -> float:
        """Saturation flux density ``mu0 * Msat`` [T] (H contribution
        excluded)."""
        return MU0 * self.params.m_sat

    def specific_loss(self, loop_area: float, frequency: float) -> float:
        """Hysteresis loss per unit mass [W/kg] from a B-H loop area.

        ``loop_area`` is the enclosed B-H area [J/m^3 per cycle].
        """
        if frequency <= 0.0:
            raise ParameterError(f"frequency must be > 0, got {frequency!r}")
        return loop_area * frequency / self.density


#: The paper's material with generic electrical-steel bulk properties.
PAPER_STEEL = MagneticMaterial(params=PAPER_PARAMETERS)

#: Contrast materials for examples and tests.
FERRITE = MagneticMaterial(params=SOFT_FERRITE, density=4800.0, resistivity=1.0)
SQUARE_STEEL = MagneticMaterial(params=HARD_STEEL)
