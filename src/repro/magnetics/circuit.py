"""Electrical co-simulation: voltage source + resistor + JA inductor.

The mixed-domain scenario the paper's introduction motivates: an
electrical circuit containing a ferromagnetic component.  The loop
equation

    v(t) = R * i + d(lambda)/dt,    lambda = N * B(H(i)) * A

is discretised with backward Euler and solved per step by damped Newton
on the current.  The flux linkage is evaluated through *state clones* of
the inductor, so rejected Newton trials never pollute the hysteresis
history — the discrete-model analogue of the analogue solver's
commit-on-accept discipline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SolverError
from repro.magnetics.inductor import HysteresisInductor
from repro.waveforms.base import Waveform

#: Largest trial current [A] the per-step solver will probe.  On the
#: event-quantised lambda(i) staircase the Newton slope can read the
#: incremental inductance as zero and overshoot geometrically; trials
#: beyond this bound carry no information (every physical core is deep
#: in saturation), so the solver abandons Newton there and bisects from
#: the last sane trial instead of overflowing.
_MAX_TRIAL_CURRENT = 1e12


@dataclass(frozen=True)
class RLDriveResult:
    """Trajectory of one RL transient."""

    t: np.ndarray
    v: np.ndarray
    i: np.ndarray
    h: np.ndarray
    b: np.ndarray
    flux_linkage: np.ndarray
    newton_iterations: int
    newton_failures: int

    def __len__(self) -> int:
        return len(self.t)

    @property
    def peak_current(self) -> float:
        return float(np.max(np.abs(self.i)))

    def resistor_energy(self, resistance: float) -> float:
        """Energy dissipated in the series resistance [J] (trapezoid)."""
        power = resistance * self.i**2
        return float(np.trapezoid(power, self.t))

    def core_loss_energy(self, volume: float) -> float:
        """Hysteresis energy deposited in the core [J]: volume * closed
        contour integral H dB."""
        return float(volume * np.trapezoid(self.h, self.b))


class RLDriveCircuit:
    """Series R + hysteretic L driven by a voltage waveform."""

    def __init__(
        self,
        inductor: HysteresisInductor,
        resistance: float,
        source: Waveform,
    ) -> None:
        if not math.isfinite(resistance) or resistance <= 0.0:
            raise SolverError(f"resistance must be > 0, got {resistance!r}")
        self.inductor = inductor
        self.resistance = float(resistance)
        self.source = source

    def _residual(
        self, i_trial: float, lambda_old: float, v_new: float, dt: float
    ) -> tuple[float, float]:
        """Loop-equation residual and the probed flux linkage at a trial
        current (evaluated on a state clone)."""
        probe = self.inductor._clone()
        probe.apply_current(i_trial)
        lambda_trial = probe.flux_linkage
        residual = (
            self.resistance * i_trial
            + (lambda_trial - lambda_old) / dt
            - v_new
        )
        return residual, lambda_trial

    def _solve_step(
        self,
        i_guess: float,
        lambda_old: float,
        v_new: float,
        dt: float,
        max_iterations: int = 20,
        tolerance: float = 1e-9,
    ) -> tuple[float, int, bool]:
        """Solve the BE-discretised loop equation for i_new.

        Newton first (fast on the smooth stretches); if it stalls —
        the event-quantised lambda(i) is a staircase, so Newton can
        oscillate between event boundaries — fall back to bisection,
        which always converges because the residual is monotone
        increasing in the current (R > 0, dlambda/di >= 0).
        """
        r = self.resistance
        i_trial = i_guess
        iterations = 0
        for _ in range(max_iterations):
            iterations += 1
            residual, _ = self._residual(i_trial, lambda_old, v_new, dt)
            scale = max(1.0, abs(v_new), r * abs(i_trial))
            if abs(residual) <= tolerance * scale:
                return i_trial, iterations, True
            probe = self.inductor._clone()
            probe.apply_current(i_trial)
            inductance = max(probe.incremental_inductance(), 0.0)
            slope = r + inductance / dt
            i_next = i_trial - residual / slope
            if not math.isfinite(i_next) or abs(i_next) > _MAX_TRIAL_CURRENT:
                # Leave i_trial at the last sane value for the bisection
                # bracket below.
                break
            i_trial = i_next

        # Bisection fallback: bracket the root by expanding around the
        # last trial, then bisect.
        span = max(1.0, abs(i_trial), abs(v_new) / r)
        low, high = i_trial - span, i_trial + span
        f_low, _ = self._residual(low, lambda_old, v_new, dt)
        f_high, _ = self._residual(high, lambda_old, v_new, dt)
        expansions = 0
        while f_low > 0.0 or f_high < 0.0:
            expansions += 1
            iterations += 1
            if expansions > 60 or not math.isfinite(span):
                return i_trial, iterations, False
            span *= 2.0
            low, high = i_trial - span, i_trial + span
            f_low, _ = self._residual(low, lambda_old, v_new, dt)
            f_high, _ = self._residual(high, lambda_old, v_new, dt)
        for _ in range(80):
            iterations += 1
            mid = 0.5 * (low + high)
            f_mid, _ = self._residual(mid, lambda_old, v_new, dt)
            scale = max(1.0, abs(v_new), r * abs(mid))
            if abs(f_mid) <= tolerance * scale or (high - low) <= 1e-12 * max(
                1.0, abs(mid)
            ):
                return mid, iterations, True
            if f_mid > 0.0:
                high = mid
            else:
                low = mid
        return 0.5 * (low + high), iterations, True

    def run(
        self, t_stop: float, dt: float, t_start: float = 0.0
    ) -> RLDriveResult:
        """Fixed-step backward-Euler transient of the RL loop."""
        if dt <= 0.0 or not math.isfinite(dt):
            raise SolverError(f"dt must be finite and > 0, got {dt!r}")
        if not t_stop > t_start:
            raise SolverError(f"t_stop ({t_stop}) must exceed t_start ({t_start})")

        # Guard against float ratios adding a spurious step past t_stop.
        steps = max(1, int(math.ceil((t_stop - t_start) / dt - 1e-9)))
        t_arr = np.empty(steps + 1)
        v_arr = np.empty(steps + 1)
        i_arr = np.empty(steps + 1)
        h_arr = np.empty(steps + 1)
        b_arr = np.empty(steps + 1)
        lam_arr = np.empty(steps + 1)

        t_arr[0] = t_start
        v_arr[0] = self.source.value(t_start)
        i_arr[0] = self.inductor.current
        h_arr[0] = self.inductor.h
        b_arr[0] = self.inductor.b
        lam_arr[0] = self.inductor.flux_linkage

        total_iterations = 0
        failures = 0
        i_now = self.inductor.current
        for n in range(1, steps + 1):
            t_new = t_start + n * dt
            v_new = self.source.value(t_new)
            lambda_old = self.inductor.flux_linkage
            i_new, iterations, converged = self._solve_step(
                i_now, lambda_old, v_new, dt
            )
            total_iterations += iterations
            if not converged:
                failures += 1
            # Commit the accepted current to the real hysteresis state.
            self.inductor.apply_current(i_new)
            i_now = i_new

            t_arr[n] = t_new
            v_arr[n] = v_new
            i_arr[n] = i_new
            h_arr[n] = self.inductor.h
            b_arr[n] = self.inductor.b
            lam_arr[n] = self.inductor.flux_linkage

        return RLDriveResult(
            t=t_arr,
            v=v_arr,
            i=i_arr,
            h=h_arr,
            b=b_arr,
            flux_linkage=lam_arr,
            newton_iterations=total_iterations,
            newton_failures=failures,
        )
