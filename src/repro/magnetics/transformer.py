"""Two-winding transformer on a hysteretic core.

An ideal-coupling (no leakage) transformer whose magnetising branch is
the JA model: the primary magnetomotive force net of the reflected
secondary current magnetises the core,

    H = (N1*i1 - N2*i2) / l_e,

and both windings see the same core flux (``lambda_k = N_k * B * A``).
Saturation, remanence and inrush asymmetry follow directly from the
hysteresis model; winding resistance is handled by the drive circuit.
"""

from __future__ import annotations

import math

from repro.constants import DEFAULT_DHMAX
from repro.core.model import TimelessJAModel
from repro.core.slope import SlopeGuards
from repro.errors import ParameterError
from repro.ja.anhysteretic import Anhysteretic
from repro.magnetics.geometry import CoreGeometry
from repro.magnetics.material import MagneticMaterial


class HysteresisTransformer:
    """Two windings (N1, N2) on a shared hysteretic core."""

    def __init__(
        self,
        material: MagneticMaterial,
        geometry: CoreGeometry,
        primary_turns: int,
        secondary_turns: int,
        dhmax: float = DEFAULT_DHMAX,
        anhysteretic: Anhysteretic | None = None,
        guards: SlopeGuards = SlopeGuards(),
    ) -> None:
        for name, turns in (
            ("primary_turns", primary_turns),
            ("secondary_turns", secondary_turns),
        ):
            if turns < 1:
                raise ParameterError(f"{name} must be >= 1, got {turns}")
        self.material = material
        self.geometry = geometry
        self.primary_turns = int(primary_turns)
        self.secondary_turns = int(secondary_turns)
        self.model = TimelessJAModel(
            material.params,
            dhmax=dhmax,
            anhysteretic=anhysteretic,
            guards=guards,
        )
        self._i1 = 0.0
        self._i2 = 0.0

    @property
    def turns_ratio(self) -> float:
        """N1 / N2."""
        return self.primary_turns / self.secondary_turns

    @property
    def h(self) -> float:
        """Core field [A/m]."""
        return self.model.h

    @property
    def b(self) -> float:
        """Core flux density [T]."""
        return self.model.b

    @property
    def primary_flux_linkage(self) -> float:
        return self.geometry.flux_linkage(self.primary_turns, self.model.b)

    @property
    def secondary_flux_linkage(self) -> float:
        return self.geometry.flux_linkage(self.secondary_turns, self.model.b)

    def reset(self) -> None:
        """Demagnetise the core and zero both currents."""
        self.model.reset()
        self._i1 = 0.0
        self._i2 = 0.0

    def apply_currents(self, i_primary: float, i_secondary: float = 0.0) -> float:
        """Set both winding currents [A]; returns the core B [T].

        The secondary current is taken positive *out* of the dotted
        terminal, hence it demagnetises (the ``- N2*i2`` term).
        """
        for name, current in (("i_primary", i_primary), ("i_secondary", i_secondary)):
            if not math.isfinite(current):
                raise ParameterError(f"{name} must be finite, got {current!r}")
        mmf = (
            self.primary_turns * i_primary
            - self.secondary_turns * i_secondary
        )
        h = mmf / self.geometry.path_length
        self.model.apply_field(h)
        self._i1 = float(i_primary)
        self._i2 = float(i_secondary)
        return self.model.b

    def magnetising_current(self) -> float:
        """Primary current needed to sustain the present core field."""
        return self.model.h * self.geometry.path_length / self.primary_turns

    def __repr__(self) -> str:
        return (
            f"HysteresisTransformer({self.material.name!r}, "
            f"N1={self.primary_turns}, N2={self.secondary_turns}, "
            f"B={self.b:.6g} T)"
        )
