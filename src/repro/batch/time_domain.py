"""Vectorised classic time-domain JA ensemble (the pre-paper chain).

:class:`BatchTimeDomainModel` advances N forward-Euler dM/dH lanes in
lockstep — the sample-driven form of
:class:`repro.baselines.time_domain.TimeDomainJAModel`, where the time
step cancels out of the explicit chain — with per-lane pathology
counters: slope evaluations, negative-slope evaluations and a sticky
``diverged`` flag that freezes runaway lanes exactly like the scalar
model does.

Each lane is **bitwise identical** to a scalar sample-driven run over
the same samples: both paths call the same ufunc-safe equation layer
(:mod:`repro.ja.equations`), whose scalar branches reproduce the array
branches' IEEE operations (the PR 1 parity rule, asserted by
``tests/test_batch_time_domain.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.backend import ArrayBackend, as_backend
from repro.baselines.time_domain import DIVERGENCE_LIMIT
from repro.batch.lanes import (
    as_lane_matrix,
    broadcast_lane,
    check_lane_range,
    check_series,
    trace_series,
)
from repro.batch.params import BatchJAParameters, stack_parameters
from repro.constants import DEFAULT_DHMAX, MU0
from repro.core.slope import SlopeGuards, slice_guards, stack_guards
from repro.errors import ParameterError
from repro.ja.anhysteretic import (
    Anhysteretic,
    make_anhysteretic,
    slice_anhysteretic,
)
from repro.ja.equations import (
    anhysteretic_slope_term,
    effective_field,
    flux_density,
    irreversible_slope,
)
from repro.ja.parameters import JAParameters

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.baselines.time_domain import TimeDomainJAModel


class BatchTimeDomainModel:
    """N explicit dM/dH lanes advanced in lockstep per driver sample.

    Parameters
    ----------
    params:
        Heterogeneous material parameters (sequence or stacked).
    anhysteretic:
        Lane-wise anhysteretic curve; defaults to the stacked modified
        Langevin.
    guards:
        Per-lane or shared guard settings.  The historical chain runs
        unguarded (:meth:`SlopeGuards.none`, the default here, as in the
        scalar class) — that fragility is the point of the baseline.
    divergence_limit:
        |m| (normalised) beyond which a lane freezes; scalar or per-core.
    """

    family = "time-domain"

    def __init__(
        self,
        params: "Sequence[JAParameters] | BatchJAParameters",
        anhysteretic: Anhysteretic | None = None,
        guards: "SlopeGuards | Sequence[SlopeGuards]" = SlopeGuards.none(),
        divergence_limit: "float | np.ndarray" = DIVERGENCE_LIMIT,
        backend: "ArrayBackend | str | None" = None,
    ) -> None:
        self.backend = as_backend(backend)
        self.params = stack_parameters(params)
        n = len(self.params)
        self.anhysteretic = (
            anhysteretic
            if anhysteretic is not None
            else make_anhysteretic(self.params)
        )
        if isinstance(guards, SlopeGuards):
            self.guards = guards
        else:
            guards = list(guards)
            if len(guards) != n:
                raise ParameterError(
                    f"need one SlopeGuards per core ({n}), got {len(guards)}"
                )
            self.guards = stack_guards(guards)
        self.divergence_limit = broadcast_lane(
            divergence_limit, n, "divergence_limit"
        )
        self._h = np.zeros(n)
        self._m = np.zeros(n)
        self.diverged = np.zeros(n, dtype=bool)
        self.steps = np.zeros(n, dtype=np.int64)
        self.slope_evaluations = np.zeros(n, dtype=np.int64)
        self.negative_slope_evaluations = np.zeros(n, dtype=np.int64)

    # -- construction helpers ---------------------------------------------

    @classmethod
    def from_scalar_models(
        cls, models: "Sequence[TimeDomainJAModel]"
    ) -> "BatchTimeDomainModel":
        """Stack live scalar models into one batch, adopting their
        sample-driven state and counters."""
        if len(models) == 0:
            raise ParameterError("need at least one model to stack")
        batch = cls(
            [m.params for m in models],
            guards=[m.guards for m in models],
            divergence_limit=np.array([m.divergence_limit for m in models]),
        )
        batch.adopt_states(models)
        return batch

    def adopt_states(self, models: "Sequence[TimeDomainJAModel]") -> None:
        if len(models) != self.n_cores:
            raise ParameterError(
                f"need one model per lane ({self.n_cores}), got {len(models)}"
            )
        for i, model in enumerate(models):
            (
                self._h[i],
                self._m[i],
                self.diverged[i],
                self.steps[i],
                self.slope_evaluations[i],
                self.negative_slope_evaluations[i],
            ) = model.snapshot()

    def write_back_to_models(self, models: "Sequence[TimeDomainJAModel]") -> None:
        for i, model in enumerate(models):
            model.restore(
                (
                    float(self._h[i]),
                    float(self._m[i]),
                    bool(self.diverged[i]),
                    int(self.steps[i]),
                    int(self.slope_evaluations[i]),
                    int(self.negative_slope_evaluations[i]),
                )
            )

    # -- shard construction ------------------------------------------------

    def shard_payload(self, start: int, stop: int) -> dict:
        """Picklable construction payload for lanes ``[start, stop)``
        (materials, guards and divergence limits only — no live state)."""
        check_lane_range(start, stop, self.n_cores)
        return {
            "params": self.params.lane_slice(start, stop),
            "anhysteretic": slice_anhysteretic(self.anhysteretic, start, stop),
            "guards": slice_guards(self.guards, start, stop),
            "divergence_limit": self.divergence_limit[start:stop].copy(),
            "backend": self.backend.name,
        }

    @classmethod
    def from_shard_payload(cls, payload: dict) -> "BatchTimeDomainModel":
        """Rebuild a (sub-)ensemble from a :meth:`shard_payload` dict."""
        return cls(
            payload["params"],
            anhysteretic=payload["anhysteretic"],
            guards=payload["guards"],
            divergence_limit=payload["divergence_limit"],
            backend=payload.get("backend"),
        )

    def shard(self, start: int, stop: int) -> "BatchTimeDomainModel":
        """A freshly reset batch over lanes ``[start, stop)`` — bitwise
        identical per lane to this ensemble after a reset."""
        return type(self).from_shard_payload(self.shard_payload(start, stop))

    def use_backend(
        self, backend: "ArrayBackend | str | None"
    ) -> "BatchTimeDomainModel":
        """Switch the array backend (state is untouched); returns self."""
        self.backend = as_backend(backend)
        return self

    # -- state access -----------------------------------------------------

    @property
    def n_cores(self) -> int:
        return len(self.params)

    def __len__(self) -> int:
        return self.n_cores

    @property
    def h(self) -> np.ndarray:
        return self._h

    @property
    def m_normalised(self) -> np.ndarray:
        return self._m.copy()

    @property
    def m(self) -> np.ndarray:
        return self._m * self.params.m_sat

    @property
    def b(self) -> np.ndarray:
        return flux_density(self.params, self._h, self._m)

    # -- stepping ---------------------------------------------------------

    def reset(self, h_initial: "float | np.ndarray" = 0.0) -> None:
        """Demagnetised lanes at ``h_initial``; zero all statistics."""
        n = self.n_cores
        self._h = broadcast_lane(h_initial, n, "h_initial")
        self._m = np.zeros(n)
        self.diverged[:] = False
        self.steps[:] = 0
        self.slope_evaluations[:] = 0
        self.negative_slope_evaluations[:] = 0

    def begin_series(self, h_initial) -> None:
        self.reset(h_initial=h_initial)

    def step(self, h_new) -> np.ndarray:
        """One explicit Euler step in H for every live lane.

        Mirrors the scalar ``apply_field`` exactly: lanes whose field
        did not move, and frozen (diverged) lanes, only track H; the
        rest evaluate the guarded Eq. 1 slope at the *previous* field
        and advance ``m += slope * dh``.  Returns the mask of lanes
        that integrated.
        """
        n = self.n_cores
        h = np.asarray(h_new, dtype=float)
        if h.ndim == 0:
            h = np.full(n, float(h))
        elif h.shape != (n,):
            raise ParameterError(
                f"h_new must be a scalar or a length-{n} array, got {h.shape}"
            )
        dh = h - self._h
        active = (dh != 0.0) & ~self.diverged
        if active.any():
            params = self.params
            delta = np.where(dh >= 0.0, 1.0, -1.0)
            h_eff = effective_field(params, self._h, self._m)
            m_an = self.anhysteretic.value(h_eff)
            slope = irreversible_slope(params, m_an, self._m, delta)
            negative = slope < 0.0
            clamp = np.asarray(self.guards.clamp_negative)
            slope = np.where(negative & clamp, 0.0, slope)
            slope = slope + anhysteretic_slope_term(
                params, self.anhysteretic, h_eff
            )
            m_new = self._m + slope * dh
            self._m = np.where(active, m_new, self._m)
            self.steps += active
            self.slope_evaluations += active
            self.negative_slope_evaluations += active & negative
            with np.errstate(invalid="ignore"):
                runaway = ~np.isfinite(self._m) | (
                    np.abs(self._m) > self.divergence_limit
                )
            self.diverged |= active & runaway
        self._h = h
        return active

    def step_series(
        self, h_samples: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, dict[str, np.ndarray]]":
        """Fused sweep: advance the whole sample axis in one call.

        Returns ``(m, b, updated, extras)`` with state and counters
        exactly as per-sample :meth:`step` calls would have left them
        (bitwise on the exact NumPy backend)."""
        h_arr = check_series(h_samples, self.n_cores)
        driver = self.backend.fused_driver(self.family)
        if driver is not None:
            out = driver(self, h_arr)
            if out is not None:
                return out
        return self._step_series_vectorised(h_arr)

    def commit_fused_series(
        self,
        h_last: np.ndarray,
        m: np.ndarray,
        diverged: np.ndarray,
        steps: np.ndarray,
        negatives: np.ndarray,
    ) -> None:
        """Reassemble engine state after a compiled fused driver ran:
        adopt the final fields, magnetisations and divergence flags and
        accumulate the per-lane pathology counters — exactly the commit
        the vectorised fused loop performs."""
        self._h = h_last
        self._m = m
        self.diverged = diverged
        self.steps += steps
        self.slope_evaluations += steps
        self.negative_slope_evaluations += negatives

    def _step_series_vectorised(
        self, h_arr: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, dict[str, np.ndarray]]":
        """The backend-namespace fused loop: per-sample :meth:`step`
        operations with the per-step Python dispatch (property probes,
        ``np.full`` broadcasts, per-call ``errstate``) hoisted out."""
        xp = self.backend.xp
        n = self.n_cores
        n_samples = len(h_arr)
        h2d = as_lane_matrix(h_arr, n)

        params = self.params
        curve = self.anhysteretic
        clamp = np.asarray(self.guards.clamp_negative)
        limit = self.divergence_limit
        m_sat = params.m_sat
        h_cur = self._h
        m = self._m
        diverged = self.diverged

        m_out = xp.empty((n_samples, n))
        b_out = xp.empty((n_samples, n))
        updated_out = xp.zeros((n_samples, n), dtype=bool)
        steps = xp.zeros(n, dtype=np.int64)
        negatives = xp.zeros(n, dtype=np.int64)

        with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
            for i in range(n_samples):
                h = h2d[i]
                dh = h - h_cur
                active = (dh != 0.0) & ~diverged
                if active.any():
                    delta = xp.where(dh >= 0.0, 1.0, -1.0)
                    h_eff = effective_field(params, h_cur, m)
                    m_an = curve.value(h_eff)
                    slope = irreversible_slope(params, m_an, m, delta, xp=xp)
                    negative = slope < 0.0
                    slope = xp.where(negative & clamp, 0.0, slope)
                    slope = slope + anhysteretic_slope_term(
                        params, curve, h_eff
                    )
                    m_new = m + slope * dh
                    m = xp.where(active, m_new, m)
                    steps += active
                    negatives += active & negative
                    runaway = ~xp.isfinite(m) | (xp.abs(m) > limit)
                    diverged = diverged | (active & runaway)
                    updated_out[i] = active
                h_cur = h
                row = m_out[i]
                xp.multiply(m, m_sat, out=row)
                b_row = b_out[i]
                xp.add(h, row, out=b_row)  # B = mu0*(h + m_sat*m)
                xp.multiply(MU0, b_row, out=b_row)

        self._h = h_cur.copy()
        self._m = m
        self.diverged = diverged
        self.steps += steps
        self.slope_evaluations += steps
        self.negative_slope_evaluations += negatives
        return m_out, b_out, updated_out, {}

    def apply_field(self, h_new) -> np.ndarray:
        """Apply a field sample; return the new B [T] per core."""
        self.step(h_new)
        return self.b

    def apply_field_series(self, h_values: np.ndarray) -> np.ndarray:
        return self.trace(h_values)[2]

    def trace(
        self, h_values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Apply a series; ``m``/``b`` come back as (samples, cores)."""
        return trace_series(self, h_values)

    # -- protocol hooks ----------------------------------------------------

    def counter_totals(self) -> dict[str, np.ndarray]:
        return {
            "steps": self.steps.copy(),
            "slope_evaluations": self.slope_evaluations.copy(),
            "negative_slope_evaluations": self.negative_slope_evaluations.copy(),
            "diverged": self.diverged.astype(np.int64),
        }

    def probe_extras(self) -> dict[str, np.ndarray]:
        return {}

    def driver_step_hint(self) -> float:
        return DEFAULT_DHMAX / 4.0

    def snapshot(self) -> tuple:
        return (
            self._h.copy(),
            self._m.copy(),
            self.diverged.copy(),
            self.steps.copy(),
            self.slope_evaluations.copy(),
            self.negative_slope_evaluations.copy(),
        )

    def restore(self, snap: tuple) -> None:
        h, m, diverged, steps, evals, neg = snap
        self._h = h.copy()
        self._m = m.copy()
        self.diverged = diverged.copy()
        self.steps = steps.copy()
        self.slope_evaluations = evals.copy()
        self.negative_slope_evaluations = neg.copy()

    def __repr__(self) -> str:
        return (
            f"BatchTimeDomainModel(n_cores={self.n_cores}, "
            f"diverged={int(self.diverged.sum())})"
        )
