"""Shared lane helpers for the per-family batch engines.

Every batch engine broadcasts per-core settings the same way and
records series traces with the same step/probe loop; keeping the
validation and error wording in one place means the families cannot
drift apart.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError


def broadcast_lane(value, n: int, name: str) -> np.ndarray:
    """Coerce a scalar or length-``n`` array to one float lane array."""
    arr = np.asarray(value, dtype=float)
    if arr.ndim == 0:
        arr = np.full(n, float(arr))
    if arr.shape != (n,):
        raise ParameterError(
            f"{name} must be a scalar or a length-{n} array, got shape {arr.shape}"
        )
    return arr.copy()


def check_lane_range(start: int, stop: int, n_cores: int) -> None:
    """Validate a contiguous shard range ``[start, stop)``."""
    if not (0 <= start < stop <= n_cores):
        raise ParameterError(
            f"lane range [{start}, {stop}) outside ensemble of "
            f"{n_cores} cores"
        )


def trace_series(
    model, h_values: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Step any batch model through a series, recording ``(h, m, b)``.

    ``h_values`` is 1-D (one waveform shared by all cores) or
    ``(samples, cores)`` (one waveform per core); ``m``/``b`` come back
    as ``(samples, cores)``, ``m`` in A/m.
    """
    h_arr = np.asarray(h_values, dtype=float)
    if h_arr.ndim not in (1, 2):
        raise ParameterError(
            f"h_values must be 1-D or (samples, cores), got shape {h_arr.shape}"
        )
    if h_arr.ndim == 2 and h_arr.shape[1] != model.n_cores:
        raise ParameterError(
            f"per-core waveforms need {model.n_cores} columns, "
            f"got {h_arr.shape[1]}"
        )
    samples = h_arr.shape[0]
    m_out = np.empty((samples, model.n_cores))
    b_out = np.empty((samples, model.n_cores))
    for i in range(samples):
        model.step(h_arr[i])
        m_out[i] = model.m
        b_out[i] = model.b
    return h_arr, m_out, b_out
