"""Shared lane helpers for the per-family batch engines.

Every batch engine broadcasts per-core settings the same way and
records series traces with the same step/probe loop; keeping the
validation and error wording in one place means the families cannot
drift apart.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError


def broadcast_lane(value, n: int, name: str) -> np.ndarray:
    """Coerce a scalar or length-``n`` array to one float lane array."""
    arr = np.asarray(value, dtype=float)
    if arr.ndim == 0:
        arr = np.full(n, float(arr))
    if arr.shape != (n,):
        raise ParameterError(
            f"{name} must be a scalar or a length-{n} array, got shape {arr.shape}"
        )
    return arr.copy()


def check_lane_range(start: int, stop: int, n_cores: int) -> None:
    """Validate a contiguous shard range ``[start, stop)``."""
    if not (0 <= start < stop <= n_cores):
        raise ParameterError(
            f"lane range [{start}, {stop}) outside ensemble of "
            f"{n_cores} cores"
        )


def check_series(h_samples, n_cores: int) -> np.ndarray:
    """Validate a non-empty driver sample series for an ``n_cores`` batch.

    The shared contract of :func:`repro.batch.sweep.run_batch_series`
    and the engines' fused ``step_series`` paths: 1-D (one waveform
    shared by all cores) or ``(samples, cores)``, at least one sample,
    coerced to float.
    """
    h_arr = np.asarray(h_samples, dtype=float)
    if h_arr.ndim not in (1, 2):
        raise ParameterError(
            f"h_samples must be 1-D or (samples, cores), got shape {h_arr.shape}"
        )
    if h_arr.ndim == 2 and h_arr.shape[1] != n_cores:
        raise ParameterError(
            f"per-core waveforms need {n_cores} columns, got {h_arr.shape[1]}"
        )
    if len(h_arr) == 0:
        raise ParameterError("need at least one driver sample")
    return h_arr


def as_lane_matrix(h_arr: np.ndarray, n_cores: int) -> np.ndarray:
    """A :func:`check_series`-validated series as a contiguous
    ``(samples, cores)`` matrix.

    Shared by the fused ``step_series`` implementations that index the
    drive per lane: a 1-D shared waveform is broadcast column-wise
    (bitwise the same values every lane — exactly what the per-sample
    ``step`` paths build with ``np.full``); a 2-D drive passes through.
    """
    if h_arr.ndim == 1:
        return np.ascontiguousarray(
            np.broadcast_to(h_arr[:, None], (len(h_arr), n_cores))
        )
    return h_arr


def trace_series(
    model, h_values: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Step any batch model through a series, recording ``(h, m, b)``.

    ``h_values`` is 1-D (one waveform shared by all cores) or
    ``(samples, cores)`` (one waveform per core); ``m``/``b`` come back
    as ``(samples, cores)``, ``m`` in A/m.
    """
    h_arr = np.asarray(h_values, dtype=float)
    if h_arr.ndim not in (1, 2):
        raise ParameterError(
            f"h_values must be 1-D or (samples, cores), got shape {h_arr.shape}"
        )
    if h_arr.ndim == 2 and h_arr.shape[1] != model.n_cores:
        raise ParameterError(
            f"per-core waveforms need {model.n_cores} columns, "
            f"got {h_arr.shape[1]}"
        )
    samples = h_arr.shape[0]
    m_out = np.empty((samples, model.n_cores))
    b_out = np.empty((samples, model.n_cores))
    for i in range(samples):
        model.step(h_arr[i])
        m_out[i] = model.m
        b_out[i] = model.b
    return h_arr, m_out, b_out
