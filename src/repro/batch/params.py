"""Struct-of-arrays Jiles-Atherton parameters for the batch engine.

:class:`BatchJAParameters` holds one NumPy array per JA parameter, one
lane per ensemble member.  It is attribute-compatible with
:class:`repro.ja.parameters.JAParameters` for everything the equation
layer reads (``m_sat``, ``a``, ``k``, ``c``, ``alpha``,
``modified_shape``), so :mod:`repro.ja.equations`,
:func:`repro.ja.anhysteretic.make_anhysteretic` and the pure step
kernel accept it unchanged — that duck typing is the whole trick that
lets one kernel serve both the scalar wrappers and the vectorised
ensemble.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.batch.lanes import check_lane_range
from repro.errors import ParameterError
from repro.ja.parameters import JAParameters


@dataclass(frozen=True, slots=True)
class BatchJAParameters:
    """Immutable stacked JA parameter sets (one array lane per member).

    ``a2`` uses NaN for members without a modified-Langevin override,
    mirroring ``a2=None`` on the scalar record; ``modified_shape``
    resolves those lanes to ``a`` exactly like the scalar property.
    """

    m_sat: np.ndarray
    a: np.ndarray
    k: np.ndarray
    c: np.ndarray
    alpha: np.ndarray
    a2: np.ndarray
    names: tuple[str, ...]

    @classmethod
    def from_sequence(cls, params: Sequence[JAParameters]) -> "BatchJAParameters":
        """Stack individually validated scalar parameter sets."""
        if len(params) == 0:
            raise ParameterError("need at least one JAParameters to stack")
        for p in params:
            if not isinstance(p, JAParameters):
                raise ParameterError(
                    f"expected JAParameters members, got {type(p).__name__}"
                )
        return cls(
            m_sat=np.array([p.m_sat for p in params], dtype=float),
            a=np.array([p.a for p in params], dtype=float),
            k=np.array([p.k for p in params], dtype=float),
            c=np.array([p.c for p in params], dtype=float),
            alpha=np.array([p.alpha for p in params], dtype=float),
            a2=np.array(
                [np.nan if p.a2 is None else p.a2 for p in params], dtype=float
            ),
            names=tuple(p.name for p in params),
        )

    @property
    def modified_shape(self) -> np.ndarray:
        """Per-member shape for the modified Langevin curve (``a2`` or ``a``)."""
        return np.where(np.isnan(self.a2), self.a, self.a2)

    def member(self, index: int) -> JAParameters:
        """Rebuild the scalar parameter record of one lane."""
        a2 = float(self.a2[index])
        return JAParameters(
            m_sat=float(self.m_sat[index]),
            a=float(self.a[index]),
            k=float(self.k[index]),
            c=float(self.c[index]),
            alpha=float(self.alpha[index]),
            a2=None if np.isnan(a2) else a2,
            name=self.names[index],
        )

    def lane_slice(self, start: int, stop: int) -> "BatchJAParameters":
        """The contiguous lane range ``[start, stop)`` as a new stack.

        The shard planner's construction primitive: each array is
        copied, so the slice is independent of (and picklable without)
        the parent ensemble.
        """
        check_lane_range(start, stop, len(self))
        return BatchJAParameters(
            m_sat=self.m_sat[start:stop].copy(),
            a=self.a[start:stop].copy(),
            k=self.k[start:stop].copy(),
            c=self.c[start:stop].copy(),
            alpha=self.alpha[start:stop].copy(),
            a2=self.a2[start:stop].copy(),
            names=self.names[start:stop],
        )

    def __len__(self) -> int:
        return len(self.m_sat)

    def __iter__(self) -> Iterator[JAParameters]:
        return (self.member(i) for i in range(len(self)))


def stack_parameters(
    params: "Sequence[JAParameters] | BatchJAParameters",
) -> BatchJAParameters:
    """Coerce a parameter collection into a :class:`BatchJAParameters`."""
    if isinstance(params, BatchJAParameters):
        return params
    return BatchJAParameters.from_sequence(params)
