"""Vectorised batch-ensemble layer: every model family in lockstep.

The third layer of the architecture (see the repo README):

1. pure kernels / equation layer — :mod:`repro.core.kernel`,
   :mod:`repro.ja.equations`;
2. stateful scalar wrappers — :mod:`repro.core.model`,
   :mod:`repro.preisach.model`, :mod:`repro.baselines.time_domain`;
3. **batch ensemble engines** (this package) — N independent cores
   advanced in lockstep per driver sample via masked NumPy updates,
   each lane bitwise identical to a scalar model run, one engine per
   model family:

   * :class:`BatchTimelessModel` — timeless JA (heterogeneous params,
     ``dhmax``, guards, ``accept_equal``);
   * :class:`BatchPreisachModel` — discrete Preisach relay tensors;
   * :class:`BatchTimeDomainModel` — the classic forward-Euler dM/dH
     chain with per-lane pathology counters.

All three conform to
:class:`repro.models.protocol.BatchHysteresisModel` and are driven by
the same model-agnostic executor: :func:`sweep` for the one-call "many
cores, one schedule" workload, :func:`run_batch_series` for
heterogeneous per-core waveforms.
"""

from repro.batch.engine import BatchCounters, BatchState, BatchTimelessModel
from repro.batch.params import BatchJAParameters, stack_parameters
from repro.batch.preisach import BatchPreisachModel
from repro.batch.sweep import (
    BatchSweepResult,
    LaneTrace,
    run_batch_series,
    run_batch_sweep,
    sweep,
)
from repro.batch.time_domain import BatchTimeDomainModel

__all__ = [
    "BatchCounters",
    "BatchJAParameters",
    "BatchPreisachModel",
    "BatchState",
    "BatchSweepResult",
    "BatchTimeDomainModel",
    "BatchTimelessModel",
    "LaneTrace",
    "run_batch_series",
    "run_batch_sweep",
    "stack_parameters",
    "sweep",
]
