"""Vectorised batch-ensemble layer over the pure timeless step kernel.

The third layer of the architecture (see the repo README):

1. pure kernel — :mod:`repro.core.kernel`;
2. stateful scalar wrappers — :mod:`repro.core.integrator` /
   :mod:`repro.core.model`;
3. **batch ensemble engine** (this package) — N independent cores with
   heterogeneous parameters, ``dhmax``, guards and waveforms advanced
   in lockstep per driver sample via masked NumPy updates, each lane
   bitwise identical to a scalar model run.

Use :class:`BatchTimelessModel` when you control the stepping yourself,
:func:`sweep` for the one-call "many materials, one schedule" workload
that used to be a Python loop over models, and
:func:`run_batch_series` for heterogeneous per-core waveforms.
"""

from repro.batch.engine import BatchCounters, BatchState, BatchTimelessModel
from repro.batch.params import BatchJAParameters, stack_parameters
from repro.batch.sweep import (
    BatchSweepResult,
    run_batch_series,
    run_batch_sweep,
    sweep,
)

__all__ = [
    "BatchCounters",
    "BatchJAParameters",
    "BatchState",
    "BatchSweepResult",
    "BatchTimelessModel",
    "run_batch_series",
    "run_batch_sweep",
    "stack_parameters",
    "sweep",
]
