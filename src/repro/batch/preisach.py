"""Vectorised Preisach ensemble: N relay grids advanced in lockstep.

:class:`BatchPreisachModel` holds the relay state of N discrete
Preisach cores as one ``(cores, n_alpha, n_beta)`` tensor and switches
all cores with one masked NumPy update per driver sample.  Each lane is
**bitwise identical** to an independent
:class:`repro.preisach.model.PreisachModel` over the same samples: the
switching masks select the same cells, the written values are exact
constants (±1, 0), and the weighted relay sum reduces each core's
contiguous grid in the same pairwise order NumPy uses for the scalar
2-D sum (asserted by ``tests/test_batch_preisach.py``).

As with the timeless batch engine, the win is amortisation: one
Python-level dispatch per *sample* instead of per sample *per core*
(``benchmarks/test_bench_preisach.py`` asserts >= 5x over the scalar
loop at N = 64).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.backend import ArrayBackend, as_backend
from repro.batch.lanes import (
    as_lane_matrix,
    broadcast_lane,
    check_lane_range,
    check_series,
    trace_series,
)
from repro.constants import MU0
from repro.errors import ParameterError
from repro.preisach.model import PreisachModel


class BatchPreisachModel:
    """N discrete Preisach cores advanced in lockstep per driver sample.

    Parameters
    ----------
    weights:
        ``(cores, n_alpha, n_beta)`` relay weights; entries outside each
        lane's ``alpha >= beta`` half-plane must be zero.
    alpha_thresholds, beta_thresholds:
        ``(cores, n_alpha)`` / ``(cores, n_beta)`` up/down switching
        grids [A/m] (or 1-D, shared by all cores), strictly increasing
        per lane.
    m_sat:
        Physical magnetisation scale [A/m], scalar or one per core.

    Cores must share the grid *shape* (the lockstep tensor requires it)
    but not the grid values or weights — ensembles of independently
    identified cores are the intended workload.
    """

    family = "preisach"

    def __init__(
        self,
        weights: np.ndarray,
        alpha_thresholds: np.ndarray,
        beta_thresholds: np.ndarray,
        m_sat,
        backend: "ArrayBackend | str | None" = None,
    ) -> None:
        self.backend = as_backend(backend)
        weights = np.asarray(weights, dtype=float)
        if weights.ndim != 3:
            raise ParameterError(
                f"weights must be (cores, n_alpha, n_beta), got shape {weights.shape}"
            )
        n, n_alpha, n_beta = weights.shape
        alpha = np.asarray(alpha_thresholds, dtype=float)
        beta = np.asarray(beta_thresholds, dtype=float)
        if alpha.ndim == 1:
            alpha = np.broadcast_to(alpha, (n, len(alpha))).copy()
        if beta.ndim == 1:
            beta = np.broadcast_to(beta, (n, len(beta))).copy()
        if alpha.shape != (n, n_alpha) or beta.shape != (n, n_beta):
            raise ParameterError(
                f"threshold grids {alpha.shape}/{beta.shape} do not match "
                f"weights {weights.shape}"
            )
        if np.any(np.diff(alpha, axis=1) <= 0) or np.any(np.diff(beta, axis=1) <= 0):
            raise ParameterError("threshold grids must strictly increase per lane")
        if np.any(weights < 0.0):
            raise ParameterError("Preisach weights must be non-negative")
        self.m_sat = broadcast_lane(m_sat, n, "m_sat")
        if not (np.isfinite(self.m_sat).all() and (self.m_sat > 0.0).all()):
            raise ParameterError(
                f"m_sat lanes must be finite and > 0, got {self.m_sat!r}"
            )

        valid = alpha[:, :, None] >= beta[:, None, :]
        if np.any(weights[~valid] != 0.0):
            raise ParameterError(
                "weights outside the alpha >= beta half-plane must be zero"
            )
        totals = np.sum(weights, axis=(1, 2))
        if np.any(totals <= 0.0):
            raise ParameterError("total Preisach weight must be positive per lane")

        self.weights = weights
        self.alpha_thresholds = alpha
        self.beta_thresholds = beta
        self._valid = valid
        self._state = np.zeros_like(weights)
        self._h = np.zeros(n)
        self._m_cache: np.ndarray | None = None
        self._switch_events = np.zeros(n, dtype=np.int64)
        self.reset()

    # -- construction helpers ---------------------------------------------

    @classmethod
    def from_scalar_models(
        cls, models: "Sequence[PreisachModel]"
    ) -> "BatchPreisachModel":
        """Stack live scalar Preisach models into one batch, adopting
        their relay state (lanes map to models by position)."""
        if len(models) == 0:
            raise ParameterError("need at least one model to stack")
        shapes = {m.weights.shape for m in models}
        if len(shapes) != 1:
            raise ParameterError(
                f"cannot stack Preisach grids of different shapes: {sorted(shapes)}"
            )
        batch = cls(
            weights=np.stack([m.weights for m in models]),
            alpha_thresholds=np.stack([m.alpha_thresholds for m in models]),
            beta_thresholds=np.stack([m.beta_thresholds for m in models]),
            m_sat=np.array([m.m_sat for m in models]),
        )
        batch.adopt_states(models)
        return batch

    def adopt_states(self, models: "Sequence[PreisachModel]") -> None:
        """Copy each scalar model's live relay state into the lanes."""
        if len(models) != self.n_cores:
            raise ParameterError(
                f"need one model per lane ({self.n_cores}), got {len(models)}"
            )
        for i, model in enumerate(models):
            state, h = model.snapshot()
            self._state[i] = state
            self._h[i] = h
        self._m_cache = None

    def write_back_to_models(self, models: "Sequence[PreisachModel]") -> None:
        """Copy lane relay state back onto scalar models (the inverse of
        :meth:`adopt_states`)."""
        for i, model in enumerate(models):
            model.restore((self._state[i], float(self._h[i])))

    # -- shard construction ------------------------------------------------

    def shard_payload(self, start: int, stop: int) -> dict:
        """Picklable construction payload for lanes ``[start, stop)``
        (grids and weights only, no relay state — a rebuilt shard starts
        from the demagnetised staircase)."""
        check_lane_range(start, stop, self.n_cores)
        return {
            "weights": self.weights[start:stop].copy(),
            "alpha_thresholds": self.alpha_thresholds[start:stop].copy(),
            "beta_thresholds": self.beta_thresholds[start:stop].copy(),
            "m_sat": self.m_sat[start:stop].copy(),
            "backend": self.backend.name,
        }

    @classmethod
    def from_shard_payload(cls, payload: dict) -> "BatchPreisachModel":
        """Rebuild a (sub-)ensemble from a :meth:`shard_payload` dict."""
        return cls(**payload)

    def shard(self, start: int, stop: int) -> "BatchPreisachModel":
        """A freshly reset batch over lanes ``[start, stop)`` — bitwise
        identical per lane to this ensemble after a reset (the per-core
        relay sum reduces each lane's own contiguous grid, so slicing
        cannot change it)."""
        return type(self).from_shard_payload(self.shard_payload(start, stop))

    def use_backend(
        self, backend: "ArrayBackend | str | None"
    ) -> "BatchPreisachModel":
        """Switch the array backend (state is untouched); returns self."""
        self.backend = as_backend(backend)
        return self

    # -- state access -----------------------------------------------------

    @property
    def n_cores(self) -> int:
        return len(self.weights)

    def __len__(self) -> int:
        return self.n_cores

    @property
    def relay_count(self) -> int:
        """Valid relays per core (shared grid shape, lane 0's count)."""
        return int(np.sum(self._valid[0]))

    @property
    def h(self) -> np.ndarray:
        """Currently applied field per core [A/m]."""
        return self._h

    @property
    def m_normalised(self) -> np.ndarray:
        """Weighted relay sum per core (see the scalar docstring for why
        it is deliberately not divided by the total weight)."""
        if self._m_cache is None:
            self._m_cache = np.sum(self.weights * self._state, axis=(1, 2))
        return self._m_cache.copy()

    @property
    def m(self) -> np.ndarray:
        """Magnetisation per core [A/m]."""
        return self.m_normalised * self.m_sat

    @property
    def b(self) -> np.ndarray:
        """Flux density ``mu0 * (H + M)`` per core [T]."""
        return MU0 * (self._h + self.m)

    # -- stepping ---------------------------------------------------------

    def reset(self) -> None:
        """Demagnetised staircase per lane: relays with ``alpha + beta < 0``
        up — the AC-demagnetised state of the scalar model."""
        up = (
            self.alpha_thresholds[:, :, None] + self.beta_thresholds[:, None, :]
        ) < 0.0
        self._state = np.where(up, 1.0, -1.0) * self._valid
        self._h = np.zeros(self.n_cores)
        self._switch_events[:] = 0
        self._m_cache = None

    def begin_series(self, h_initial) -> None:
        """Protocol hook: a fresh series starts from the demagnetised
        staircase; the relays carry no notion of an initial field, so
        ``h_initial`` is ignored and the first driver sample switches
        from the staircase (exactly like a scalar ``reset`` + trace)."""
        del h_initial
        self.reset()

    def saturate(self, positive=True) -> None:
        """Jump lanes to positive (or negative) saturation; ``positive``
        may be a scalar or one bool per core."""
        pos = np.asarray(positive, dtype=bool)
        if pos.ndim == 0:
            pos = np.full(self.n_cores, bool(pos))
        elif pos.shape != (self.n_cores,):
            raise ParameterError(
                f"positive must be a bool or length-{self.n_cores} array, "
                f"got shape {pos.shape}"
            )
        value = np.where(pos, 1.0, -1.0)
        self._state = value[:, None, None] * self._valid
        self._h = np.where(
            pos, self.alpha_thresholds[:, -1], self.beta_thresholds[:, 0]
        )
        self._m_cache = None

    def step(self, h_new) -> np.ndarray:
        """Apply one field sample to every lane (scalar = shared).

        Rising lanes switch **up** every relay with ``alpha <= H``,
        falling lanes switch **down** every relay with ``beta >= H`` —
        the same masked row/column writes as the scalar model, batched
        over the leading core axis.  Returns the per-lane mask of cores
        whose magnetisation changed.
        """
        n = self.n_cores
        h = np.asarray(h_new, dtype=float)
        if h.ndim == 0:
            h = np.full(n, float(h))
        elif h.shape != (n,):
            raise ParameterError(
                f"h_new must be a scalar or a length-{n} array, got {h.shape}"
            )
        if not np.isfinite(h).all():
            raise ParameterError(f"h must be finite, got {h!r}")

        m_before = self.m_normalised
        state = self._state
        rising = h > self._h
        if rising.any():
            up = rising[:, None, None] & (
                self.alpha_thresholds[:, :, None] <= h[:, None, None]
            )
            np.copyto(state, 1.0, where=up & self._valid)
            np.copyto(state, 0.0, where=up & ~self._valid)
        falling = h < self._h
        if falling.any():
            down = falling[:, None, None] & (
                self.beta_thresholds[:, None, :] >= h[:, None, None]
            )
            np.copyto(state, -1.0, where=down & self._valid)
            np.copyto(state, 0.0, where=down & ~self._valid)
        self._h = h.copy()
        self._m_cache = None
        updated = self.m_normalised != m_before
        self._switch_events += updated
        return updated

    def step_series(
        self, h_samples: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, dict[str, np.ndarray]]":
        """Fused sweep: advance the whole sample axis in one call.

        Returns ``(m, b, updated, extras)`` with state and counters
        exactly as per-sample :meth:`step` calls would have left them
        (bitwise on the exact NumPy backend — the relay sum reduces
        each lane's own contiguous grid in the same pairwise order).
        """
        h_arr = check_series(h_samples, self.n_cores)
        driver = self.backend.fused_driver(self.family)
        if driver is not None:
            out = driver(self, h_arr)
            if out is not None:
                return out
        return self._step_series_vectorised(h_arr)

    # -- compiled fused-driver state access --------------------------------

    def relay_state(self) -> np.ndarray:
        """The live ``(cores, n_alpha, n_beta)`` relay tensor, advanced
        in place by compiled fused drivers (exactly as the per-sample
        masked writes advance it)."""
        return self._state

    def relay_validity(self) -> np.ndarray:
        """The ``alpha >= beta`` half-plane mask of the relay tensor."""
        return self._valid

    def commit_fused_series(
        self,
        h_last: np.ndarray,
        switches: np.ndarray,
    ) -> None:
        """Reassemble engine state after a compiled fused driver ran:
        adopt the final applied fields and accumulate the per-lane
        switch events (the relay tensor itself was advanced in place
        via :meth:`relay_state`).  The weighted-sum cache is dropped —
        not seeded with the driver's own (sequentially reduced) sum —
        so the next per-sample probe recomputes NumPy's pairwise sum
        from the exactly-advanced relay tensor; caching the sequential
        value would make a no-op follow-up ``step`` report phantom
        ``updated`` lanes from 1-ulp summation-order noise."""
        self._h = h_last
        self._m_cache = None
        self._switch_events += switches

    def _step_series_vectorised(
        self, h_arr: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, dict[str, np.ndarray]]":
        """The backend-namespace fused loop: the per-sample switching
        and reduction operations with the per-sample Python dispatch
        (property probes, cache bookkeeping, per-step ``np.full``)
        hoisted out of the loop."""
        xp = self.backend.xp
        if not np.isfinite(h_arr).all():
            raise ParameterError(f"h must be finite, got {h_arr!r}")
        n = self.n_cores
        n_samples = len(h_arr)
        h2d = as_lane_matrix(h_arr, n)

        weights = self.weights
        state = self._state
        valid = self._valid
        invalid = ~valid
        alpha3 = self.alpha_thresholds[:, :, None]
        beta3 = self.beta_thresholds[:, None, :]
        m_sat = self.m_sat
        h_cur = self._h
        m_norm = self.m_normalised

        m_out = xp.empty((n_samples, n))
        b_out = xp.empty((n_samples, n))
        updated_out = xp.empty((n_samples, n), dtype=bool)
        switches = xp.zeros(n, dtype=np.int64)

        for i in range(n_samples):
            h = h2d[i]
            h3 = h[:, None, None]
            rising = h > h_cur
            if rising.any():
                up = rising[:, None, None] & (alpha3 <= h3)
                np.copyto(state, 1.0, where=up & valid)
                np.copyto(state, 0.0, where=up & invalid)
            falling = h < h_cur
            if falling.any():
                down = falling[:, None, None] & (beta3 >= h3)
                np.copyto(state, -1.0, where=down & valid)
                np.copyto(state, 0.0, where=down & invalid)
            h_cur = h
            m_before = m_norm
            m_norm = xp.sum(weights * state, axis=(1, 2))
            updated = m_norm != m_before
            switches += updated
            updated_out[i] = updated
            m_phys = m_norm * m_sat
            m_out[i] = m_phys
            b_out[i] = MU0 * (h + m_phys)

        self._h = h_cur.copy()
        self._m_cache = m_norm
        self._switch_events += switches
        return m_out, b_out, updated_out, {}

    def apply_field(self, h_new) -> np.ndarray:
        """Apply a field sample; return the new B [T] per core (the
        batch twin of the scalar ``apply_field``)."""
        self.step(h_new)
        return self.b

    def apply_field_series(self, h_values: np.ndarray) -> np.ndarray:
        """Apply a series; return B [T] of shape (samples, cores)."""
        return self.trace(h_values)[2]

    def trace(
        self, h_values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Apply a series and return ``(h, m, b)``; ``m``/``b`` are
        ``(samples, cores)``, ``m`` in A/m.  ``h_values`` may be 1-D
        (shared waveform) or ``(samples, cores)``."""
        return trace_series(self, h_values)

    # -- protocol hooks ----------------------------------------------------

    def counter_totals(self) -> dict[str, np.ndarray]:
        """Per-core totals: ``switch_events`` counts samples on which a
        lane's magnetisation changed."""
        return {"switch_events": self._switch_events.copy()}

    def probe_extras(self) -> dict[str, np.ndarray]:
        return {}

    def driver_step_hint(self) -> float:
        """One cell width of the finest lane: resolves every relay."""
        return float(
            min(
                np.min(np.diff(self.alpha_thresholds, axis=1)),
                np.min(np.diff(self.beta_thresholds, axis=1)),
            )
        )

    def snapshot(self) -> tuple:
        return (
            self._state.copy(),
            self._h.copy(),
            self._switch_events.copy(),
        )

    def restore(self, snap: tuple) -> None:
        state, h, switches = snap
        self._state = state.copy()
        self._h = h.copy()
        self._switch_events = switches.copy()
        self._m_cache = None

    def __repr__(self) -> str:
        return (
            f"BatchPreisachModel(n_cores={self.n_cores}, "
            f"{self.relay_count} relays/core)"
        )
