"""Ensemble DC-sweep driver: one waypoint walk, N cores, full records.

The batch counterpart of :mod:`repro.core.sweep`: drives a
:class:`repro.batch.engine.BatchTimelessModel` along a piecewise-linear
waypoint path (or an explicit per-core sample matrix) and records every
lane's trajectory.  :meth:`BatchSweepResult.core` slices one lane back
out as an ordinary :class:`repro.core.sweep.SweepResult`, so downstream
analysis (loop extraction, stability audits, metrics) is reused
unchanged — the experiments that used to loop ``run_sweep`` over N
models now make one :func:`sweep` call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.batch.engine import BatchTimelessModel
from repro.constants import DEFAULT_DHMAX
from repro.core.slope import SlopeGuards
from repro.core.sweep import SweepResult, waypoint_samples
from repro.errors import ParameterError
from repro.ja.anhysteretic import Anhysteretic
from repro.ja.parameters import JAParameters


@dataclass(frozen=True, slots=True)
class BatchSweepResult:
    """Recorded trajectories of one lockstep ensemble sweep.

    ``h`` is the driver sample vector (1-D when shared by all cores,
    else ``(samples, cores)``); ``m``/``b``/``m_an``/``updated`` are
    ``(samples, cores)``; the counters are per-core totals.
    """

    h: np.ndarray
    m: np.ndarray
    b: np.ndarray
    m_an: np.ndarray
    updated: np.ndarray
    euler_steps: np.ndarray
    clamped_slopes: np.ndarray
    dropped_increments: np.ndarray

    def __len__(self) -> int:
        return self.m.shape[0]

    @property
    def n_cores(self) -> int:
        return self.m.shape[1]

    @property
    def finite_lanes(self) -> np.ndarray:
        """Per-core bool: True where the whole lane stayed finite."""
        return (
            np.isfinite(self.m).all(axis=0)
            & np.isfinite(self.b).all(axis=0)
            & np.isfinite(self.h).all(axis=0 if self.h.ndim == 2 else None)
        )

    @property
    def finite(self) -> bool:
        """True when every lane stayed finite."""
        return bool(np.all(self.finite_lanes))

    def h_of(self, index: int) -> np.ndarray:
        """Driver samples seen by one core."""
        return self.h[:, index] if self.h.ndim == 2 else self.h

    def core(self, index: int) -> SweepResult:
        """One lane as an ordinary scalar :class:`SweepResult`."""
        return SweepResult(
            h=self.h_of(index),
            m=self.m[:, index],
            b=self.b[:, index],
            m_an=self.m_an[:, index],
            updated=self.updated[:, index],
            euler_steps=int(self.euler_steps[index]),
            clamped_slopes=int(self.clamped_slopes[index]),
            dropped_increments=int(self.dropped_increments[index]),
        )

    def cores(self) -> "list[SweepResult]":
        return [self.core(i) for i in range(self.n_cores)]


def run_batch_series(
    batch: BatchTimelessModel,
    h_samples: np.ndarray,
    reset: bool = True,
) -> BatchSweepResult:
    """Drive the ensemble over explicit driver samples and record all lanes.

    ``h_samples`` is 1-D (shared waveform) or ``(samples, cores)``
    (heterogeneous waveforms, still advanced in lockstep).
    """
    h_arr = np.asarray(h_samples, dtype=float)
    if h_arr.ndim not in (1, 2):
        raise ParameterError(
            f"h_samples must be 1-D or (samples, cores), got shape {h_arr.shape}"
        )
    if len(h_arr) == 0:
        raise ParameterError("need at least one driver sample")
    if reset:
        batch.reset(h_initial=h_arr[0])

    counters = batch.counters
    steps_before = counters.euler_steps.copy()
    clamped_before = counters.clamped_slopes.copy()
    dropped_before = counters.dropped_increments.copy()

    samples, n = h_arr.shape[0], batch.n_cores
    m_out = np.empty((samples, n))
    b_out = np.empty((samples, n))
    man_out = np.empty((samples, n))
    updated = np.zeros((samples, n), dtype=bool)
    for i in range(samples):
        out = batch.step(h_arr[i])
        updated[i] = out.accepted
        m_out[i] = batch.m
        b_out[i] = batch.b
        man_out[i] = batch.state.m_an

    return BatchSweepResult(
        h=h_arr,
        m=m_out,
        b=b_out,
        m_an=man_out,
        updated=updated,
        euler_steps=counters.euler_steps - steps_before,
        clamped_slopes=counters.clamped_slopes - clamped_before,
        dropped_increments=counters.dropped_increments - dropped_before,
    )


def run_batch_sweep(
    batch: BatchTimelessModel,
    waypoints: Sequence[float],
    driver_step: float | None = None,
    reset: bool = True,
) -> BatchSweepResult:
    """Drive the ensemble along one shared waypoint path.

    ``driver_step`` defaults to a quarter of the *smallest* lane
    ``dhmax`` — the batch generalisation of the scalar driver default,
    so the finest core still sees the accumulate-until-threshold event
    semantics.  Pass it explicitly to reproduce a scalar run of a
    specific model bitwise (``driver_step = model.dhmax / 4``).
    """
    if driver_step is None:
        driver_step = float(np.min(batch.dhmax)) / 4.0
    h_samples = waypoint_samples(waypoints, driver_step)
    return run_batch_series(batch, h_samples, reset=reset)


def sweep(
    params: "Sequence[JAParameters] | object",
    waypoints: Sequence[float],
    dhmax: "float | np.ndarray" = DEFAULT_DHMAX,
    driver_step: float | None = None,
    anhysteretic: Anhysteretic | None = None,
    guards: "SlopeGuards | Sequence[SlopeGuards]" = SlopeGuards(),
    accept_equal: "bool | Sequence[bool] | np.ndarray" = False,
) -> BatchSweepResult:
    """One-call ensemble sweep: build the batch model, walk the waypoints.

    This is the API that replaces per-model ``run_sweep`` loops: give it
    the stacked parameter sets (plus optional per-core ``dhmax`` /
    guards / ``accept_equal``) and one waypoint schedule, get every
    trajectory back in a single lockstep pass.
    """
    batch = BatchTimelessModel(
        params,
        dhmax=dhmax,
        anhysteretic=anhysteretic,
        guards=guards,
        accept_equal=accept_equal,
    )
    return run_batch_sweep(batch, waypoints, driver_step=driver_step)
