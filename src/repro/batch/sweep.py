"""Model-agnostic lockstep executor: one waypoint walk, N cores, any family.

The batch counterpart of :mod:`repro.core.sweep`, generalised from the
JA-specific engine of PR 1 into an executor for **any** batch model
conforming to :class:`repro.models.protocol.BatchHysteresisModel` —
timeless JA, discrete Preisach, classic time-domain — and recording
whatever the family exposes: the shared ``h``/``m``/``b`` trajectory,
per-sample ``extras`` channels (e.g. the timeless ``m_an``) and
per-core ``counters`` totals (Euler steps, relay switch events,
negative-slope evaluations, ...).

:meth:`BatchSweepResult.core` slices one timeless lane back out as an
ordinary :class:`repro.core.sweep.SweepResult` — columns, counters and
dtypes exactly as a scalar run produces — so downstream analysis (loop
extraction, stability audits, metrics) is reused unchanged;
:meth:`BatchSweepResult.lane` is the family-agnostic equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.batch.engine import BatchTimelessModel
from repro.batch.lanes import check_series
from repro.constants import DEFAULT_DHMAX
from repro.core.slope import SlopeGuards
from repro.core.sweep import SweepResult, waypoint_samples
from repro.errors import ParameterError
from repro.ja.anhysteretic import Anhysteretic
from repro.models.protocol import is_batch_model, updated_mask


@dataclass(frozen=True, slots=True)
class LaneTrace:
    """One lane of a batch run, family-agnostic.

    The generic view :meth:`BatchSweepResult.lane` returns for model
    families whose counters do not map onto the timeless
    :class:`~repro.core.sweep.SweepResult` record.
    """

    h: np.ndarray
    m: np.ndarray
    b: np.ndarray
    updated: np.ndarray
    extras: dict[str, np.ndarray]
    counters: dict[str, int]
    family: str

    def __len__(self) -> int:
        return len(self.h)

    @property
    def finite(self) -> bool:
        return bool(
            np.isfinite(self.h).all()
            and np.isfinite(self.m).all()
            and np.isfinite(self.b).all()
        )


@dataclass(frozen=True, slots=True)
class BatchSweepResult:
    """Recorded trajectories of one lockstep ensemble run.

    ``h`` is the driver sample vector (1-D when shared by all cores,
    else ``(samples, cores)``); ``m``/``b``/``updated`` are
    ``(samples, cores)``.  ``extras`` holds family-specific per-sample
    channels (``(samples, cores)`` each); ``counters`` holds the
    family's per-core totals over this run.  The timeless family's
    channels stay reachable through the historic attribute names
    (``m_an``, ``euler_steps``, ``clamped_slopes``,
    ``dropped_increments``).
    """

    h: np.ndarray
    m: np.ndarray
    b: np.ndarray
    updated: np.ndarray
    extras: dict[str, np.ndarray] = field(default_factory=dict)
    counters: dict[str, np.ndarray] = field(default_factory=dict)
    family: str = "timeless"

    def __len__(self) -> int:
        return self.m.shape[0]

    @property
    def n_cores(self) -> int:
        return self.m.shape[1]

    def _channel(self, mapping: dict, key: str) -> np.ndarray:
        try:
            return mapping[key]
        except KeyError:
            raise ParameterError(
                f"the {self.family!r} family records no {key!r} channel; "
                f"available: {sorted(self.extras)} extras, "
                f"{sorted(self.counters)} counters"
            )

    @property
    def m_an(self) -> np.ndarray:
        """Anhysteretic channel (timeless family)."""
        return self._channel(self.extras, "m_an")

    @property
    def euler_steps(self) -> np.ndarray:
        return self._channel(self.counters, "euler_steps")

    @property
    def clamped_slopes(self) -> np.ndarray:
        return self._channel(self.counters, "clamped_slopes")

    @property
    def dropped_increments(self) -> np.ndarray:
        return self._channel(self.counters, "dropped_increments")

    @property
    def finite_lanes(self) -> np.ndarray:
        """Per-core bool: True where the whole lane stayed finite."""
        return (
            np.isfinite(self.m).all(axis=0)
            & np.isfinite(self.b).all(axis=0)
            & np.isfinite(self.h).all(axis=0 if self.h.ndim == 2 else None)
        )

    @property
    def finite(self) -> bool:
        """True when every lane stayed finite."""
        return bool(np.all(self.finite_lanes))

    def h_of(self, index: int) -> np.ndarray:
        """Driver samples seen by one core."""
        return self.h[:, index] if self.h.ndim == 2 else self.h

    def lane(self, index: int) -> LaneTrace:
        """One lane as a family-agnostic :class:`LaneTrace`."""
        return LaneTrace(
            h=self.h_of(index),
            m=self.m[:, index],
            b=self.b[:, index],
            updated=self.updated[:, index],
            extras={k: v[:, index] for k, v in self.extras.items()},
            counters={k: int(v[index]) for k, v in self.counters.items()},
            family=self.family,
        )

    def core(self, index: int) -> SweepResult:
        """One timeless lane as an ordinary scalar :class:`SweepResult`
        (exactly the record a scalar ``run_sweep`` produces).  Other
        families use :meth:`lane`."""
        if self.family != "timeless":
            raise ParameterError(
                f"core() reconstructs the timeless SweepResult record; "
                f"this is a {self.family!r} run — use lane({index})"
            )
        return SweepResult(
            h=self.h_of(index),
            m=self.m[:, index],
            b=self.b[:, index],
            m_an=self.m_an[:, index],
            updated=self.updated[:, index],
            euler_steps=int(self.euler_steps[index]),
            clamped_slopes=int(self.clamped_slopes[index]),
            dropped_increments=int(self.dropped_increments[index]),
        )

    def cores(self) -> "list[SweepResult]":
        return [self.core(i) for i in range(self.n_cores)]

    def lanes(self) -> "list[LaneTrace]":
        return [self.lane(i) for i in range(self.n_cores)]


def run_batch_series(
    batch,
    h_samples: np.ndarray,
    reset: bool = True,
    fused: bool | None = None,
) -> BatchSweepResult:
    """Drive any batch model over explicit driver samples, recording all
    lanes.

    ``batch`` is any :class:`repro.models.protocol.BatchHysteresisModel`;
    ``h_samples`` is 1-D (shared waveform) or ``(samples, cores)``
    (heterogeneous waveforms, still advanced in lockstep).  The executor
    never looks inside the model: it steps, probes ``m``/``b`` and the
    family's extra channels, and differences the family's counter
    totals over the run.

    ``fused`` selects the sweep path: ``None`` (default) uses the
    model's fused ``step_series`` — one call advancing the whole sample
    axis, no per-sample Python round-trip — whenever the model
    implements it, falling back to the per-sample loop otherwise;
    ``True`` requires the fused path, ``False`` forces the per-sample
    loop (the reference the fused path is pinned against).  On the
    exact NumPy backend both paths are bitwise identical.
    """
    h_arr = check_series(h_samples, batch.n_cores)
    if reset:
        batch.begin_series(h_arr[0])

    totals_before = batch.counter_totals()

    has_fused = callable(getattr(batch, "step_series", None))
    if fused is True and not has_fused:
        raise ParameterError(
            f"fused=True but {type(batch).__name__} implements no "
            "step_series; use fused=None to fall back automatically"
        )
    if has_fused and fused is not False:
        m_out, b_out, updated, extras_out = batch.step_series(h_arr)
    else:
        samples, n = h_arr.shape[0], batch.n_cores
        m_out = np.empty((samples, n))
        b_out = np.empty((samples, n))
        updated = np.zeros((samples, n), dtype=bool)
        # Allocate each extras channel from its probed dtype: a family
        # may record integer or boolean channels, which a hard-coded
        # float64 buffer would silently coerce.
        extras_out: dict[str, np.ndarray] = {
            key: np.empty((samples, n), dtype=np.asarray(value).dtype)
            for key, value in batch.probe_extras().items()
        }
        for i in range(samples):
            out = batch.step(h_arr[i])
            updated[i] = updated_mask(out, n)
            m_out[i] = batch.m
            b_out[i] = batch.b
            if extras_out:
                for key, value in batch.probe_extras().items():
                    extras_out[key][i] = value

    totals_after = batch.counter_totals()
    # Union of keys with zero defaults: a family may register a counter
    # lazily after its first step (absent from totals_before), and a
    # counter present only before the run must still be reported (as a
    # negative delta) rather than silently dropped.
    counters = {
        key: totals_after.get(key, 0) - totals_before.get(key, 0)
        for key in sorted(totals_before.keys() | totals_after.keys())
    }

    return BatchSweepResult(
        h=h_arr,
        m=m_out,
        b=b_out,
        updated=updated,
        extras=extras_out,
        counters=counters,
        family=batch.family,
    )


def run_batch_sweep(
    batch,
    waypoints: Sequence[float],
    driver_step: float | None = None,
    reset: bool = True,
) -> BatchSweepResult:
    """Drive any batch model along one shared waypoint path.

    ``driver_step`` defaults to the model's own
    :meth:`~repro.models.protocol.BatchHysteresisModel.driver_step_hint`
    (for the timeless family: a quarter of the smallest lane ``dhmax``,
    exactly the scalar driver default).  Pass it explicitly to reproduce
    a scalar run of a specific model bitwise.
    """
    if driver_step is None:
        driver_step = batch.driver_step_hint()
    h_samples = waypoint_samples(waypoints, driver_step)
    return run_batch_series(batch, h_samples, reset=reset)


def sweep(
    params,
    waypoints: Sequence[float],
    dhmax: "float | np.ndarray" = DEFAULT_DHMAX,
    driver_step: float | None = None,
    anhysteretic: Anhysteretic | None = None,
    guards: "SlopeGuards | Sequence[SlopeGuards]" = SlopeGuards(),
    accept_equal: "bool | Sequence[bool] | np.ndarray" = False,
) -> BatchSweepResult:
    """One-call ensemble sweep: build (or take) the batch model, walk the
    waypoints.

    ``params`` is either a ready batch model of **any** family (the
    timeless construction keywords then must stay at their defaults —
    the model already carries its configuration) or a sequence of
    :class:`~repro.ja.parameters.JAParameters` /
    :class:`~repro.batch.params.BatchJAParameters` to stack into a
    timeless ensemble — the API that replaces per-model ``run_sweep``
    loops.
    """
    if is_batch_model(params):
        overridden = []
        if not (np.ndim(dhmax) == 0 and dhmax == DEFAULT_DHMAX):
            overridden.append("dhmax")
        if anhysteretic is not None:
            overridden.append("anhysteretic")
        if not (
            isinstance(guards, SlopeGuards)
            and guards.clamp_negative is True
            and guards.drop_opposing is True
        ):
            overridden.append("guards")
        if not (np.ndim(accept_equal) == 0 and bool(accept_equal) is False):
            overridden.append("accept_equal")
        if overridden:
            raise ParameterError(
                "sweep() received a ready batch model together with "
                f"{', '.join(overridden)}; a batch model carries its own "
                "configuration, so these keywords would be silently "
                "ignored — construct the model with them instead"
            )
        return run_batch_sweep(params, waypoints, driver_step=driver_step)
    batch = BatchTimelessModel(
        params,
        dhmax=dhmax,
        anhysteretic=anhysteretic,
        guards=guards,
        accept_equal=accept_equal,
    )
    return run_batch_sweep(batch, waypoints, driver_step=driver_step)
