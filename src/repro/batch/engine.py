"""Vectorised batch-ensemble engine: N timeless cores in lockstep.

:class:`BatchTimelessModel` advances N independent Jiles-Atherton cores
— heterogeneous parameters, ``dhmax`` thresholds, guard combinations and
``accept_equal`` variants — one driver sample at a time, with all N
lanes updated by a single call into the pure step kernel
(:func:`repro.core.kernel.step_kernel`) using masked NumPy updates.

Each lane is **bitwise identical** to an independent
:class:`repro.core.model.TimelessJAModel` run over the same samples:
the kernel's array path performs exactly the scalar path's IEEE
operations per lane (asserted by ``tests/test_batch_equivalence.py``).
The batch engine therefore is not an approximation — it is the scalar
model, amortised: one Python-level step dispatch per *sample* instead
of per sample *per core*, which is where the order-of-magnitude
throughput win over the scalar loop comes from
(``benchmarks/test_bench_batch.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.backend import ArrayBackend, as_backend
from repro.batch.lanes import broadcast_lane, check_lane_range, check_series, trace_series
from repro.batch.params import BatchJAParameters, stack_parameters
from repro.constants import DEFAULT_DHMAX, MU0, TWO_OVER_PI
from repro.core.kernel import StepInputs, StepOutputs, refresh_algebraic, step_kernel
from repro.core.slope import SlopeGuards, slice_guards, stack_guards
from repro.errors import ParameterError
from repro.ja.anhysteretic import (
    Anhysteretic,
    ModifiedLangevinAnhysteretic,
    make_anhysteretic,
    slice_anhysteretic,
)
from repro.ja.equations import flux_density
from repro.ja.parameters import JAParameters

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.model import TimelessJAModel


@dataclass(slots=True)
class BatchState:
    """Struct-of-arrays mirror of :class:`repro.core.state.JAState`."""

    h_applied: np.ndarray
    h_accepted: np.ndarray
    m_irr: np.ndarray
    m_rev: np.ndarray
    m_an: np.ndarray
    m_total: np.ndarray
    delta: np.ndarray
    updates: np.ndarray

    @classmethod
    def zeros(cls, n: int) -> "BatchState":
        return cls(
            h_applied=np.zeros(n),
            h_accepted=np.zeros(n),
            m_irr=np.zeros(n),
            m_rev=np.zeros(n),
            m_an=np.zeros(n),
            m_total=np.zeros(n),
            delta=np.zeros(n),
            updates=np.zeros(n, dtype=np.int64),
        )

    def is_finite(self) -> np.ndarray:
        """Per-lane divergence check (all float members finite)."""
        return (
            np.isfinite(self.h_applied)
            & np.isfinite(self.h_accepted)
            & np.isfinite(self.m_irr)
            & np.isfinite(self.m_rev)
            & np.isfinite(self.m_an)
            & np.isfinite(self.m_total)
        )

    def copy(self) -> "BatchState":
        """Independent deep copy (lane arrays duplicated)."""
        return BatchState(
            **{
                name: getattr(self, name).copy()
                for name in self.__dataclass_fields__
            }
        )


@dataclass(slots=True)
class BatchCounters:
    """Struct-of-arrays mirror of
    :class:`repro.core.integrator.IntegratorCounters` plus the
    discretiser statistics (one lane per core)."""

    field_events: np.ndarray
    euler_steps: np.ndarray
    clamped_slopes: np.ndarray
    dropped_increments: np.ndarray
    observations: np.ndarray
    acceptances: np.ndarray

    @classmethod
    def zeros(cls, n: int) -> "BatchCounters":
        return cls(*(np.zeros(n, dtype=np.int64) for _ in range(6)))

    def reset(self) -> None:
        for arr in (
            self.field_events,
            self.euler_steps,
            self.clamped_slopes,
            self.dropped_increments,
            self.observations,
            self.acceptances,
        ):
            arr[:] = 0

    def copy(self) -> "BatchCounters":
        """Independent deep copy (lane arrays duplicated)."""
        return BatchCounters(
            **{
                name: getattr(self, name).copy()
                for name in self.__dataclass_fields__
            }
        )


class BatchTimelessModel:
    """N timeless JA cores advanced in lockstep per driver sample.

    Conforms to :class:`repro.models.protocol.BatchHysteresisModel`, so
    the model-agnostic executor (:mod:`repro.batch.sweep`) and the
    scenario layer drive it interchangeably with the Preisach and
    time-domain batch models.

    Parameters
    ----------
    params:
        The ensemble's materials: a sequence of
        :class:`repro.ja.parameters.JAParameters` (heterogeneous is the
        point) or an already stacked :class:`BatchJAParameters`.
    dhmax:
        Field-increment threshold [A/m]; scalar or one per core.
    anhysteretic:
        Anhysteretic curve evaluated lane-wise; defaults to the paper's
        modified Langevin built from the stacked ``a2``/``a`` shapes.
    guards:
        One :class:`SlopeGuards` shared by all cores, or a sequence of
        per-core guard settings (stacked to boolean arrays).
    accept_equal:
        Discretiser ``>=`` variant; bool or one per core.
    backend:
        Array backend the vectorised paths evaluate on — an
        :class:`repro.backend.ArrayBackend`, a registered name, or
        ``None`` for the exact NumPy reference backend.  Deliberately
        *not* environment-resolved here (direct constructions keep the
        bitwise contract); the registry / scenario / CLI surfaces
        resolve ``REPRO_BACKEND`` before constructing.
    """

    family = "timeless"

    def __init__(
        self,
        params: "Sequence[JAParameters] | BatchJAParameters",
        dhmax: "float | np.ndarray" = DEFAULT_DHMAX,
        anhysteretic: Anhysteretic | None = None,
        guards: "SlopeGuards | Sequence[SlopeGuards]" = SlopeGuards(),
        accept_equal: "bool | Sequence[bool] | np.ndarray" = False,
        backend: "ArrayBackend | str | None" = None,
    ) -> None:
        self.backend = as_backend(backend)
        self.params = stack_parameters(params)
        n = len(self.params)
        self.dhmax = broadcast_lane(dhmax, n, "dhmax")
        if not (np.isfinite(self.dhmax).all() and (self.dhmax > 0.0).all()):
            raise ParameterError(
                f"dhmax lanes must be finite and > 0, got {self.dhmax!r}"
            )
        self.anhysteretic = (
            anhysteretic
            if anhysteretic is not None
            else make_anhysteretic(self.params)
        )
        if isinstance(guards, SlopeGuards):
            self.guards = guards
        else:
            guards = list(guards)
            if len(guards) != n:
                raise ParameterError(
                    f"need one SlopeGuards per core ({n}), got {len(guards)}"
                )
            self.guards = stack_guards(guards)
        accept = np.asarray(accept_equal, dtype=bool)
        if accept.ndim == 0:
            self.accept_equal: "bool | np.ndarray" = bool(accept)
        elif accept.shape == (n,):
            self.accept_equal = accept.copy()
        else:
            raise ParameterError(
                f"accept_equal must be a bool or a length-{n} array, "
                f"got shape {accept.shape}"
            )
        self.state = BatchState.zeros(n)
        self.counters = BatchCounters.zeros(n)
        self.reset()

    # -- construction helpers ---------------------------------------------

    @classmethod
    def from_scalar_models(
        cls, models: "Sequence[TimelessJAModel]"
    ) -> "BatchTimelessModel":
        """Stack live scalar models into one batch, adopting their state.

        All models must share the anhysteretic *family*; shapes (and the
        rest of the configuration) may differ per model.  Counters are
        adopted too, so :meth:`write_back_to_models` can later return
        cumulative totals to the scalar objects.
        """
        if len(models) == 0:
            raise ParameterError("need at least one model to stack")
        integrators = [m._integrator for m in models]
        curves = [i.anhysteretic for i in integrators]
        if all(curve is curves[0] for curve in curves):
            # One shared curve object (always the case for the one-core
            # series routing): reuse it as-is, so custom Anhysteretic
            # subclasses keep their full configuration.
            anhysteretic = curves[0]
        else:
            curve_types = {type(c) for c in curves}
            if len(curve_types) != 1:
                raise ParameterError(
                    "cannot stack models with different anhysteretic "
                    f"families: {sorted(t.__name__ for t in curve_types)}"
                )
            curve_cls = curve_types.pop()
            shapes = np.array([c.shape for c in curves], dtype=float)
            extra: dict[str, float] = {}
            j_values = {getattr(c, "j", None) for c in curves} - {None}
            if j_values:
                if len(j_values) != 1:
                    raise ParameterError(
                        "cannot stack Brillouin curves with different J values"
                    )
                extra["j"] = j_values.pop()
            try:
                anhysteretic = curve_cls(shapes, **extra)
            except TypeError as exc:
                raise ParameterError(
                    f"cannot stack distinct {curve_cls.__name__} instances: "
                    "its constructor is not (shape)-compatible; share one "
                    "curve object across the models or pass a batch-aware "
                    "anhysteretic explicitly"
                ) from exc
        batch = cls(
            [i.params for i in integrators],
            dhmax=np.array([i.discretiser.dhmax for i in integrators]),
            anhysteretic=anhysteretic,
            guards=[i.guards for i in integrators],
            accept_equal=np.array(
                [i.discretiser.accept_equal for i in integrators]
            ),
        )
        batch.adopt_states(models)
        return batch

    def adopt_states(self, models: "Sequence[TimelessJAModel]") -> None:
        """Copy each scalar model's live state/counters into the lanes."""
        state, counters = self.state, self.counters
        for i, model in enumerate(models):
            s = model._integrator.state
            state.h_applied[i] = s.h_applied
            state.h_accepted[i] = s.h_accepted
            state.m_irr[i] = s.m_irr
            state.m_rev[i] = s.m_rev
            state.m_an[i] = s.m_an
            state.m_total[i] = s.m_total
            state.delta[i] = s.delta
            state.updates[i] = s.updates
            c = model._integrator.counters
            counters.field_events[i] = c.field_events
            counters.euler_steps[i] = c.euler_steps
            counters.clamped_slopes[i] = c.clamped_slopes
            counters.dropped_increments[i] = c.dropped_increments
            d = model._integrator.discretiser
            counters.observations[i] = d.observations
            counters.acceptances[i] = d.acceptances

    def write_back_to_models(self, models: "Sequence[TimelessJAModel]") -> None:
        """Copy lane state/counters back onto scalar models (the inverse
        of :meth:`adopt_states`; lanes map to models by position)."""
        state, counters = self.state, self.counters
        for i, model in enumerate(models):
            s = model._integrator.state
            s.h_applied = float(state.h_applied[i])
            s.h_accepted = float(state.h_accepted[i])
            s.m_irr = float(state.m_irr[i])
            s.m_rev = float(state.m_rev[i])
            s.m_an = float(state.m_an[i])
            s.m_total = float(state.m_total[i])
            s.delta = float(state.delta[i])
            s.updates = int(state.updates[i])
            c = model._integrator.counters
            c.field_events = int(counters.field_events[i])
            c.euler_steps = int(counters.euler_steps[i])
            c.clamped_slopes = int(counters.clamped_slopes[i])
            c.dropped_increments = int(counters.dropped_increments[i])
            d = model._integrator.discretiser
            d.observations = int(counters.observations[i])
            d.acceptances = int(counters.acceptances[i])

    # -- shard construction ------------------------------------------------

    def shard_payload(self, start: int, stop: int) -> dict:
        """Picklable construction payload for lanes ``[start, stop)``.

        Ships configuration only — parameters, thresholds, guard flags,
        anhysteretic shapes — never live state: a batch rebuilt from the
        payload starts reset, which is what the sharded executor
        (:mod:`repro.parallel`) needs, since a fresh series resets every
        lane anyway.
        """
        check_lane_range(start, stop, self.n_cores)
        accept = self.accept_equal
        return {
            "params": self.params.lane_slice(start, stop),
            "dhmax": self.dhmax[start:stop].copy(),
            "anhysteretic": slice_anhysteretic(self.anhysteretic, start, stop),
            "guards": slice_guards(self.guards, start, stop),
            "accept_equal": (
                accept if np.ndim(accept) == 0 else accept[start:stop].copy()
            ),
            "backend": self.backend.name,
        }

    @classmethod
    def from_shard_payload(cls, payload: dict) -> "BatchTimelessModel":
        """Rebuild a (sub-)ensemble from a :meth:`shard_payload` dict."""
        return cls(
            payload["params"],
            dhmax=payload["dhmax"],
            anhysteretic=payload["anhysteretic"],
            guards=payload["guards"],
            accept_equal=payload["accept_equal"],
            backend=payload.get("backend"),
        )

    def shard(self, start: int, stop: int) -> "BatchTimelessModel":
        """A freshly reset batch over lanes ``[start, stop)`` — bitwise
        identical per lane to this ensemble after a reset."""
        return type(self).from_shard_payload(self.shard_payload(start, stop))

    def use_backend(
        self, backend: "ArrayBackend | str | None"
    ) -> "BatchTimelessModel":
        """Switch the array backend (state is untouched); returns self."""
        self.backend = as_backend(backend)
        return self

    # -- state access -----------------------------------------------------

    @property
    def n_cores(self) -> int:
        return len(self.params)

    def __len__(self) -> int:
        return self.n_cores

    @property
    def h(self) -> np.ndarray:
        """Currently applied field per core [A/m]."""
        return self.state.h_applied

    @property
    def m_normalised(self) -> np.ndarray:
        return self.state.m_total

    @property
    def m(self) -> np.ndarray:
        """Total magnetisation per core [A/m]."""
        return self.state.m_total * self.params.m_sat

    @property
    def b(self) -> np.ndarray:
        """Flux density per core ``B = mu0 * (H + Msat*m)`` [T]."""
        return flux_density(self.params, self.state.h_applied, self.state.m_total)

    # -- stepping ---------------------------------------------------------

    def reset(
        self,
        h_initial: "float | np.ndarray" = 0.0,
        m_irr_initial: "float | np.ndarray" = 0.0,
    ) -> None:
        """Return every lane to its initial condition and zero statistics.

        Mirrors the scalar reset exactly: state cleared, then the
        algebraic quantities refreshed at the initial field.
        """
        n = self.n_cores
        h0 = broadcast_lane(h_initial, n, "h_initial")
        m0 = broadcast_lane(m_irr_initial, n, "m_irr_initial")
        state = self.state
        state.h_applied = h0
        state.h_accepted = h0.copy()
        state.m_irr = m0
        state.delta = np.zeros(n)
        state.updates = np.zeros(n, dtype=np.int64)
        state.m_total = m0.copy()
        self.counters.reset()
        m_an, m_rev = refresh_algebraic(
            self.params, self.anhysteretic, h0, state.m_total
        )
        state.m_an = np.asarray(m_an, dtype=float)
        state.m_rev = np.asarray(m_rev, dtype=float)
        state.m_total = state.m_rev + state.m_irr

    def step(self, h_new: "float | np.ndarray") -> StepOutputs:
        """Apply one new field sample to every lane (scalar = shared).

        One pure-kernel call; returns the full :class:`StepOutputs`
        (its ``accepted`` mask tells which lanes fired an Euler step).
        """
        n = self.n_cores
        h = np.asarray(h_new, dtype=float)
        if h.ndim == 0:
            h = np.full(n, float(h))
        elif h.shape != (n,):
            raise ParameterError(
                f"h_new must be a scalar or a length-{n} array, got {h.shape}"
            )
        state = self.state
        out = step_kernel(
            StepInputs(
                h_new=h,
                h_accepted=state.h_accepted,
                m_irr=state.m_irr,
                m_total=state.m_total,
                delta=state.delta,
            ),
            self.params,
            self.anhysteretic,
            self.dhmax,
            guards=self.guards,
            accept_equal=self.accept_equal,
            xp=self.backend.xp,
        )
        state.h_applied = h
        state.m_an = np.asarray(out.m_an, dtype=float)
        state.m_rev = np.asarray(out.m_rev, dtype=float)
        state.m_irr = np.asarray(out.m_irr, dtype=float)
        state.m_total = np.asarray(out.m_total, dtype=float)
        state.h_accepted = np.asarray(out.h_accepted, dtype=float)
        state.delta = np.asarray(out.delta, dtype=float)
        accepted = out.accepted
        state.updates += accepted
        counters = self.counters
        counters.field_events += 1
        counters.observations += 1
        counters.euler_steps += accepted
        counters.acceptances += accepted
        counters.clamped_slopes += out.clamped
        counters.dropped_increments += out.dropped
        return out

    def step_series(
        self, h_samples: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, dict[str, np.ndarray]]":
        """Fused sweep: advance the whole sample axis in one call.

        Returns ``(m, b, updated, extras)`` — each per-sample channel of
        shape ``(samples, cores)`` — leaving state and counters exactly
        as per-sample :meth:`step` calls would have left them.  On the
        exact NumPy backend the fused loop performs the same IEEE
        operations as the per-sample path (bitwise, pinned by the
        conformance suite); a backend with a compiled ``fused_series``
        driver for this family (numba) runs the whole recurrence in one
        JIT loop instead, holding the backend's ``rtol`` tier.
        """
        h_arr = check_series(h_samples, self.n_cores)
        driver = self.backend.fused_driver(self.family)
        if driver is not None:
            out = driver(self, h_arr)
            if out is not None:
                return out
        return self._step_series_vectorised(h_arr)

    def _step_series_vectorised(
        self, h_arr: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, dict[str, np.ndarray]]":
        """The backend-namespace fused loop (bitwise on ``xp = numpy``).

        Performs exactly the per-lane IEEE operations of the per-sample
        ``step`` path, but with the per-sample Python dispatch stripped
        out: no ``StepInputs``/``StepOutputs`` records, no per-sample
        ``asarray`` conversions or property probes, temporaries reused
        through ufunc ``out=``, the slope evaluation skipped outright
        on samples where no lane's discretiser fired, and counters
        accumulated once at the end.  Every shortcut preserves the
        elementwise operation sequence, which is why the fused result
        stays bitwise identical to per-sample stepping on the exact
        backend (associativity is never reordered; only
        ``x * y``/``y * x`` commutations — IEEE-exact — are shared).
        """
        xp = self.backend.xp
        params = self.params
        curve = self.anhysteretic
        # Precomputed per-lane constants.  The grouping matches the
        # per-sample expressions exactly: ``alpha * m_sat * x`` is
        # left-associative, so hoisting ``alpha * m_sat`` is bit-neutral.
        am = params.alpha * params.m_sat
        one_c = 1.0 + params.c
        c = params.c
        k = params.k
        m_sat = params.m_sat
        dhmax = self.dhmax
        accept_equal = self.accept_equal
        clamp_negative = self.guards.clamp_negative
        drop_opposing = self.guards.drop_opposing
        scalar_accept = np.ndim(accept_equal) == 0
        scalar_clamp = np.ndim(clamp_negative) == 0
        scalar_drop = np.ndim(drop_opposing) == 0
        # The paper's modified Langevin is cheap enough to inline
        # (saving two Python calls per sample); other curves evaluate
        # through their own (backend-threaded) array branches.
        inline_atan = type(curve) is ModifiedLangevinAnhysteretic
        shape = curve.shape

        state = self.state
        h_acc = state.h_accepted
        m_irr = state.m_irr
        m_tot = state.m_total
        delta_st = state.delta

        n = self.n_cores
        n_samples = len(h_arr)
        shared = h_arr.ndim == 1
        m_out = xp.empty((n_samples, n))
        b_out = xp.empty((n_samples, n))
        man_out = xp.empty((n_samples, n))
        updated = xp.zeros((n_samples, n), dtype=bool)
        clamped_n = xp.zeros(n, dtype=np.int64)
        dropped_n = xp.zeros(n, dtype=np.int64)
        t0 = xp.empty(n)
        t1 = xp.empty(n)
        magnitude = xp.empty(n)
        m_an = m_rev = None

        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            for i in range(n_samples):
                h = h_arr[i]
                # core: algebraic refresh at the new field
                xp.multiply(am, m_tot, out=t0)
                xp.add(h, t0, out=t0)  # h_eff
                if inline_atan:
                    xp.divide(t0, shape, out=t0)
                    m_an = xp.arctan(t0)
                    xp.multiply(TWO_OVER_PI, m_an, out=m_an)
                else:
                    m_an = xp.asarray(curve.value(t0.copy()), dtype=float)
                m_rev = c * m_an
                xp.divide(m_rev, one_c, out=m_rev)
                # monitorH: the discretiser decision
                dh = h - h_acc
                xp.abs(dh, out=magnitude)
                if scalar_accept:
                    accepted = (
                        magnitude >= dhmax if accept_equal else magnitude > dhmax
                    )
                else:
                    accepted = xp.where(
                        accept_equal, magnitude >= dhmax, magnitude > dhmax
                    )
                if accepted.any():
                    # Integral: guarded Forward Euler on the fired lanes.
                    # (Lanes with dh == 0 can never fire — dhmax > 0 —
                    # so the scalar path's dh == 0 short-circuit needs
                    # no masking here.)
                    delta = xp.where(dh > 0.0, 1.0, -1.0)
                    xp.add(m_rev, m_irr, out=t1)
                    delta_m = m_an - t1
                    xp.multiply(delta, k, out=t1)
                    xp.multiply(am, delta_m, out=t0)
                    xp.subtract(t1, t0, out=t1)
                    xp.multiply(one_c, t1, out=t1)  # denominator
                    singular = t1 == 0.0
                    if singular.any():
                        regular = delta_m / xp.where(singular, 1.0, t1)
                        at_pole = xp.where(
                            delta_m > 0.0,
                            math.inf,
                            xp.where(delta_m < 0.0, -math.inf, 0.0),
                        )
                        raw = xp.where(singular, at_pole, regular)
                    else:
                        raw = xp.divide(delta_m, t1)
                    if scalar_clamp:
                        if clamp_negative:
                            clamp_hit = ~(raw > 0.0)
                            dmdh = xp.where(clamp_hit, 0.0, raw)
                            clamped = clamp_hit & (raw != 0.0)
                        else:
                            dmdh = raw
                            clamped = None
                    else:
                        clamp_hit = clamp_negative & ~(raw > 0.0)
                        dmdh = xp.where(clamp_hit, 0.0, raw)
                        clamped = clamp_hit & (raw != 0.0)
                    dm = dh * dmdh
                    xp.multiply(dm, dh, out=t0)
                    if scalar_drop:
                        if drop_opposing:
                            dropped = t0 < 0.0
                            dm = xp.where(dropped, 0.0, dm)
                        else:
                            dropped = None
                    else:
                        dropped = drop_opposing & (t0 < 0.0)
                        dm = xp.where(dropped, 0.0, dm)
                    m_irr = xp.where(accepted, m_irr + dm, m_irr)
                    h_acc = xp.where(accepted, h, h_acc)
                    delta_st = xp.where(accepted, delta, delta_st)
                    if clamped is not None:
                        clamped_n += accepted & clamped
                    if dropped is not None:
                        dropped_n += accepted & dropped
                    updated[i] = accepted
                m_tot = m_rev + m_irr
                man_out[i] = m_an
                row = m_out[i]
                xp.multiply(m_tot, m_sat, out=row)  # == m_sat * m_tot
                b_row = b_out[i]
                xp.add(h, row, out=b_row)
                xp.multiply(MU0, b_row, out=b_row)  # B = mu0*(h + m_sat*m)

        euler = updated.sum(axis=0, dtype=np.int64)
        last = h_arr[-1]
        state.h_applied = (
            np.full(n, float(last)) if shared else xp.asarray(last, dtype=float).copy()
        )
        state.h_accepted = h_acc
        state.m_irr = m_irr
        state.m_an = m_an.copy()
        state.m_rev = m_rev.copy()
        state.m_total = m_tot
        state.delta = delta_st
        state.updates += euler
        counters = self.counters
        counters.field_events += n_samples
        counters.observations += n_samples
        counters.euler_steps += euler
        counters.acceptances += euler
        counters.clamped_slopes += clamped_n
        counters.dropped_increments += dropped_n
        return m_out, b_out, updated, {"m_an": man_out}

    def apply_field_series(self, h_values: np.ndarray) -> np.ndarray:
        """Apply a series of samples; return B [T] of shape (samples, cores).

        ``h_values`` may be 1-D (one waveform shared by all cores) or
        2-D ``(samples, cores)`` (one waveform per core).
        """
        _, _, b = self.trace(h_values)
        return b

    def trace(
        self, h_values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Apply a series and return ``(h, m, b)``; ``m``/``b`` are
        ``(samples, cores)`` arrays, ``m`` in A/m."""
        return trace_series(self, h_values)

    # -- protocol hooks ----------------------------------------------------

    def begin_series(self, h_initial) -> None:
        """Protocol hook: reset every lane with its series start field."""
        self.reset(h_initial=h_initial)

    def counter_totals(self) -> dict[str, np.ndarray]:
        """Per-core cumulative totals of the sweep-facing counters."""
        counters = self.counters
        return {
            "euler_steps": counters.euler_steps.copy(),
            "clamped_slopes": counters.clamped_slopes.copy(),
            "dropped_increments": counters.dropped_increments.copy(),
        }

    def probe_extras(self) -> dict[str, np.ndarray]:
        """Record the anhysteretic channel alongside the trajectory."""
        return {"m_an": self.state.m_an.copy()}

    def driver_step_hint(self) -> float:
        """A quarter of the finest lane ``dhmax`` — the batch
        generalisation of the scalar driver default."""
        return float(np.min(self.dhmax)) / 4.0

    def snapshot(self) -> tuple:
        return (self.state.copy(), self.counters.copy())

    def restore(self, snap: tuple) -> None:
        state, counters = snap
        self.state = state.copy()
        self.counters = counters.copy()

    def __repr__(self) -> str:
        return (
            f"BatchTimelessModel(n_cores={self.n_cores}, "
            f"dhmax=[{self.dhmax.min():g}..{self.dhmax.max():g}])"
        )
