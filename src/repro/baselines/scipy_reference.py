"""Adaptive high-accuracy time-domain reference (scipy LSODA).

Integrates the same time-domain formulation as
:class:`repro.baselines.time_domain.TimeDomainJAModel` but with scipy's
stiff-capable adaptive solver at tight tolerances, segment by monotone
segment (so the direction factor is constant inside every solver call —
adaptive solvers must never step across the discontinuity unknowingly).
Used as ground truth in accuracy studies where the H-domain reference
(:mod:`repro.ja.reference`) is not applicable because the excitation is
given in time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.integrate import solve_ivp

from repro.baselines.time_domain import TimeDomainJAModel
from repro.constants import MU0
from repro.core.slope import SlopeGuards
from repro.errors import SolverError
from repro.ja.anhysteretic import Anhysteretic, make_anhysteretic
from repro.ja.parameters import JAParameters
from repro.waveforms.base import Waveform


@dataclass(frozen=True)
class ScipyTimeDomainResult:
    """Reference trajectory (dense, per requested sample times)."""

    t: np.ndarray
    h: np.ndarray
    m: np.ndarray
    b: np.ndarray
    success: bool
    segments: int


def _turning_times(
    waveform: Waveform, t_start: float, t_stop: float, probe_points: int
) -> list[float]:
    """Locate waveform direction changes by dense probing + bisection."""
    times = np.linspace(t_start, t_stop, probe_points)
    values = np.array([waveform.value(t) for t in times])
    increments = np.diff(values)
    turning: list[float] = []
    last_sign = 0.0
    for i, inc in enumerate(increments):
        sign = np.sign(inc)
        if sign == 0.0:
            continue
        if last_sign != 0.0 and sign != last_sign:
            # Refine by bisection on the derivative sign inside
            # [times[i-1], times[i+1]].
            lo, hi = times[max(i - 1, 0)], times[min(i + 1, len(times) - 1)]
            for _ in range(60):
                mid = 0.5 * (lo + hi)
                if np.sign(waveform.derivative(mid)) == last_sign:
                    lo = mid
                else:
                    hi = mid
            turning.append(0.5 * (lo + hi))
        last_sign = sign
    return turning


def solve_time_domain(
    params: JAParameters,
    waveform: Waveform,
    t_stop: float,
    t_start: float = 0.0,
    samples: int = 2000,
    anhysteretic: Anhysteretic | None = None,
    guards: SlopeGuards = SlopeGuards(clamp_negative=True, drop_opposing=False),
    rtol: float = 1e-10,
    atol: float = 1e-12,
    probe_points: int = 20001,
) -> ScipyTimeDomainResult:
    """High-accuracy reference for a time-domain excitation.

    Note the default guards: the reference clamps negative slopes (so it
    solves the physical, guarded model) but has no use for the
    increment-drop guard, which is specific to discrete stepping.
    """
    if samples < 2:
        raise SolverError(f"samples must be >= 2, got {samples}")
    anhysteretic = (
        anhysteretic if anhysteretic is not None else make_anhysteretic(params)
    )
    model = TimeDomainJAModel(params, anhysteretic=anhysteretic, guards=guards)

    boundaries = (
        [t_start]
        + [
            t
            for t in _turning_times(waveform, t_start, t_stop, probe_points)
            if t_start < t < t_stop
        ]
        + [t_stop]
    )
    t_eval_all = np.linspace(t_start, t_stop, samples)

    t_parts: list[np.ndarray] = []
    m_parts: list[np.ndarray] = []
    m_current = 0.0
    success = True
    for seg_start, seg_stop in zip(boundaries[:-1], boundaries[1:]):
        if not seg_stop > seg_start:
            continue
        mask = (t_eval_all >= seg_start) & (t_eval_all <= seg_stop)
        t_eval = np.unique(
            np.concatenate([[seg_start], t_eval_all[mask], [seg_stop]])
        )

        def rhs(t: float, state: np.ndarray) -> list[float]:
            h = waveform.value(t)
            h_dot = waveform.derivative(t)
            return [model.slope_dmdh(h, float(state[0]), h_dot) * h_dot]

        solution = solve_ivp(
            rhs,
            (seg_start, seg_stop),
            [m_current],
            method="LSODA",
            t_eval=t_eval,
            rtol=rtol,
            atol=atol,
        )
        if not solution.success:
            success = False
            break
        keep = slice(1, None) if t_parts else slice(None)
        t_parts.append(solution.t[keep])
        m_parts.append(solution.y[0][keep])
        m_current = float(solution.y[0][-1])

    t_all = np.concatenate(t_parts) if t_parts else np.array([t_start])
    m_all = np.concatenate(m_parts) if m_parts else np.array([0.0])
    h_all = np.array([waveform.value(t) for t in t_all])
    b_all = MU0 * (h_all + params.m_sat * m_all)
    return ScipyTimeDomainResult(
        t=t_all,
        h=h_all,
        m=m_all,
        b=b_all,
        success=success,
        segments=len(boundaries) - 1,
    )
