"""Classic time-domain JA integration (the pre-paper approach).

The chain the paper calls "awkward": differentiate the applied field to
get dH/dt, evaluate Eq. 1 for dM/dH with ``delta = sign(dH/dt)``, form
``dM/dt = (dM/dH) * (dH/dt)`` and hand it to a time integrator.  The
direction factor makes the right-hand side discontinuous exactly at
every waveform turning point, which is where fixed-step explicit
integration overshoots — the overshoot can push ``M`` past ``Man`` and,
without guards, the negative-slope region then amplifies the error.

The class counts every pathology so EXP-T2 can tabulate it against the
timeless scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import MU0
from repro.core.slope import SlopeGuards
from repro.errors import SolverError
from repro.ja.anhysteretic import Anhysteretic, make_anhysteretic
from repro.ja.equations import (
    anhysteretic_slope_term,
    effective_field,
    flux_density,
    irreversible_slope,
)
from repro.ja.parameters import JAParameters
from repro.solver.integrators import IntegrationMethod, explicit_stepper
from repro.waveforms.base import Waveform


@dataclass(frozen=True)
class TimeDomainResult:
    """Trajectory and failure accounting of a time-domain run."""

    t: np.ndarray
    h: np.ndarray
    m: np.ndarray  # normalised
    b: np.ndarray
    diverged: bool
    negative_slope_evaluations: int
    slope_evaluations: int
    steps: int

    def __len__(self) -> int:
        return len(self.t)

    @property
    def completed(self) -> bool:
        return not self.diverged


#: |m| (normalised) beyond which a sample-driven run is declared
#: diverged and the lane frozen; physical values stay within ~1.
DIVERGENCE_LIMIT: float = 100.0


class TimeDomainJAModel:
    """JA model integrated in time with explicit fixed steps.

    Two driving styles share the pathology counters:

    * :meth:`run` — the historical waveform-in-time API: differentiate
      ``H(t)``, integrate ``dM/dt`` with a fixed-step explicit method;
    * :meth:`apply_field` — the sample-driven protocol API
      (:class:`repro.models.protocol.HysteresisModel`): for forward
      Euler the time step cancels (``dM = (dM/dH) * dH``), so the
      classic chain can be driven by the same field samples as every
      other family — which is what lets the batch executor and the
      scenario layer treat it as a first-class citizen.

    A sample-driven lane that leaves ``|m| <= divergence_limit`` (or
    turns non-finite) is *frozen*: the field keeps tracking but the
    magnetisation stops updating, and the ``diverged`` flag records the
    pathology — the per-lane equivalent of :meth:`run` aborting.
    """

    def __init__(
        self,
        params: JAParameters,
        anhysteretic: Anhysteretic | None = None,
        guards: SlopeGuards = SlopeGuards.none(),
        divergence_limit: float = DIVERGENCE_LIMIT,
    ) -> None:
        self.params = params
        self.anhysteretic = (
            anhysteretic if anhysteretic is not None else make_anhysteretic(params)
        )
        self.guards = guards
        self.divergence_limit = float(divergence_limit)
        self.negative_slope_evaluations = 0
        self.slope_evaluations = 0
        self._h = 0.0
        self._m = 0.0
        self.diverged = False
        self.steps = 0

    # -- sample-driven protocol API ---------------------------------------

    @property
    def h(self) -> float:
        """Currently applied field [A/m]."""
        return self._h

    @property
    def m_normalised(self) -> float:
        """Normalised magnetisation ``m = M / Msat``."""
        return self._m

    @property
    def m(self) -> float:
        """Magnetisation [A/m]."""
        return self._m * self.params.m_sat

    @property
    def b(self) -> float:
        """Flux density ``B = mu0 * (H + Msat * m)`` [T]."""
        return flux_density(self.params, self._h, self._m)

    def reset(self, h_initial: float = 0.0) -> None:
        """Demagnetised state at ``h_initial``; zero all statistics."""
        self._h = float(h_initial)
        self._m = 0.0
        self.diverged = False
        self.steps = 0
        self.negative_slope_evaluations = 0
        self.slope_evaluations = 0

    def apply_field(self, h: float) -> float:
        """Apply one field sample: one explicit Euler step in H.

        ``dM = (dM/dH)(H_prev, m) * dH`` with the direction taken from
        the sign of the increment — the forward-Euler limit of the
        dH/dt chain, where dt cancels.  Diverged lanes only track H.
        """
        h = float(h)
        dh = h - self._h
        if dh != 0.0 and not self.diverged:
            slope = self.slope_dmdh(self._h, self._m, dh)
            self._m = self._m + slope * dh
            self.steps += 1
            if not np.isfinite(self._m) or abs(self._m) > self.divergence_limit:
                self.diverged = True
        self._h = h
        return self.b

    def apply_field_series(self, h_values) -> np.ndarray:
        """Apply a sample sequence; return B [T] after each sample."""
        return self.trace(h_values)[2]

    def trace(self, h_values) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Apply a sample sequence; return ``(h, m, b)`` arrays (m in A/m)."""
        h_arr = np.fromiter((float(h) for h in h_values), dtype=float)
        m_out = np.empty_like(h_arr)
        b_out = np.empty_like(h_arr)
        for i, h in enumerate(h_arr):
            b_out[i] = self.apply_field(float(h))
            m_out[i] = self.m
        return h_arr, m_out, b_out

    def snapshot(self) -> tuple:
        """Opaque copy of the sample-driven state and counters."""
        return (
            self._h,
            self._m,
            self.diverged,
            self.steps,
            self.slope_evaluations,
            self.negative_slope_evaluations,
        )

    def restore(self, snap: tuple) -> None:
        """Return to a previously taken :meth:`snapshot` exactly."""
        (
            self._h,
            self._m,
            self.diverged,
            self.steps,
            self.slope_evaluations,
            self.negative_slope_evaluations,
        ) = snap

    # -- shared slope ------------------------------------------------------

    def slope_dmdh(self, h: float, m: float, h_dot: float) -> float:
        """Eq. 1 with direction from the sign of dH/dt, guard-optional."""
        params = self.params
        delta = 1.0 if h_dot >= 0.0 else -1.0
        h_eff = effective_field(params, h, m)
        m_an = self.anhysteretic.value(h_eff)
        slope = irreversible_slope(params, m_an, m, delta)
        self.slope_evaluations += 1
        if slope < 0.0:
            self.negative_slope_evaluations += 1
            if self.guards.clamp_negative:
                slope = 0.0
        return slope + anhysteretic_slope_term(params, self.anhysteretic, h_eff)

    def run(
        self,
        waveform: Waveform,
        t_stop: float,
        dt: float,
        t_start: float = 0.0,
        method: IntegrationMethod | str = IntegrationMethod.FORWARD_EULER,
        divergence_limit: float = 100.0,
    ) -> TimeDomainResult:
        """Fixed-step explicit integration of dM/dt.

        ``divergence_limit`` bounds |m| (normalised — physical values
        stay within ~1); beyond it the run stops and is flagged.
        """
        if dt <= 0.0 or not np.isfinite(dt):
            raise SolverError(f"dt must be finite and > 0, got {dt!r}")
        if not t_stop > t_start:
            raise SolverError(f"t_stop ({t_stop}) must exceed t_start ({t_start})")

        step = explicit_stepper(method)
        # Guard against float ratios like 12.5e-3/2e-6 = 6250.0000000001
        # adding a spurious step beyond t_stop.
        n_steps = max(1, int(np.ceil((t_stop - t_start) / dt - 1e-9)))

        def rhs(t: float, state: np.ndarray) -> np.ndarray:
            h = waveform.value(t)
            h_dot = waveform.derivative(t)
            dmdh = self.slope_dmdh(h, float(state[0]), h_dot)
            return np.array([dmdh * h_dot])

        t_arr = np.empty(n_steps + 1)
        m_arr = np.empty(n_steps + 1)
        t_arr[0] = t_start
        m_arr[0] = 0.0
        state = np.array([0.0])
        diverged = False
        taken = 0
        for i in range(1, n_steps + 1):
            t_prev = t_start + (i - 1) * dt
            state = step(rhs, t_prev, state, dt)
            if not np.isfinite(state[0]) or abs(state[0]) > divergence_limit:
                diverged = True
                break
            t_arr[i] = t_prev + dt
            m_arr[i] = state[0]
            taken = i

        t_out = t_arr[: taken + 1]
        m_out = m_arr[: taken + 1]
        h_out = np.array([waveform.value(t) for t in t_out])
        b_out = MU0 * (h_out + self.params.m_sat * m_out)
        return TimeDomainResult(
            t=t_out,
            h=h_out,
            m=m_out,
            b=b_out,
            diverged=diverged,
            negative_slope_evaluations=self.negative_slope_evaluations,
            slope_evaluations=self.slope_evaluations,
            steps=taken,
        )
