"""Baseline implementations the paper compares against (implicitly).

* :mod:`repro.baselines.time_domain` — the "awkward conversion to time
  derivatives": compute dH/dt, multiply by Eq. 1, integrate dM/dt with
  explicit time-stepping.  This is what most SPICE/HDL JA models do.
* :mod:`repro.baselines.scipy_reference` — a high-accuracy adaptive
  reference (LSODA) on the same time-domain formulation, used as ground
  truth for accuracy studies.

The VHDL-AMS ``'INTEG`` baseline (implicit, solver-coupled) lives in
:mod:`repro.hdl.vhdlams.ja_integ` because it needs the analogue solver.
"""

from repro.baselines.scipy_reference import ScipyTimeDomainResult, solve_time_domain
from repro.baselines.time_domain import TimeDomainJAModel, TimeDomainResult

__all__ = [
    "ScipyTimeDomainResult",
    "TimeDomainJAModel",
    "TimeDomainResult",
    "solve_time_domain",
]
