"""CSV round-trip of B-H trajectories with a metadata header."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.errors import AnalysisError


def write_bh_csv(
    path: str | Path,
    h: np.ndarray,
    b: np.ndarray,
    metadata: Mapping[str, object] | None = None,
    m: np.ndarray | None = None,
) -> None:
    """Write a trajectory as CSV.

    Metadata lines are prefixed with ``#`` (``# key = value``) so the
    file remains loadable by pandas/numpy with ``comments='#'``.
    """
    h = np.asarray(h, dtype=float)
    b = np.asarray(b, dtype=float)
    if h.shape != b.shape:
        raise AnalysisError(
            f"h and b must have the same shape, got {h.shape} vs {b.shape}"
        )
    if m is not None:
        m = np.asarray(m, dtype=float)
        if m.shape != h.shape:
            raise AnalysisError(
                f"m must match h shape, got {m.shape} vs {h.shape}"
            )

    path = Path(path)
    with path.open("w", newline="") as stream:
        for key, value in (metadata or {}).items():
            stream.write(f"# {key} = {value}\n")
        writer = csv.writer(stream)
        if m is None:
            writer.writerow(["h_A_per_m", "b_T"])
            for h_val, b_val in zip(h, b):
                writer.writerow([repr(float(h_val)), repr(float(b_val))])
        else:
            writer.writerow(["h_A_per_m", "b_T", "m_A_per_m"])
            for h_val, b_val, m_val in zip(h, b, m):
                writer.writerow(
                    [repr(float(h_val)), repr(float(b_val)), repr(float(m_val))]
                )


def read_bh_csv(
    path: str | Path,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None, dict[str, str]]:
    """Read a trajectory written by :func:`write_bh_csv`.

    Returns ``(h, b, m_or_None, metadata)``.
    """
    path = Path(path)
    metadata: dict[str, str] = {}
    h_vals: list[float] = []
    b_vals: list[float] = []
    m_vals: list[float] = []
    has_m = False
    with path.open() as stream:
        reader = csv.reader(stream)
        header_seen = False
        for row in reader:
            if not row:
                continue
            if row[0].startswith("#"):
                text = ",".join(row).lstrip("#").strip()
                if "=" in text:
                    key, _, value = text.partition("=")
                    metadata[key.strip()] = value.strip()
                continue
            if not header_seen:
                header_seen = True
                has_m = len(row) >= 3
                continue
            h_vals.append(float(row[0]))
            b_vals.append(float(row[1]))
            if has_m:
                m_vals.append(float(row[2]))
    if not header_seen:
        raise AnalysisError(f"{path} contains no CSV header")
    m_arr = np.array(m_vals) if has_m else None
    return np.array(h_vals), np.array(b_vals), m_arr, metadata
