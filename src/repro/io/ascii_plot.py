"""ASCII scatter plots of B-H trajectories.

Matplotlib is not available offline, so the Figure 1 regeneration
renders the B-H curve as a character raster — enough to eyeball the
major loop, the nested minor loops and the saturation tails against the
published figure.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import AnalysisError


class AsciiPlot:
    """A character raster with data-space axes."""

    def __init__(
        self,
        width: int = 79,
        height: int = 31,
        x_range: tuple[float, float] | None = None,
        y_range: tuple[float, float] | None = None,
    ) -> None:
        if width < 10 or height < 5:
            raise AnalysisError(
                f"plot must be at least 10x5 characters, got {width}x{height}"
            )
        self.width = width
        self.height = height
        self.x_range = x_range
        self.y_range = y_range
        self._series: list[tuple[np.ndarray, np.ndarray, str]] = []

    def add_series(self, x: Sequence[float], y: Sequence[float], marker: str = "*") -> None:
        x_arr = np.asarray(x, dtype=float)
        y_arr = np.asarray(y, dtype=float)
        if x_arr.shape != y_arr.shape:
            raise AnalysisError(
                f"x and y must have the same shape, got {x_arr.shape} vs {y_arr.shape}"
            )
        if len(marker) != 1:
            raise AnalysisError(f"marker must be one character, got {marker!r}")
        finite = np.isfinite(x_arr) & np.isfinite(y_arr)
        self._series.append((x_arr[finite], y_arr[finite], marker))

    def _resolve_ranges(self) -> tuple[float, float, float, float]:
        if not self._series:
            raise AnalysisError("nothing to plot")
        if self.x_range is not None:
            x_lo, x_hi = self.x_range
        else:
            x_lo = min(float(s[0].min()) for s in self._series if len(s[0]))
            x_hi = max(float(s[0].max()) for s in self._series if len(s[0]))
        if self.y_range is not None:
            y_lo, y_hi = self.y_range
        else:
            y_lo = min(float(s[1].min()) for s in self._series if len(s[1]))
            y_hi = max(float(s[1].max()) for s in self._series if len(s[1]))
        # Pad degenerate (constant-value) ranges so flat series render.
        if x_hi == x_lo:
            pad = max(1.0, abs(x_lo)) * 0.5
            x_lo, x_hi = x_lo - pad, x_hi + pad
        if y_hi == y_lo:
            pad = max(1.0, abs(y_lo)) * 0.5
            y_lo, y_hi = y_lo - pad, y_hi + pad
        if not (x_hi > x_lo and y_hi > y_lo):
            raise AnalysisError("degenerate plot ranges")
        return x_lo, x_hi, y_lo, y_hi

    def render(self, x_label: str = "x", y_label: str = "y") -> str:
        x_lo, x_hi, y_lo, y_hi = self._resolve_ranges()
        grid = [[" "] * self.width for _ in range(self.height)]

        def col_of(x: float) -> int:
            frac = (x - x_lo) / (x_hi - x_lo)
            return min(self.width - 1, max(0, int(round(frac * (self.width - 1)))))

        def row_of(y: float) -> int:
            frac = (y - y_lo) / (y_hi - y_lo)
            return min(
                self.height - 1,
                max(0, self.height - 1 - int(round(frac * (self.height - 1)))),
            )

        # Axes through zero when zero is inside the range.
        if x_lo <= 0.0 <= x_hi:
            zero_col = col_of(0.0)
            for row in range(self.height):
                grid[row][zero_col] = "|"
        if y_lo <= 0.0 <= y_hi:
            zero_row = row_of(0.0)
            for col in range(self.width):
                grid[zero_row][col] = "-"
        if x_lo <= 0.0 <= x_hi and y_lo <= 0.0 <= y_hi:
            grid[row_of(0.0)][col_of(0.0)] = "+"

        for x_arr, y_arr, marker in self._series:
            for x, y in zip(x_arr, y_arr):
                if x_lo <= x <= x_hi and y_lo <= y <= y_hi:
                    grid[row_of(y)][col_of(x)] = marker

        lines = ["".join(row) for row in grid]
        header = f"{y_label} (vertical {y_lo:.3g}..{y_hi:.3g})"
        footer = f"{x_label} (horizontal {x_lo:.3g}..{x_hi:.3g})"
        return "\n".join([header] + lines + [footer])


def plot_bh(
    h: Sequence[float],
    b: Sequence[float],
    width: int = 79,
    height: int = 31,
    h_unit: str = "A/m",
) -> str:
    """Render one B-H trajectory as the paper's Figure 1 style plot."""
    plot = AsciiPlot(width=width, height=height)
    plot.add_series(h, b)
    return plot.render(x_label=f"H [{h_unit}]", y_label="B [T]")
