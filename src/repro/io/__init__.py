"""I/O helpers: CSV round-trips, aligned report tables, ASCII B-H plots
and VCD dumps of kernel traces."""

from repro.io.ascii_plot import AsciiPlot, plot_bh
from repro.io.csvio import read_bh_csv, write_bh_csv
from repro.io.table import TextTable
from repro.io.vcd import write_batch_vcd, write_vcd

__all__ = [
    "AsciiPlot",
    "TextTable",
    "plot_bh",
    "read_bh_csv",
    "write_batch_vcd",
    "write_bh_csv",
    "write_vcd",
]
