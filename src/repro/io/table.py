"""Aligned plain-text tables for benchmark and experiment reports."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import AnalysisError


def _format_cell(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if 1e-3 <= magnitude < 1e6:
            return f"{value:.4g}"
        return f"{value:.3e}"
    return str(value)


class TextTable:
    """Accumulates rows, renders right-padded aligned text."""

    def __init__(self, columns: Sequence[str], title: str | None = None) -> None:
        if not columns:
            raise AnalysisError("table needs at least one column")
        self.columns = list(columns)
        self.title = title
        self.rows: list[list[str]] = []

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise AnalysisError(
                f"row has {len(values)} cells, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append([_format_cell(v) for v in values])

    def add_rows(self, rows: Iterable[Sequence]) -> None:
        for row in rows:
            self.add_row(*row)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
