"""Physical constants and paper-fixed default values.

The reproduction keeps every "magic number" used by the paper in one
place so that experiments and tests can refer to them symbolically.
"""

from __future__ import annotations

import math

#: Permeability of free space [H/m] (exact in the 2006-era SI convention
#: used by the paper: 4*pi*1e-7).
MU0: float = 4.0e-7 * math.pi

#: Default field-increment threshold ``dhmax`` [A/m] used by the paper's
#: ``monitorH`` process.  The paper does not print the value; 50 A/m gives
#: 400 updates over the Figure 1 sweep span of 20 kA/m which matches the
#: smoothness of the published curve.
DEFAULT_DHMAX: float = 50.0

#: Figure 1 sweep limits [A/m]: H in [-10, 10] kA/m.
FIG1_H_MAX: float = 10_000.0

#: Figure 1 flux-density extremes [T]: B in [-2, 2] T.
FIG1_B_MAX: float = 2.0

#: Value of ``2 / pi`` used by the modified Langevin function of the
#: published SystemC code (written there as ``2/3.14159265``).
TWO_OVER_PI: float = 2.0 / math.pi
