"""Triangular and sawtooth waveforms.

The paper's demonstrations drive H with a triangular waveform ("for
generality, a triangular waveform is used in a DC sweep").  The
time-domain variants here feed the baselines; the timeless experiments
use the waypoint schedules in :mod:`repro.waveforms.sweeps` instead.
"""

from __future__ import annotations

import math

from repro.errors import WaveformError
from repro.waveforms.base import Waveform


def _check_positive(name: str, value: float) -> float:
    if not math.isfinite(value) or value <= 0.0:
        raise WaveformError(f"{name} must be finite and > 0, got {value!r}")
    return float(value)


class TriangularWave(Waveform):
    """Symmetric triangle: 0 → +A → -A → 0 over one period.

    Parameters
    ----------
    amplitude:
        Peak value A.
    period:
        Repetition period [s].
    phase:
        Phase offset in fractions of a period (0..1).
    """

    def __init__(self, amplitude: float, period: float, phase: float = 0.0) -> None:
        self.amplitude = _check_positive("amplitude", amplitude)
        self.period = _check_positive("period", period)
        self.phase = float(phase) % 1.0

    def value(self, t: float) -> float:
        x = (t / self.period + self.phase) % 1.0
        if x < 0.25:
            level = 4.0 * x
        elif x < 0.75:
            level = 2.0 - 4.0 * x
        else:
            level = 4.0 * x - 4.0
        return self.amplitude * level

    def derivative(self, t: float, dt: float = 1e-9) -> float:
        x = (t / self.period + self.phase) % 1.0
        slope = 4.0 * self.amplitude / self.period
        if 0.25 <= x < 0.75:
            return -slope
        return slope

    def __repr__(self) -> str:
        return (
            f"TriangularWave(amplitude={self.amplitude}, period={self.period}, "
            f"phase={self.phase})"
        )


class SawtoothWave(Waveform):
    """Rising sawtooth from -A to +A with instantaneous reset.

    Deliberately pathological for time-domain solvers (step
    discontinuity); used by the stability tests as a stress input.
    """

    def __init__(self, amplitude: float, period: float) -> None:
        self.amplitude = _check_positive("amplitude", amplitude)
        self.period = _check_positive("period", period)

    def value(self, t: float) -> float:
        x = (t / self.period) % 1.0
        return self.amplitude * (2.0 * x - 1.0)

    def derivative(self, t: float, dt: float = 1e-9) -> float:
        return 2.0 * self.amplitude / self.period

    def __repr__(self) -> str:
        return f"SawtoothWave(amplitude={self.amplitude}, period={self.period})"
