"""Waveform abstraction shared by all time-domain excitation sources."""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Iterable

import numpy as np

from repro.errors import WaveformError


class Waveform(ABC):
    """A scalar function of time, ``value(t)`` with ``t`` in seconds."""

    @abstractmethod
    def value(self, t: float) -> float:
        """Waveform value at time ``t`` [s]."""

    def __call__(self, t: float) -> float:
        return self.value(t)

    def sample(self, times: Iterable[float]) -> np.ndarray:
        """Evaluate at many time points; returns a float array."""
        return np.array([self.value(float(t)) for t in times])

    def sample_uniform(
        self, t_stop: float, n: int, t_start: float = 0.0
    ) -> tuple[np.ndarray, np.ndarray]:
        """Evaluate on ``n`` uniformly spaced samples in [t_start, t_stop]."""
        if n < 2:
            raise WaveformError(f"need at least 2 samples, got {n}")
        if not t_stop > t_start:
            raise WaveformError(
                f"t_stop ({t_stop}) must exceed t_start ({t_start})"
            )
        times = np.linspace(t_start, t_stop, n)
        return times, self.sample(times)

    def derivative(self, t: float, dt: float = 1e-9) -> float:
        """Central-difference time derivative (sources may override)."""
        return (self.value(t + dt) - self.value(t - dt)) / (2.0 * dt)

    # -- composition sugar --------------------------------------------------

    def __add__(self, other: "Waveform") -> "Waveform":
        from repro.waveforms.composite import SummedWave

        return SummedWave([self, other])

    def __mul__(self, gain: float) -> "Waveform":
        from repro.waveforms.composite import ScaledWave

        return ScaledWave(self, gain)

    __rmul__ = __mul__

    def offset(self, bias: float) -> "Waveform":
        from repro.waveforms.composite import OffsetWave

        return OffsetWave(self, bias)


class ConstantWave(Waveform):
    """A constant value, useful as a bias term in compositions."""

    def __init__(self, level: float) -> None:
        if not math.isfinite(level):
            raise WaveformError(f"constant level must be finite, got {level!r}")
        self.level = float(level)

    def value(self, t: float) -> float:
        return self.level

    def derivative(self, t: float, dt: float = 1e-9) -> float:
        return 0.0

    def __repr__(self) -> str:
        return f"ConstantWave({self.level!r})"
