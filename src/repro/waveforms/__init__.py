"""Excitation waveforms and timeless sweep schedules.

Two families:

* time-domain waveforms (:class:`Waveform` subclasses) used by the
  time-based baselines and the mixed-domain circuit examples, and
* *timeless* waypoint schedules (:mod:`repro.waveforms.sweeps`) — ordered
  lists of field vertices that drive the paper's DC sweeps, including the
  decaying triangle that produces Figure 1's nested minor loops.
"""

from repro.waveforms.base import ConstantWave, Waveform
from repro.waveforms.composite import (
    ConcatenatedWave,
    OffsetWave,
    PiecewiseLinearWave,
    ScaledWave,
    SummedWave,
)
from repro.waveforms.sinusoidal import BiasedSineWave, DampedSineWave, SineWave
from repro.waveforms.sweeps import (
    biased_minor_loop_waypoints,
    decaying_triangle_waypoints,
    fig1_waypoints,
    initial_magnetisation_waypoints,
    major_loop_waypoints,
    minor_loop_grid,
)
from repro.waveforms.triangular import SawtoothWave, TriangularWave

__all__ = [
    "BiasedSineWave",
    "ConcatenatedWave",
    "ConstantWave",
    "DampedSineWave",
    "OffsetWave",
    "PiecewiseLinearWave",
    "SawtoothWave",
    "ScaledWave",
    "SineWave",
    "SummedWave",
    "TriangularWave",
    "Waveform",
    "biased_minor_loop_waypoints",
    "decaying_triangle_waypoints",
    "fig1_waypoints",
    "initial_magnetisation_waypoints",
    "major_loop_waypoints",
    "minor_loop_grid",
]
