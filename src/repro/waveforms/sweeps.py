"""Timeless DC-sweep schedules (waypoint lists for the field H).

A timeless simulation has no clock: the stimulus is simply the ordered
list of field vertices the sweep visits, and the model integrates along
the straight segments between them.  These helpers build the schedules
the experiments use, most importantly the decaying triangle behind the
paper's Figure 1 (major loop plus nested non-biased minor loops).
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence

from repro.constants import FIG1_H_MAX
from repro.errors import WaveformError


def _check_amplitude(value: float) -> float:
    if not math.isfinite(value) or value <= 0.0:
        raise WaveformError(f"amplitude must be finite and > 0, got {value!r}")
    return float(value)


def initial_magnetisation_waypoints(h_peak: float) -> list[float]:
    """From the demagnetised origin up the initial magnetisation curve."""
    return [0.0, _check_amplitude(h_peak)]


def major_loop_waypoints(
    h_peak: float, cycles: int = 1, include_initial_rise: bool = True
) -> list[float]:
    """Initial rise (optional) plus ``cycles`` full major loops.

    One cycle is ``+H -> -H -> +H``; the first point is the demagnetised
    origin when ``include_initial_rise`` is set.
    """
    peak = _check_amplitude(h_peak)
    if cycles < 1:
        raise WaveformError(f"cycles must be >= 1, got {cycles}")
    waypoints = [0.0, peak] if include_initial_rise else [peak]
    for _ in range(cycles):
        waypoints.extend([-peak, peak])
    return waypoints


def decaying_triangle_waypoints(
    amplitudes: Sequence[float], start: float = 0.0
) -> list[float]:
    """Alternating ±amplitude vertices with a decaying envelope.

    ``amplitudes = [10e3, 8e3, 6e3]`` gives
    ``start -> +10k -> -10k -> +8k -> -8k -> +6k -> -6k``:
    each shrink of the envelope closes one nested, non-biased minor loop —
    the classical demagnetisation schedule and the shape of Figure 1.
    """
    if not amplitudes:
        raise WaveformError("need at least one amplitude")
    previous = math.inf
    waypoints = [float(start)]
    for amplitude in amplitudes:
        amp = _check_amplitude(amplitude)
        if amp > previous:
            raise WaveformError(
                f"amplitudes must be non-increasing, got {amp} after {previous}"
            )
        previous = amp
        waypoints.extend([amp, -amp])
    return waypoints


def fig1_waypoints(
    h_max: float = FIG1_H_MAX,
    minor_loop_count: int = 4,
    final_fraction: float = 0.2,
) -> list[float]:
    """The Figure 1 schedule: one major loop plus nested minor loops.

    The major loop is traced at ``h_max``; the envelope then decays
    linearly over ``minor_loop_count`` shrinking non-biased loops down to
    ``final_fraction * h_max``, reproducing the nested loops visible in
    the published plot.
    """
    peak = _check_amplitude(h_max)
    if minor_loop_count < 0:
        raise WaveformError(f"minor_loop_count must be >= 0, got {minor_loop_count}")
    if not 0.0 < final_fraction <= 1.0:
        raise WaveformError(
            f"final_fraction must be in (0, 1], got {final_fraction!r}"
        )
    amplitudes = [peak, peak]  # initial rise target + one full major loop
    if minor_loop_count > 0:
        step = (1.0 - final_fraction) / minor_loop_count
        for i in range(1, minor_loop_count + 1):
            amplitudes.append(peak * (1.0 - step * i))
    return decaying_triangle_waypoints(amplitudes)


def biased_minor_loop_waypoints(
    bias: float,
    amplitude: float,
    cycles: int = 2,
    approach_from: float = 0.0,
) -> list[float]:
    """A minor loop of given half-amplitude centred on a DC bias.

    The field first travels from ``approach_from`` to the loop's upper
    vertex, then cycles ``bias+A -> bias-A -> bias+A`` the requested
    number of times.  ``bias = 0`` gives a non-biased loop.
    """
    amp = _check_amplitude(amplitude)
    if not math.isfinite(bias):
        raise WaveformError(f"bias must be finite, got {bias!r}")
    if cycles < 1:
        raise WaveformError(f"cycles must be >= 1, got {cycles}")
    upper = bias + amp
    lower = bias - amp
    waypoints = [float(approach_from), upper]
    for _ in range(cycles):
        waypoints.extend([lower, upper])
    return waypoints


def minor_loop_grid(
    amplitudes: Sequence[float],
    biases: Sequence[float],
    cycles: int = 2,
) -> Iterator[tuple[float, float, list[float]]]:
    """Yield ``(bias, amplitude, waypoints)`` over a grid of minor loops.

    The robustness experiment EXP-T4 sweeps this grid ("various minor
    loop sizes and in different positions").
    """
    for bias in biases:
        for amplitude in amplitudes:
            yield (
                float(bias),
                float(amplitude),
                biased_minor_loop_waypoints(bias, amplitude, cycles=cycles),
            )
