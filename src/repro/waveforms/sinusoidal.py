"""Sinusoidal excitation waveforms.

**Ufunc parity.**  The transcendentals here are NumPy's (``np.sin`` /
``np.cos`` / ``np.exp``), not ``math.*`` — libm and NumPy's SIMD
kernels differ by 1 ulp on some arguments (the PR 1 gotcha), and these
waveforms feed the time-domain baseline, whose batch engine evaluates
the same drives through array ufuncs.  Keeping both paths on NumPy's
kernels preserves the repo-wide rule that scalar and batched
trajectories are bitwise interchangeable.  ``math.isfinite`` /
``math.pi`` remain: validation and constants carry no kernel
difference.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import WaveformError
from repro.waveforms.base import Waveform


class SineWave(Waveform):
    """``A * sin(2*pi*f*t + phase)``."""

    def __init__(self, amplitude: float, frequency: float, phase: float = 0.0) -> None:
        if not math.isfinite(amplitude):
            raise WaveformError(f"amplitude must be finite, got {amplitude!r}")
        if not math.isfinite(frequency) or frequency <= 0.0:
            raise WaveformError(f"frequency must be > 0, got {frequency!r}")
        self.amplitude = float(amplitude)
        self.frequency = float(frequency)
        self.phase = float(phase)

    @property
    def omega(self) -> float:
        return 2.0 * math.pi * self.frequency

    def value(self, t: float) -> float:
        return self.amplitude * float(np.sin(self.omega * t + self.phase))

    def derivative(self, t: float, dt: float = 1e-9) -> float:
        return self.amplitude * self.omega * float(np.cos(self.omega * t + self.phase))

    def __repr__(self) -> str:
        return (
            f"SineWave(amplitude={self.amplitude}, frequency={self.frequency}, "
            f"phase={self.phase})"
        )


class DampedSineWave(SineWave):
    """``A * exp(-t/tau) * sin(2*pi*f*t + phase)``.

    Sweeping the field with a decaying sinusoid is the classical
    demagnetisation procedure and produces nested, shrinking minor loops —
    the continuous-time analogue of the Figure 1 schedule.
    """

    def __init__(
        self,
        amplitude: float,
        frequency: float,
        tau: float,
        phase: float = 0.0,
    ) -> None:
        super().__init__(amplitude, frequency, phase)
        if not math.isfinite(tau) or tau <= 0.0:
            raise WaveformError(f"tau must be > 0, got {tau!r}")
        self.tau = float(tau)

    def value(self, t: float) -> float:
        return float(np.exp(-t / self.tau)) * super().value(t)

    def derivative(self, t: float, dt: float = 1e-9) -> float:
        envelope = float(np.exp(-t / self.tau))
        return envelope * (
            super().derivative(t) - super().value(t) / self.tau
        )

    def __repr__(self) -> str:
        return (
            f"DampedSineWave(amplitude={self.amplitude}, "
            f"frequency={self.frequency}, tau={self.tau}, phase={self.phase})"
        )


class BiasedSineWave(SineWave):
    """``bias + A * sin(...)`` — drives *biased* minor loops.

    A DC bias plus small AC amplitude traces a minor loop positioned away
    from the origin, one of the paper's robustness demonstrations
    ("various minor loop sizes and in different positions").
    """

    def __init__(
        self,
        bias: float,
        amplitude: float,
        frequency: float,
        phase: float = 0.0,
    ) -> None:
        super().__init__(amplitude, frequency, phase)
        if not math.isfinite(bias):
            raise WaveformError(f"bias must be finite, got {bias!r}")
        self.bias = float(bias)

    def value(self, t: float) -> float:
        return self.bias + super().value(t)

    def __repr__(self) -> str:
        return (
            f"BiasedSineWave(bias={self.bias}, amplitude={self.amplitude}, "
            f"frequency={self.frequency}, phase={self.phase})"
        )
