"""Waveform composition: sums, gains, offsets, PWL and concatenation."""

from __future__ import annotations

import bisect
import math
from typing import Sequence

from repro.errors import WaveformError
from repro.waveforms.base import Waveform


class SummedWave(Waveform):
    """Pointwise sum of several waveforms."""

    def __init__(self, parts: Sequence[Waveform]) -> None:
        if not parts:
            raise WaveformError("SummedWave needs at least one part")
        self.parts = list(parts)

    def value(self, t: float) -> float:
        return sum(part.value(t) for part in self.parts)

    def derivative(self, t: float, dt: float = 1e-9) -> float:
        return sum(part.derivative(t, dt) for part in self.parts)

    def __repr__(self) -> str:
        return f"SummedWave({self.parts!r})"


class ScaledWave(Waveform):
    """``gain * inner(t)``."""

    def __init__(self, inner: Waveform, gain: float) -> None:
        if not math.isfinite(gain):
            raise WaveformError(f"gain must be finite, got {gain!r}")
        self.inner = inner
        self.gain = float(gain)

    def value(self, t: float) -> float:
        return self.gain * self.inner.value(t)

    def derivative(self, t: float, dt: float = 1e-9) -> float:
        return self.gain * self.inner.derivative(t, dt)

    def __repr__(self) -> str:
        return f"ScaledWave({self.inner!r}, gain={self.gain})"


class OffsetWave(Waveform):
    """``bias + inner(t)``."""

    def __init__(self, inner: Waveform, bias: float) -> None:
        if not math.isfinite(bias):
            raise WaveformError(f"bias must be finite, got {bias!r}")
        self.inner = inner
        self.bias = float(bias)

    def value(self, t: float) -> float:
        return self.bias + self.inner.value(t)

    def derivative(self, t: float, dt: float = 1e-9) -> float:
        return self.inner.derivative(t, dt)

    def __repr__(self) -> str:
        return f"OffsetWave({self.inner!r}, bias={self.bias})"


class PiecewiseLinearWave(Waveform):
    """SPICE-style PWL source: linear interpolation between (t, v) points.

    Holds the first/last value outside the given span.  Time points must
    be strictly increasing.
    """

    def __init__(self, points: Sequence[tuple[float, float]]) -> None:
        if len(points) < 2:
            raise WaveformError("PWL needs at least two (t, v) points")
        times = [float(t) for t, _ in points]
        values = [float(v) for _, v in points]
        for earlier, later in zip(times[:-1], times[1:]):
            if not later > earlier:
                raise WaveformError(
                    f"PWL time points must strictly increase "
                    f"({earlier} then {later})"
                )
        if not all(math.isfinite(v) for v in values):
            raise WaveformError("PWL values must all be finite")
        self.times = times
        self.values = values

    def value(self, t: float) -> float:
        if t <= self.times[0]:
            return self.values[0]
        if t >= self.times[-1]:
            return self.values[-1]
        idx = bisect.bisect_right(self.times, t) - 1
        t0, t1 = self.times[idx], self.times[idx + 1]
        v0, v1 = self.values[idx], self.values[idx + 1]
        return v0 + (v1 - v0) * (t - t0) / (t1 - t0)

    def derivative(self, t: float, dt: float = 1e-9) -> float:
        if t < self.times[0] or t > self.times[-1]:
            return 0.0
        idx = min(
            bisect.bisect_right(self.times, t) - 1, len(self.times) - 2
        )
        idx = max(idx, 0)
        t0, t1 = self.times[idx], self.times[idx + 1]
        v0, v1 = self.values[idx], self.values[idx + 1]
        return (v1 - v0) / (t1 - t0)

    def __repr__(self) -> str:
        return f"PiecewiseLinearWave({list(zip(self.times, self.values))!r})"


class ConcatenatedWave(Waveform):
    """Play several waveforms back to back, each for a given duration.

    The local time handed to each part restarts at zero; after the last
    segment the final part's value at its duration is held.
    """

    def __init__(self, parts: Sequence[tuple[Waveform, float]]) -> None:
        if not parts:
            raise WaveformError("ConcatenatedWave needs at least one part")
        for _, duration in parts:
            if not math.isfinite(duration) or duration <= 0.0:
                raise WaveformError(
                    f"segment duration must be > 0, got {duration!r}"
                )
        self.parts = [(wave, float(duration)) for wave, duration in parts]
        self._starts = [0.0]
        for _, duration in self.parts[:-1]:
            self._starts.append(self._starts[-1] + duration)
        self.total_duration = self._starts[-1] + self.parts[-1][1]

    def value(self, t: float) -> float:
        if t <= 0.0:
            return self.parts[0][0].value(0.0)
        if t >= self.total_duration:
            wave, duration = self.parts[-1]
            return wave.value(duration)
        idx = bisect.bisect_right(self._starts, t) - 1
        wave, _ = self.parts[idx]
        return wave.value(t - self._starts[idx])

    def __repr__(self) -> str:
        return f"ConcatenatedWave({self.parts!r})"
