"""Exception hierarchy for the reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single handler.  Numerical
pathologies that the stability experiments need to *count* rather than
abort on are reported through :class:`repro.analysis.stability.StabilityAudit`
instead of being raised.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ParameterError(ReproError, ValueError):
    """A model parameter is missing, non-finite or outside its domain."""


class WaveformError(ReproError, ValueError):
    """An excitation waveform was constructed with inconsistent data."""


class KernelError(ReproError, RuntimeError):
    """The event-driven simulation kernel detected an illegal operation."""


class SchedulingError(KernelError):
    """A process or event was scheduled in an inconsistent way."""


class SignalError(KernelError):
    """Illegal signal access (e.g. write outside a process context)."""


class SolverError(ReproError, RuntimeError):
    """The analogue solver failed in a way that cannot be accounted for."""


class ConvergenceError(SolverError):
    """Newton iteration failed to converge and no fallback was allowed."""


class AnalysisError(ReproError, ValueError):
    """Loop/metric analysis received data it cannot interpret."""


class ExperimentError(ReproError, RuntimeError):
    """An experiment was mis-configured or produced unusable output."""


class ScenarioError(ReproError, ValueError):
    """A drive scenario was requested or parameterised inconsistently."""


class DistError(ReproError, RuntimeError):
    """The multi-host dispatch layer failed in a non-recoverable way
    (a worker-side exception, exhausted retries, a wire-protocol
    mismatch)."""


class DistTimeoutError(DistError):
    """A per-job deadline expired waiting on a worker connection."""
