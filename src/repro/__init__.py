"""repro: timeless discretisation of the Jiles-Atherton magnetisation slope.

A full reproduction of *"HDL Models of Ferromagnetic Core Hysteresis
Using Timeless Discretisation of the Magnetic Slope"* (Al-Junaid &
Kazmierski, DATE 2006): the timeless integration technique, SystemC and
VHDL-AMS style implementations on faithful simulation substrates, the
time-domain baselines the paper argues against, magnetic components, and
the experiment suite regenerating the paper's figure and claims.

Quick start::

    from repro import TimelessJAModel, PAPER_PARAMETERS, run_sweep
    from repro.waveforms import major_loop_waypoints

    model = TimelessJAModel(PAPER_PARAMETERS, dhmax=50.0)
    sweep = run_sweep(model, major_loop_waypoints(10e3, cycles=1))
    # sweep.h, sweep.b now hold the B-H loop

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.backend import ArrayBackend, get_backend, list_backends
from repro.batch import (
    BatchPreisachModel,
    BatchTimeDomainModel,
    BatchTimelessModel,
)
from repro.constants import DEFAULT_DHMAX, MU0
from repro.core.model import TimelessJAModel
from repro.core.slope import SlopeGuards
from repro.core.sweep import SweepResult, run_sweep, run_sweep_dense
from repro.errors import ReproError
from repro.ja.parameters import PAPER_PARAMETERS, PRESETS, JAParameters
from repro.models import get_family, list_families
from repro.scenarios import get_scenario, list_scenarios, run_scenario

__version__ = "1.9.0"

__all__ = [
    "ArrayBackend",
    "BatchPreisachModel",
    "BatchTimeDomainModel",
    "BatchTimelessModel",
    "DEFAULT_DHMAX",
    "JAParameters",
    "MU0",
    "PAPER_PARAMETERS",
    "PRESETS",
    "ReproError",
    "SlopeGuards",
    "SweepResult",
    "TimelessJAModel",
    "__version__",
    "get_backend",
    "get_family",
    "get_scenario",
    "list_backends",
    "list_families",
    "list_scenarios",
    "run_scenario",
    "run_sweep",
    "run_sweep_dense",
]
