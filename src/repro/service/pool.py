"""A persistent worker pool that outlives individual campaigns.

Every ``run_sharded``/``run_scenario_grid`` call today builds a
``multiprocessing`` pool, uses it once, and tears it down — so every
campaign re-pays fork/spawn spin-up (the calibration's measured
``pool_base``), and on the numba backend every *worker* re-pays JIT
compilation of the fused kernels.  :class:`WorkerPool` pays both costs
once:

* the pool is created once and handed to successive executor calls via
  their ``pool=`` argument (the executor never closes a caller-owned
  pool);
* before forking, :func:`prewarm_fused_kernels` runs every compiled
  fused driver once **in the parent** — under the default ``fork``
  start method children inherit the parent's warmed JIT caches (the
  EXP-B5 fork-inheritance observation), so no worker ever compiles.

Execution through a live pool is serialised by an internal lock: the
async front-end (:mod:`repro.service.api`) may dispatch from several
threads, and ``multiprocessing.Pool.map`` calls must not interleave
shard batches from different jobs.  Parallelism comes from the shards
inside each job, not from overlapping jobs.
"""

from __future__ import annotations

import logging
import threading
from multiprocessing import get_context

from repro.errors import ParameterError
from repro.parallel.executor import (
    execute_jobs_pooled,
    resolve_workers,
    run_job_serial,
)

_log = logging.getLogger(__name__)


def prewarm_fused_kernels(
    backends=None,
    lanes: int = 2,
    samples: int = 8,
) -> tuple:
    """Run every compiled fused driver once, in this process.

    Walks the registered JIT backends (the exact numpy backend has
    nothing to compile) and, for each family the backend registers a
    fused driver for, drives a tiny ensemble through the real
    ``run_batch_series`` path — compiling the kernel variants into this
    process's JIT cache.  Returns the warmed ``(family, backend)``
    pairs.  Call *before* forking workers: under ``fork`` the children
    inherit the warmed caches for free.
    """
    from repro.backend import get_backend, list_backends
    from repro.batch.sweep import run_batch_series
    from repro.models.registry import get_family
    from repro.sched.calibration import probe_drive

    records = (
        [get_backend(name) for name in backends]
        if backends is not None
        else list_backends()
    )
    warmed = []
    for backend in records:
        if backend.exact:
            continue
        for family_name in backend.fused_families:
            family = get_family(family_name)
            batch = family.make_batch(lanes, seed=0, backend=backend.name)
            run_batch_series(batch, probe_drive(family.h_scale, samples))
            warmed.append((family_name, backend.name))
    return tuple(warmed)


class WorkerPool:
    """A long-lived shard-execution pool for many campaigns.

    Parameters
    ----------
    n_workers:
        Pool width; defaults to the available CPUs and is clamped by
        ``REPRO_PARALLEL_MAX_WORKERS`` exactly like the one-shot
        executor path.  Width 1 keeps no processes at all — jobs run
        through the serial in-process fallback, so a ``WorkerPool`` is
        safe to construct on any host.
    mp_context:
        ``multiprocessing`` start method.  The default (``fork`` on
        Linux) is what makes pre-warmed JIT kernels heritable; under
        ``spawn`` workers start cold and the warm-up only helps the
        parent's own serial runs.
    warm:
        Pre-compile every registered fused JIT kernel in the parent
        before forking (:func:`prewarm_fused_kernels`).  A no-op when
        only the numpy backend is registered.
    """

    def __init__(
        self,
        n_workers: "int | None" = None,
        *,
        mp_context: "str | None" = None,
        warm: bool = True,
    ) -> None:
        self.n_workers = resolve_workers(n_workers)
        self._ctx = get_context(mp_context)
        self.warmed = prewarm_fused_kernels() if warm else ()
        # Warm-up above MUST precede the fork below: Pool() is where
        # the children snapshot the parent's (warmed) JIT caches.
        self._pool = (
            self._ctx.Pool(processes=self.n_workers)
            if self.n_workers > 1
            else None
        )
        self._lock = threading.Lock()
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def start_method(self) -> str:
        return self._ctx.get_start_method()

    def execute(self, jobs: list) -> list:
        """Run prepared jobs (see ``repro.parallel.executor``) on this
        pool and return their assembled results, one per job."""
        if self._closed:
            raise ParameterError(
                "this WorkerPool is closed; construct a new one"
            )
        if self._pool is None:
            return [run_job_serial(job) for job in jobs]
        with self._lock:
            return execute_jobs_pooled(self._pool, jobs)

    def close(self) -> None:
        """Tear the workers down.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception as exc:
            # Raising from __del__ would crash interpreter shutdown,
            # but a pool the GC had to reap is a leak worth a trace
            # (L007: broad handlers log, never swallow in silence).
            _log.debug("WorkerPool.__del__ close failed: %s", exc)
