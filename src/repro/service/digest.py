"""Canonical, stable digests of service workloads.

The result cache (:mod:`repro.service.cache`) is content-addressed: a
request is identified by a digest of *what* it computes — the
``(EnsembleSpec, DriveSpec, backend)`` triple — and deliberately by
nothing about *how* it executes.  Pool width, lane-thread count and
shard geometry are excluded by construction: the sharded executor's
reassembly is bitwise-identical to the single-process run (PR 3) and
lane-major threading replays each lane's exact arithmetic sequence
(PR 6), so any execution plan can serve any hit.

The backend name **is** part of the key.  numpy results are bitwise
pinned; numba trajectories carry the backend's rtol tier — serving one
for the other would silently change what "cached" means, so the two
can never cross-serve.

Digests must be stable across processes and Python runs:
:func:`canonicalise` normalises every payload value (dict-key order,
dtype spellings, ndarray contents) into a canonical JSON-able form
before hashing.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields as dataclass_fields

import numpy as np

from repro.backend import resolve_backend
from repro.errors import ParameterError
from repro.parallel.spec import DriveSpec, EnsembleSpec

#: Bump when the canonical payload layout changes incompatibly — a new
#: schema never collides with (or serves) digests of the old one.
DIGEST_SCHEMA = 1

#: The spec fields this module knows how to serialise.  ``spec_digest``
#: cross-checks the *actual* dataclass fields of what it is handed
#: against these sets and refuses to digest a spec with unknown extras:
#: silently skipping a semantic field would let two different workloads
#: share a cache key.  (Lint rule L004 enforces the same property
#: statically; this is its runtime backstop for subclasses and
#: monkeypatched spec types the static pass never sees.)
ENSEMBLE_DIGEST_FIELDS = frozenset({"family", "n_cores", "seed", "backend"})
DRIVE_DIGEST_FIELDS = frozenset({"scenario", "h_max", "driver_step", "samples"})

#: Fields describing *how* a workload executes rather than *what* it
#: computes — excluded from digests by design (pool width and lane
#: threads are bitwise-neutral per the PR 3/PR 6 pins), so their
#: presence on a spec type is not an error.
EXECUTION_SHAPE_FIELDS = frozenset({"n_workers", "threads", "mp_context", "pool"})


def _check_digest_fields(spec, known: frozenset, label: str) -> None:
    """Refuse to digest a spec type carrying fields the payload would
    silently drop (a clear error beats a stale cache hit)."""
    unknown = sorted(
        field.name
        for field in dataclass_fields(spec)
        if field.name not in known and field.name not in EXECUTION_SHAPE_FIELDS
    )
    if unknown:
        raise ParameterError(
            f"{label} type {type(spec).__name__!r} carries fields "
            f"spec_digest does not serialise: {', '.join(unknown)}; "
            "digesting would silently drop them and serve stale cache "
            "entries — add them to the digest payload (and bump "
            "DIGEST_SCHEMA) or, for execution-shape knobs, to "
            "EXECUTION_SHAPE_FIELDS"
        )


def _array_token(value: np.ndarray) -> list:
    """An ndarray as ``["ndarray", shape, canonical-dtype, sha256]``.

    Shape and dtype are part of the token (the same bytes viewed as a
    different shape or dtype are a different drive); the content hash
    is over the C-contiguous bytes, so any memory layout of equal
    values digests equally.
    """
    arr = np.ascontiguousarray(value)
    return [
        "ndarray",
        list(arr.shape),
        np.dtype(arr.dtype).str,
        hashlib.sha256(arr.tobytes()).hexdigest(),
    ]


def canonicalise(value):
    """Normalise one payload value into a canonical JSON-able form.

    Handles the vocabulary a workload description needs — ``None``,
    bools, ints, floats, strings, numpy scalars, dtypes (any spelling:
    ``"float64"``, ``"<f8"``, ``np.float64`` and ``np.dtype(...)`` all
    normalise to the same ``.str`` token), ndarrays, and dicts/lists/
    tuples of those.  Dict keys must be strings and are sorted at
    serialisation time, so insertion order never reaches the digest.
    Anything else is an error, not a ``repr`` guess: an unhashable
    payload means the caller is trying to digest something that is not
    a reproducible recipe.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.dtype):
        return ["dtype", value.str]
    if isinstance(value, type) and issubclass(value, np.generic):
        return ["dtype", np.dtype(value).str]
    if isinstance(value, np.ndarray):
        return _array_token(value)
    if isinstance(value, dict):
        out = {}
        # Sorted traversal (L009): insertion order is execution shape,
        # not a semantic field, and must never reach canonical output.
        # key=str keeps a non-string key traversable long enough to be
        # rejected with the precise error below.
        for key in sorted(value, key=str):
            if not isinstance(key, str):
                raise ParameterError(
                    f"digest payload keys must be strings, got {key!r}"
                )
            out[key] = canonicalise(value[key])
        return out
    if isinstance(value, (list, tuple)):
        return [canonicalise(item) for item in value]
    raise ParameterError(
        f"cannot canonicalise a {type(value).__name__} into a digest "
        "payload; digests cover reproducible recipe values only"
    )


def digest_payload(payload: dict) -> str:
    """The hex digest of one canonicalised payload dict."""
    text = json.dumps(canonicalise(payload), sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()


def spec_digest(
    ensemble: EnsembleSpec,
    drive: DriveSpec,
    backend: "str | None" = None,
) -> str:
    """The content address of one ``(ensemble, drive, backend)`` request.

    ``backend`` overrides the spec's own backend field; when both are
    ``None`` the ``REPRO_BACKEND`` environment default resolves — so a
    spec left on the default backend and a spec explicitly pinned to it
    digest identically (they compute identical results).  A scenario
    drive must carry its resolved ``driver_step`` (the
    :class:`~repro.parallel.spec.DriveSpec` validator enforces this):
    the step is semantic — it changes the sample ladder — unlike pool
    width or lane threads, which never appear in the payload.
    """
    if not isinstance(ensemble, EnsembleSpec):
        raise ParameterError(
            "spec_digest needs an EnsembleSpec recipe (live batch models "
            f"are not content-addressable), got {type(ensemble).__name__}"
        )
    if not isinstance(drive, DriveSpec):
        raise ParameterError(
            f"spec_digest needs a DriveSpec, got {type(drive).__name__}"
        )
    _check_digest_fields(ensemble, ENSEMBLE_DIGEST_FIELDS, "ensemble spec")
    _check_digest_fields(drive, DRIVE_DIGEST_FIELDS, "drive spec")
    backend_name = resolve_backend(
        backend if backend is not None else ensemble.backend
    ).name
    payload = {
        "schema": DIGEST_SCHEMA,
        "family": ensemble.family,
        "n_cores": ensemble.n_cores,
        "seed": ensemble.seed,
        "backend": backend_name,
        "drive": {
            "scenario": drive.scenario,
            "h_max": drive.h_max,
            "driver_step": drive.driver_step,
            "samples": drive.samples,
        },
    }
    return digest_payload(payload)
