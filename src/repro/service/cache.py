"""Content-addressed result cache: in-memory LRU with optional disk spill.

Entries are whole :class:`~repro.batch.sweep.BatchSweepResult` records
keyed by :func:`repro.service.digest.spec_digest` — so a hit *is* the
result, reassembled columns and counters included, and the bitwise
pins that make caching trustworthy (PRs 1-6) carry over: a numpy-keyed
hit is byte-identical to recomputing the request in a fresh process.

Two defensive rules keep a shared cache honest:

* entries are **frozen** — every array is marked read-only on insert
  (and the ``h`` column, which may alias the caller's input array, is
  copied first), so no client can mutate a result another client will
  be served;
* the optional disk spill is **atomic** — each entry lands as one
  ``<digest>.npz`` written to a temp file and ``os.replace``d into
  place, so a crashed writer never leaves a truncated entry a later
  process would load.

The spill directory (conventionally ``results/cache/``) makes warm
state survive the process: a fresh service finds yesterday's grid
cells on disk.  Eviction only drops entries from memory; spilled files
persist until :meth:`ResultCache.clear` removes them.
"""

from __future__ import annotations

import os
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro.batch.sweep import BatchSweepResult
from repro.errors import ParameterError

_EXTRA_PREFIX = "extra__"
_COUNTER_PREFIX = "counter__"


def _frozen(result: BatchSweepResult) -> BatchSweepResult:
    """A read-only view of one result, safe to hand to many clients.

    All columns except ``h`` are freshly allocated by the executors
    (shared-memory copy-out or concatenation), so freezing them in
    place is safe; ``h`` may alias the caller's own sample array, so it
    is copied before freezing rather than mutating the caller's flags.
    """

    def freeze(arr: np.ndarray) -> np.ndarray:
        arr.flags.writeable = False
        return arr

    return BatchSweepResult(
        h=freeze(np.array(result.h)),
        m=freeze(result.m),
        b=freeze(result.b),
        updated=freeze(result.updated),
        extras={k: freeze(v) for k, v in result.extras.items()},
        counters={k: freeze(np.asarray(v)) for k, v in result.counters.items()},
        family=result.family,
    )


def save_result(path: Path, result: BatchSweepResult) -> None:
    """Persist one result as a single atomically-replaced ``.npz``."""
    payload: dict[str, np.ndarray] = {
        "h": result.h,
        "m": result.m,
        "b": result.b,
        "updated": result.updated,
        "family": np.array(result.family),
    }
    for key, value in result.extras.items():
        payload[_EXTRA_PREFIX + key] = value
    for key, value in result.counters.items():
        payload[_COUNTER_PREFIX + key] = np.asarray(value)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(handle, **payload)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except FileNotFoundError:
            pass
        raise


def load_result(path: Path) -> BatchSweepResult:
    """Load one spilled result; dtypes round-trip exactly (``savez``
    stores raw array bytes, so a disk hit stays byte-identical)."""
    with np.load(path) as npz:
        extras = {}
        counters = {}
        for key in npz.files:
            if key.startswith(_EXTRA_PREFIX):
                extras[key[len(_EXTRA_PREFIX):]] = npz[key]
            elif key.startswith(_COUNTER_PREFIX):
                counters[key[len(_COUNTER_PREFIX):]] = npz[key]
        return BatchSweepResult(
            h=npz["h"],
            m=npz["m"],
            b=npz["b"],
            updated=npz["updated"],
            extras=extras,
            counters=counters,
            family=str(npz["family"].item()),
        )


class ResultCache:
    """LRU cache of :class:`BatchSweepResult` keyed by content digest.

    ``max_entries`` bounds the in-memory working set (least recently
    used entries evict first); ``spill_dir`` additionally persists
    every insert to disk, and a memory miss re-loads from there before
    counting as a real miss.  All methods are thread-safe: the async
    service front-end (:mod:`repro.service.api`) shares one cache
    across all of its dispatch threads.
    """

    def __init__(
        self,
        max_entries: int = 128,
        spill_dir: "Path | str | None" = None,
    ) -> None:
        if max_entries < 1:
            raise ParameterError(
                f"cache max_entries must be >= 1, got {max_entries}"
            )
        self.max_entries = max_entries
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._entries: "OrderedDict[str, BatchSweepResult]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_hits = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def _spill_path(self, key: str) -> Path:
        return self.spill_dir / f"{key}.npz"

    def get(self, key: str) -> "BatchSweepResult | None":
        """The cached result for one digest, or ``None`` on a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry
        if self.spill_dir is not None:
            path = self._spill_path(key)
            if path.exists():
                result = _frozen(load_result(path))
                with self._lock:
                    self._insert(key, result)
                    self.hits += 1
                    self.disk_hits += 1
                return result
        with self._lock:
            self.misses += 1
        return None

    def _insert(self, key: str, result: BatchSweepResult) -> None:
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def put(self, key: str, result: BatchSweepResult) -> BatchSweepResult:
        """Insert one result; returns the frozen entry actually stored
        (callers should hand *that* onward, so every consumer of the
        digest sees the same read-only arrays)."""
        frozen = _frozen(result)
        with self._lock:
            self._insert(key, frozen)
        if self.spill_dir is not None:
            save_result(self._spill_path(key), frozen)
        return frozen

    @property
    def stats(self) -> dict:
        """Counters snapshot: hits/misses/evictions/disk_hits/entries."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "disk_hits": self.disk_hits,
                "entries": len(self._entries),
            }

    def clear(self, spilled: bool = False) -> None:
        """Drop every in-memory entry; ``spilled=True`` also removes the
        on-disk files."""
        with self._lock:
            self._entries.clear()
        if spilled and self.spill_dir is not None and self.spill_dir.exists():
            for path in self.spill_dir.glob("*.npz"):
                path.unlink()
