"""Hysteresis-as-a-service: one warm pool, one cache, many campaigns.

:class:`HysteresisService` ties the three service pieces together:

* a persistent :class:`~repro.service.pool.WorkerPool` — forked once
  (fused JIT kernels pre-warmed in the parent so ``fork`` children
  inherit them compiled), reused by every request, so successive
  campaigns stop re-paying the calibration's measured ``pool_base``;
* a content-addressed :class:`~repro.service.cache.ResultCache` —
  requests are keyed by :func:`~repro.service.digest.spec_digest`
  (ensemble recipe + drive + backend; never pool width or threads), so
  a repeated request *is* its previous result;
* an async front-end — :meth:`submit` returns an ``asyncio`` future,
  :meth:`stream_grid` yields grid cells as they land, and identical
  concurrent submissions **coalesce**: one computation feeds every
  waiter with the same frozen result.

Synchronous callers use :meth:`run` (same cache, same pool, no event
loop needed), and :func:`repro.parallel.grid.run_scenario_grid` accepts
the whole service via ``service=`` for cache-aware batch campaigns.

Because cache keys include the backend name, auto-planning under the
service is **backend-pinned**: the planner may trade pool width and
lane threads (priced spin-up-free — the pool is already warm), but the
backend axis is fixed by the request.  numpy's bitwise tier and
numba's rtol tier never cross-serve.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
from functools import partial
from pathlib import Path
from typing import AsyncIterator, Sequence

from repro.backend import resolve_backend
from repro.batch.sweep import BatchSweepResult
from repro.errors import ParameterError
from repro.parallel.executor import run_sharded
from repro.parallel.spec import DriveSpec, EnsembleSpec
from repro.service.cache import ResultCache
from repro.service.digest import spec_digest
from repro.service.pool import WorkerPool

#: Conventional spill location, relative to the repo/working directory.
DEFAULT_CACHE_DIR = Path("results") / "cache"


class HysteresisService:
    """A long-lived hysteresis computation service.

    Parameters
    ----------
    n_workers / mp_context / warm:
        Forwarded to :class:`~repro.service.pool.WorkerPool`; the pool
        is created (and its kernels warmed) at construction, so the
        first request already runs warm.
    cache_entries:
        In-memory LRU capacity of the result cache.
    cache_dir:
        Optional disk-spill directory (``DEFAULT_CACHE_DIR`` is the
        convention: ``results/cache/``).  ``None`` keeps the cache
        purely in-memory.
    dispatch_threads:
        Size of the thread pool the async front-end dispatches on.
        Dispatch threads block on the worker pool's internal lock, so
        this bounds *queued* requests, not parallel compute — the
        parallelism lives in the shards.
    """

    def __init__(
        self,
        n_workers: "int | None" = None,
        *,
        mp_context: "str | None" = None,
        warm: bool = True,
        cache_entries: int = 128,
        cache_dir: "Path | str | None" = None,
        dispatch_threads: int = 2,
    ) -> None:
        if dispatch_threads < 1:
            raise ParameterError(
                f"dispatch_threads must be >= 1, got {dispatch_threads}"
            )
        self.pool = WorkerPool(n_workers, mp_context=mp_context, warm=warm)
        self.cache = ResultCache(cache_entries, spill_dir=cache_dir)
        self._dispatch = concurrent.futures.ThreadPoolExecutor(
            max_workers=dispatch_threads, thread_name_prefix="hysteresis"
        )
        self._inflight: "dict[str, concurrent.futures.Future]" = {}
        self._inflight_lock = threading.Lock()
        self._closed = False

    # -- content addressing -------------------------------------------

    def digest_for(self, spec: EnsembleSpec, drive: DriveSpec) -> str:
        """The cache key this service uses for one request."""
        return spec_digest(spec, drive)

    # -- synchronous front door ---------------------------------------

    def run(
        self,
        spec: EnsembleSpec,
        drive: DriveSpec,
        *,
        plan=None,
        min_shard: int = 1,
    ) -> BatchSweepResult:
        """One request, synchronously: cache hit or warm-pool compute.

        ``plan`` may be ``None`` (the pool's full width), ``"auto"``
        (calibrated planning, spin-up-free and pinned to the request's
        backend), or an explicit
        :class:`~repro.sched.planner.ExecutionPlan` whose backend must
        match the request's (cache keys include the backend).  The
        returned result is the frozen cache entry — arrays read-only,
        shared by every requester of this digest.
        """
        self._check_open()
        digest = self.digest_for(spec, drive)
        return self._fetch(digest, spec, drive, plan, min_shard)

    # -- async front door ---------------------------------------------

    def submit(
        self,
        spec: EnsembleSpec,
        drive: DriveSpec,
        *,
        plan=None,
        min_shard: int = 1,
        loop: "asyncio.AbstractEventLoop | None" = None,
    ) -> "asyncio.Future[BatchSweepResult]":
        """Submit one request; returns an ``asyncio`` future.

        The digest is computed eagerly (spec validation errors surface
        at the call site, not inside the future); the cache lookup and
        any compute run on a dispatch thread.  Identical in-flight
        submissions coalesce onto one computation.
        """
        self._check_open()
        digest = self.digest_for(spec, drive)
        if loop is None:
            try:
                loop = asyncio.get_running_loop()
            except RuntimeError:
                raise ParameterError(
                    "HysteresisService.submit needs a running event loop "
                    "(or an explicit loop=); synchronous callers should "
                    "use HysteresisService.run"
                ) from None
        return loop.run_in_executor(
            self._dispatch,
            partial(self._fetch, digest, spec, drive, plan, min_shard),
        )

    async def stream_grid(
        self,
        families: Sequence[str],
        scenarios: Sequence[str],
        h_max_values: Sequence[float],
        n_cores: int,
        *,
        seed: int = 0,
        driver_step: "float | None" = None,
        backend: "str | None" = None,
        plan=None,
        min_shard: int = 1,
    ) -> AsyncIterator:
        """Yield :class:`~repro.parallel.grid.GridCell`\\ s as they land.

        The grid is deduped up front (each unique cell computed — or
        cache-served — once) and cells complete in whatever order the
        dispatch finishes them, cache hits typically first.  Unlike
        :func:`~repro.parallel.grid.run_scenario_grid` this streams the
        *unique* cells; callers wanting the full positional list should
        use ``run_scenario_grid(..., service=self)``.
        """
        from repro.parallel.grid import GridCell, _dedupe_cells, _plan_cells

        self._check_open()
        backend_name = resolve_backend(backend).name
        planned = _plan_cells(
            list(families), list(scenarios), list(h_max_values), n_cores,
            seed, driver_step, backend_name,
        )
        unique, _ = _dedupe_cells(planned)
        loop = asyncio.get_running_loop()

        async def one_cell(key, spec, source, drive):
            digest = self.digest_for(spec, drive)
            result = await loop.run_in_executor(
                self._dispatch,
                partial(self._fetch, digest, source, drive, plan, min_shard,
                        spec),
            )
            return GridCell(*key, result)

        pending = [
            one_cell(key, spec, source, drive)
            for key, (spec, source, drive) in unique.items()
        ]
        for finished in asyncio.as_completed(pending):
            yield await finished

    # -- internals ----------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ParameterError(
                "this HysteresisService is closed; construct a new one"
            )

    def _fetch(
        self, digest, source, drive, plan, min_shard, spec=None
    ) -> BatchSweepResult:
        """Cache hit, coalesced wait, or compute-and-insert.

        ``source`` is what the executor runs (an
        :class:`~repro.parallel.spec.EnsembleSpec` or an already-built
        batch); ``spec`` is the digestable recipe when ``source`` is a
        live batch (the grid's pre-built route).
        """
        hit = self.cache.get(digest)
        if hit is not None:
            return hit
        with self._inflight_lock:
            fut = self._inflight.get(digest)
            if fut is None:
                fut = concurrent.futures.Future()
                self._inflight[digest] = fut
                owner = True
            else:
                owner = False
        if not owner:
            # Another thread is already computing this digest: wait for
            # its frozen cache entry rather than duplicating the work.
            return fut.result()
        try:
            result = self.cache.put(
                digest,
                self._compute(source, drive, plan, min_shard,
                              spec if spec is not None else source),
            )
            fut.set_result(result)
            return result
        except BaseException as exc:
            fut.set_exception(exc)
            raise
        finally:
            with self._inflight_lock:
                self._inflight.pop(digest, None)

    def _compute(self, source, drive, plan, min_shard, spec):
        """One warm-pool computation, backend-pinned when auto-planned."""
        if plan == "auto":
            from repro.sched.planner import plan_for

            backend_name = resolve_backend(
                spec.backend if isinstance(spec, EnsembleSpec) else None
            ).name
            plan = plan_for(
                source, drive, min_shard=min_shard, warm_pool=True,
                backend=backend_name,
            )
        elif plan is not None:
            backend_name = resolve_backend(
                spec.backend if isinstance(spec, EnsembleSpec) else None
            ).name
            if resolve_backend(plan.backend).name != backend_name:
                raise ParameterError(
                    "cache keys include the backend: plan backend "
                    f"{plan.backend!r} conflicts with the request's "
                    f"backend {backend_name!r}"
                )
        kwargs = dict(min_shard=min_shard, pool=self.pool)
        if plan is not None:
            kwargs["plan"] = plan
        if drive.scenario is not None:
            return run_sharded(
                source,
                scenario=drive.scenario,
                h_max=drive.h_max,
                driver_step=drive.driver_step,
                **kwargs,
            )
        return run_sharded(source, drive.samples, **kwargs)

    # -- lifecycle ----------------------------------------------------

    def close(self) -> None:
        """Shut the dispatch threads and worker pool down.  Idempotent;
        the cache (and any disk spill) stays readable afterwards."""
        if self._closed:
            return
        self._closed = True
        self._dispatch.shutdown(wait=True)
        self.pool.close()

    def __enter__(self) -> "HysteresisService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
