"""Warm-pool service layer: persistent workers, async submission,
content-addressed result caching.

The service sits **above** the parallel executor and the scheduler in
the layer stack: it owns a long-lived
:class:`~repro.service.pool.WorkerPool` the executors run on, a
:class:`~repro.service.cache.ResultCache` keyed by
:func:`~repro.service.digest.spec_digest`, and the async
:class:`~repro.service.api.HysteresisService` front-end.  Lower layers
never import this package — :func:`repro.parallel.grid.run_scenario_grid`
accepts a service duck-typed via its ``service=`` argument.
"""

from repro.service.api import DEFAULT_CACHE_DIR, HysteresisService
from repro.service.cache import ResultCache, load_result, save_result
from repro.service.digest import DIGEST_SCHEMA, digest_payload, spec_digest
from repro.service.pool import WorkerPool, prewarm_fused_kernels

__all__ = [
    "DEFAULT_CACHE_DIR",
    "DIGEST_SCHEMA",
    "HysteresisService",
    "ResultCache",
    "WorkerPool",
    "digest_payload",
    "load_result",
    "prewarm_fused_kernels",
    "save_result",
    "spec_digest",
]
