"""Fixed-step explicit ODE driver with failure accounting.

Used by the time-domain baselines: integrate ``dx/dt = f(t, x)`` with a
chosen explicit rule and *record* every pathology (NaN/Inf state,
runaway magnitude) instead of raising, because the stability experiment
tabulates exactly those events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import SolverError
from repro.solver.integrators import IntegrationMethod, explicit_stepper


@dataclass(frozen=True)
class ExplicitIVPResult:
    """Trajectory plus failure accounting from a fixed-step run."""

    t: np.ndarray
    x: np.ndarray
    diverged: bool
    first_bad_index: int | None
    steps: int

    @property
    def completed(self) -> bool:
        return not self.diverged


def integrate_fixed_step(
    f: Callable[[float, np.ndarray], np.ndarray],
    t0: float,
    x0: np.ndarray,
    dt: float,
    n_steps: int,
    method: IntegrationMethod | str = IntegrationMethod.FORWARD_EULER,
    divergence_limit: float = 1e12,
) -> ExplicitIVPResult:
    """Integrate with a fixed step; stop early on divergence.

    On divergence the returned arrays are truncated at the last finite
    state and ``first_bad_index`` points at the offending step.
    """
    if dt <= 0.0 or not np.isfinite(dt):
        raise SolverError(f"dt must be finite and > 0, got {dt!r}")
    if n_steps < 1:
        raise SolverError(f"n_steps must be >= 1, got {n_steps}")
    step = explicit_stepper(method)

    x = np.asarray(x0, dtype=float).copy()
    times = np.empty(n_steps + 1)
    states = np.empty((n_steps + 1, len(x)))
    times[0] = t0
    states[0] = x

    for i in range(1, n_steps + 1):
        t_prev = times[i - 1]
        x = step(f, t_prev, x, dt)
        bad = not np.all(np.isfinite(x)) or np.any(np.abs(x) > divergence_limit)
        if bad:
            return ExplicitIVPResult(
                t=times[:i].copy(),
                x=states[:i].copy(),
                diverged=True,
                first_bad_index=i,
                steps=i,
            )
        times[i] = t_prev + dt
        states[i] = x

    return ExplicitIVPResult(
        t=times, x=states, diverged=False, first_bad_index=None, steps=n_steps
    )
