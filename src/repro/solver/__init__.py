"""Analogue-solver numerics: Newton iteration, integration rules, step
control and a fixed-step explicit ODE driver with failure accounting.

These are the numerical kernels underneath the VHDL-AMS-like substrate
(:mod:`repro.hdl.vhdlams`) and the time-domain baselines
(:mod:`repro.baselines`).  They are written so that *failures are data*:
the stability experiments need to count non-convergence and divergence,
not crash on them.
"""

from repro.solver.adaptive import AdaptiveStepController, StepDecision
from repro.solver.integrators import (
    IntegrationMethod,
    backward_euler_residual,
    forward_euler_step,
    heun_step,
    rk4_step,
    trapezoidal_residual,
)
from repro.solver.ivp import ExplicitIVPResult, integrate_fixed_step
from repro.solver.newton import NewtonOptions, NewtonResult, newton_solve

__all__ = [
    "AdaptiveStepController",
    "ExplicitIVPResult",
    "IntegrationMethod",
    "NewtonOptions",
    "NewtonResult",
    "StepDecision",
    "backward_euler_residual",
    "forward_euler_step",
    "heun_step",
    "integrate_fixed_step",
    "newton_solve",
    "rk4_step",
    "trapezoidal_residual",
]
