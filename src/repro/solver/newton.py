"""Damped Newton-Raphson for small dense nonlinear systems.

The analogue solver of a VHDL-AMS simulator solves, at every accepted
time point, a nonlinear algebraic system produced by discretising the
``'DOT`` operators.  This module provides that inner solve: numerical
Jacobian (forward differences), optional damping, and a rich result
object — convergence is *reported*, not assumed, because the stability
experiments count exactly these failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConvergenceError


@dataclass(frozen=True)
class NewtonOptions:
    """Tuning knobs for :func:`newton_solve`.

    ``abstol``/``reltol`` follow SPICE convention: the update is accepted
    when every component moves less than ``abstol + reltol * |x|`` and
    the residual norm is below ``residual_tol * max(1, |F(x0)|)`` — the
    residual test is scaled by the starting residual so equations with
    large coefficients (stiff terms) are not held to an absolute floor
    below their own rounding noise.
    """

    abstol: float = 1e-9
    reltol: float = 1e-6
    residual_tol: float = 1e-8
    max_iterations: int = 50
    damping: float = 1.0
    jacobian_epsilon: float = 1e-7


@dataclass(frozen=True)
class NewtonResult:
    """Outcome of one Newton solve."""

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    singular: bool = False

    def require_converged(self) -> np.ndarray:
        """Return the solution or raise :class:`ConvergenceError`."""
        if not self.converged:
            raise ConvergenceError(
                f"Newton failed after {self.iterations} iterations "
                f"(|F| = {self.residual_norm:.3e}, singular={self.singular})"
            )
        return self.x


def numerical_jacobian(
    residual: Callable[[np.ndarray], np.ndarray],
    x: np.ndarray,
    f0: np.ndarray,
    epsilon: float,
) -> np.ndarray:
    """Forward-difference Jacobian of ``residual`` at ``x``."""
    n = len(x)
    jac = np.empty((len(f0), n))
    for j in range(n):
        step = epsilon * max(1.0, abs(x[j]))
        x_pert = x.copy()
        x_pert[j] += step
        jac[:, j] = (residual(x_pert) - f0) / step
    return jac


def newton_solve(
    residual: Callable[[np.ndarray], np.ndarray],
    x0: np.ndarray,
    options: NewtonOptions = NewtonOptions(),
    jacobian: Callable[[np.ndarray], np.ndarray] | None = None,
) -> NewtonResult:
    """Solve ``residual(x) = 0`` starting from ``x0``.

    Never raises on non-convergence; inspect ``result.converged`` or call
    ``result.require_converged()``.
    """
    x = np.asarray(x0, dtype=float).copy()
    f = residual(x)
    if not np.all(np.isfinite(f)):
        return NewtonResult(
            x=x, converged=False, iterations=0, residual_norm=float("inf")
        )
    norm = float(np.linalg.norm(f, ord=np.inf))
    residual_scale = max(1.0, norm)

    for iteration in range(1, options.max_iterations + 1):
        if jacobian is not None:
            jac = jacobian(x)
        else:
            jac = numerical_jacobian(residual, x, f, options.jacobian_epsilon)
        try:
            delta = np.linalg.solve(jac, -f)
        except np.linalg.LinAlgError:
            return NewtonResult(
                x=x,
                converged=False,
                iterations=iteration,
                residual_norm=norm,
                singular=True,
            )
        x_new = x + options.damping * delta
        f_new = residual(x_new)
        if not np.all(np.isfinite(f_new)):
            return NewtonResult(
                x=x,
                converged=False,
                iterations=iteration,
                residual_norm=float("inf"),
            )
        norm_new = float(np.linalg.norm(f_new, ord=np.inf))
        step_small = np.all(
            np.abs(options.damping * delta)
            <= options.abstol + options.reltol * np.abs(x_new)
        )
        x, f, norm = x_new, f_new, norm_new
        if step_small and norm <= options.residual_tol * residual_scale:
            return NewtonResult(
                x=x, converged=True, iterations=iteration, residual_norm=norm
            )

    return NewtonResult(
        x=x,
        converged=False,
        iterations=options.max_iterations,
        residual_norm=norm,
    )
