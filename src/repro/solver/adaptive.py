"""Adaptive step-size control for the AMS solver.

A deliberately conventional controller: grow the step on easy
acceptances, shrink on Newton failure or large local error, clamp to
``[dt_min, dt_max]``, and report when the floor is hit — hitting the
floor repeatedly is the classic "timestep too small" SPICE failure the
paper's technique avoids, so it must be *observable*, not fatal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SolverError


@dataclass(frozen=True)
class StepDecision:
    """Verdict on one attempted step."""

    accept: bool
    next_dt: float
    at_floor: bool


class AdaptiveStepController:
    """Grow/shrink step-size policy with floor accounting."""

    def __init__(
        self,
        dt_initial: float,
        dt_min: float,
        dt_max: float,
        grow: float = 1.5,
        shrink: float = 0.25,
        error_target: float = 1.0,
    ) -> None:
        if not (0.0 < dt_min <= dt_initial <= dt_max):
            raise SolverError(
                f"need 0 < dt_min <= dt_initial <= dt_max, got "
                f"{dt_min}, {dt_initial}, {dt_max}"
            )
        if not (grow > 1.0 and 0.0 < shrink < 1.0):
            raise SolverError(f"bad grow/shrink factors {grow}, {shrink}")
        self.dt = float(dt_initial)
        self.dt_min = float(dt_min)
        self.dt_max = float(dt_max)
        self.grow = float(grow)
        self.shrink = float(shrink)
        self.error_target = float(error_target)
        #: Number of times the controller was forced to the floor.
        self.floor_hits = 0
        #: Total rejections.
        self.rejections = 0

    def after_newton_failure(self) -> StepDecision:
        """Newton did not converge: reject and shrink hard."""
        self.rejections += 1
        next_dt = max(self.dt * self.shrink, self.dt_min)
        at_floor = self.dt <= self.dt_min * (1.0 + 1e-12)
        if at_floor:
            self.floor_hits += 1
        self.dt = next_dt
        return StepDecision(accept=False, next_dt=next_dt, at_floor=at_floor)

    def after_error_estimate(self, error_norm: float) -> StepDecision:
        """LTE-based accept/reject with smooth growth.

        ``error_norm`` is the local error divided by tolerance (so 1.0 is
        exactly on target).  Non-finite errors are treated as rejections.
        """
        if not math.isfinite(error_norm):
            return self.after_newton_failure()
        if error_norm <= self.error_target:
            factor = self.grow if error_norm < 0.5 * self.error_target else 1.0
            self.dt = min(self.dt * factor, self.dt_max)
            return StepDecision(accept=True, next_dt=self.dt, at_floor=False)
        self.rejections += 1
        at_floor = self.dt <= self.dt_min * (1.0 + 1e-12)
        if at_floor:
            self.floor_hits += 1
            # Cannot shrink further: accept under protest (SPICE's
            # "trtol floor" behaviour) so the run can continue and the
            # experiment can count the event.
            return StepDecision(accept=True, next_dt=self.dt, at_floor=True)
        scale = max(self.shrink, 0.9 / error_norm)
        self.dt = max(self.dt * scale, self.dt_min)
        return StepDecision(accept=False, next_dt=self.dt, at_floor=False)

    def force_break(self, dt_break: float | None = None) -> None:
        """Discontinuity break: restart from a small step."""
        self.dt = max(self.dt_min, dt_break if dt_break is not None else self.dt_min)
