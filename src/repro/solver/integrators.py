"""Time-integration rules.

Two kinds live here:

* **explicit one-step maps** (forward Euler, Heun, classic RK4) used by
  the time-domain baselines — these are the "awkward conversion to time
  derivatives" implementations the paper argues against;
* **implicit residual builders** (backward Euler, trapezoidal) used by
  the AMS solver to discretise ``'DOT`` operators before the Newton
  solve.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable

import numpy as np

State = np.ndarray
Rhs = Callable[[float, State], State]


class IntegrationMethod(str, Enum):
    """Supported explicit method names (CLI/bench friendly strings)."""

    FORWARD_EULER = "forward-euler"
    HEUN = "heun"
    RK4 = "rk4"


def forward_euler_step(f: Rhs, t: float, x: State, dt: float) -> State:
    """One explicit Euler step ``x + dt * f(t, x)``."""
    return x + dt * f(t, x)


def heun_step(f: Rhs, t: float, x: State, dt: float) -> State:
    """One Heun (explicit trapezoidal) step — 2nd order."""
    k1 = f(t, x)
    k2 = f(t + dt, x + dt * k1)
    return x + 0.5 * dt * (k1 + k2)


def rk4_step(f: Rhs, t: float, x: State, dt: float) -> State:
    """One classic Runge-Kutta 4 step."""
    k1 = f(t, x)
    k2 = f(t + 0.5 * dt, x + 0.5 * dt * k1)
    k3 = f(t + 0.5 * dt, x + 0.5 * dt * k2)
    k4 = f(t + dt, x + dt * k3)
    return x + dt / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4)


_EXPLICIT_STEPPERS = {
    IntegrationMethod.FORWARD_EULER: forward_euler_step,
    IntegrationMethod.HEUN: heun_step,
    IntegrationMethod.RK4: rk4_step,
}


def explicit_stepper(method: IntegrationMethod | str):
    """Look up an explicit one-step map by enum or name."""
    return _EXPLICIT_STEPPERS[IntegrationMethod(method)]


def backward_euler_residual(
    x_new: State, x_old: State, dt: float
) -> State:
    """Discretised derivative ``dot(x) ~ (x_new - x_old) / dt`` (BDF1).

    The AMS solver substitutes this for every ``'DOT`` occurrence; the
    returned array is what the equation residuals see as ``dot(q)``.
    """
    return (x_new - x_old) / dt


def trapezoidal_residual(
    x_new: State, x_old: State, xdot_old: State, dt: float
) -> State:
    """Discretised derivative for the trapezoidal rule.

    From ``(x_new - x_old) / dt = (dot_new + dot_old) / 2`` solve for
    ``dot_new = 2*(x_new - x_old)/dt - dot_old`` — A-stable and
    2nd-order, the default rule of most AMS/SPICE engines.
    """
    return 2.0 * (x_new - x_old) / dt - xdot_old
