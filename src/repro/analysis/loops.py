"""Loop segmentation: slicing a sweep into individual B-H loops.

A *loop* is one full excursion of the field from an upper turning point
down to a lower one and back (or vice versa).  The minor-loop
experiment needs per-loop closure errors — how far apart the start and
end of the loop sit in B — and containment checks against the major
loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.turning_points import turning_point_indices
from repro.errors import AnalysisError


@dataclass(frozen=True)
class Loop:
    """One closed (or nearly closed) B-H excursion.

    ``h``/``b`` hold the samples from the starting turning point to the
    sample that returns to (approximately) the starting field.
    """

    h: np.ndarray
    b: np.ndarray
    start_index: int
    stop_index: int

    def __len__(self) -> int:
        return len(self.h)

    @property
    def h_span(self) -> tuple[float, float]:
        return float(self.h.min()), float(self.h.max())

    @property
    def amplitude(self) -> float:
        """Half the peak-to-peak field excursion."""
        low, high = self.h_span
        return 0.5 * (high - low)

    @property
    def bias(self) -> float:
        """Centre of the field excursion."""
        low, high = self.h_span
        return 0.5 * (high + low)


def extract_loops(h: np.ndarray, b: np.ndarray) -> list[Loop]:
    """Slice a trajectory into loops between alternating turning points.

    Each loop runs from one turning point to the second-next boundary (a
    full down-up or up-down excursion).  The final sample acts as the
    closing boundary of the last loop — a sweep ending exactly at a
    vertex (e.g. ``0 -> +H -> -H -> +H``) yields that last full loop.
    The leading branch (initial magnetisation curve) is open and is
    never part of a loop.
    """
    h = np.asarray(h, dtype=float)
    b = np.asarray(b, dtype=float)
    if h.shape != b.shape:
        raise AnalysisError(
            f"h and b must have the same shape, got {h.shape} vs {b.shape}"
        )
    turns = list(turning_point_indices(h))
    boundaries = turns + (
        [len(h) - 1] if not turns or turns[-1] != len(h) - 1 else []
    )
    loops: list[Loop] = []
    for first, third in zip(boundaries[:-2:1], boundaries[2::1]):
        loops.append(
            Loop(
                h=h[first : third + 1].copy(),
                b=b[first : third + 1].copy(),
                start_index=int(first),
                stop_index=int(third),
            )
        )
    return loops


def loop_closure_error(loop: Loop) -> float:
    """Distance in B between loop start and the return to the start field.

    The end sample sits at (nearly) the same H as the start; a perfectly
    closed loop returns to the same B.  The return B is interpolated on
    the final monotone branch at exactly the starting H, so driver
    sampling does not pollute the metric.
    """
    if len(loop) < 3:
        raise AnalysisError("loop too short to measure closure")
    h_start = loop.h[0]
    b_start = loop.b[0]
    turns = turning_point_indices(loop.h)
    branch_start = int(turns[-1]) if len(turns) else 0
    h_branch = loop.h[branch_start:]
    b_branch = loop.b[branch_start:]
    if h_branch[0] > h_branch[-1]:
        h_branch = h_branch[::-1]
        b_branch = b_branch[::-1]
    b_return = float(np.interp(h_start, h_branch, b_branch))
    return abs(b_return - b_start)


def loop_contains(outer: Loop, inner: Loop, tolerance: float = 0.0) -> bool:
    """True when ``inner`` stays inside ``outer``'s B envelope.

    For every inner sample, B must lie between the outer loop's lower
    and upper branch values at that H (within ``tolerance``).  Inner
    samples outside the outer loop's H span fail the check.
    """
    h_low, h_high = outer.h_span
    if inner.h.min() < h_low - tolerance or inner.h.max() > h_high + tolerance:
        return False

    turns = turning_point_indices(outer.h)
    if len(turns) == 0:
        raise AnalysisError("outer loop has no turning point")
    split = int(turns[0])
    first_h, first_b = outer.h[: split + 1], outer.b[: split + 1]
    second_h, second_b = outer.h[split:], outer.b[split:]

    def branch_interp(h_branch, b_branch, x):
        if h_branch[0] > h_branch[-1]:
            h_branch = h_branch[::-1]
            b_branch = b_branch[::-1]
        return np.interp(x, h_branch, b_branch)

    b_first = branch_interp(first_h, first_b, inner.h)
    b_second = branch_interp(second_h, second_b, inner.h)
    upper = np.maximum(b_first, b_second) + tolerance
    lower = np.minimum(b_first, b_second) - tolerance
    return bool(np.all((inner.b <= upper) & (inner.b >= lower)))
