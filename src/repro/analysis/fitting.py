"""Jiles-Atherton parameter extraction from measured B-H loops.

The practical companion of any hysteresis model: given a measured major
loop, find the JA parameter set that reproduces it.  The fit drives the
timeless model over the same sweep, resamples both loops branch-wise
onto a common H grid, and minimises the B residual with
``scipy.optimize.least_squares`` in log-parameter space (all JA
parameters are positive scale-like quantities, so log space makes the
optimiser's steps multiplicative and keeps iterates in-domain).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.optimize import least_squares

from repro.analysis.comparison import compare_bh_curves
from repro.core.model import TimelessJAModel
from repro.core.sweep import run_sweep
from repro.errors import AnalysisError
from repro.ja.parameters import JAParameters

#: Parameters the fitter may vary, with broad physical bounds
#: (log10 space): Msat 1e4..1e7 A/m, shapes 10..1e5 A/m, k 1..1e5 A/m,
#: c 1e-4..0.95, alpha 1e-6..0.1.
_BOUNDS_LOG10 = {
    "m_sat": (4.0, 7.0),
    "a2": (1.0, 5.0),
    "a": (1.0, 5.0),
    "k": (0.0, 5.0),
    "c": (-4.0, np.log10(0.95)),
    "alpha": (-6.0, -1.0),
}

DEFAULT_VARY = ("m_sat", "a2", "k", "c", "alpha")


@dataclass(frozen=True)
class FitResult:
    """Outcome of a parameter extraction."""

    params: JAParameters
    initial: JAParameters
    residual_rms: float
    residual_max: float
    b_swing: float
    iterations: int
    converged: bool

    @property
    def relative_rms(self) -> float:
        """RMS residual as a fraction of the measured B swing."""
        return self.residual_rms / self.b_swing


def _simulate(
    params: JAParameters,
    waypoints: Sequence[float],
    dhmax: float,
) -> tuple[np.ndarray, np.ndarray]:
    model = TimelessJAModel(params, dhmax=dhmax)
    sweep = run_sweep(model, waypoints)
    return sweep.h, sweep.b


def fit_ja_parameters(
    h_measured: np.ndarray,
    b_measured: np.ndarray,
    waypoints: Sequence[float],
    initial: JAParameters,
    vary: Sequence[str] = DEFAULT_VARY,
    dhmax: float = 200.0,
    grid_points_per_branch: int = 60,
    max_nfev: int = 60,
) -> FitResult:
    """Fit JA parameters to a measured loop.

    Parameters
    ----------
    h_measured, b_measured:
        The measured trajectory (must follow ``waypoints``).
    waypoints:
        The sweep schedule the measurement was taken with (typically
        ``major_loop_waypoints(h_peak)``); the fit re-simulates it.
    initial:
        Starting parameter set (order-of-magnitude guesses suffice).
    vary:
        Names of the parameters to optimise; the rest stay fixed.
    dhmax:
        Field quantum used *inside the fit loop* — coarse by default
        for speed; refit with a finer value to polish if needed.
    """
    h_measured = np.asarray(h_measured, dtype=float)
    b_measured = np.asarray(b_measured, dtype=float)
    if h_measured.shape != b_measured.shape:
        raise AnalysisError("h and b must have the same shape")
    unknown = set(vary) - set(_BOUNDS_LOG10)
    if unknown:
        raise AnalysisError(f"cannot vary unknown parameters: {sorted(unknown)}")
    if "a2" in vary and initial.a2 is None:
        initial = initial.with_updates(a2=initial.a)

    names = list(vary)
    x0 = np.array(
        [np.log10(float(getattr(initial, n))) for n in names]
    )
    lower = np.array([_BOUNDS_LOG10[n][0] for n in names])
    upper = np.array([_BOUNDS_LOG10[n][1] for n in names])
    x0 = np.clip(x0, lower, upper)

    b_swing = float(b_measured.max() - b_measured.min())
    nfev = [0]

    def residual(x: np.ndarray) -> np.ndarray:
        nfev[0] += 1
        values = {n: float(10.0**v) for n, v in zip(names, x)}
        try:
            candidate = initial.with_updates(**values)
            h_sim, b_sim = _simulate(candidate, waypoints, dhmax)
        except Exception:
            return np.full(grid_points_per_branch, 10.0 * b_swing)
        # Branch-wise common-grid residual.
        try:
            distance = compare_bh_curves(
                h_sim,
                b_sim,
                h_measured,
                b_measured,
                grid_points_per_branch=grid_points_per_branch,
            )
        except AnalysisError:
            return np.full(grid_points_per_branch, 10.0 * b_swing)
        # least_squares wants a residual vector; reconstruct it from
        # the comparison grid for proper weighting.
        return _residual_vector(
            h_sim, b_sim, h_measured, b_measured, grid_points_per_branch
        )

    solution = least_squares(
        residual,
        x0,
        bounds=(lower, upper),
        max_nfev=max_nfev,
        xtol=1e-10,
        ftol=1e-10,
    )

    fitted_values = {
        n: float(10.0**v) for n, v in zip(names, solution.x)
    }
    fitted = initial.with_updates(
        name=f"{initial.name}-fitted", **fitted_values
    )
    h_fit, b_fit = _simulate(fitted, waypoints, dhmax)
    distance = compare_bh_curves(
        h_fit,
        b_fit,
        h_measured,
        b_measured,
        grid_points_per_branch=grid_points_per_branch,
    )
    return FitResult(
        params=fitted,
        initial=initial,
        residual_rms=distance.rms,
        residual_max=distance.max_abs,
        b_swing=b_swing,
        iterations=nfev[0],
        converged=bool(solution.success),
    )


def _residual_vector(
    h_a: np.ndarray,
    b_a: np.ndarray,
    h_b: np.ndarray,
    b_b: np.ndarray,
    grid_points_per_branch: int,
) -> np.ndarray:
    """Branch-resampled pointwise residual (what the optimiser sees)."""
    from repro.analysis.comparison import _branch_list

    branches_a = _branch_list(h_a, b_a)
    branches_b = _branch_list(h_b, b_b)
    if len(branches_a) != len(branches_b):
        raise AnalysisError("branch count mismatch in residual")
    parts: list[np.ndarray] = []
    for (ha, ya), (hb, yb) in zip(branches_a, branches_b):
        low = max(ha[0], hb[0])
        high = min(ha[-1], hb[-1])
        if not high > low:
            continue
        grid = np.linspace(low, high, grid_points_per_branch)
        parts.append(np.interp(grid, ha, ya) - np.interp(grid, hb, yb))
    if not parts:
        raise AnalysisError("no overlapping branches in residual")
    return np.concatenate(parts)
