"""Jiles-Atherton parameter extraction from measured B-H loops.

The practical companion of any hysteresis model: given a measured major
loop, find the JA parameter set that reproduces it.  The fit drives the
timeless model over the same sweep, resamples both loops branch-wise
onto a common H grid, and minimises the B residual with
``scipy.optimize.least_squares`` in log-parameter space (all JA
parameters are positive scale-like quantities, so log space makes the
optimiser's steps multiplicative and keeps iterates in-domain).

The inner loop is batched: each finite-difference Jacobian needs one
model run per varied parameter, and those candidates are independent —
so they are stacked into one :class:`repro.batch.BatchTimelessModel`
ensemble and advanced in a single lockstep sweep
(``jacobian="batched"``, the default) instead of the per-model Python
loops the optimiser used to trigger.  Each lane is bitwise identical to
the scalar simulation it replaces.  :func:`fit_ja_parameters_multistart`
uses the same engine to score many starting guesses in one sweep.
"""

from __future__ import annotations

import logging

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.optimize import least_squares

from repro.analysis.comparison import compare_bh_curves
from repro.batch.sweep import BatchSweepResult, sweep as batch_sweep
from repro.core.model import TimelessJAModel
from repro.core.sweep import run_sweep
from repro.errors import AnalysisError
from repro.ja.parameters import JAParameters

_log = logging.getLogger(__name__)

#: Forward-difference relative step of the batched Jacobian (the same
#: sqrt(machine-eps) rule scipy's default 2-point scheme uses).
_FD_REL_STEP = float(np.sqrt(np.finfo(float).eps))

#: Parameters the fitter may vary, with broad physical bounds
#: (log10 space): Msat 1e4..1e7 A/m, shapes 10..1e5 A/m, k 1..1e5 A/m,
#: c 1e-4..0.95, alpha 1e-6..0.1.
_BOUNDS_LOG10 = {
    "m_sat": (4.0, 7.0),
    "a2": (1.0, 5.0),
    "a": (1.0, 5.0),
    "k": (0.0, 5.0),
    "c": (-4.0, np.log10(0.95)),
    "alpha": (-6.0, -1.0),
}

DEFAULT_VARY = ("m_sat", "a2", "k", "c", "alpha")


@dataclass(frozen=True)
class FitResult:
    """Outcome of a parameter extraction."""

    params: JAParameters
    initial: JAParameters
    residual_rms: float
    residual_max: float
    b_swing: float
    iterations: int
    converged: bool

    @property
    def relative_rms(self) -> float:
        """RMS residual as a fraction of the measured B swing."""
        return self.residual_rms / self.b_swing


def _simulate(
    params: JAParameters,
    waypoints: Sequence[float],
    dhmax: float,
) -> tuple[np.ndarray, np.ndarray]:
    model = TimelessJAModel(params, dhmax=dhmax)
    sweep = run_sweep(model, waypoints)
    return sweep.h, sweep.b


def _simulate_batch(
    candidates: Sequence[JAParameters],
    waypoints: Sequence[float],
    dhmax: float,
) -> BatchSweepResult:
    """Simulate independent candidates as one lockstep ensemble.

    ``driver_step = dhmax / 4`` matches the scalar :func:`run_sweep`
    default, so each lane is bitwise identical to :func:`_simulate` for
    the same candidate.
    """
    return batch_sweep(
        candidates, waypoints, dhmax=dhmax, driver_step=dhmax / 4.0
    )


def fit_ja_parameters(
    h_measured: np.ndarray,
    b_measured: np.ndarray,
    waypoints: Sequence[float],
    initial: JAParameters,
    vary: Sequence[str] = DEFAULT_VARY,
    dhmax: float = 200.0,
    grid_points_per_branch: int = 60,
    max_nfev: int = 60,
    jacobian: str = "batched",
) -> FitResult:
    """Fit JA parameters to a measured loop.

    Parameters
    ----------
    h_measured, b_measured:
        The measured trajectory (must follow ``waypoints``).
    waypoints:
        The sweep schedule the measurement was taken with (typically
        ``major_loop_waypoints(h_peak)``); the fit re-simulates it.
    initial:
        Starting parameter set (order-of-magnitude guesses suffice).
    vary:
        Names of the parameters to optimise; the rest stay fixed.
    dhmax:
        Field quantum used *inside the fit loop* — coarse by default
        for speed; refit with a finer value to polish if needed.
    jacobian:
        ``"batched"`` (default) evaluates each finite-difference
        Jacobian as one batch-ensemble sweep over the len(vary)+1
        forward-difference candidates; ``"2-point"`` falls back to
        scipy's serial scheme (one model run per candidate).
    """
    if jacobian not in ("batched", "2-point"):
        raise AnalysisError(
            f"jacobian must be 'batched' or '2-point', got {jacobian!r}"
        )
    h_measured = np.asarray(h_measured, dtype=float)
    b_measured = np.asarray(b_measured, dtype=float)
    if h_measured.shape != b_measured.shape:
        raise AnalysisError("h and b must have the same shape")
    unknown = set(vary) - set(_BOUNDS_LOG10)
    if unknown:
        raise AnalysisError(f"cannot vary unknown parameters: {sorted(unknown)}")
    if "a2" in vary and initial.a2 is None:
        initial = initial.with_updates(a2=initial.a)

    names = list(vary)
    x0 = np.array(
        [np.log10(float(getattr(initial, n))) for n in names]
    )
    lower = np.array([_BOUNDS_LOG10[n][0] for n in names])
    upper = np.array([_BOUNDS_LOG10[n][1] for n in names])
    x0 = np.clip(x0, lower, upper)

    b_swing = float(b_measured.max() - b_measured.min())
    nfev = [0]

    def candidate_of(x: np.ndarray) -> JAParameters | None:
        values = {n: float(10.0**v) for n, v in zip(names, x)}
        try:
            return initial.with_updates(**values)
        except Exception as exc:
            # Out-of-domain candidate (validator rejection) — a legal
            # optimiser probe, degraded to the penalty residual below
            # and logged so a wedged fit is diagnosable (L007).
            _log.debug("candidate %r rejected: %s", values, exc)
            return None

    def residual_of_trajectory(
        h_sim: np.ndarray, b_sim: np.ndarray
    ) -> np.ndarray | None:
        """Branch-wise common-grid residual, None when incomparable.

        least_squares wants a residual vector, so the comparison grid
        is built directly; _residual_vector raises AnalysisError for
        the same branch-mismatch/no-overlap cases compare_bh_curves
        guards against, so no separate validity probe is needed.
        """
        try:
            return _residual_vector(
                h_sim, b_sim, h_measured, b_measured, grid_points_per_branch
            )
        except AnalysisError:
            return None

    def residual(x: np.ndarray) -> np.ndarray:
        nfev[0] += 1
        candidate = candidate_of(x)
        if candidate is None:
            return np.full(grid_points_per_branch, 10.0 * b_swing)
        try:
            h_sim, b_sim = _simulate(candidate, waypoints, dhmax)
        except Exception as exc:
            # A candidate the solver cannot integrate earns the flat
            # penalty residual (the optimiser steps away from it), and
            # a debug trace says why this probe was penalised (L007).
            _log.debug("candidate simulation failed: %s", exc)
            return np.full(grid_points_per_branch, 10.0 * b_swing)
        vector = residual_of_trajectory(h_sim, b_sim)
        if vector is None:
            return np.full(grid_points_per_branch, 10.0 * b_swing)
        return vector

    def batched_jacobian(x: np.ndarray) -> np.ndarray:
        """Forward-difference Jacobian from ONE ensemble sweep.

        The len(vary)+1 candidates (base point plus one forward step
        per parameter) advance in lockstep through the batch engine;
        each lane is bitwise what the serial scheme would simulate.
        The lanes are counted into the evaluation total so
        ``FitResult.iterations`` stays comparable with the serial
        ``"2-point"`` path (where FD evaluations go through
        ``residual`` and scipy's ``max_nfev``; here ``max_nfev`` only
        bounds the optimiser's own residual calls).
        """
        nfev[0] += len(x) + 1
        x = np.asarray(x, dtype=float)
        sign = np.where(x >= 0.0, 1.0, -1.0)
        steps = _FD_REL_STEP * sign * np.maximum(1.0, np.abs(x))
        # One-sided scheme: flip any step that would leave the bounds.
        steps = np.where(
            (x + steps > upper) | (x + steps < lower), -steps, steps
        )
        points = [x] + [x + steps[i] * np.eye(len(x))[i] for i in range(len(x))]
        candidates = [candidate_of(p) for p in points]
        valid = [c for c in candidates if c is not None]
        trajectories: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        if valid:
            ensemble = _simulate_batch(valid, waypoints, dhmax)
            lane = 0
            for i, c in enumerate(candidates):
                if c is not None:
                    trajectories[i] = (
                        ensemble.h_of(lane),
                        ensemble.b[:, lane],
                    )
                    lane += 1

        def vector_of(i: int) -> np.ndarray | None:
            if i not in trajectories:
                return None
            return residual_of_trajectory(*trajectories[i])

        f0 = vector_of(0)
        if f0 is None:
            f0 = np.full(grid_points_per_branch, 10.0 * b_swing)
        jac = np.empty((len(f0), len(x)))
        for i in range(len(x)):
            fi = vector_of(i + 1)
            if fi is None or fi.shape != f0.shape:
                fi = np.full_like(f0, 10.0 * b_swing)
            jac[:, i] = (fi - f0) / steps[i]
        return jac

    solution = least_squares(
        residual,
        x0,
        jac=batched_jacobian if jacobian == "batched" else "2-point",
        bounds=(lower, upper),
        max_nfev=max_nfev,
        xtol=1e-10,
        ftol=1e-10,
    )

    fitted_values = {
        n: float(10.0**v) for n, v in zip(names, solution.x)
    }
    fitted = initial.with_updates(
        name=f"{initial.name}-fitted", **fitted_values
    )
    h_fit, b_fit = _simulate(fitted, waypoints, dhmax)
    distance = compare_bh_curves(
        h_fit,
        b_fit,
        h_measured,
        b_measured,
        grid_points_per_branch=grid_points_per_branch,
    )
    return FitResult(
        params=fitted,
        initial=initial,
        residual_rms=distance.rms,
        residual_max=distance.max_abs,
        b_swing=b_swing,
        iterations=nfev[0],
        converged=bool(solution.success),
    )


def fit_ja_parameters_multistart(
    h_measured: np.ndarray,
    b_measured: np.ndarray,
    waypoints: Sequence[float],
    initials: Sequence[JAParameters],
    vary: Sequence[str] = DEFAULT_VARY,
    dhmax: float = 200.0,
    grid_points_per_branch: int = 60,
    max_nfev: int = 60,
    jacobian: str = "batched",
) -> FitResult:
    """Score many starting guesses in one ensemble sweep, polish the best.

    All ``initials`` are simulated together by the batch engine (one
    lockstep sweep instead of a per-model loop), ranked by RMS distance
    to the measurement, and the best start is handed to
    :func:`fit_ja_parameters`.  Use this when only order-of-magnitude
    guesses exist: scoring a grid of starts costs barely more than one.
    """
    if len(initials) == 0:
        raise AnalysisError("need at least one starting parameter set")
    h_measured = np.asarray(h_measured, dtype=float)
    b_measured = np.asarray(b_measured, dtype=float)
    ensemble = _simulate_batch(list(initials), waypoints, dhmax)
    scores = []
    for i, start in enumerate(initials):
        try:
            distance = compare_bh_curves(
                ensemble.h_of(i),
                ensemble.b[:, i],
                h_measured,
                b_measured,
                grid_points_per_branch=grid_points_per_branch,
            )
            scores.append((distance.rms, i))
        except AnalysisError:
            continue
    if not scores:
        raise AnalysisError("no starting guess produced a comparable loop")
    _, best = min(scores)
    return fit_ja_parameters(
        h_measured,
        b_measured,
        waypoints,
        initial=initials[best],
        vary=vary,
        dhmax=dhmax,
        grid_points_per_branch=grid_points_per_branch,
        max_nfev=max_nfev,
        jacobian=jacobian,
    )


def _residual_vector(
    h_a: np.ndarray,
    b_a: np.ndarray,
    h_b: np.ndarray,
    b_b: np.ndarray,
    grid_points_per_branch: int,
) -> np.ndarray:
    """Branch-resampled pointwise residual (what the optimiser sees)."""
    from repro.analysis.comparison import _branch_list

    branches_a = _branch_list(h_a, b_a)
    branches_b = _branch_list(h_b, b_b)
    if len(branches_a) != len(branches_b):
        raise AnalysisError("branch count mismatch in residual")
    parts: list[np.ndarray] = []
    for (ha, ya), (hb, yb) in zip(branches_a, branches_b):
        low = max(ha[0], hb[0])
        high = min(ha[-1], hb[-1])
        if not high > low:
            continue
        grid = np.linspace(low, high, grid_points_per_branch)
        parts.append(np.interp(grid, ha, ya) - np.interp(grid, hb, yb))
    if not parts:
        raise AnalysisError("no overlapping branches in residual")
    return np.concatenate(parts)
