"""Measurement and verification tools for B-H trajectories.

Everything experiments need to turn raw sweep trajectories into the
numbers the paper reports or claims: turning points, loop segmentation
and closure, hysteresis metrics (coercivity, remanence, loop area),
stability audits (negative slopes, divergence) and curve-to-curve
comparison with proper resampling over the field axis.
"""

from repro.analysis.comparison import CurveDistance, compare_bh_curves
from repro.analysis.loops import Loop, extract_loops, loop_closure_error
from repro.analysis.metrics import (
    LoopMetrics,
    coercivity,
    loop_area,
    loop_metrics,
    remanence,
)
from repro.analysis.stability import (
    StabilityAudit,
    audit_batch_result,
    audit_trajectory,
    audit_trajectory_batch,
)
from repro.analysis.turning_points import turning_point_indices

__all__ = [
    "CurveDistance",
    "Loop",
    "LoopMetrics",
    "StabilityAudit",
    "audit_batch_result",
    "audit_trajectory",
    "audit_trajectory_batch",
    "coercivity",
    "compare_bh_curves",
    "extract_loops",
    "loop_area",
    "loop_closure_error",
    "loop_metrics",
    "remanence",
    "turning_point_indices",
]
