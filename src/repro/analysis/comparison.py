"""Curve-to-curve comparison of B-H trajectories.

Two implementations never place samples at identical H values, so naive
pointwise differencing is wrong.  The comparison here segments both
trajectories at their turning points, pairs up corresponding monotone
branches, resamples each pair onto a common H grid, and reports the
error over all branches.  This is how EXP-T1 ("virtually identical
results") and EXP-T5 (convergence vs the reference) are measured.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.turning_points import monotone_segments
from repro.errors import AnalysisError


@dataclass(frozen=True)
class CurveDistance:
    """Branch-resampled distance between two B(H) trajectories."""

    max_abs: float
    rms: float
    branches_compared: int
    grid_points: int

    def as_dict(self) -> dict[str, float | int]:
        return {
            "max_abs": self.max_abs,
            "rms": self.rms,
            "branches_compared": self.branches_compared,
            "grid_points": self.grid_points,
        }


def _branch_list(h: np.ndarray, y: np.ndarray) -> list[tuple[np.ndarray, np.ndarray]]:
    branches = []
    for start, stop in monotone_segments(h):
        seg_h = h[start : stop + 1]
        seg_y = y[start : stop + 1]
        if seg_h[0] > seg_h[-1]:
            seg_h = seg_h[::-1]
            seg_y = seg_y[::-1]
        branches.append((seg_h, seg_y))
    return branches


def compare_bh_curves(
    h_a: np.ndarray,
    b_a: np.ndarray,
    h_b: np.ndarray,
    b_b: np.ndarray,
    grid_points_per_branch: int = 200,
) -> CurveDistance:
    """Compare two trajectories branch by branch.

    Both runs must follow the same sweep schedule (same number of
    monotone branches in the same order); the H grids within branches
    may differ freely.  Branches are compared on the overlap of their
    field spans.
    """
    h_a = np.asarray(h_a, dtype=float)
    b_a = np.asarray(b_a, dtype=float)
    h_b = np.asarray(h_b, dtype=float)
    b_b = np.asarray(b_b, dtype=float)

    branches_a = _branch_list(h_a, b_a)
    branches_b = _branch_list(h_b, b_b)
    if len(branches_a) != len(branches_b):
        raise AnalysisError(
            f"trajectories have different branch counts "
            f"({len(branches_a)} vs {len(branches_b)}); "
            f"were they driven by the same schedule?"
        )
    if grid_points_per_branch < 2:
        raise AnalysisError(
            f"grid_points_per_branch must be >= 2, got {grid_points_per_branch}"
        )

    max_abs = 0.0
    sum_sq = 0.0
    total_points = 0
    compared = 0
    for (ha, ya), (hb, yb) in zip(branches_a, branches_b):
        low = max(ha[0], hb[0])
        high = min(ha[-1], hb[-1])
        if not high > low:
            continue
        grid = np.linspace(low, high, grid_points_per_branch)
        ya_grid = np.interp(grid, ha, ya)
        yb_grid = np.interp(grid, hb, yb)
        diff = ya_grid - yb_grid
        max_abs = max(max_abs, float(np.max(np.abs(diff))))
        sum_sq += float(np.sum(diff**2))
        total_points += len(grid)
        compared += 1

    if compared == 0:
        raise AnalysisError("no overlapping branches to compare")
    return CurveDistance(
        max_abs=max_abs,
        rms=float(np.sqrt(sum_sq / total_points)),
        branches_compared=compared,
        grid_points=total_points,
    )
