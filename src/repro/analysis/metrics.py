"""Hysteresis figures of merit: coercivity, remanence, loop area.

The paper's Figure 1 is characterised by these numbers; EXPERIMENTS.md
reports them as paper-vs-measured.  All functions accept a full
(closed) loop trajectory — typically one cycle of a major loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.turning_points import monotone_segments
from repro.errors import AnalysisError


def _branch_crossing(
    h: np.ndarray, y: np.ndarray, falling: bool
) -> float | None:
    """Linear-interpolated H where ``y`` crosses zero on one branch."""
    signs = np.sign(y)
    for i in range(len(y) - 1):
        if signs[i] == 0.0:
            return float(h[i])
        crosses = signs[i] != signs[i + 1] and signs[i + 1] != 0.0
        if crosses:
            going_down = y[i] > y[i + 1]
            if going_down == falling:
                fraction = y[i] / (y[i] - y[i + 1])
                return float(h[i] + fraction * (h[i + 1] - h[i]))
    return None


def coercivity(h: np.ndarray, b: np.ndarray) -> float:
    """Coercive field Hc [A/m]: |H| where B crosses zero.

    Measured on the descending branch (B going from + to -); averaged
    with the ascending branch when both are present.
    """
    h = np.asarray(h, dtype=float)
    b = np.asarray(b, dtype=float)
    crossings: list[float] = []
    for start, stop in monotone_segments(h):
        seg_h = h[start : stop + 1]
        seg_b = b[start : stop + 1]
        crossing = _branch_crossing(seg_h, seg_b, falling=True)
        if crossing is None:
            crossing = _branch_crossing(seg_h, seg_b, falling=False)
        if crossing is not None:
            crossings.append(abs(crossing))
    if not crossings:
        raise AnalysisError("no zero crossing of B found; is the loop closed?")
    return float(np.mean(crossings))


def remanence(h: np.ndarray, b: np.ndarray) -> float:
    """Remanent flux density Br [T]: |B| where H crosses zero.

    Averaged over all monotone branches that cross H = 0.
    """
    h = np.asarray(h, dtype=float)
    b = np.asarray(b, dtype=float)
    values: list[float] = []
    for start, stop in monotone_segments(h):
        seg_h = h[start : stop + 1]
        seg_b = b[start : stop + 1]
        if seg_h[0] > seg_h[-1]:
            seg_h = seg_h[::-1]
            seg_b = seg_b[::-1]
        if seg_h[0] <= 0.0 <= seg_h[-1] and seg_h[0] < seg_h[-1]:
            values.append(abs(float(np.interp(0.0, seg_h, seg_b))))
    if not values:
        raise AnalysisError("no branch crosses H = 0")
    return float(np.mean(values))


def loop_area(h: np.ndarray, b: np.ndarray) -> float:
    """Enclosed B-H area [J/m^3 per cycle] via the shoelace integral.

    The trajectory should be one closed cycle; the sign is normalised
    positive (hysteresis dissipates energy regardless of traversal
    direction).
    """
    h = np.asarray(h, dtype=float)
    b = np.asarray(b, dtype=float)
    if len(h) < 4:
        raise AnalysisError("need at least 4 samples for a loop area")
    # Shoelace over the (H, B) polygon, closing the contour explicitly.
    h_closed = np.concatenate([h, h[:1]])
    b_closed = np.concatenate([b, b[:1]])
    cross = h_closed[:-1] * b_closed[1:] - h_closed[1:] * b_closed[:-1]
    return abs(0.5 * float(np.sum(cross)))


@dataclass(frozen=True)
class LoopMetrics:
    """Bundle of standard loop figures."""

    coercivity: float
    remanence: float
    b_max: float
    h_max: float
    area: float

    def as_dict(self) -> dict[str, float]:
        return {
            "coercivity": self.coercivity,
            "remanence": self.remanence,
            "b_max": self.b_max,
            "h_max": self.h_max,
            "area": self.area,
        }


def loop_metrics(h: np.ndarray, b: np.ndarray) -> LoopMetrics:
    """All standard figures for one closed loop trajectory."""
    h = np.asarray(h, dtype=float)
    b = np.asarray(b, dtype=float)
    return LoopMetrics(
        coercivity=coercivity(h, b),
        remanence=remanence(h, b),
        b_max=float(np.max(np.abs(b))),
        h_max=float(np.max(np.abs(h))),
        area=loop_area(h, b),
    )
