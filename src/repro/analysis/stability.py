"""Stability audit: counting the pathologies the paper claims to fix.

The observable failure modes of JA implementations:

1. **negative slopes** — dB/dH < 0 along a monotone field branch (the
   non-physical artefact of the raw model);
2. **divergence** — NaN/Inf or runaway values in the trajectory;
3. **solver distress** — Newton failures / step-floor hits, which come
   from the solver report rather than the trajectory.

Two views of (1) are reported:

* ``negative_slope_samples`` — the strict per-sample count.  Note that
  even the guarded model shows a handful of these: the published
  ``core`` process computes the effective field from the *previous*
  ``mtotal`` (one event of algebraic lag), so right after an Euler step
  the reversible component can retrace by a sub-millitesla amount.
* ``monotonicity_depth`` — the worst cumulative retrace of B along any
  monotone field branch, in tesla.  This separates the benign one-event
  wiggle (< 1 mT on the Figure 1 workload) from the genuine
  negative-slope excursions of the unguarded model (hundreds of mT).

``DEPTH_TOLERANCE`` is the repo-wide boundary between the two regimes;
experiments call :meth:`StabilityAudit.acceptable`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.turning_points import monotone_segments
from repro.errors import AnalysisError

#: B-retrace depth [T] regarded as benign event-lag wiggle.  Measured
#: guarded depth on the Figure 1 workload is ~0.8 mT; the unguarded
#: model produces ~215 mT.  5 mT (≈0.2% of the loop's B swing) sits two
#: orders of magnitude below the pathology.
DEPTH_TOLERANCE: float = 5e-3


@dataclass(frozen=True)
class StabilityAudit:
    """Counts of pathological samples in one trajectory."""

    samples: int
    negative_slope_samples: int
    non_finite_samples: int
    runaway_samples: int
    worst_negative_slope: float
    monotonicity_depth: float
    #: Largest |dB| between consecutive samples [T] — the trace's own
    #: per-event output resolution.  A retrace depth within ~1.5x of it
    #: is indistinguishable from output quantisation/lag.
    max_step_change: float = 0.0

    @property
    def finite(self) -> bool:
        """True when nothing diverged."""
        return self.non_finite_samples == 0 and self.runaway_samples == 0

    @property
    def clean(self) -> bool:
        """Strict view: no pathology of any kind, not even wiggle."""
        return self.finite and self.negative_slope_samples == 0

    def acceptable(self, depth_tolerance: float | None = None) -> bool:
        """Physical view: finite and B-retrace within the wiggle floor.

        The default tolerance is the larger of :data:`DEPTH_TOLERANCE`
        and 1.5x the trace's own per-sample output resolution — an
        event-driven output (the published ``Bsig`` lags its ``mirr``
        update by one event) can legitimately retrace by up to one event
        of flux without any underlying instability.
        """
        if depth_tolerance is None:
            depth_tolerance = max(DEPTH_TOLERANCE, 1.5 * self.max_step_change)
        return self.finite and self.monotonicity_depth <= depth_tolerance

    def as_dict(self) -> dict[str, float | int | bool]:
        return {
            "samples": self.samples,
            "negative_slope_samples": self.negative_slope_samples,
            "non_finite_samples": self.non_finite_samples,
            "runaway_samples": self.runaway_samples,
            "worst_negative_slope": self.worst_negative_slope,
            "monotonicity_depth": self.monotonicity_depth,
            "clean": self.clean,
            "acceptable": self.acceptable(),
        }


def audit_trajectory(
    h: np.ndarray,
    b: np.ndarray,
    slope_tolerance: float = 1e-12,
    runaway_limit: float = 1e6,
) -> StabilityAudit:
    """Audit a B(H) trajectory for non-physical behaviour.

    Parameters
    ----------
    slope_tolerance:
        dB/dH more negative than ``-slope_tolerance`` counts as a
        negative-slope sample (absorbs floating-point noise on
        legitimate plateaus).
    runaway_limit:
        |B| beyond this [T] counts as runaway (physical cores saturate
        near 2 T; 1e6 T only triggers on genuine blow-ups).
    """
    h = np.asarray(h, dtype=float)
    b = np.asarray(b, dtype=float)
    if h.shape != b.shape:
        raise AnalysisError(
            f"h and b must have the same shape, got {h.shape} vs {b.shape}"
        )
    if len(h) < 2:
        raise AnalysisError("need at least two samples to audit")

    finite_mask = np.isfinite(h) & np.isfinite(b)
    non_finite = int(np.sum(~finite_mask))
    runaway = int(np.sum(np.abs(b[finite_mask]) > runaway_limit))

    negative = 0
    worst = 0.0
    depth = 0.0
    max_step = 0.0
    if non_finite == 0:
        for start, stop in monotone_segments(h):
            seg_h = h[start : stop + 1]
            seg_b = b[start : stop + 1]
            dh = np.diff(seg_h)
            db = np.diff(seg_b)
            if len(db):
                max_step = max(max_step, float(np.max(np.abs(db))))
            moving = dh != 0.0
            slopes = db[moving] / dh[moving]
            bad = slopes < -abs(slope_tolerance)
            negative += int(np.sum(bad))
            if np.any(bad):
                worst = min(worst, float(np.min(slopes[bad])))
            # Cumulative retrace: on a rising branch B should rise, on a
            # falling branch fall; flip the falling case so one formula
            # covers both.
            oriented = seg_b if seg_h[-1] >= seg_h[0] else -seg_b
            running_max = np.maximum.accumulate(oriented)
            depth = max(depth, float(np.max(running_max - oriented)))

    return StabilityAudit(
        samples=len(h),
        negative_slope_samples=negative,
        non_finite_samples=non_finite,
        runaway_samples=runaway,
        worst_negative_slope=worst,
        monotonicity_depth=depth,
        max_step_change=max_step,
    )


def audit_trajectory_batch(
    h: np.ndarray,
    b: np.ndarray,
    slope_tolerance: float = 1e-12,
    runaway_limit: float = 1e6,
) -> list[StabilityAudit]:
    """Audit every lane of a batch-ensemble trajectory.

    ``b`` is ``(samples, cores)`` as produced by
    :func:`repro.batch.sweep.run_batch_series`; ``h`` is either the
    shared 1-D driver vector or a matching ``(samples, cores)`` matrix.
    Returns one :class:`StabilityAudit` per core.  The turning-point
    segmentation is inherently per-waveform, so lanes are audited
    individually — the batched part of the workload is producing the
    trajectories, not judging them.
    """
    b = np.asarray(b, dtype=float)
    h = np.asarray(h, dtype=float)
    if b.ndim != 2:
        raise AnalysisError(f"b must be (samples, cores), got shape {b.shape}")
    if h.ndim == 1:
        if h.shape[0] != b.shape[0]:
            raise AnalysisError(
                f"shared h has {h.shape[0]} samples but b has {b.shape[0]}"
            )
        columns = (h for _ in range(b.shape[1]))
    elif h.shape == b.shape:
        columns = (h[:, i] for i in range(b.shape[1]))
    else:
        raise AnalysisError(
            f"h shape {h.shape} matches neither (samples,) nor b's {b.shape}"
        )
    return [
        audit_trajectory(
            h_col,
            b[:, i],
            slope_tolerance=slope_tolerance,
            runaway_limit=runaway_limit,
        )
        for i, h_col in enumerate(columns)
    ]


def audit_batch_result(
    result,
    slope_tolerance: float = 1e-12,
    runaway_limit: float = 1e6,
) -> list[StabilityAudit]:
    """Audit every lane of a :class:`repro.batch.sweep.BatchSweepResult`.

    Family-agnostic: any ensemble run the model-agnostic executor
    produced — timeless, Preisach or time-domain — is judged by the
    same trajectory criteria, which is what makes EXP-X5's cross-family
    robustness table one loop.
    """
    return audit_trajectory_batch(
        result.h,
        result.b,
        slope_tolerance=slope_tolerance,
        runaway_limit=runaway_limit,
    )
