"""Detection of field-direction reversals in sampled trajectories.

Turning points are where the magnetisation slope is discontinuous and
where the numerical trouble the paper addresses lives, so every loop
analysis starts by finding them.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AnalysisError


def turning_point_indices(h: np.ndarray, tolerance: float = 0.0) -> np.ndarray:
    """Indices where the field H changes direction.

    A sample ``i`` (0 < i < n-1) is a turning point when the signs of
    the increments on either side differ; plateaus (increments with
    magnitude <= tolerance) are skipped over so a rise-hold-fall pattern
    yields one turning point, not two.

    Returns the array of indices, never including the endpoints.
    """
    h = np.asarray(h, dtype=float)
    if h.ndim != 1:
        raise AnalysisError(f"h must be 1-D, got shape {h.shape}")
    if len(h) < 3:
        return np.array([], dtype=int)
    if tolerance < 0.0:
        raise AnalysisError(f"tolerance must be >= 0, got {tolerance!r}")

    increments = np.diff(h)
    moving = np.abs(increments) > tolerance
    directions = np.sign(increments)

    turning: list[int] = []
    last_direction = 0.0
    for i, (is_moving, direction) in enumerate(zip(moving, directions)):
        if not is_moving:
            continue
        if last_direction != 0.0 and direction != last_direction:
            turning.append(i)
        last_direction = direction
    return np.array(turning, dtype=int)


def monotone_segments(
    h: np.ndarray, tolerance: float = 0.0
) -> list[tuple[int, int]]:
    """Split a trajectory into maximal monotone index ranges.

    Returns ``(start, stop)`` pairs (inclusive indices) covering the
    whole array, split at turning points.
    """
    h = np.asarray(h, dtype=float)
    if len(h) < 2:
        raise AnalysisError("need at least two samples to segment")
    turns = turning_point_indices(h, tolerance=tolerance)
    boundaries = [0] + list(turns) + [len(h) - 1]
    segments: list[tuple[int, int]] = []
    for start, stop in zip(boundaries[:-1], boundaries[1:]):
        if stop > start:
            segments.append((int(start), int(stop)))
    return segments
