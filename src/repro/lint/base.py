"""Shared machinery of the invariant checker: violations, parsed
module records, pragma handling and the rule registry.

Every rule shares **one** ``ast`` walk per file: the runner parses each
source file into a :class:`Module` (tree + pragma table + lazily built
import-edge list) and hands the same records to every registered rule.
Rules are small visitor classes registered under a stable id
(``L001``..) via :func:`register_rule` — the same registration idiom
the array backends use, so later PRs add rules without touching the
runner.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ParameterError

#: Inline suppression pragma.  ``# repro-lint: disable=L002`` silences
#: the named rule(s) on that physical line; everything after ``--`` is
#: a human justification (required by convention for L002 waivers,
#: never parsed).
PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Violation:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class ImportEdge:
    """One import statement, resolved to an absolute dotted target.

    ``lazy`` marks function-scoped imports — the deliberate
    cycle-breaking idiom the layer rule allowlists, as opposed to
    module-level (eager) imports which must always respect the DAG.
    """

    target: str
    line: int
    col: int
    lazy: bool


def parse_pragmas(lines: "list[str]") -> "dict[int, frozenset[str]]":
    """Map 1-based line numbers to the rule ids disabled on that line."""
    table: dict[int, frozenset[str]] = {}
    for number, text in enumerate(lines, start=1):
        match = PRAGMA_RE.search(text)
        if match is None:
            continue
        rules = frozenset(
            token.strip() for token in match.group(1).split(",") if token.strip()
        )
        if rules:
            table[number] = rules
    return table


def module_name_of(path: Path) -> "str | None":
    """The dotted module name of a source file, anchored at the last
    ``repro`` path segment (``src/repro/core/kernel.py`` →
    ``repro.core.kernel``; fixture trees under ``tests/`` resolve the
    same way).  ``None`` when the file is not under a ``repro`` tree.
    """
    parts = path.resolve().with_suffix("").parts
    anchors = [i for i, part in enumerate(parts) if part == "repro"]
    if not anchors:
        return None
    tail = parts[anchors[-1]:]
    if tail[-1] == "__init__":
        tail = tail[:-1]
    return ".".join(tail)


class _ImportCollector(ast.NodeVisitor):
    """Collect every import edge of one module, marking lazy ones."""

    def __init__(self, module: "Module") -> None:
        self.module = module
        self.edges: list[ImportEdge] = []
        self._depth = 0

    def visit_FunctionDef(self, node) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    visit_AsyncFunctionDef = visit_FunctionDef

    def _add(self, target: str, node) -> None:
        self.edges.append(
            ImportEdge(target, node.lineno, node.col_offset, self._depth > 0)
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._add(alias.name, node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = node.module or ""
        if node.level:
            # Resolve relative imports against this module's package.
            name = self.module.name or ""
            pkg_parts = name.split(".") if name else []
            if not self.module.is_package and pkg_parts:
                pkg_parts = pkg_parts[:-1]
            cut = len(pkg_parts) - (node.level - 1)
            pkg_parts = pkg_parts[: max(cut, 0)]
            base = ".".join(pkg_parts + ([node.module] if node.module else []))
        if not base:
            return
        self._add(base, node)
        # ``from repro import batch`` imports the subpackage too: record
        # each alias as a candidate submodule edge so package-level
        # rules see through the indirection (non-module attributes
        # resolve to unknown names the rules simply skip).
        for alias in node.names:
            if alias.name != "*":
                self._add(f"{base}.{alias.name}", node)


class Module:
    """One parsed source file: tree, pragma table, import edges."""

    def __init__(self, path: Path, source: str) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self.name = module_name_of(path)
        self.is_package = path.name == "__init__.py"
        self.pragmas = parse_pragmas(self.lines)
        self._imports: "list[ImportEdge] | None" = None

    @property
    def package(self) -> "str | None":
        """The top-level ``repro`` subpackage token this module belongs
        to (``repro.core.kernel`` → ``"core"``); the root package's own
        modules map to themselves (``repro.constants`` → ``"constants"``,
        ``repro/__init__.py`` → ``"repro"``)."""
        if self.name is None:
            return None
        parts = self.name.split(".")
        return parts[1] if len(parts) > 1 else parts[0]

    @property
    def imports(self) -> "list[ImportEdge]":
        if self._imports is None:
            collector = _ImportCollector(self)
            collector.visit(self.tree)
            self._imports = collector.edges
        return self._imports

    def suppressed(self, rule: str, line: int) -> bool:
        return rule in self.pragmas.get(line, frozenset())


class Project:
    """Every module of one lint run — what whole-tree rules consume."""

    def __init__(self, modules: "list[Module]") -> None:
        self.modules = modules
        self.by_name = {m.name: m for m in modules if m.name is not None}

    def find(self, name: str) -> "Module | None":
        return self.by_name.get(name)


class Rule:
    """Base class of one registered invariant check.

    Subclasses set ``id``/``name``/``description`` and implement either
    (or both) hooks; the runner calls ``check_module`` once per parsed
    file and ``check_project`` once per run with the full tree.
    """

    id: str = ""
    name: str = ""
    description: str = ""

    def check_module(self, module: Module):
        return ()

    def check_project(self, project: Project):
        return ()


_RULES: "dict[str, type[Rule]]" = {}


def register_rule(cls: "type[Rule]") -> "type[Rule]":
    """Register a rule class under its id (duplicates are an error)."""
    if not cls.id:
        raise ParameterError(f"rule {cls.__name__} declares no id")
    if cls.id in _RULES:
        raise ParameterError(f"duplicate lint rule id {cls.id!r}")
    _RULES[cls.id] = cls
    return cls


def get_rule(rule_id: str) -> "type[Rule]":
    try:
        return _RULES[rule_id]
    except KeyError:
        known = ", ".join(sorted(_RULES))
        raise ParameterError(f"unknown lint rule {rule_id!r}; registered: {known}")


def list_rules() -> "list[type[Rule]]":
    """All registered rule classes, sorted by id."""
    return [_RULES[k] for k in sorted(_RULES)]
