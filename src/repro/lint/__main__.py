"""CLI: ``python -m repro.lint [paths...]``.

Exit status 0 when the tree is clean, 1 on violations, 2 on usage
errors.  ``--format json`` emits a machine-readable report (the CI
artifact); the default text format prints one ``path:line:col: RULE
message`` per violation, ruff/flake8 style.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.errors import ParameterError
from repro.lint.base import list_rules
from repro.lint.runner import DEFAULT_ROOT, lint_paths


def _csv(value: str) -> "list[str]":
    return [token.strip() for token in value.split(",") if token.strip()]


def _relative(path: str) -> str:
    try:
        return os.path.relpath(path)
    except ValueError:  # different drive (Windows) — keep absolute
        return path


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based invariant checker for the repro source tree",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to check (default: {DEFAULT_ROOT})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help=(
            "report format (default: text; 'github' emits workflow "
            "::error annotations CI renders inline on the diff)"
        ),
    )
    parser.add_argument(
        "--select",
        type=_csv,
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        type=_csv,
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for cls in list_rules():
            print(f"{cls.id}  {cls.name}: {cls.description}")
        return 0

    try:
        violations, n_files = lint_paths(
            args.paths or None, select=args.select, ignore=args.ignore
        )
    except ParameterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "github":
        # GitHub Actions workflow commands: one ::error per violation,
        # rendered inline on the PR diff.  Newlines would terminate the
        # command mid-message, so they are %0A-escaped per the spec.
        names = {cls.id: cls.name for cls in list_rules()}
        for violation in violations:
            message = violation.message.replace("%", "%25").replace(
                "\n", "%0A"
            )
            title = f"{violation.rule} {names.get(violation.rule, '')}".strip()
            print(
                f"::error file={_relative(violation.path)},"
                f"line={violation.line},col={violation.col + 1},"
                f"title={title}::{message}"
            )
        noun = "violation" if len(violations) == 1 else "violations"
        print(f"repro.lint: {n_files} files checked, {len(violations)} {noun}")
    elif args.format == "json":
        report = {
            "schema": 1,
            "files": n_files,
            "rules": [cls.id for cls in list_rules()],
            "violations": [
                {**v.as_dict(), "path": _relative(v.path)} for v in violations
            ],
            "count": len(violations),
        }
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for violation in violations:
            print(
                violation.render().replace(violation.path, _relative(violation.path), 1)
            )
        noun = "violation" if len(violations) == 1 else "violations"
        print(f"repro.lint: {n_files} files checked, {len(violations)} {noun}")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
