"""L004 — every semantic spec field must reach ``spec_digest``.

The result cache (PR 7) is content-addressed: a request's identity is
the digest of its ``(EnsembleSpec, DriveSpec, backend)`` triple.  The
failure mode this rule exists for: someone adds a semantic field to a
spec dataclass — a new anisotropy knob, a new drive shape — and
forgets the digest payload.  Two genuinely different workloads then
share a key and the cache **serves stale results**, silently, to every
requester.

The check is a static cross-reference: the dataclass fields of
``EnsembleSpec``/``DriveSpec`` (wherever they are defined in the
linted tree) against the attribute accesses ``spec_digest`` makes on
its ``ensemble``/``drive`` parameters.  Execution-shape fields —
pool width, lane threads — are *deliberately* excluded from digests
(the PR 3/6 bitwise pins make them neutral), so they live on an
explicit exclusion list rather than being silently skippable.

The runtime backstop lives in :func:`repro.service.digest.spec_digest`
itself (it rejects spec types with unknown extra fields); this rule is
the build-time half of the same guarantee.
"""

from __future__ import annotations

import ast

from repro.lint.base import Module, Project, Rule, Violation, register_rule

#: Fields that describe *how* a workload executes, not *what* it
#: computes — excluded from digests by design (PR 3/PR 6: pool width
#: and lane threading are bitwise-neutral).  Grow this list only for
#: fields the ROADMAP documents as execution shape.
EXECUTION_SHAPE_FIELDS = frozenset({"n_workers", "threads", "mp_context", "pool"})

#: ``spec_digest`` parameter position -> spec class it must cover.
SPEC_PARAMS = (("ensemble", "EnsembleSpec"), ("drive", "DriveSpec"))

DIGEST_FUNCTION = "spec_digest"


def _dataclass_fields(node: ast.ClassDef) -> "list[str]":
    """Annotated instance fields of a dataclass body (``ClassVar`` and
    underscore-private annotations excluded)."""
    fields = []
    for statement in node.body:
        if not isinstance(statement, ast.AnnAssign):
            continue
        if not isinstance(statement.target, ast.Name):
            continue
        annotation = ast.unparse(statement.annotation)
        if "ClassVar" in annotation:
            continue
        if statement.target.id.startswith("_"):
            continue
        fields.append(statement.target.id)
    return fields


def _find_spec_classes(project: Project) -> "dict[str, tuple[Module, ast.ClassDef]]":
    """Locate the spec dataclasses, preferring the canonical module
    (``repro.parallel.spec``) when several trees are linted at once."""
    found: "dict[str, tuple[Module, ast.ClassDef]]" = {}
    wanted = {class_name for _, class_name in SPEC_PARAMS}
    ordered = sorted(
        project.modules,
        key=lambda m: (m.name != "repro.parallel.spec", str(m.path)),
    )
    for module in ordered:
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef) and node.name in wanted:
                found.setdefault(node.name, (module, node))
    return found


@register_rule
class DigestCompletenessRule(Rule):
    id = "L004"
    name = "digest-completeness"
    description = (
        "every EnsembleSpec/DriveSpec dataclass field must be read by "
        "spec_digest (or sit on the execution-shape exclusion list) — "
        "a skipped semantic field serves stale cache entries"
    )

    def check_project(self, project: Project):
        digest_module = None
        digest_fn = None
        for module in project.modules:
            for node in module.tree.body:
                if (
                    isinstance(node, ast.FunctionDef)
                    and node.name == DIGEST_FUNCTION
                ):
                    digest_module, digest_fn = module, node
                    break
            if digest_fn is not None:
                break
        if digest_fn is None:
            return  # nothing to check in this tree
        classes = _find_spec_classes(project)
        if not classes:
            return

        params = [arg.arg for arg in digest_fn.args.args]
        accessed: "dict[str, set[str]]" = {name: set() for name in params}
        for node in ast.walk(digest_fn):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in accessed
            ):
                accessed[node.value.id].add(node.attr)

        for position, (_, class_name) in enumerate(SPEC_PARAMS):
            if class_name not in classes:
                continue
            if position >= len(params):
                yield Violation(
                    self.id,
                    str(digest_module.path),
                    digest_fn.lineno,
                    digest_fn.col_offset,
                    f"{DIGEST_FUNCTION} has no parameter for {class_name} "
                    f"(expected at position {position})",
                )
                continue
            param = params[position]
            spec_module, spec_node = classes[class_name]
            for field_name in _dataclass_fields(spec_node):
                if field_name in EXECUTION_SHAPE_FIELDS:
                    continue
                if field_name in accessed[param]:
                    continue
                yield Violation(
                    self.id,
                    str(spec_module.path),
                    spec_node.lineno,
                    spec_node.col_offset,
                    f"field {field_name!r} of {class_name} never reaches "
                    f"the {DIGEST_FUNCTION} payload — two workloads "
                    "differing only in it would share a cache key and "
                    "serve stale results; add it to the payload (or, if "
                    "it is execution shape, to the documented "
                    "EXECUTION_SHAPE_FIELDS exclusion list)",
                )
