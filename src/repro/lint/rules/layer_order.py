"""L001 — the import graph must respect the layer DAG.

The stack grew bottom-up (kernel → batch → parallel → sched →
service); an import that reaches *up* the stack couples a lower layer
to machinery built on top of it — the exact cycle the PR 5/PR 6
gotchas document (``repro.batch`` importing ``repro.backend`` eagerly
while the numba drivers need ``repro.batch.lanes``; the executor
needing the planner that plans *for* it).  The documented escape hatch
is a **function-scoped** import listed in
:data:`repro.lint.layers.LAZY_ALLOWLIST`; everything else upward —
eager or lazy — is a violation.
"""

from __future__ import annotations

from repro.lint.base import Module, Rule, Violation, register_rule
from repro.lint.layers import LAZY_ALLOWLIST, rank_of


def _package_of_target(target: str) -> "str | None":
    """The layered package a dotted import target lands in, or ``None``
    for anything outside the ``repro`` namespace."""
    parts = target.split(".")
    if parts[0] != "repro":
        return None
    return parts[1] if len(parts) > 1 else "repro"


@register_rule
class LayerOrderRule(Rule):
    id = "L001"
    name = "layer-order"
    description = (
        "imports must respect the layer DAG in repro.lint.layers; "
        "upward imports are allowed only as allowlisted lazy cycle breaks"
    )

    def check_module(self, module: Module):
        src = module.package
        src_rank = rank_of(src)
        if src_rank is None:
            return
        seen: set = set()
        for edge in module.imports:
            dst = _package_of_target(edge.target)
            if dst is None or dst == src:
                continue
            # One statement yields a base edge plus one edge per alias;
            # report each offending (line, package) pair once.
            if (edge.line, dst, edge.lazy) in seen:
                continue
            seen.add((edge.line, dst, edge.lazy))
            dst_rank = rank_of(dst)
            if dst_rank is None:
                # A repro subpackage missing from the layer table is a
                # hole in the DAG — surface it rather than skipping.
                yield Violation(
                    self.id,
                    str(module.path),
                    edge.line,
                    edge.col,
                    f"package {dst!r} is not in the layer table "
                    "(repro.lint.layers.LAYER_ORDER) — assign it a layer",
                )
                continue
            if dst_rank < src_rank:
                continue
            if edge.lazy and (src, dst) in LAZY_ALLOWLIST:
                continue
            if edge.lazy:
                yield Violation(
                    self.id,
                    str(module.path),
                    edge.line,
                    edge.col,
                    f"lazy import of {edge.target!r} reaches up the layer "
                    f"DAG ({src} -> {dst}) but ({src!r}, {dst!r}) is not "
                    "on the documented LAZY_ALLOWLIST in repro.lint.layers",
                )
            else:
                yield Violation(
                    self.id,
                    str(module.path),
                    edge.line,
                    edge.col,
                    f"module-level import of {edge.target!r} violates the "
                    f"layer DAG: {src!r} (layer {src_rank}) may not import "
                    f"{dst!r} (layer {dst_rank}); see repro.lint.layers",
                )
