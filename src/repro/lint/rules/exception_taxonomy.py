"""L007 — exception taxonomy: raise :class:`~repro.errors.ReproError`
subclasses, never swallow broadly caught exceptions in silence.

Two halves of one contract:

* **Raising** (``repro.*`` modules only): a new exception raised by
  library code must derive from ``ReproError`` — that single base is
  what lets callers write ``except ReproError`` around a campaign and
  know they caught *domain* failures, not programming errors.  Raising
  a builtin (``ValueError``, ``RuntimeError``, …) punches a hole in
  that contract.  Process-control exceptions (``SystemExit``,
  ``KeyboardInterrupt``, ``StopIteration``, ``NotImplementedError``)
  are allowlisted; re-raises (bare ``raise``, ``raise caught_var``)
  and names this best-effort resolver cannot place are skipped.
* **Catching** (everywhere lint runs, tests included): an
  ``except Exception`` / bare ``except`` body that does *nothing* —
  only ``pass``/``...`` — swallows failures invisibly.  The policy is
  that a broad handler must re-raise, return an error marker, or log
  the degradation; the detector flags the unambiguous case, the
  silent ``pass``.

Resolution of a raised name: imports from :mod:`repro.errors` are
approved, ``ReproError`` itself is, and locally defined classes whose
base chain reaches an approved name are (computed to a fixpoint, so a
module-local hierarchy rooted in ``DistError`` approves all its
leaves).
"""

from __future__ import annotations

import ast

from repro.lint.base import Module, Rule, Violation, register_rule
from repro.lint.resolve import ModuleResolver, dotted_name

#: Raising these is process/iteration control, not a domain failure.
ALLOWED_BUILTINS = frozenset(
    {
        "SystemExit",
        "KeyboardInterrupt",
        "StopIteration",
        "StopAsyncIteration",
        "GeneratorExit",
        "NotImplementedError",
        "AssertionError",
    }
)

#: Builtin exceptions library code must not raise directly — wrap the
#: condition in a ReproError subclass instead.  Names outside this set
#: (an unresolvable local variable, a re-raised capture) are skipped,
#: not guessed at.
BANNED_BUILTINS = frozenset(
    {
        "ArithmeticError",
        "AttributeError",
        "BaseException",
        "BrokenPipeError",
        "ConnectionError",
        "EOFError",
        "Exception",
        "FileNotFoundError",
        "FloatingPointError",
        "IOError",
        "IndexError",
        "KeyError",
        "LookupError",
        "MemoryError",
        "NameError",
        "OSError",
        "OverflowError",
        "PermissionError",
        "RuntimeError",
        "TimeoutError",
        "TypeError",
        "UnicodeDecodeError",
        "UnicodeEncodeError",
        "UnicodeError",
        "ValueError",
        "ZeroDivisionError",
    }
)

BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _approved_names(module: Module, resolver: ModuleResolver) -> "set[str]":
    """Module-local names known to denote ReproError subclasses."""
    approved = {"ReproError"}
    for local, canonical in resolver.aliases.items():
        if canonical.startswith("repro.errors."):
            approved.add(local)
    # Locally defined subclasses, to a fixpoint (hierarchies declare
    # parents before children in source, but don't rely on it).
    classes = [
        node for node in ast.walk(module.tree) if isinstance(node, ast.ClassDef)
    ]
    changed = True
    while changed:
        changed = False
        for cls in classes:
            if cls.name in approved:
                continue
            for base in cls.bases:
                base_name = dotted_name(base)
                if base_name is None:
                    continue
                if base_name.split(".")[-1] in approved:
                    approved.add(cls.name)
                    changed = True
                    break
    return approved


def _is_silent(body: "list[ast.stmt]") -> bool:
    """Does this handler body do nothing at all?"""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring / ellipsis
        return False
    return True


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    exprs = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for expr in exprs:
        name = dotted_name(expr)
        if name is not None and name.split(".")[-1] in BROAD_NAMES:
            return True
    return False


@register_rule
class ExceptionTaxonomyRule(Rule):
    id = "L007"
    name = "exception-taxonomy"
    description = (
        "repro code raises ReproError subclasses, never bare builtins; "
        "broad except handlers must re-raise, return a marker, or log "
        "— a silent pass is flagged"
    )

    def check_module(self, module: Module):
        yield from self._check_swallows(module)
        if module.name is not None:
            yield from self._check_raises(module)

    def _check_raises(self, module: Module):
        resolver = ModuleResolver(module.tree)
        approved = _approved_names(module, resolver)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            callee = exc.func if isinstance(exc, ast.Call) else exc
            name = dotted_name(callee)
            if name is None:
                continue  # raise type(exc)(...) and friends — skip
            trailing = name.split(".")[-1]
            if trailing in approved or trailing in ALLOWED_BUILTINS:
                continue
            canonical = resolver.canonical(callee)
            if canonical is not None and canonical.startswith("repro.errors."):
                continue
            if trailing in BANNED_BUILTINS:
                yield Violation(
                    self.id,
                    str(module.path),
                    node.lineno,
                    node.col_offset,
                    f"raise {trailing}(...) escapes the ReproError taxonomy "
                    "— callers guard campaigns with 'except ReproError'; "
                    "raise a repro.errors subclass instead",
                )

    def _check_swallows(self, module: Module):
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node):
                continue
            if _is_silent(node.body):
                caught = (
                    "bare except"
                    if node.type is None
                    else f"except {ast.unparse(node.type)}"
                )
                yield Violation(
                    self.id,
                    str(module.path),
                    node.lineno,
                    node.col_offset,
                    f"{caught} swallows every failure in silence; "
                    "re-raise, return an error marker, or log the "
                    "degradation",
                )
