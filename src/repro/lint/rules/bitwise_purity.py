"""L002 — no libm transcendentals in the kernel-parity modules.

The repo's bitwise lane contract (batch lane == scalar model, sharded
== single-process) rests on one PR 1 observation: ``math.atan`` and
``np.arctan`` differ by 1 ulp (libm vs NumPy's SIMD polynomials).  A
single ``math.*`` transcendental in a kernel path breaks bitwise lane
equality in ways the equivalence tests only catch by luck.  Likewise
the builtin ``sum`` accumulates left-to-right where NumPy reduces
pairwise — a different float result for the same values.

This rule patrols exactly the modules on both sides of the parity pin
(:data:`PARITY_MODULES`); everything else is untouched.  Exact
``math`` members — constants and predicates like ``math.inf`` and
``math.isnan`` — stay allowed, they produce identical bits everywhere.
A deliberately scalar path (e.g. the numba backend's documented libm
tier) carries an inline waiver **with a justification string**::

    m_an = math.atan(x)  # repro-lint: disable=L002 -- libm rtol tier
"""

from __future__ import annotations

import ast

from repro.lint.base import Module, Rule, Violation, register_rule

#: Modules holding (either side of) the bitwise lane-parity contract.
PARITY_MODULES = frozenset(
    {
        "repro.core.kernel",
        "repro.core.slope",
        "repro.ja.equations",
        "repro.ja.anhysteretic",
        "repro.batch.engine",
        "repro.backend.numpy_backend",
        "repro.backend.numba_backend",
    }
)

#: ``math`` members that are exact — identical bits from libm, NumPy
#: or pure Python — and therefore parity-safe.  Everything else
#: (``atan``, ``tanh``, ``exp``, ``fsum``, ...) is flagged.
EXACT_MATH_MEMBERS = frozenset(
    {
        "inf",
        "nan",
        "pi",
        "tau",
        "e",
        "isnan",
        "isinf",
        "isfinite",
        "copysign",
        "fabs",
        "floor",
        "ceil",
        "trunc",
    }
)


#: libm → numpy ufunc spellings where they differ (for the fix hint).
NUMPY_SPELLING = {
    "atan": "arctan",
    "atan2": "arctan2",
    "asin": "arcsin",
    "acos": "arccos",
    "atanh": "arctanh",
    "asinh": "arcsinh",
    "acosh": "arccosh",
    "pow": "power",
    "fsum": "sum",
    "fmod": "mod",
}


@register_rule
class BitwisePurityRule(Rule):
    id = "L002"
    name = "bitwise-purity"
    description = (
        "kernel-parity modules may not call math.* transcendentals "
        "(1 ulp off NumPy) or float-accumulating builtins like sum()"
    )

    def check_module(self, module: Module):
        if module.name not in PARITY_MODULES:
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "math"
                and node.attr not in EXACT_MATH_MEMBERS
            ):
                numpy_name = NUMPY_SPELLING.get(node.attr, node.attr)
                yield Violation(
                    self.id,
                    str(module.path),
                    node.lineno,
                    node.col_offset,
                    f"math.{node.attr} evaluates through libm — 1 ulp off "
                    f"NumPy's kernels and a silent bitwise-parity break; "
                    f"use np.{numpy_name} (or pragma-waive a deliberately "
                    "scalar path with a justification)",
                )
            elif isinstance(node, ast.ImportFrom) and node.module == "math":
                for alias in node.names:
                    if alias.name not in EXACT_MATH_MEMBERS:
                        yield Violation(
                            self.id,
                            str(module.path),
                            node.lineno,
                            node.col_offset,
                            f"from math import {alias.name} smuggles a libm "
                            "transcendental into a kernel-parity module; "
                            "import the np ufunc instead",
                        )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "sum"
            ):
                yield Violation(
                    self.id,
                    str(module.path),
                    node.lineno,
                    node.col_offset,
                    "builtin sum() accumulates left-to-right — NumPy "
                    "reduces pairwise, so the float result differs; use "
                    "np.sum / the xp namespace",
                )
