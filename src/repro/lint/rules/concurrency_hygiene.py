"""L005 — concurrency hygiene in ``parallel``/``service``/``dist``.

Four concurrency gotchas this repo hit (or pre-empted) once each and
must never hit again:

* **Caller-owned pools are never closed by executors** (PR 7): a
  :class:`~repro.service.pool.WorkerPool` outlives campaigns by
  design — ``run_sharded(..., pool=...)`` borrowing it must not call
  ``close``/``terminate``/``join`` on it (nor enter it as a context
  manager, whose ``__exit__`` closes).  Detected as those calls on a
  function *parameter* named ``pool`` — a pool the function created
  locally is its own to close.
* **Worker-side ``SharedMemory`` attaches silence the resource
  tracker** (PR 3, CPython gh-82300): attaching by name re-registers
  the segment and the tracker then logs spurious leaks or unlinks it
  under the parent.  An attach site (``SharedMemory(...)`` without
  ``create=True``) must either pass ``track=False`` (3.13+) or sit in
  a scope that patches ``resource_tracker.register``.
* **Mutable default arguments are banned**: a shared ``[]``/``{}``
  default is cross-call (and with a warm pool, cross-*campaign*)
  state — exactly the aliasing the frozen-spec design exists to
  prevent.
* **Socket receives in ``dist`` must carry a deadline** (PR 9): a bare
  ``Connection.recv()`` blocks forever on a wedged or killed peer,
  turning one dead worker into a hung campaign.  Every dist-side
  receive must route through the protocol's poll-with-deadline wrapper
  (:func:`repro.dist.protocol.recv_message`) — a ``.recv()`` call
  anywhere else in the package is a violation.
"""

from __future__ import annotations

import ast

from repro.lint.base import Module, Rule, Violation, register_rule

#: Packages the hygiene rules patrol.
SCOPED_PACKAGES = frozenset({"parallel", "service", "dist"})

#: The one function allowed to call ``Connection.recv`` in dist code —
#: the protocol's poll-with-deadline wrapper.
RECV_WRAPPERS = frozenset({"recv_message"})

#: Parameter names that denote a caller-owned worker pool.
POOL_PARAMS = frozenset({"pool", "worker_pool"})

#: Methods that end a pool's life.
POOL_CLOSERS = frozenset({"close", "terminate", "join", "shutdown"})

MUTABLE_FACTORIES = frozenset({"list", "dict", "set"})


def _function_params(fn) -> "set[str]":
    args = fn.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    for extra in (args.vararg, args.kwarg):
        if extra is not None:
            names.append(extra.arg)
    return set(names)


def _is_shared_memory_call(node: ast.Call) -> bool:
    fn = node.func
    if isinstance(fn, ast.Name):
        return fn.id == "SharedMemory"
    return isinstance(fn, ast.Attribute) and fn.attr == "SharedMemory"


def _keyword(node: ast.Call, name: str):
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def _is_true(node) -> bool:
    return isinstance(node, ast.Constant) and node.value is True


def _is_false(node) -> bool:
    return isinstance(node, ast.Constant) and node.value is False


def _silences_tracker(scope_body) -> bool:
    """Does this scope assign ``resource_tracker.register`` (the
    silencing idiom the executor uses around attaches)?"""
    for node in scope_body:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign):
                for target in sub.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "register"
                    ):
                        return True
    return False


def _mutable_default(node) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in MUTABLE_FACTORIES
    )


@register_rule
class ConcurrencyHygieneRule(Rule):
    id = "L005"
    name = "concurrency-hygiene"
    description = (
        "parallel/service/dist: never close a caller-owned pool, "
        "silence the resource tracker at SharedMemory attach sites "
        "(gh-82300), no mutable default arguments, no un-deadlined "
        "blocking recv in dist code"
    )

    def check_module(self, module: Module):
        if module.package not in SCOPED_PACKAGES:
            return
        functions = [
            node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for fn in functions:
            yield from self._check_pool_ownership(module, fn)
            yield from self._check_attach_sites(module, fn.body)
            yield from self._check_defaults(module, fn)
            yield from self._check_recv_deadlines(module, fn)
        # Module-level attach sites have the module as their scope.
        top_level = [
            node
            for node in module.tree.body
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        yield from self._check_attach_sites(module, top_level)

    # -- caller-owned pools -------------------------------------------------

    def _check_pool_ownership(self, module: Module, fn):
        pool_params = _function_params(fn) & POOL_PARAMS
        if not pool_params:
            return
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in POOL_CLOSERS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in pool_params
            ):
                yield Violation(
                    self.id,
                    str(module.path),
                    node.lineno,
                    node.col_offset,
                    f"{node.func.value.id}.{node.func.attr}() closes a "
                    "caller-owned pool — a borrowed WorkerPool outlives "
                    "this call by design; only its owner may close it",
                )
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Name) and expr.id in pool_params:
                        yield Violation(
                            self.id,
                            str(module.path),
                            expr.lineno,
                            expr.col_offset,
                            f"entering caller-owned {expr.id!r} as a "
                            "context manager closes it on exit — the "
                            "borrower must not end the pool's life",
                        )

    # -- SharedMemory attach sites ------------------------------------------

    def _check_attach_sites(self, module: Module, scope_body):
        attaches = []
        for node in scope_body:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call) and _is_shared_memory_call(sub):
                    if _is_true(_keyword(sub, "create")):
                        continue  # owner-side creation, tracked on purpose
                    if _is_false(_keyword(sub, "track")):
                        continue  # 3.13+ explicit opt-out
                    attaches.append(sub)
        if attaches and not _silences_tracker(scope_body):
            for call in attaches:
                yield Violation(
                    self.id,
                    str(module.path),
                    call.lineno,
                    call.col_offset,
                    "worker-side SharedMemory attach re-registers the "
                    "segment with the resource tracker (CPython gh-82300: "
                    "spurious leak warnings / unlink-under-the-parent); "
                    "patch resource_tracker.register around the attach or "
                    "pass track=False",
                )

    # -- un-deadlined receives in dist code ---------------------------------

    def _check_recv_deadlines(self, module: Module, fn):
        if module.package != "dist":
            return
        if fn.name in RECV_WRAPPERS:
            return  # the wrapper itself owns the poll-with-deadline loop
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "recv"
            ):
                yield Violation(
                    self.id,
                    str(module.path),
                    node.lineno,
                    node.col_offset,
                    "bare Connection.recv() blocks forever on a wedged or "
                    "killed peer; route every dist receive through "
                    "protocol.recv_message (poll-with-deadline)",
                )

    # -- mutable defaults ---------------------------------------------------

    def _check_defaults(self, module: Module, fn):
        args = fn.args
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            if _mutable_default(default):
                yield Violation(
                    self.id,
                    str(module.path),
                    default.lineno,
                    default.col_offset,
                    f"mutable default argument in {fn.name}() is shared "
                    "across calls (and, under a warm pool, across "
                    "campaigns); default to None and build inside",
                )
