"""L009 — determinism provenance: no entropy, no unordered iteration,
in the modules whose output is a canonical payload.

L002 keeps the kernel-parity modules free of *libm* (value drift);
this rule extends the same idea from values to **identity**: the
content digests (:mod:`repro.service.digest`, the dispatcher's
``shard_digest`` dedup key) and the lane-parity modules must be pure
functions of their inputs.  Two poisons qualify:

* **entropy sources** — ``time.*``, ``random.*``, ``os.urandom``,
  ``uuid.*``, ``secrets.*``: a digest that folds in a timestamp stops
  deduplicating, a kernel that consults the clock stops being
  bitwise-reproducible across hosts;
* **unordered iteration** — looping a ``dict``'s ``.items()`` /
  ``.keys()`` / ``.values()`` (or a ``set``) straight into output:
  insertion order is an execution detail, not a semantic field, so
  canonical forms must sort first (``for k in sorted(d)``), exactly
  like ``json.dumps(..., sort_keys=True)`` downstream.

Scope is deliberately narrow — whole modules listed in
:data:`SCOPE_MODULES` (the digest module plus L002's
``PARITY_MODULES``) and the single functions in
:data:`SCOPE_FUNCTIONS` (``dispatch.shard_digest``; the rest of the
dispatcher legitimately reads ``time.monotonic`` for deadlines).
Seeded randomness (``np.random.default_rng(seed)``) is *not* entropy
and is not flagged.
"""

from __future__ import annotations

import ast

from repro.lint.base import Module, Rule, Violation, register_rule
from repro.lint.resolve import ModuleResolver
from repro.lint.rules.bitwise_purity import PARITY_MODULES

#: Whole modules whose every function feeds canonical output.
SCOPE_MODULES: "frozenset[str]" = frozenset(
    {"repro.service.digest"} | set(PARITY_MODULES)
)

#: ``(module, function)`` pairs scoped individually — the enclosing
#: module is otherwise free to use wall clocks (deadlines, retries).
SCOPE_FUNCTIONS: "frozenset[tuple[str, str]]" = frozenset(
    {("repro.dist.dispatch", "shard_digest")}
)

#: Canonical dotted prefixes whose calls inject entropy.
ENTROPY_PREFIXES = ("time.", "random.", "uuid.", "secrets.")
ENTROPY_EXACT = frozenset({"os.urandom", "time", "random"})

#: Dict views whose iteration order is insertion order, not canonical.
UNORDERED_VIEWS = frozenset({"items", "keys", "values"})


def _entropy_call(call: ast.Call, resolver: ModuleResolver) -> "str | None":
    canonical = resolver.canonical(call.func)
    if canonical is None:
        return None
    if canonical in ENTROPY_EXACT or canonical.startswith(ENTROPY_PREFIXES):
        return canonical
    return None


def _unsorted_iter(iter_expr: ast.AST) -> "str | None":
    """A loop source that exposes insertion/hash order directly."""
    if isinstance(iter_expr, ast.Call) and isinstance(
        iter_expr.func, ast.Attribute
    ):
        if iter_expr.func.attr in UNORDERED_VIEWS and not iter_expr.args:
            return f".{iter_expr.func.attr}()"
    if isinstance(iter_expr, ast.Set) or (
        isinstance(iter_expr, ast.Call)
        and isinstance(iter_expr.func, ast.Name)
        and iter_expr.func.id in ("set", "frozenset")
    ):
        return "a set"
    return None


@register_rule
class DeterminismRule(Rule):
    id = "L009"
    name = "determinism-provenance"
    description = (
        "digest/kernel-parity code must be entropy-free: no time/"
        "random/uuid/urandom calls, no unsorted dict or set iteration "
        "feeding canonical payloads"
    )

    def check_module(self, module: Module):
        if module.name is None:
            return
        resolver = ModuleResolver(module.tree)
        if module.name in SCOPE_MODULES:
            yield from self._check_region(module, module.tree, resolver)
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and (module.name, node.name) in SCOPE_FUNCTIONS
            ):
                yield from self._check_region(module, node, resolver)

    def _check_region(self, module: Module, region, resolver):
        for node in ast.walk(region):
            if isinstance(node, ast.Call):
                source = _entropy_call(node, resolver)
                if source is not None:
                    yield Violation(
                        self.id,
                        str(module.path),
                        node.lineno,
                        node.col_offset,
                        f"{source}() injects entropy into a module that "
                        "feeds canonical payloads; determinism-scoped code "
                        "must be a pure function of its inputs",
                    )
            iters: "list[ast.AST]" = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for iter_expr in iters:
                what = _unsorted_iter(iter_expr)
                if what is not None:
                    yield Violation(
                        self.id,
                        str(module.path),
                        iter_expr.lineno,
                        iter_expr.col_offset,
                        f"iterating {what} exposes insertion/hash order to "
                        "canonical output; sort first (for k in "
                        "sorted(d): ...) so the digest never sees "
                        "execution order",
                    )
