"""L006 — resource lifecycle in ``parallel``/``service``/``dist``.

The concurrency layers acquire OS-backed handles — ``SharedMemory``
segments, ``Listener``/``Client`` sockets, process ``Pool``\\ s,
``mkstemp`` descriptors — whose leak mode is silent until a fleet runs
out of fds or shm names.  The PR 8 rules could only spot *missing*
release calls; this rule asks the flow question: **does every acquired
handle reach a release on every path out of the function?**

Mechanics (built on :mod:`repro.lint.cfg` + :mod:`repro.lint.resolve`):

* an *acquisition* is a plain-name assignment from a known constructor
  (``shm = SharedMemory(...)``, ``conn = Client(...)``,
  ``fd, path = mkstemp()``);
* a *release* is a releasing method on the name (``close``/``unlink``/
  ``terminate``/``join``/``shutdown``/``stop``/``release``), an
  ``os.close(fd)``/``os.fdopen(fd, ...)`` (fd ownership transfers to
  the file object), or naming the handle in a ``with`` item (the
  context manager owns the unwind from there);
* the handle is *exempt* when it escapes the function — returned,
  yielded, stored onto an object or container, captured by a nested
  function, or passed to another call (ownership transferred; the
  PR 7 caller-owned-pool rule is the canonical case) — because the
  function is then not the owner;
* otherwise the CFG must show **no** release-free path from the
  acquisition to the function exit.  The traversal skips the exception
  edges leaving the acquisition statement itself: if the constructor
  raised, there is nothing to leak.

The graph over-approximates (see :mod:`repro.lint.cfg`), so a finding
here means "show me the ``finally``", not necessarily "production
leaks today" — the same burden-of-proof direction as L002.
"""

from __future__ import annotations

import ast

from repro.lint.base import Module, Rule, Violation, register_rule
from repro.lint.cfg import build_cfg
from repro.lint.resolve import ModuleResolver, dotted_name

#: Packages whose functions own OS-backed handles.
SCOPED_PACKAGES = frozenset({"parallel", "service", "dist"})

#: Constructor type tags this rule tracks, with the release methods
#: that end each handle's life.
TRACKED: "dict[str, frozenset[str]]" = {
    "SharedMemory": frozenset({"close", "unlink"}),
    "Listener": frozenset({"close"}),
    "Client": frozenset({"close"}),
    "Pool": frozenset({"close", "terminate", "join"}),
    "fd": frozenset(),  # released via os.close / os.fdopen only
}

#: Any of these attribute calls on the handle counts as a release —
#: broader than the per-type set above on purpose: ``pool.join()``
#: after ``close()`` and a custom ``.stop()`` wrapper both end a life.
RELEASE_METHODS = frozenset(
    {"close", "unlink", "terminate", "join", "shutdown", "stop", "release"}
)

#: Calls that consume a raw fd (the descriptor's ownership moves).
FD_CONSUMERS = frozenset({"os.close", "os.fdopen", "close", "fdopen"})


def _names_in(node: ast.AST) -> "set[str]":
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _is_fd_consumer(call: ast.Call, resolver: ModuleResolver) -> bool:
    canonical = resolver.canonical(call.func)
    return canonical in FD_CONSUMERS or (
        canonical is not None and canonical.split(".")[-1] in {"close", "fdopen"}
    )


class _Acquisition:
    __slots__ = ("name", "tag", "stmt")

    def __init__(self, name: str, tag: str, stmt: ast.stmt) -> None:
        self.name = name
        self.tag = tag
        self.stmt = stmt


@register_rule
class ResourceLifecycleRule(Rule):
    id = "L006"
    name = "resource-lifecycle"
    description = (
        "parallel/service/dist: every acquired SharedMemory/Listener/"
        "Client/Pool/mkstemp handle must reach a release on all "
        "control-flow paths (with / try-finally), escape to a caller, "
        "or be caller-owned"
    )

    def check_module(self, module: Module):
        if module.package not in SCOPED_PACKAGES:
            return
        resolver = ModuleResolver(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node, resolver)

    def _check_function(self, module: Module, fn, resolver: ModuleResolver):
        cfg = build_cfg(fn)
        acquisitions = self._acquisitions(fn, cfg, resolver)
        if not acquisitions:
            return
        for acq in acquisitions:
            if self._escapes(fn, acq):
                continue
            releases = self._release_nodes(fn, cfg, acq, resolver)
            start = cfg.node_of(acq.stmt)
            if start is None:  # pragma: no cover - defensive
                continue
            if not releases:
                yield Violation(
                    self.id,
                    str(module.path),
                    acq.stmt.lineno,
                    acq.stmt.col_offset,
                    f"{acq.tag} handle {acq.name!r} is acquired but never "
                    "released in this function and never escapes it; close "
                    "it (with / try-finally) or hand ownership out",
                )
            elif cfg.reaches_exit_avoiding(
                start, releases, skip_initial_exception_edges=True
            ):
                yield Violation(
                    self.id,
                    str(module.path),
                    acq.stmt.lineno,
                    acq.stmt.col_offset,
                    f"{acq.tag} handle {acq.name!r} has a control-flow path "
                    "to the function exit that skips every release; move "
                    "the release into a finally block or a with statement",
                )

    # -- acquisition discovery ----------------------------------------------

    def _acquisitions(self, fn, cfg, resolver: ModuleResolver):
        found: "list[_Acquisition]" = []
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign):
                continue
            if cfg.node_of(node) is None:
                continue  # belongs to a nested function's own CFG
            if not isinstance(node.value, ast.Call):
                continue
            tag = resolver.constructor_of(node.value)
            if tag is None or (tag not in TRACKED and tag != "mkstemp"):
                continue
            for target in node.targets:
                if tag == "mkstemp":
                    if (
                        isinstance(target, ast.Tuple)
                        and target.elts
                        and isinstance(target.elts[0], ast.Name)
                    ):
                        found.append(
                            _Acquisition(target.elts[0].id, "fd", node)
                        )
                elif isinstance(target, ast.Name):
                    found.append(_Acquisition(target.id, tag, node))
        return found

    # -- escape analysis -----------------------------------------------------

    def _escapes(self, fn, acq: _Acquisition) -> bool:
        name = acq.name
        for node in ast.walk(fn):
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                if node.value is not None and name in _names_in(node.value):
                    return True
            elif isinstance(node, ast.Assign) and node is not acq.stmt:
                # Stored anywhere (attribute, subscript, another name):
                # this function no longer solely owns the handle.
                if name in _names_in(node.value):
                    return True
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not fn and name in _names_in(node):
                    return True  # closure capture
            elif isinstance(node, ast.Lambda):
                if name in _names_in(node.body):
                    return True
            elif isinstance(node, ast.Call):
                # Passed as an argument to another call (ownership
                # transfer) — releasing consumers don't count here,
                # they are releases, handled below.
                args = list(node.args) + [kw.value for kw in node.keywords]
                for arg in args:
                    if isinstance(arg, ast.Name) and arg.id == name:
                        if not self._is_release_call(node, name):
                            return True
        return False

    def _is_release_call(self, call: ast.Call, name: str) -> bool:
        """``os.close(fd)`` / ``os.fdopen(fd, ...)`` style consumers."""
        callee = dotted_name(call.func)
        if callee is None:
            return False
        return callee.split(".")[-1] in {"close", "fdopen", "unlink"}

    # -- release discovery ---------------------------------------------------

    def _release_nodes(self, fn, cfg, acq: _Acquisition, resolver):
        releases: "set[int]" = set()
        for node in cfg.nodes:
            if node.stmt is None:
                continue
            if self._stmt_releases(node.stmt, acq, resolver):
                releases.add(node.index)
        return releases

    def _stmt_releases(self, stmt, acq: _Acquisition, resolver) -> bool:
        name = acq.name
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            # ``with closing(conn):`` / ``with os.fdopen(fd) as fh:`` /
            # ``with pool:`` — the context manager owns the unwind.
            for item in stmt.items:
                if name in _names_in(item.context_expr):
                    return True
            return False
        for sub in self._own_nodes(stmt):
            if not isinstance(sub, ast.Call):
                continue
            if isinstance(sub.func, ast.Attribute):
                if (
                    isinstance(sub.func.value, ast.Name)
                    and sub.func.value.id == name
                    and sub.func.attr in RELEASE_METHODS
                ):
                    return True
            if acq.tag == "fd" and _is_fd_consumer(sub, resolver):
                for arg in sub.args[:1]:
                    if isinstance(arg, ast.Name) and arg.id == name:
                        return True
        return False

    @staticmethod
    def _own_nodes(stmt):
        """The AST nodes belonging to one CFG node — a compound
        statement contributes only its header expression (its body
        statements are separate CFG nodes; a release buried in one
        branch must not mark the shared header as releasing)."""
        if isinstance(stmt, ast.If) or isinstance(stmt, ast.While):
            header: "list[ast.AST]" = [stmt.test]
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            header = [stmt.iter]
        elif isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            header = []
        elif isinstance(stmt, ast.ExceptHandler):
            header = [stmt.type] if stmt.type is not None else []
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            header = []
        else:
            return list(ast.walk(stmt))
        out: "list[ast.AST]" = []
        for expr in header:
            out.extend(ast.walk(expr))
        return out
