"""L010 — wire-protocol exhaustiveness across the dist modules.

The repro.dist message vocabulary lives in ``dist/protocol.py`` as
``MSG_*`` tag constants; the dispatcher and the worker agent each
pattern-match on a subset.  A tag added on one side but not the other
is the classic protocol desync: the sender streams, the receiver hits
its ``unknown message kind`` arm, a campaign dies at runtime for what
was a compile-time fact.  This rule makes the tag set a checked,
**cross-module** contract:

* every ``MSG_*`` constant must be *constructed* somewhere in the
  protocol's directory — as the first element of a tuple handed to
  ``send_message`` — or it is dead vocabulary;
* every tag must be *declared* in ``TAG_HANDLERS`` (tag → handler
  module basenames), and every declared handler module that is part
  of the lint run must actually *handle* it: compare against the tag
  (``kind == MSG_RUN``, ``reply[0] != MSG_PONG``), match it in a
  ``match`` arm, or assert it via ``check_message(conn, MSG_X)``.
  Deleting a handler arm is flagged on the handler file itself;
* the **current tag set must be recorded** in ``TAG_HISTORY`` under
  the current ``PROTOCOL_VERSION``.  Because history entries for past
  versions are frozen by convention (and by the seeded fixture),
  changing the tag set forces a new ``PROTOCOL_VERSION`` entry — the
  version bump the ping handshake relies on to refuse mixed fleets.

Modules are paired **by directory**, not by import graph: every module
named ``repro.dist.protocol`` in the run is checked against the
``dispatch``/``worker``/``probe`` files sitting next to it, which is
what lets the seeded fixture trees under ``tests/lint_fixtures``
carry their own miniature protocol without colliding with the real
one.  Tags are compared *by string value*, so a handler that spells
the literal (``kind == "run"``) still counts.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.lint.base import Module, Project, Rule, Violation, register_rule

PROTOCOL_MODULE = "repro.dist.protocol"


def _literal_str(node) -> "str | None":
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _literal_int(node) -> "int | None":
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    return None


class _ProtocolFacts:
    """The declarations one protocol module makes, read off its AST."""

    def __init__(self, module: Module) -> None:
        self.module = module
        #: constant name → tag string ("MSG_RUN" → "run").
        self.tags: "dict[str, str]" = {}
        self.version: "int | None" = None
        self.version_line = 1
        #: version → tuple of tag strings, from TAG_HISTORY.
        self.history: "dict[int, tuple[str, ...]] | None" = None
        self.history_line = 1
        #: tag string → handler module basenames, from TAG_HANDLERS.
        self.handlers: "dict[str, tuple[str, ...]] | None" = None
        for stmt in module.tree.body:
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if target.id.startswith("MSG_"):
                value = _literal_str(stmt.value)
                if value is not None:
                    self.tags[target.id] = value
            elif target.id == "PROTOCOL_VERSION":
                self.version = _literal_int(stmt.value)
                self.version_line = stmt.lineno
            elif target.id == "TAG_HISTORY":
                self.history = self._parse_history(stmt.value)
                self.history_line = stmt.lineno
            elif target.id == "TAG_HANDLERS":
                self.handlers = self._parse_handlers(stmt.value)

    def _resolve(self, node) -> "str | None":
        """A tag reference: a string literal or an MSG_* name."""
        literal = _literal_str(node)
        if literal is not None:
            return literal
        if isinstance(node, ast.Name):
            return self.tags.get(node.id)
        return None

    def _parse_history(self, node) -> "dict[int, tuple[str, ...]] | None":
        if not isinstance(node, ast.Dict):
            return None
        history: "dict[int, tuple[str, ...]]" = {}
        for key, value in zip(node.keys, node.values):
            version = _literal_int(key)
            if version is None or not isinstance(value, (ast.Tuple, ast.List)):
                return None
            tags = tuple(
                tag
                for tag in (self._resolve(e) for e in value.elts)
                if tag is not None
            )
            history[version] = tags
        return history

    def _parse_handlers(self, node) -> "dict[str, tuple[str, ...]] | None":
        if not isinstance(node, ast.Dict):
            return None
        handlers: "dict[str, tuple[str, ...]]" = {}
        for key, value in zip(node.keys, node.values):
            tag = self._resolve(key)
            if tag is None or not isinstance(value, (ast.Tuple, ast.List)):
                return None
            handlers[tag] = tuple(
                name
                for name in (_literal_str(e) for e in value.elts)
                if name is not None
            )
        return handlers


def _constructs(module: Module, tag: str, const_name: str) -> bool:
    """Does this module build ``(tag, ...)`` inside a send_message?"""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        callee = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        if callee != "send_message":
            continue
        for arg in node.args:
            if isinstance(arg, ast.Tuple) and arg.elts:
                head = arg.elts[0]
                if _literal_str(head) == tag or (
                    isinstance(head, ast.Name) and head.id == const_name
                ):
                    return True
    return False


def _handles(module: Module, tag: str, const_name: str) -> bool:
    """Does this module match on the tag — compare, match arm, or
    ``check_message(conn, TAG)``?"""

    def mentions(expr) -> bool:
        return _literal_str(expr) == tag or (
            isinstance(expr, ast.Name) and expr.id == const_name
        )

    for node in ast.walk(module.tree):
        if isinstance(node, ast.Compare):
            if mentions(node.left) or any(
                mentions(comp) for comp in node.comparators
            ):
                return True
        elif isinstance(node, ast.MatchValue):
            if mentions(node.value):
                return True
        elif isinstance(node, ast.Call):
            func = node.func
            callee = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            if callee == "check_message" and len(node.args) >= 2:
                if mentions(node.args[1]):
                    return True
    return False


@register_rule
class ProtocolExhaustiveRule(Rule):
    id = "L010"
    name = "protocol-exhaustiveness"
    description = (
        "every dist MSG_* tag is constructed via send_message, handled "
        "by each module TAG_HANDLERS declares, and recorded in "
        "TAG_HISTORY under the current PROTOCOL_VERSION (tag-set "
        "changes must bump the version)"
    )

    def check_project(self, project: Project):
        for module in project.modules:
            if module.name == PROTOCOL_MODULE:
                yield from self._check_protocol(project, module)

    def _check_protocol(self, project: Project, module: Module):
        facts = _ProtocolFacts(module)
        if not facts.tags:
            return  # not a tag-bearing protocol module — nothing to hold
        siblings = self._siblings(project, module)
        path = str(module.path)

        # -- the tag set is version-recorded -------------------------------
        current = tuple(sorted(set(facts.tags.values())))
        if facts.history is None or facts.version is None:
            yield Violation(
                self.id, path, facts.version_line, 0,
                "protocol modules must record their tag set: declare "
                "PROTOCOL_VERSION (int) and TAG_HISTORY "
                "({version: (sorted tags...)})",
            )
        elif facts.history.get(facts.version) != current:
            recorded = facts.history.get(facts.version)
            yield Violation(
                self.id, path, facts.history_line, 0,
                f"message tag set {list(current)} does not match "
                f"TAG_HISTORY[{facts.version}] = "
                f"{list(recorded) if recorded else recorded} — a tag-set "
                "change must bump PROTOCOL_VERSION and record the new "
                "set (mixed fleets refuse each other at the ping "
                "handshake)",
            )

        # -- per-tag construction and handling ------------------------------
        for const_name, tag in sorted(facts.tags.items()):
            line = self._line_of(module, const_name)
            if not any(
                _constructs(sibling, tag, const_name)
                for sibling in siblings.values()
            ):
                yield Violation(
                    self.id, path, line, 0,
                    f"{const_name} ({tag!r}) is never constructed — no "
                    "send_message((...)) in this protocol's directory "
                    "builds it; dead vocabulary desyncs fleets",
                )
            if facts.handlers is None or tag not in facts.handlers:
                yield Violation(
                    self.id, path, line, 0,
                    f"{const_name} ({tag!r}) is missing from TAG_HANDLERS "
                    "— every tag must declare which module(s) handle it",
                )
                continue
            for handler_name in facts.handlers[tag]:
                handler = siblings.get(handler_name)
                if handler is None:
                    continue  # handler file not part of this lint run
                if not _handles(handler, tag, const_name):
                    yield Violation(
                        self.id, str(handler.path), 1, 0,
                        f"TAG_HANDLERS names this module for {const_name} "
                        f"({tag!r}) but no compare/match/check_message "
                        "here mentions it — the handler arm is missing",
                    )

    @staticmethod
    def _siblings(project: Project, module: Module) -> "dict[str, Module]":
        """Every module in the protocol file's own directory, keyed by
        basename (the fixture-friendly pairing rule)."""
        directory = Path(module.path).resolve().parent
        return {
            Path(m.path).stem: m
            for m in project.modules
            if Path(m.path).resolve().parent == directory
        }

    @staticmethod
    def _line_of(module: Module, const_name: str) -> int:
        for stmt in module.tree.body:
            if (
                isinstance(stmt, ast.Assign)
                and stmt.targets
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == const_name
            ):
                return stmt.lineno
        return 1
