"""L008 — lock and condition hygiene.

Two concurrency rules the repo's own incident history (PR 7's
serialised pool, PR 9's campaign state) turned into policy:

* **``Condition.wait()`` only inside a ``while``-predicate loop.**
  POSIX condition variables wake spuriously and ``notify_all`` wakes
  every waiter regardless of whose predicate holds — an ``if``-guarded
  (or unguarded) ``wait()`` acts on a predicate that may already be
  false again.  ``wait_for`` carries its own predicate loop and is
  always fine.
* **No blocking calls while holding a resolved lock.**  A socket
  round-trip (``send_message``/``recv_message``), a pool fan-out
  (``Pool.map`` and friends, ``execute_jobs_pooled``) or a listener
  ``accept()`` under a held ``Lock``/``Condition`` turns one slow peer
  into a stalled process — every other thread piles up on the lock.
  The one documented exception is
  :meth:`repro.service.pool.WorkerPool.execute`, whose *purpose* is
  serialising pool fan-outs behind a lock (overlapping ``Pool.map``
  calls from the async front-end must not interleave); it is
  allowlisted by qualified name below.

Both halves act only on names the resolver can type
(:mod:`repro.lint.resolve`): a ``wait()`` on an untyped object — a
``threading.Event``, a ``Barrier``, a mock — is skipped, never
guessed.  Waiting on the held condition itself is of course exempt:
``wait`` releases the lock while blocked; that is the one blocking
call a condition's critical section exists for.
"""

from __future__ import annotations

import ast

from repro.lint.base import Module, Rule, Violation, register_rule
from repro.lint.resolve import ModuleResolver

#: ``(module, Class.method)`` pairs allowed to block under their lock,
#: each for a documented reason (see the module docstring).
ALLOWLIST = frozenset({("repro.service.pool", "WorkerPool.execute")})

#: Free functions whose call is a known blocking operation.
BLOCKING_FUNCTIONS = frozenset(
    {"send_message", "recv_message", "execute_jobs_pooled"}
)

#: Blocking methods, gated on what the receiver resolves to.
BLOCKING_POOL_METHODS = frozenset(
    {"map", "starmap", "imap", "imap_unordered", "apply"}
)
BLOCKING_LISTENER_METHODS = frozenset({"accept"})


def _walk_functions(tree: ast.AST):
    """Yield ``(class_name, function_node)`` for every function,
    tracking the innermost enclosing class (``None`` at module level)."""

    def visit(node, class_name):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from visit(child, child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield class_name, child
                yield from visit(child, class_name)
            else:
                yield from visit(child, class_name)

    yield from visit(tree, None)


def _parents_of(fn) -> "dict[ast.AST, ast.AST]":
    parents: "dict[ast.AST, ast.AST]" = {}
    for node in ast.walk(fn):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


@register_rule
class LockHygieneRule(Rule):
    id = "L008"
    name = "lock-hygiene"
    description = (
        "Condition.wait() only inside a while-predicate loop "
        "(spurious wakeups, over-notification); no blocking "
        "send/recv/pool-map calls while holding a resolved lock"
    )

    def check_module(self, module: Module):
        resolver = ModuleResolver(module.tree)
        for class_name, fn in _walk_functions(module.tree):
            yield from self._check_wait_loops(module, fn, class_name, resolver)
            qualified = f"{class_name}.{fn.name}" if class_name else fn.name
            if (module.name, qualified) in ALLOWLIST:
                continue
            yield from self._check_blocking_under_lock(
                module, fn, class_name, resolver
            )

    # -- Condition.wait() in a while loop -----------------------------------

    def _check_wait_loops(self, module, fn, class_name, resolver):
        parents = None
        for node in ast.walk(fn):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "wait"
            ):
                continue
            if resolver.type_of(node.func.value, fn, class_name) != "Condition":
                continue
            if parents is None:
                parents = _parents_of(fn)
            if not self._has_while_ancestor(node, fn, parents):
                yield Violation(
                    self.id,
                    str(module.path),
                    node.lineno,
                    node.col_offset,
                    "Condition.wait() outside a while-predicate loop: "
                    "spurious wakeups and broad notify_all calls mean the "
                    "predicate must be re-checked after every wake "
                    "(while not pred: cond.wait() — or use wait_for)",
                )

    @staticmethod
    def _has_while_ancestor(node, fn, parents) -> bool:
        current = parents.get(node)
        while current is not None and current is not fn:
            if isinstance(current, ast.While):
                return True
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False  # nested function boundary
            current = parents.get(current)
        return False

    # -- blocking calls under a held lock -----------------------------------

    def _check_blocking_under_lock(self, module, fn, class_name, resolver):
        for node in ast.walk(fn):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            held = None
            for item in node.items:
                expr = item.context_expr
                if resolver.type_of(expr, fn, class_name) in (
                    "Lock",
                    "Condition",
                ):
                    held = ast.unparse(expr)
                    break
            if held is None:
                continue
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    blocked = self._blocking_call(
                        sub, fn, class_name, resolver
                    )
                    if blocked is not None:
                        yield Violation(
                            self.id,
                            str(module.path),
                            sub.lineno,
                            sub.col_offset,
                            f"{blocked} while holding {held}: a slow peer "
                            "stalls every thread queued on this lock; move "
                            "the blocking call outside the critical section",
                        )

    def _blocking_call(self, node, fn, class_name, resolver) -> "str | None":
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if isinstance(func, ast.Name) and func.id in BLOCKING_FUNCTIONS:
            return f"{func.id}()"
        if isinstance(func, ast.Attribute):
            receiver = resolver.type_of(func.value, fn, class_name)
            if (
                func.attr in BLOCKING_POOL_METHODS and receiver == "Pool"
            ) or (
                func.attr in BLOCKING_LISTENER_METHODS
                and receiver == "Listener"
            ):
                return f"{ast.unparse(func)}()"
        return None
