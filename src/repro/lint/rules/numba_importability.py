"""L003 — fused-driver loop bodies stay plain importable functions.

The numba backend's whole validation story (PRs 4–6) rests on one
structural property: every JIT loop body — the sample-major drivers
*and* their lane-major ``prange`` twins — is a **module-level,
closure-free function using nopython-safe constructs**, so hosts
without numba can interpret the identical code path
(``tests/test_backend.py``, ``tests/test_backend_threaded.py``) and
``prange`` degrades to ``range``.  A body that grows a closure, a
``with`` block or a nested ``def`` still compiles *somewhere* but
silently stops being the function the interpreted validation runs.

Kernel bodies are found by the repo's own conventions:

* the function named by the second argument of a ``_compiled(key,
  body, ...)`` call (the per-process JIT cache idiom);
* any module-level function whose name ends in ``_series_loop``
  (drivers and their lane-major twins).

Functions registered as fused drivers (``fused_series={...}`` mappings
and ``_compiled`` bodies) must additionally be plain module-level
names — not lambdas, not nested factories.
"""

from __future__ import annotations

import ast

from repro.lint.base import Module, Rule, Violation, register_rule

#: Suffix naming convention of the loop bodies and their prange twins.
BODY_SUFFIX = "_series_loop"


def _module_level_functions(tree: ast.Module) -> "dict[str, ast.FunctionDef]":
    return {
        node.name: node
        for node in tree.body
        if isinstance(node, ast.FunctionDef)
    }


def _imported_names(tree: ast.Module) -> "set[str]":
    """Names bound anywhere in the module by an import statement."""
    names: "set[str]" = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


class _NopythonVisitor(ast.NodeVisitor):
    """Flag constructs a nopython/interpreted-twin body must not use."""

    BANNED_STATEMENTS = {
        ast.Try: "try/except needs the interpreter's exception machinery",
        ast.With: "context managers are not nopython-safe",
        ast.AsyncWith: "context managers are not nopython-safe",
        ast.Global: "global mutation breaks the pure-loop contract",
        ast.Nonlocal: "nonlocal implies a closure",
        ast.Import: "imports inside a kernel body defeat importability",
        ast.ImportFrom: "imports inside a kernel body defeat importability",
        ast.Yield: "generators cannot compile nopython",
        ast.YieldFrom: "generators cannot compile nopython",
        ast.Await: "async constructs cannot compile nopython",
        ast.Lambda: "lambdas are closures — hoist to a module-level def",
        ast.JoinedStr: "f-strings are interpreter-only",
    }

    def __init__(self) -> None:
        self.findings: "list[tuple[int, int, str]]" = []

    def visit(self, node) -> None:
        reason = self.BANNED_STATEMENTS.get(type(node))
        if reason is not None:
            self.findings.append((node.lineno, node.col_offset, reason))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.findings.append(
                (
                    node.lineno,
                    node.col_offset,
                    f"nested def {node.name!r} makes the body a closure "
                    "factory — kernel bodies must be flat",
                )
            )
            return  # don't descend: one finding per nested def
        super().generic_visit(node)


@register_rule
class NumbaImportabilityRule(Rule):
    id = "L003"
    name = "numba-importability"
    description = (
        "fused-driver loop bodies and prange twins must be module-level, "
        "closure-free and nopython-safe (the interpreted validation "
        "tests run the same code path)"
    )

    def check_module(self, module: Module):
        top_level = _module_level_functions(module.tree)
        imported = _imported_names(module.tree)
        bodies: "dict[str, ast.FunctionDef]" = {
            name: node
            for name, node in top_level.items()
            if name.endswith(BODY_SUFFIX)
        }

        for node in ast.walk(module.tree):
            # _compiled(key, body): the body must be a module-level name.
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "_compiled"
                and len(node.args) >= 2
            ):
                body = node.args[1]
                if isinstance(body, ast.Name) and body.id in top_level:
                    bodies[body.id] = top_level[body.id]
                else:
                    yield Violation(
                        self.id,
                        str(module.path),
                        node.lineno,
                        node.col_offset,
                        "_compiled() must be handed a module-level function "
                        "by name — lambdas/nested defs are uninterpretable "
                        "on hosts without numba",
                    )
            # fused_series={...}: registered drivers are module-level names.
            if isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg == "fused_series" and isinstance(
                        keyword.value, ast.Dict
                    ):
                        for value in keyword.value.values:
                            # A dotted `module.func` reference through an
                            # imported module is importable by construction.
                            if (
                                isinstance(value, ast.Attribute)
                                and isinstance(value.value, ast.Name)
                                and value.value.id in imported
                            ):
                                continue
                            if not (
                                isinstance(value, ast.Name)
                                and value.id in top_level
                            ):
                                yield Violation(
                                    self.id,
                                    str(module.path),
                                    value.lineno,
                                    value.col_offset,
                                    "fused_series drivers must be "
                                    "module-level functions registered by "
                                    "name",
                                )
            # A *_series_loop defined anywhere but module level is a
            # closure by construction.
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name.endswith(BODY_SUFFIX)
                and node.name not in top_level
            ):
                yield Violation(
                    self.id,
                    str(module.path),
                    node.lineno,
                    node.col_offset,
                    f"kernel body {node.name!r} is not module-level — the "
                    "interpreted validation tests cannot import it",
                )

        for name, fn in sorted(bodies.items()):
            if fn.args.vararg is not None or fn.args.kwarg is not None:
                yield Violation(
                    self.id,
                    str(module.path),
                    fn.lineno,
                    fn.col_offset,
                    f"kernel body {name!r} takes *args/**kwargs — nopython "
                    "signatures must be explicit",
                )
            visitor = _NopythonVisitor()
            for statement in fn.body:
                visitor.visit(statement)
            for line, col, reason in visitor.findings:
                yield Violation(
                    self.id,
                    str(module.path),
                    line,
                    col,
                    f"kernel body {name!r}: {reason}",
                )
