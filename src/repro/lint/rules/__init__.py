"""Rule modules.  Importing this package registers every built-in rule
with the registry in :mod:`repro.lint.base`; add a new rule by adding
a module here (decorated with ``@register_rule``) and importing it
below — the same grow-by-registration idiom the array backends use.
"""

from __future__ import annotations

from repro.lint.rules import (  # noqa: F401  (imported for registration)
    bitwise_purity,
    concurrency_hygiene,
    determinism,
    digest_completeness,
    exception_taxonomy,
    layer_order,
    lock_hygiene,
    numba_importability,
    protocol_exhaustive,
    resource_lifecycle,
)
